#!/usr/bin/env python3
"""Schema evolution rollback: the paper's Example 8, end to end.

A company migrated ``Emp(Name, Dept), Bnf(Dept, Benefit)`` into the
new schema ``EmpDept(Name, Dept), EmpBnf(Name, Benefit)``, discarded
the old database, and now wants the old schema back (employees may
work in several departments, which the new schema cannot express).

The mapping is quasi-guarded safe and the exchanged instance is
uniquely covered, so Theorem 5's polynomial algorithm produces a
*complete UCQ recovery*: the recovered instance answers every union of
conjunctive queries exactly as the certain answers over all possible
recoveries would.

Run with::

    python examples/schema_evolution.py
"""

from repro import (
    complete_ucq_recovery,
    cq_max_recovery_chase,
    is_quasi_guarded_safe,
    parse_query,
)
from repro.reporting import format_table
from repro.workloads import employee_benefits


def main() -> None:
    scenario = employee_benefits()
    print("mapping:", scenario.mapping)
    print("\nexchanged company database (the paper's table):")
    for fact in scenario.target:
        print("  ", fact)

    assert is_quasi_guarded_safe(scenario.mapping)
    recovered = complete_ucq_recovery(scenario.mapping, scenario.target)
    print("\nrecovered pre-evolution database (Theorem 5):")
    for fact in recovered:
        print("  ", fact)

    # The paper's headline query: which benefits does HR offer?
    query = scenario.queries["hr_benefits"]
    ours = sorted(str(t[0]) for t in query.certain_evaluate(recovered))
    chased = cq_max_recovery_chase(scenario.mapping, scenario.target)
    theirs = sorted(str(t[0]) for t in query.certain_evaluate(chased))
    print(
        "\n"
        + format_table(
            ["approach", "benefits of HR"],
            [
                ("instance-based recovery", ", ".join(ours)),
                ("CQ-maximum recovery chase", ", ".join(theirs) or "(none)"),
            ],
            title="Q(x) = Bnf(HR, x)",
        )
    )

    # The recovered instance supports arbitrary UCQs, e.g. employees
    # enjoying profit sharing through their department.
    profit = parse_query("q(n) :- Emp(n, d), Bnf(d, 'profit')")
    print(
        "\nemployees with profit sharing:",
        sorted(str(t[0]) for t in profit.certain_evaluate(recovered)),
    )


if __name__ == "__main__":
    main()
