#!/usr/bin/env python3
"""Answering queries over materialized views via instance-based recovery.

The paper observes (§1) that query answering over the recovered
instances *generalizes query answering over materialized views under
the closed-world assumption*: a view definition is a GAV mapping, the
materialized views are the target instance, and the certain answers to
a query over the base relations are exactly the certain answers over
the recoveries.

We materialize two views over a flight database::

    Direct(src, dst)      <-  Flight(src, dst, carrier)
    Carrier(carrier)      <-  Flight(src, dst, carrier)

and answer base-table queries from the views alone — including the
sound polynomial-time route of Definition 12 when exact certainty is
too expensive.

Run with::

    python examples/view_recovery.py
"""

from repro import (
    Mapping,
    certain_answer,
    chase,
    cq_sound_instance,
    parse_instance,
    parse_query,
    parse_tgds,
)


def main() -> None:
    views = Mapping(
        parse_tgds(
            """
            Flight(src, dst, carrier) -> Direct(src, dst)
            Flight(s2, d2, c2)        -> Carrier(c2)
            """
        )
    )
    base = parse_instance(
        """
        Flight(yul, yyz, maple), Flight(yyz, jfk, maple),
        Flight(yul, cdg, bluejet)
        """
    )
    materialized = chase(views, base).result
    print("view definitions:", views)
    print("materialized views:", materialized)

    # Exact certain answers over every database consistent with the views.
    boolean = parse_query("q() :- Flight(x, y, c)")
    print(
        "\ncertainly some flight exists:",
        certain_answer(boolean, views, materialized) == {()},
    )

    hub = parse_query("q(x) :- Flight('yul', x, c)")
    print(
        "certain destinations from YUL:",
        sorted(str(t[0]) for t in certain_answer(hub, views, materialized))
        or "(none certain: the carrier is not determined by the views)",
    )

    # The polynomial sound route: Definition 12's I_{Sigma,J}.
    sound = cq_sound_instance(views, materialized)
    print("\nCQ sub-universal instance I_{Sigma,J}:")
    for fact in sound:
        print("  ", fact)
    print(
        "sound destinations from YUL:",
        sorted(str(t[0]) for t in hub.certain_evaluate(sound))
        or "(none — sound but not complete)",
    )
    pairs = parse_query("q(x, y) :- Flight(x, y, c)")
    print(
        "sound certain city pairs:",
        sorted((str(t[0]), str(t[1])) for t in pairs.certain_evaluate(sound)),
    )


if __name__ == "__main__":
    main()
