#!/usr/bin/env python3
"""Auditing an exchanged database: is the target explainable at all?

A target instance is *valid for recovery* (Definition 3) exactly when
some source could have produced every one of its tuples.  That makes
the J-validity decision (Theorem 3) a tamper/consistency audit: after
an exchange, a target tuple nobody could have produced — or a tuple
whose forward consequences are missing — indicates corruption.

The script exchanges a clean order database, verifies it, then injects
two kinds of corruption and shows how the audit localizes them.

Run with::

    python examples/audit_recovery.py
"""

from repro import (
    Mapping,
    chase,
    find_recovery,
    is_valid_for_recovery,
    parse_instance,
    parse_tgds,
)
from repro.core.covers import coverage_index
from repro.core.hom_sets import hom_set


def audit(mapping: Mapping, target) -> None:
    valid = is_valid_for_recovery(mapping, target)
    print("  valid for recovery:", valid)
    if valid:
        witness = find_recovery(mapping, target)
        print("  witness source:", witness)
        return
    # Localize: which target facts does no homomorphism cover?
    homs = hom_set(mapping, target)
    index = coverage_index(homs, target)
    orphans = sorted(fact for fact, coverers in index.items() if not coverers)
    if orphans:
        print(
            "  uncoverable facts (no rule application could have produced\n"
            "  them — wrong relation, or the rule's other effects are absent):"
        )
        for fact in orphans:
            print("    ", fact)
    else:
        print(
            "  every fact is coverable, but no covering survives the\n"
            "  subsumption/justification checks: some fact's forward\n"
            "  consequences are missing from the target."
        )


def main() -> None:
    mapping = Mapping(
        parse_tgds(
            """
            Order(cust, item)  -> Shipment(item), Invoice(cust)
            Gift(cust2, item2) -> Shipment(item2)
            """
        )
    )
    source = parse_instance("Order(ada, laptop), Gift(bob, flowers)")
    clean = chase(mapping, source).result
    print("mapping:", mapping)
    print("\nclean exchanged target:", clean)
    audit(mapping, clean)

    # Corruption 1: a shipment relation fact nobody could have produced.
    tampered = clean.with_facts(parse_instance("Refund(ada)").facts)
    print("\ntampered target (foreign fact):", tampered)
    audit(mapping, tampered)

    # A subtle case: an extra invoice among existing shipments is NOT
    # flagged — a consistent explanation exists (eve ordered an item
    # that was shipped anyway).  The audit reports the witness.
    extra = clean | parse_instance("Invoice(eve)")
    print("\nextra invoice among shipments:", extra)
    audit(mapping, extra)

    # Corruption 2: an invoice with every shipment lost — coverable
    # (the Order rule produces invoices), but any producing order would
    # also have shipped something, and no shipment is present.
    orphaned = parse_instance("Invoice(eve)")
    print("\ntampered target (missing consequence):", orphaned)
    audit(mapping, orphaned)


if __name__ == "__main__":
    main()
