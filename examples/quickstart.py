#!/usr/bin/env python3
"""Quickstart: exchange data forward, then recover the source back.

Runs the paper's motivating example (equations 1-3): the mapping
``R(x, y) -> S(x), P(y)`` splits a binary relation into two unary
ones.  Given only the exchanged target, instance-based recovery
reconstructs the join — which the classical mapping-based inverse
cannot do.

Run with::

    python examples/quickstart.py
"""

from repro import (
    Mapping,
    atomwise_reverse_mapping,
    certain_answer,
    chase,
    inverse_chase,
    parse_instance,
    parse_query,
    parse_tgds,
)


def main() -> None:
    # 1. A source-to-target schema mapping, written in the tgd DSL.
    mapping = Mapping(parse_tgds("R(x, y) -> S(x), P(y)"))
    print("mapping:", mapping)

    # 2. Exchange a source instance forward with the chase.
    source = parse_instance("R(alice, math), R(alice, physics)")
    target = chase(mapping, source).result
    print("source:", source)
    print("exchanged target:", target)

    # 3. The source is later lost; recover it from the target alone.
    recoveries = inverse_chase(mapping, target)
    print(f"\n{len(recoveries)} recovery(ies) of the target:")
    for recovery in recoveries:
        print("  ", recovery)

    # 4. Certain answers over ALL recoveries: the join is recovered.
    query = parse_query("q(x) :- R(x, 'physics')")
    answers = certain_answer(query, mapping, target)
    print("\nCERT(who teaches physics?):", sorted(str(t[0]) for t in answers))

    # 5. The mapping-based maximum recovery misses it.
    baseline = atomwise_reverse_mapping(mapping).apply_single(target)
    print("maximum-recovery chase result:", baseline)
    print(
        "same query on it:",
        sorted(str(t[0]) for t in query.certain_evaluate(baseline)) or "nothing",
    )


if __name__ == "__main__":
    main()
