"""Command-line interface: ``python -m repro <command> ...``.

Six commands cover the library's main workflows, all operating on DSL
files (see :mod:`repro.data.io`):

* ``exchange``  — chase a source instance forward into a target;
* ``recover``   — compute ``Chase^{-1}(Sigma, J)``, optionally cored;
* ``validate``  — decide J-validity, reporting uncoverable facts;
* ``certain``   — certain answers of a source query over the target;
* ``repair``    — repair an altered target and recover from it;
* ``serve``     — run the long-running recovery service (HTTP).

Example::

    python -m repro recover --mapping orders.mapping --target dump.instance
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Optional, Sequence

from .chase.standard import chase
from .core.cores import core_recoveries
from .core.repair import uncoverable_facts
from .data.io import load_instance, load_mapping, load_query, save_instance
from .semantics import get_semantics, semantics_names
from .engine.config import CONFIG, configure
from .engine.counters import COUNTERS
from .errors import DeadlineExceededError, NotRecoverableError, ReproError
from .observability import TRACER, format_trace, write_metrics_json
from .reporting import (
    RunReport,
    format_answers,
    format_counters,
    format_run_report,
)
from .resilience import AnytimeResult, CheckpointManager, Deadline


def _positive_int(text: str) -> int:
    """Argparse type: a strictly positive integer (exit code 2 otherwise)."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{text!r} is not an integer")
    if value <= 0:
        raise argparse.ArgumentTypeError(
            f"must be a positive integer, got {value}"
        )
    return value


def _positive_float(text: str) -> float:
    """Argparse type: a strictly positive number (exit code 2 otherwise)."""
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"{text!r} is not a number")
    if value <= 0:
        raise argparse.ArgumentTypeError(
            f"must be a positive number, got {value}"
        )
    return value


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Instance-based recovery of exchanged data (PODS 2015).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--mapping", required=True, help="mapping DSL file")
        p.add_argument(
            "--stats",
            action="store_true",
            help="print engine counters (work done, cache hits) after the run",
        )
        p.add_argument(
            "--no-join-kernel",
            action="store_true",
            help=(
                "disable the compiled join-plan kernel and fall back to the "
                "backtracking matcher (debugging/differential runs)"
            ),
        )
        p.add_argument(
            "--no-columnar",
            action="store_true",
            help=(
                "disable the interned columnar storage backend and keep "
                "large instances on the object path (differential runs; "
                "also settable via REPRO_COLUMNAR=0)"
            ),
        )
        p.add_argument(
            "--trace",
            action="store_true",
            help="record engine spans and print the trace tree after the run",
        )
        p.add_argument(
            "--metrics-json",
            metavar="PATH",
            default=None,
            help=(
                "write counters + the span trace tree as a JSON document "
                "to PATH (implies span recording)"
            ),
        )

    def semantics(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--semantics",
            default=None,
            metavar="MODE",
            help=(
                "recovery-semantics mode (registered: "
                + ", ".join(semantics_names())
                + "; default: the engine config's mode, normally 'paper')"
            ),
        )

    def parallel(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--jobs",
            type=_positive_int,
            default=None,
            help="worker threads for covering/query evaluation (default serial)",
        )

    def resilience(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--deadline-ms",
            type=_positive_float,
            default=None,
            metavar="MS",
            help="wall-clock deadline for the whole computation",
        )
        p.add_argument(
            "--degrade",
            action="store_true",
            help=(
                "on deadline expiry, degrade to a sound-incomplete answer "
                "instead of failing (see the resilience ladder)"
            ),
        )
        p.add_argument(
            "--retries",
            type=_positive_int,
            default=None,
            metavar="N",
            help="retries per parallel chunk before in-process fallback",
        )

    def checkpointing(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--checkpoint",
            metavar="PATH",
            default=None,
            help=(
                "durable snapshot file: enumeration state is saved here "
                "periodically so a crash costs only the delta since the "
                "last save"
            ),
        )
        p.add_argument(
            "--checkpoint-every-ms",
            type=_positive_float,
            default=1000.0,
            metavar="MS",
            help="minimum interval between snapshot writes (default 1000)",
        )
        p.add_argument(
            "--resume",
            action="store_true",
            help=(
                "resume from the --checkpoint snapshot when it is present, "
                "uncorrupted and matches the inputs; cold-start otherwise"
            ),
        )

    p_exchange = sub.add_parser("exchange", help="chase a source forward")
    common(p_exchange)
    p_exchange.add_argument("--source", required=True, help="source instance file")
    p_exchange.add_argument("--out", help="write the target here (default stdout)")

    p_recover = sub.add_parser("recover", help="compute Chase^{-1}(Sigma, J)")
    common(p_recover)
    semantics(p_recover)
    parallel(p_recover)
    resilience(p_recover)
    checkpointing(p_recover)
    p_recover.add_argument("--target", required=True, help="target instance file")
    p_recover.add_argument(
        "--max-recoveries", type=int, default=1000, help="enumeration budget"
    )
    p_recover.add_argument(
        "--cores",
        action="store_true",
        help="present the recovery set minimally (cores, deduplicated)",
    )

    p_validate = sub.add_parser("validate", help="decide validity for recovery")
    common(p_validate)
    semantics(p_validate)
    p_validate.add_argument("--target", required=True)

    p_certain = sub.add_parser("certain", help="certain answers of a source query")
    common(p_certain)
    semantics(p_certain)
    parallel(p_certain)
    resilience(p_certain)
    checkpointing(p_certain)
    p_certain.add_argument("--target", required=True)
    p_certain.add_argument("--query", required=True, help="query DSL file")
    p_certain.add_argument("--max-recoveries", type=int, default=1000)

    p_repair = sub.add_parser("repair", help="repair an altered target and recover")
    common(p_repair)
    semantics(p_repair)
    resilience(p_repair)
    p_repair.add_argument("--target", required=True)
    p_repair.add_argument("--max-removals", type=int, default=3)

    p_serve = sub.add_parser(
        "serve",
        help="run the recovery service (long-running HTTP server)",
        description=(
            "Serve /mappings, /recover, /certain, /repair, /jobs/<id>, "
            "/metrics and /healthz over HTTP with warm per-tenant caches, "
            "admission control and per-request QoS (see docs/API.md)."
        ),
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8765)
    p_serve.add_argument(
        "--max-inflight", type=_positive_int, default=8,
        help="executing requests across all tenants (default 8)",
    )
    p_serve.add_argument(
        "--max-queue", type=_positive_int, default=16,
        help="requests allowed to wait for a slot (default 16)",
    )
    p_serve.add_argument(
        "--max-inflight-per-tenant", type=_positive_int, default=2,
        help="admitted (queued or executing) requests per tenant (default 2)",
    )
    p_serve.add_argument(
        "--queue-timeout-s", type=_positive_float, default=5.0,
        help="longest a request may wait for a slot before a 429 (default 5)",
    )
    p_serve.add_argument(
        "--tenant-cache-budget", type=_positive_int, default=64,
        help="per-tenant entry budget for each engine cache (default 64)",
    )
    p_serve.add_argument(
        "--result-cache-size", type=int, default=256,
        help="exact responses cached per tenant; 0 disables (default 256)",
    )
    p_serve.add_argument(
        "--spool-dir", default=None, metavar="DIR",
        help="checkpoint spool for async jobs (enables crash-resume)",
    )
    p_serve.add_argument(
        "--job-workers", type=_positive_int, default=2,
        help="worker threads draining async jobs (default 2)",
    )
    p_serve.add_argument(
        "--max-recoveries", type=_positive_int, default=1000,
        help="server-side ceiling on any request's max_recoveries",
    )
    p_serve.add_argument(
        "--default-deadline-ms", type=_positive_float, default=None,
        help="deadline applied to requests that name none (default: unbounded)",
    )
    return parser


def _deadline_from(args) -> Optional[Deadline]:
    ms = getattr(args, "deadline_ms", None)
    return Deadline(wall_ms=ms) if ms is not None else None


def _checkpoint_from(args) -> Optional[CheckpointManager]:
    path = getattr(args, "checkpoint", None)
    if path is None:
        return None
    return CheckpointManager(
        path,
        every_ms=getattr(args, "checkpoint_every_ms", 1000.0),
        resume=getattr(args, "resume", False),
    )


def _note_checkpoint(args, manager: Optional[CheckpointManager]) -> None:
    """Record the checkpoint path and resume outcome for --stats."""
    if manager is None:
        return
    args._report["checkpoint"] = str(manager.path)
    args._report["resume_outcome"] = manager.resume_outcome or ""


def _mode_from(args) -> str:
    return "degrade" if getattr(args, "degrade", False) else "raise"


def _semantics_from(args):
    """Resolve the run's semantics strategy and record it for --stats.

    An unknown name raises :class:`~repro.semantics.UnknownSemanticsError`
    (a :class:`~repro.errors.ReproError`), so it exits with code 2 and
    the registered modes listed — the same failure the service maps to
    a 422.
    """
    strategy = get_semantics(getattr(args, "semantics", None))
    args._report["semantics"] = strategy.name
    return strategy


def _note_anytime(args, result: AnytimeResult) -> None:
    """Print a degraded result's provenance and record it for --stats."""
    args._report.update(status=result.status, rung=result.rung)
    if result.is_exact:
        return
    print(f"answer status: {result.status} (ladder rung: {result.rung})")
    if result.detail:
        print(f"  {result.detail}")


def _cmd_exchange(args) -> int:
    with TRACER.span("load"):
        mapping = load_mapping(args.mapping)
        source = load_instance(args.source)
    with TRACER.span("execute"):
        target = chase(mapping, source).result
    if args.out:
        save_instance(target, args.out)
        print(f"wrote {len(target)} facts to {args.out}")
    else:
        for fact in target:
            print(fact)
    return 0


def _cmd_recover(args) -> int:
    with TRACER.span("load"):
        mapping = load_mapping(args.mapping)
        target = load_instance(args.target)
    with TRACER.span("execute"):
        manager = _checkpoint_from(args)
        result = _semantics_from(args).recoveries(
            mapping,
            target,
            max_recoveries=args.max_recoveries,
            jobs=args.jobs,
            deadline=_deadline_from(args),
            mode=_mode_from(args),
            checkpoint=manager,
        )
        _note_checkpoint(args, manager)
        if isinstance(result, AnytimeResult):
            _note_anytime(args, result)
            recoveries = list(result)
        else:
            recoveries = result
        if not recoveries:
            if isinstance(result, AnytimeResult) and not result.is_exact:
                print("no recoveries obtained within the deadline")
            else:
                print(
                    "target admits no recovery under the "
                    f"{args._report['semantics']} semantics"
                )
            return 1
        if args.cores:
            recoveries = core_recoveries(recoveries)
    args._report["result_size"] = len(recoveries)
    print(f"{len(recoveries)} recovery(ies):")
    for recovery in recoveries:
        print("  ", recovery)
    return 0


def _cmd_validate(args) -> int:
    with TRACER.span("load"):
        mapping = load_mapping(args.mapping)
        target = load_instance(args.target)
    with TRACER.span("execute"):
        strategy = _semantics_from(args)
        if strategy.is_valid(mapping, target):
            if strategy.name == "paper":
                print("valid: some source instance justifies every target fact")
            else:
                print(
                    f"valid: target admits a solution under the "
                    f"{strategy.name} semantics"
                )
            return 0
        print("INVALID: no source instance can justify this target")
        orphans = uncoverable_facts(mapping, target)
        for fact in sorted(orphans):
            print("  uncoverable:", fact)
        return 1


def _cmd_certain(args) -> int:
    with TRACER.span("load"):
        mapping = load_mapping(args.mapping)
        target = load_instance(args.target)
        query = load_query(args.query)
    with TRACER.span("execute"):
        manager = _checkpoint_from(args)
        strategy = _semantics_from(args)
        try:
            answers = strategy.certain(
                query,
                mapping,
                target,
                max_recoveries=args.max_recoveries,
                jobs=args.jobs,
                deadline=_deadline_from(args),
                mode=_mode_from(args),
                checkpoint=manager,
            )
        except NotRecoverableError:
            print(
                "target admits no solution under the "
                f"{strategy.name} semantics; certain answers undefined"
            )
            return 1
        _note_checkpoint(args, manager)
        if isinstance(answers, AnytimeResult):
            _note_anytime(args, answers)
            answers = set(answers)
    args._report["result_size"] = len(answers)
    print(format_answers(answers))
    return 0


def _cmd_repair(args) -> int:
    with TRACER.span("load"):
        mapping = load_mapping(args.mapping)
        target = load_instance(args.target)
    with TRACER.span("execute"):
        repaired_list, recoveries = _semantics_from(args).repair_and_recover(
            mapping,
            target,
            max_removals=args.max_removals,
            deadline=_deadline_from(args),
            mode=_mode_from(args),
        )
        if not repaired_list:
            print("no repair found within the removal budget")
            return 1
        if isinstance(recoveries, AnytimeResult):
            _note_anytime(args, recoveries)
            recoveries = list(recoveries)
    args._report["result_size"] = len(recoveries)
    for repaired in repaired_list:
        removed = target.facts - repaired.facts
        print(f"repair removes {len(removed)} fact(s):")
        for fact in sorted(removed):
            print("  -", fact)
    print(f"{len(recoveries)} recovery(ies) of the repaired target:")
    for recovery in recoveries:
        print("  ", recovery)
    return 0


def _cmd_serve(args) -> int:
    from .service import ServiceConfig, create_server

    config = ServiceConfig(
        host=args.host,
        port=args.port,
        max_inflight=args.max_inflight,
        max_queue=args.max_queue,
        max_inflight_per_tenant=args.max_inflight_per_tenant,
        queue_timeout_s=args.queue_timeout_s,
        tenant_cache_budget=args.tenant_cache_budget,
        result_cache_size=args.result_cache_size,
        spool_dir=args.spool_dir,
        job_workers=args.job_workers,
        max_recoveries=args.max_recoveries,
        default_deadline_ms=args.default_deadline_ms,
    )
    server = create_server(config)
    host, port = server.server_address[:2]
    print(f"repro service listening on http://{host}:{port}", file=sys.stderr)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("shutting down", file=sys.stderr)
    finally:
        server.shutdown()
        server.server_close()
        server.service.shutdown()
    return 0


_COMMANDS = {
    "exchange": _cmd_exchange,
    "recover": _cmd_recover,
    "validate": _cmd_validate,
    "certain": _cmd_certain,
    "repair": _cmd_repair,
    "serve": _cmd_serve,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns the process exit code.

    Exit codes: 0 success, 1 empty/negative result, 2 library error,
    3 deadline expired (without ``--degrade``).
    """
    parser = _build_parser()
    args = parser.parse_args(argv)
    if getattr(args, "resume", False) and not getattr(args, "checkpoint", None):
        parser.error("--resume requires --checkpoint PATH")
    COUNTERS.reset()
    previous_retries = CONFIG.chunk_retries
    if getattr(args, "retries", None) is not None:
        configure(chunk_retries=args.retries)
    previous_kernel = CONFIG.join_kernel
    if getattr(args, "no_join_kernel", False):
        configure(join_kernel=False)
    previous_columnar = CONFIG.columnar_backend
    if getattr(args, "no_columnar", False):
        configure(columnar_backend=False)
    tracing = bool(getattr(args, "trace", False) or getattr(args, "metrics_json", None))
    if tracing:
        TRACER.reset()
        TRACER.enable()
    args._report = {"status": "exact", "rung": "enumeration", "result_size": 0}
    started = time.perf_counter()
    try:
        with TRACER.span(f"cli.{args.command}"):
            return _COMMANDS[args.command](args)
    except DeadlineExceededError as error:
        print(f"error: {error}", file=sys.stderr)
        for key, value in sorted(error.progress.items()):
            print(f"  progress: {key} = {value}", file=sys.stderr)
        if error.partial:
            print(
                f"  partial results available: {len(error.partial)}",
                file=sys.stderr,
            )
        print(
            "hint: pass --degrade for a sound (possibly incomplete) answer",
            file=sys.stderr,
        )
        args._report["status"] = "deadline-exceeded"
        return 3
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    finally:
        configure(
            chunk_retries=previous_retries,
            join_kernel=previous_kernel,
            columnar_backend=previous_columnar,
        )
        elapsed_ms = (time.perf_counter() - started) * 1000
        trace = TRACER.to_dict() if tracing else None
        # One RunReport serves every output surface: --stats renders it
        # as a table, --metrics-json writes report.to_dict() — the same
        # serializer the service's response envelopes use, so a CLI
        # metrics document and a service response never disagree on
        # shape.
        report = RunReport(
            command=args.command,
            elapsed_ms=elapsed_ms,
            counters=COUNTERS.snapshot(),
            trace=trace,
            **args._report,
        )
        if getattr(args, "stats", False):
            print(format_run_report(report), file=sys.stderr)
            print(format_counters(report.counters), file=sys.stderr)
        if getattr(args, "trace", False):
            print(format_trace(), file=sys.stderr)
        if getattr(args, "metrics_json", None):
            write_metrics_json(args.metrics_json, **report.to_dict())
        if tracing:
            TRACER.disable()


if __name__ == "__main__":  # pragma: no cover - module execution
    sys.exit(main())
