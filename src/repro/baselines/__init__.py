"""Baselines: the mapping-based inverses the paper compares against."""

from .cq_max import cq_max_recovery_chase, derive_cq_max_recovery
from .recovery_mappings import (
    RecoveryMapping,
    atomwise_reverse_mapping,
    full_single_head_max_recovery,
)
from .reverse import naive_inverse_chase

__all__ = [
    "RecoveryMapping",
    "atomwise_reverse_mapping",
    "cq_max_recovery_chase",
    "derive_cq_max_recovery",
    "full_single_head_max_recovery",
    "naive_inverse_chase",
]
