"""Mapping-based inverses: the baselines the paper argues against.

The static approach to inversion compiles a target-to-source mapping
``Sigma'`` and applies it to the materialized target.  This module
implements the machinery those baselines need:

* :class:`RecoveryMapping` — a set of target-to-source dependencies
  whose heads may be disjunctive (the maximum recovery of a set of
  full tgds needs disjunction, as in equation (4) of the paper), and
  its application to a target instance via the disjunctive chase.
* :func:`atomwise_reverse_mapping` — the per-head-atom reversal that
  yields the *maximum recovery* of Arenas et al. for the paper's
  running examples: every head atom of every tgd becomes a
  target-to-source tgd whose head is the full original body with the
  lost variables existentially quantified (e.g. equation (1)'s
  ``R(x, y) -> S(x), P(y)`` inverts to ``S(x) -> exists y R(x, y)``
  and ``P(y) -> exists x R(x, y)``).
* :func:`full_single_head_max_recovery` — the disjunctive maximum
  recovery for sets of *full* tgds with single-atom heads, grouping
  the possible producers of each target relation into one disjunctive
  dependency (equation (4)'s ``S(x) -> R(x) \\/ M(x)``).

These constructions reproduce the maximum-recovery mappings the paper
states for all of its examples; the exact general-purpose compilation
of Arenas et al. additionally needs inequalities and constant
predicates, which the paper's comparison never exercises.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional, Sequence

from ..data.atoms import Atom
from ..data.instances import Instance
from ..data.substitutions import Substitution
from ..data.terms import NullFactory, Variable
from ..errors import DependencyError
from ..logic.tgds import Mapping
from ..chase.disjunctive import DisjunctiveTGD, disjunctive_chase


class RecoveryMapping:
    """A target-to-source mapping, possibly with disjunctive heads."""

    __slots__ = ("_dependencies",)

    def __init__(self, dependencies: Iterable[DisjunctiveTGD]):
        dependencies = tuple(dependencies)
        if not dependencies:
            raise DependencyError("a recovery mapping needs at least one dependency")
        object.__setattr__(self, "_dependencies", dependencies)

    @property
    def dependencies(self) -> tuple[DisjunctiveTGD, ...]:
        return self._dependencies

    @property
    def is_disjunction_free(self) -> bool:
        return all(dep.is_plain for dep in self._dependencies)

    def __iter__(self) -> Iterator[DisjunctiveTGD]:
        return iter(self._dependencies)

    def __len__(self) -> int:
        return len(self._dependencies)

    def apply(
        self,
        target: Instance,
        factory: Optional[NullFactory] = None,
        max_results: int = 4096,
    ) -> list[Instance]:
        """All source instances produced by chasing ``target``.

        Disjunction-free mappings yield exactly one instance; each
        disjunctive trigger multiplies the alternatives.
        """
        return disjunctive_chase(
            self._dependencies, target, factory, max_results=max_results
        )

    def apply_single(
        self, target: Instance, factory: Optional[NullFactory] = None
    ) -> Instance:
        """The unique chase result of a disjunction-free mapping."""
        if not self.is_disjunction_free:
            raise DependencyError(
                "mapping has disjunctive heads; use apply() for the full set"
            )
        results = self.apply(target, factory)
        assert len(results) == 1
        return results[0]

    def __repr__(self) -> str:
        inner = "; ".join(repr(d) for d in self._dependencies)
        return f"RecoveryMapping[{inner}]"

    def __setattr__(self, name, value):  # pragma: no cover - guard
        raise AttributeError("RecoveryMapping is immutable")


def atomwise_reverse_mapping(mapping: Mapping) -> RecoveryMapping:
    """Reverse every head atom into its own target-to-source tgd.

    For each s-t tgd ``alpha(x, y) -> beta_1, ..., beta_k`` produce the
    ``k`` dependencies ``beta_i -> exists(rest) alpha``; variables of
    ``alpha`` not occurring in ``beta_i`` become existential.  This is
    the maximum recovery stated by the paper for equation (1) and for
    Example 8.
    """
    dependencies: list[DisjunctiveTGD] = []
    for tgd in mapping:
        for i, head_atom in enumerate(tgd.head, start=1):
            dependencies.append(
                DisjunctiveTGD(
                    [head_atom],
                    [list(tgd.body)],
                    name=f"{tgd.name}.{i}" if tgd.name else None,
                )
            )
    return RecoveryMapping(dependencies)


def full_single_head_max_recovery(mapping: Mapping) -> RecoveryMapping:
    """The disjunctive maximum recovery of full, single-head-atom tgds.

    Groups the tgds by target relation: one dependency per relation
    whose body is the generic atom over that relation and whose head
    disjoins the (suitably renamed) bodies of every producer.  For
    equation (4) this yields ``T(x) -> R(x)`` and
    ``S(x) -> R(x) \\/ M(x)``, matching the paper's stated maximum
    recovery and extended recovery.

    :raises DependencyError: when a tgd is not full or its head has
        more than one atom (the construction is only stated for that
        class).
    """
    producers: dict[str, list[tuple[Atom, tuple[Atom, ...]]]] = {}
    for tgd in mapping:
        if not tgd.is_full:
            raise DependencyError(
                f"{tgd!r} is not full; the grouped construction requires full tgds"
            )
        if len(tgd.head) != 1:
            raise DependencyError(
                f"{tgd!r} has several head atoms; the grouped construction "
                "requires single-atom heads"
            )
        head_atom = tgd.head[0]
        producers.setdefault(head_atom.relation, []).append((head_atom, tgd.body))

    dependencies: list[DisjunctiveTGD] = []
    for relation in sorted(producers):
        entries = producers[relation]
        arity = entries[0][0].arity
        generic = Atom(relation, tuple(Variable(f"u{i}") for i in range(arity)))
        disjuncts: list[list[Atom]] = []
        for head_atom, body in entries:
            renaming: dict[Variable, Variable] = {}
            consistent = True
            for pattern_var, head_term in zip(generic.args, head_atom.args):
                if not isinstance(head_term, Variable):
                    consistent = False
                    break
                if head_term in renaming and renaming[head_term] != pattern_var:
                    consistent = False
                    break
                renaming[head_term] = pattern_var
            if not consistent:
                raise DependencyError(
                    f"head atom {head_atom} repeats variables or uses constants; "
                    "the grouped construction requires generic heads"
                )
            sub = Substitution(dict(renaming))
            disjuncts.append(sub.apply_atoms(body))
        dependencies.append(DisjunctiveTGD([generic], disjuncts, name=relation))
    return RecoveryMapping(dependencies)
