"""A CQ-maximum recovery mapping deriver (baseline for Theorem 10).

The paper compares its ``I_{Sigma,J}`` construction against chasing
the target with the *CQ-maximum recovery mapping* of Arenas et al.
[6].  That compilation is not restated in the paper; we reconstruct it
with a greatest-lower-bound argument that provably under-approximates
it and coincides with it on every example the paper gives:

For each target relation ``A`` take the generic fact
``A(p_1, ..., p_k)`` over rigid position markers.  Every tgd whose
head contains an ``A``-atom is a *producer*: if the fact was produced
by it, the producer's body holds with the head variables bound to the
corresponding position markers (repeated head variables are sound to
split across their positions, because any fact this producer made has
equal values there) and every other body variable existentially
quantified.  What is certain regardless of the producer is the
information common to all producers — their homomorphic greatest
lower bound.  A non-empty glb becomes the target-to-source dependency
``A(x_1, ..., x_k) -> exists ... glb``.

On Example 13 this yields exactly ``{T(x) -> exists z R(x, z)}`` —
including the non-obvious *omission* of any rule for ``S`` — and on
equation (1) and Example 8 it reproduces the paper's stated mappings.
"""

from __future__ import annotations

from typing import Optional

from ..data.atoms import Atom
from ..data.instances import Instance
from ..data.terms import Constant, NullFactory, Null, Term, Variable
from ..engine.executor import ExecutorLike, resolve_executor
from ..logic.tgds import Mapping
from ..chase.disjunctive import DisjunctiveTGD
from ..core.glb import glb
from .recovery_mappings import RecoveryMapping

#: Prefix of the rigid position-marker constants used during derivation.
_MARKER_PREFIX = "@pos"


def _position_marker(position: int) -> Constant:
    return Constant(f"{_MARKER_PREFIX}{position}")


def _producer_canonical_body(
    tgd, head_atom: Atom, factory: NullFactory
) -> Instance:
    """The producer's certain source content, anchored on position markers."""
    binding: dict[Term, Term] = {}
    for position, term in enumerate(head_atom.args):
        if isinstance(term, Variable) and term not in binding:
            binding[term] = _position_marker(position)
    for var in sorted(tgd.body_variables):
        if var not in binding:
            binding[var] = factory.fresh()
    return Instance(atom.apply(binding) for atom in tgd.body)


def _relation_glb(
    task: tuple[str, tuple[Instance, ...]],
) -> tuple[str, Instance]:
    """Worker: fold one target relation's producer bodies into their glb.

    Relations are independent — each glb mints its own pairing nulls
    (avoiding the producers' domains) and the result is translated to
    variables per relation — so this is the baselines' parallel unit.
    """
    relation, instances = task
    return relation, glb(list(instances))


def derive_cq_max_recovery(
    mapping: Mapping,
    *,
    executor: ExecutorLike = None,
    jobs: Optional[int] = None,
) -> Optional[RecoveryMapping]:
    """Derive the CQ-maximum recovery mapping of ``Sigma``.

    Returns ``None`` when no target relation retains any certain
    source content (the derived mapping would be empty).  ``executor``
    / ``jobs`` compute the per-relation glbs in parallel.
    """
    producers: dict[str, list[Instance]] = {}
    arities: dict[str, int] = {}
    factory = NullFactory(prefix="M")
    for tgd in mapping:
        for head_atom in tgd.head:
            arities[head_atom.relation] = head_atom.arity
            producers.setdefault(head_atom.relation, []).append(
                _producer_canonical_body(tgd, head_atom, factory)
            )

    runner = resolve_executor(executor, jobs)
    relation_glbs = runner.map(
        _relation_glb,
        ((rel, tuple(producers[rel])) for rel in sorted(producers)),
    )
    dependencies: list[DisjunctiveTGD] = []
    for relation, certain in relation_glbs:
        if certain.is_empty:
            continue
        body_atom = Atom(
            relation,
            tuple(Variable(f"x{i}") for i in range(arities[relation])),
        )
        translation: dict[Term, Term] = {
            _position_marker(i): Variable(f"x{i}")
            for i in range(arities[relation])
        }
        fresh = 0
        for term in sorted(certain.domain()):
            if isinstance(term, Null):
                fresh += 1
                translation[term] = Variable(f"e{fresh}")
        head_atoms = [fact.apply(translation) for fact in sorted(certain.facts)]
        dependencies.append(
            DisjunctiveTGD([body_atom], [head_atoms], name=f"inv_{relation}")
        )
    if not dependencies:
        return None
    return RecoveryMapping(dependencies)


def cq_max_recovery_chase(
    mapping: Mapping,
    target: Instance,
    *,
    executor: ExecutorLike = None,
    jobs: Optional[int] = None,
) -> Instance:
    """``Chase(Sigma', J)`` for the derived CQ-maximum recovery ``Sigma'``.

    Returns the empty instance when the derived mapping is empty —
    chasing with no dependencies recovers nothing.
    """
    recovery = derive_cq_max_recovery(mapping, executor=executor, jobs=jobs)
    if recovery is None:
        return Instance.empty()
    return recovery.apply_single(target)
