"""The naive reversed-mapping baseline.

Reversing the arrows of ``Sigma`` and running the *standard* chase on
the target is the obvious first attempt at recovery.  The paper's
introduction (cases one to three, §1) shows three ways it fails:

1. it applies every trigger, so alternatives collapse into one
   over-committed source instance;
2. it ignores the subsumption constraints, recovering facts whose
   forward consequences are absent from the target (unsound);
3. it cannot equate the invented nulls with existing values the way
   the final homomorphism step of Definition 9 does (incomplete).

The benchmarks quantify these failures against the inverse chase.
"""

from __future__ import annotations

from typing import Optional

from ..data.instances import Instance
from ..data.terms import NullFactory
from ..logic.tgds import Mapping
from ..chase.standard import chase


def naive_inverse_chase(
    mapping: Mapping,
    target: Instance,
    factory: Optional[NullFactory] = None,
) -> Instance:
    """``Chase(Sigma^{-1}, J)`` with the plain standard chase."""
    return chase(mapping.reversed_tgds(), target, factory).result
