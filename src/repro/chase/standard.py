"""The standard (oblivious) chase for sets of s-t tgds.

Because every dependency is source-to-target, the chase terminates
after a single pass: bodies only match the input instance and heads
only produce facts over the other schema, so no produced fact can
re-trigger a dependency.  ``Chase(Sigma, I)`` fires *every*
homomorphism from every body into ``I``, inventing a fresh labeled
null for each existential variable of each firing — exactly the
definition in §2 of the paper.

:func:`chase_restricted` implements ``Chase_H``: the chase restricted
to a given set of triggers, the primitive underlying the inverse chase
of Definition 9.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Union

from ..data.instances import Instance, InstanceBuilder
from ..data.substitutions import Substitution
from ..data.terms import NullFactory, Term, Variable
from ..logic.homomorphisms import has_homomorphism, homomorphisms
from ..logic.tgds import TGD, Mapping
from .provenance import ChaseResult, TriggerApplication

TgdSource = Union[Mapping, Iterable[TGD]]


def _tgd_list(tgds: TgdSource) -> list[TGD]:
    if isinstance(tgds, Mapping):
        return list(tgds.tgds)
    return list(tgds)


def _apply_trigger(
    tgd: TGD,
    hom: Substitution,
    factory: NullFactory,
) -> TriggerApplication:
    """Fire one trigger: invent fresh nulls and instantiate the head."""
    existential = sorted(set(tgd.head_variables) - set(hom.keys()))
    extension = Substitution({v: factory.fresh() for v in existential})
    assignment = hom.extend(dict(extension))
    produced = assignment.apply_atoms(tgd.head)
    return TriggerApplication(tgd, hom, extension, produced)


def chase(
    tgds: TgdSource,
    instance: Instance,
    factory: Optional[NullFactory] = None,
    dedup: str = "homomorphism",
) -> ChaseResult:
    """``Chase(Sigma, I)``: fire every trigger of every dependency once.

    The result instance contains only the produced facts.  Fresh nulls
    are drawn from ``factory`` (a new one per call by default), seeded
    to avoid every null already present in the input instance.

    ``dedup`` selects the firing granularity: ``"homomorphism"`` (the
    paper's definition — one firing per body homomorphism) or
    ``"frontier"`` (the semi-oblivious chase — one firing per frontier
    binding).  Two body homomorphisms sharing a frontier binding
    impose the *same* constraint, so the semi-oblivious result is the
    canonical solution the recovery semantics reasons over.
    """
    if dedup not in ("homomorphism", "frontier"):
        raise ValueError(f"unknown chase dedup mode {dedup!r}")
    tgd_list = _tgd_list(tgds)
    factory = factory or NullFactory()
    factory.avoid(instance.domain())
    applications: list[TriggerApplication] = []
    produced = InstanceBuilder()
    for tgd in tgd_list:
        key_vars = (
            sorted(tgd.body_variables)
            if dedup == "homomorphism"
            else sorted(tgd.frontier_variables)
        )
        seen: set[tuple[Term, ...]] = set()
        for hom in homomorphisms(tgd.body, instance):
            key = tuple(hom.image(v) for v in key_vars)
            if key in seen:
                continue
            seen.add(key)
            app = _apply_trigger(tgd, hom.restrict(tgd.frontier_variables), factory)
            applications.append(app)
            # The trigger's assignment substitutes every head variable
            # (existentials get fresh nulls), so the produced atoms are
            # facts by construction and skip per-fact re-validation.
            produced.add_validated(app.produced)
    return ChaseResult(instance, produced.build(), applications)


def chase_restricted(
    triggers: Sequence[tuple[TGD, Substitution]],
    instance: Instance,
    factory: Optional[NullFactory] = None,
) -> ChaseResult:
    """``Chase_H``: apply exactly the given ``(tgd, homomorphism)`` triggers.

    Each homomorphism must bind (at least) the non-existential head
    variables of its dependency; the remaining variables receive fresh
    nulls.  This is the restricted chase the paper uses both forwards
    (``Chase_H(Sigma, I)``) and backwards (``Chase_H(Sigma^{-1}, J)``,
    where the triggers come from ``HOM(Sigma, J)``).
    """
    factory = factory or NullFactory()
    factory.avoid(instance.domain())
    applications: list[TriggerApplication] = []
    produced = InstanceBuilder()
    for tgd, hom in triggers:
        app = _apply_trigger(tgd, hom, factory)
        applications.append(app)
        # Facts by construction, as in chase(): every head variable is
        # substituted by the trigger's assignment.
        produced.add_validated(app.produced)
    return ChaseResult(instance, produced.build(), applications)


def oblivious_chase_instance(
    tgds: TgdSource,
    instance: Instance,
    factory: Optional[NullFactory] = None,
) -> Instance:
    """Convenience wrapper returning only the produced instance."""
    return chase(tgds, instance, factory).result


def satisfies(source: Instance, target: Instance, tgds: TgdSource) -> bool:
    """``(I, J) |= Sigma``: model checking for a set of s-t tgds.

    For every homomorphism from a body into the source there must be an
    extension of its frontier bindings mapping the head into the
    target.
    """
    for tgd in _tgd_list(tgds):
        frontier = tgd.frontier_variables
        checked: set[Substitution] = set()
        for hom in homomorphisms(tgd.body, source):
            base = hom.restrict(frontier)
            if base in checked:
                continue
            checked.add(base)
            if not has_homomorphism(tgd.head, target, base=dict(base)):
                return False
    return True


def violated_triggers(
    source: Instance, target: Instance, tgds: TgdSource
) -> list[tuple[TGD, Substitution]]:
    """The triggers witnessing ``(I, J) |=/= Sigma`` (empty when a model).

    Returns one entry per frontier binding whose head has no extension
    into the target — useful in error messages and tests.
    """
    failures: list[tuple[TGD, Substitution]] = []
    for tgd in _tgd_list(tgds):
        frontier = tgd.frontier_variables
        checked: set[Substitution] = set()
        for hom in homomorphisms(tgd.body, source):
            base = hom.restrict(frontier)
            if base in checked:
                continue
            checked.add(base)
            if not has_homomorphism(tgd.head, target, base=dict(base)):
                failures.append((tgd, base))
    return failures
