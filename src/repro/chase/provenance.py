"""Provenance records for chase runs.

Each chase step is a *trigger application*: a tgd together with the
homomorphism that fired it, the fresh-null extension chosen for its
existential variables, and the facts it produced.  The inverse-chase
algorithms need this provenance to relate produced source facts back
to the covering homomorphisms, and the test suite uses it to assert
the paper's justification semantics.
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence

from ..data.atoms import Atom
from ..data.instances import Instance
from ..data.substitutions import Substitution
from ..logic.tgds import TGD


class TriggerApplication:
    """One fired trigger: ``(tgd, homomorphism, extension) -> facts``."""

    __slots__ = ("_tgd", "_homomorphism", "_extension", "_produced")

    def __init__(
        self,
        tgd: TGD,
        homomorphism: Substitution,
        extension: Substitution,
        produced: Sequence[Atom],
    ):
        object.__setattr__(self, "_tgd", tgd)
        object.__setattr__(self, "_homomorphism", homomorphism)
        object.__setattr__(self, "_extension", extension)
        object.__setattr__(self, "_produced", tuple(produced))

    @property
    def tgd(self) -> TGD:
        """The dependency that fired."""
        return self._tgd

    @property
    def homomorphism(self) -> Substitution:
        """The body-matching homomorphism that triggered the tgd."""
        return self._homomorphism

    @property
    def extension(self) -> Substitution:
        """Fresh nulls assigned to the existential variables."""
        return self._extension

    @property
    def produced(self) -> tuple[Atom, ...]:
        """The head facts added by this application."""
        return self._produced

    @property
    def full_assignment(self) -> Substitution:
        """Homomorphism and extension combined (the ``h'`` of the paper)."""
        return self._homomorphism.extend(dict(self._extension))

    def __repr__(self) -> str:
        facts = ", ".join(str(a) for a in self._produced)
        return f"<{self._tgd.name or 'tgd'} @ {self._homomorphism} => {facts}>"

    def __setattr__(self, name, value):  # pragma: no cover - guard
        raise AttributeError("TriggerApplication is immutable")


class ChaseResult:
    """The outcome of a chase run.

    ``result`` contains only the facts *produced* by the chase (the
    target instance of a forward chase; the source instance of an
    inverse chase step), not the input instance — matching the use of
    ``Chase`` in Definition 9 of the paper, where homomorphisms are
    sought from the chased instance alone.
    """

    __slots__ = ("_input", "_result", "_applications")

    def __init__(
        self,
        input_instance: Instance,
        result: Instance,
        applications: Sequence[TriggerApplication],
    ):
        object.__setattr__(self, "_input", input_instance)
        object.__setattr__(self, "_result", result)
        object.__setattr__(self, "_applications", tuple(applications))

    @property
    def input_instance(self) -> Instance:
        """The instance the chase started from."""
        return self._input

    @property
    def result(self) -> Instance:
        """All facts produced by the chase."""
        return self._result

    @property
    def applications(self) -> tuple[TriggerApplication, ...]:
        """The trigger applications, in execution order."""
        return self._applications

    def applications_of(self, tgd: TGD) -> Iterator[TriggerApplication]:
        """The applications that fired a specific dependency."""
        return (app for app in self._applications if app.tgd == tgd)

    def producers_of(self, fact: Atom) -> list[TriggerApplication]:
        """All applications that produced ``fact``."""
        return [app for app in self._applications if fact in app.produced]

    @property
    def combined(self) -> Instance:
        """Input and produced facts together (``I union Chase(Sigma, I)``)."""
        return self._input | self._result

    def __len__(self) -> int:
        return len(self._applications)

    def __repr__(self) -> str:
        return (
            f"ChaseResult({len(self._applications)} applications, "
            f"{len(self._result)} facts)"
        )

    def __setattr__(self, name, value):  # pragma: no cover - guard
        raise AttributeError("ChaseResult is immutable")
