"""Chase engines: standard s-t chase, trigger-restricted chase, disjunctive chase."""

from .disjunctive import DisjunctiveTGD, disjunctive_chase
from .provenance import ChaseResult, TriggerApplication
from .standard import (
    chase,
    chase_restricted,
    oblivious_chase_instance,
    satisfies,
    violated_triggers,
)

__all__ = [
    "ChaseResult",
    "DisjunctiveTGD",
    "TriggerApplication",
    "chase",
    "chase_restricted",
    "disjunctive_chase",
    "oblivious_chase_instance",
    "satisfies",
    "violated_triggers",
]
