"""A disjunctive chase for target-to-source recovery mappings.

The inverse-mapping literature the paper compares against (maximum
recovery, extended recovery) expresses inverses as target-to-source
dependencies whose heads may be *disjunctions* of conjunctions, e.g.::

    S(x) -> R(x) \\/ M(x)

Chasing a target instance with such a mapping yields a *set* of
possible source instances — one per combination of disjunct choices.
Because the dependencies run strictly from the target schema to the
source schema, no produced fact can re-trigger a dependency, so a
single pass over all triggers terminates, mirroring
:mod:`repro.chase.standard`.

The number of results is exponential in the number of triggers with
more than one disjunct; :func:`disjunctive_chase` accepts a limit and
raises :class:`~repro.errors.BudgetExceededError` beyond it.
"""

from __future__ import annotations

from itertools import product
from typing import Iterable, Optional, Sequence

from ..data.atoms import Atom, atoms_variables
from ..data.instances import Instance
from ..data.substitutions import Substitution
from ..data.terms import NullFactory, Term, Variable
from ..errors import BudgetExceededError, DependencyError
from ..logic.homomorphisms import homomorphisms


class DisjunctiveTGD:
    """A dependency ``body -> head_1 \\/ ... \\/ head_k``.

    Each ``head_i`` is a conjunction of atoms; variables occurring in a
    head but not in the body are existentially quantified within that
    disjunct.  A plain tgd is the ``k = 1`` special case.
    """

    __slots__ = ("_body", "_disjuncts", "_name")

    def __init__(
        self,
        body: Sequence[Atom],
        disjuncts: Sequence[Sequence[Atom]],
        name: Optional[str] = None,
    ):
        body = tuple(body)
        cleaned = tuple(tuple(d) for d in disjuncts)
        if not body:
            raise DependencyError("a disjunctive tgd needs a non-empty body")
        if not cleaned or any(not d for d in cleaned):
            raise DependencyError("every disjunct must be a non-empty conjunction")
        object.__setattr__(self, "_body", body)
        object.__setattr__(self, "_disjuncts", cleaned)
        object.__setattr__(self, "_name", name)

    @property
    def body(self) -> tuple[Atom, ...]:
        return self._body

    @property
    def disjuncts(self) -> tuple[tuple[Atom, ...], ...]:
        return self._disjuncts

    @property
    def name(self) -> Optional[str]:
        return self._name

    @property
    def body_variables(self) -> set[Variable]:
        return atoms_variables(self._body)

    @property
    def is_plain(self) -> bool:
        """True when there is a single disjunct (an ordinary tgd)."""
        return len(self._disjuncts) == 1

    def __repr__(self) -> str:
        body = ", ".join(str(a) for a in self._body)
        heads = " \\/ ".join(
            "(" + ", ".join(str(a) for a in d) + ")" for d in self._disjuncts
        )
        label = f"{self._name}: " if self._name else ""
        return f"{label}{body} -> {heads}"

    def __setattr__(self, name, value):  # pragma: no cover - guard
        raise AttributeError("DisjunctiveTGD is immutable")


def _trigger_options(
    dep: DisjunctiveTGD,
    instance: Instance,
    factory: NullFactory,
) -> list[list[frozenset[Atom]]]:
    """For each trigger of ``dep``, the produced fact sets per disjunct."""
    options: list[list[frozenset[Atom]]] = []
    body_vars = sorted(dep.body_variables)
    seen: set[tuple[Term, ...]] = set()
    for hom in homomorphisms(dep.body, instance):
        key = tuple(hom.image(v) for v in body_vars)
        if key in seen:
            continue
        seen.add(key)
        per_disjunct: list[frozenset[Atom]] = []
        for disjunct in dep.disjuncts:
            existential = sorted(atoms_variables(disjunct) - set(hom.keys()))
            extension = Substitution({v: factory.fresh() for v in existential})
            assignment = hom.extend(dict(extension))
            per_disjunct.append(frozenset(assignment.apply_atoms(disjunct)))
        options.append(per_disjunct)
    return options


def disjunctive_chase(
    dependencies: Iterable[DisjunctiveTGD],
    instance: Instance,
    factory: Optional[NullFactory] = None,
    max_results: int = 4096,
) -> list[Instance]:
    """All source instances obtainable by one choice per trigger.

    Returns one instance per combination of disjunct choices across all
    triggers of all dependencies, deduplicated.  An instance with no
    triggers yields the single empty instance (chasing added nothing).

    :raises BudgetExceededError: when the number of combinations
        exceeds ``max_results``.
    """
    factory = factory or NullFactory()
    factory.avoid(instance.domain())
    all_options: list[list[frozenset[Atom]]] = []
    for dep in dependencies:
        all_options.extend(_trigger_options(dep, instance, factory))

    total = 1
    for option in all_options:
        total *= len(option)
        if total > max_results:
            raise BudgetExceededError("disjunctive chase results", max_results)

    results: list[Instance] = []
    seen: set[frozenset[Atom]] = set()
    for combination in product(*all_options):
        facts: set[Atom] = set()
        for chosen in combination:
            facts |= chosen
        frozen = frozenset(facts)
        if frozen not in seen:
            seen.add(frozen)
            results.append(Instance(frozen))
    return results
