"""A seeded chaos-engineering harness for the recovery guarantees.

The checkpoint/resume layer and the hardened executor make strong
promises: *any* crash-and-resume schedule yields results bit-identical
to an uninterrupted run, with parity-clean metrics.  Promises like
that rot unless something keeps breaking the system on purpose — this
module is that something.

A :class:`FaultSchedule` expands a seed into a deterministic list of
:class:`Fault` events drawn from five kinds:

* ``crash``             — the process "dies" at a covering boundary
  (no error-path save runs; only cadenced snapshots survive, exactly
  like a SIGKILL between fsyncs);
* ``corrupt_checkpoint``— bytes of the snapshot file are flipped
  before the next lineage resumes, forcing the corruption detector and
  the cold-start fallback;
* ``clock_skew``        — the checkpoint manager's monotonic clock
  jumps forward or backward, destabilizing the save cadence (and, when
  the run carries a ``Deadline``, its expiry);
* ``kill_worker``       — a process-pool worker calls ``os._exit``
  mid-chunk (executor heartbeat / orphan-reassignment path);
* ``delay_chunk``       — a chunk stalls long enough to trip the
  per-chunk timeout and retry path;
* ``pickle_failure``    — the worker raises a ``PicklingError``,
  driving the executor's deterministic in-process degrade.

:func:`chaos_run` replays such a schedule against any checkpointable
computation, restarting it lineage after lineage until one completes,
and reports what happened.  The harness is deliberately generic — it
receives the computation as a callable taking the
:class:`~repro.resilience.checkpoint.CheckpointManager` — so this
module never imports :mod:`repro.core` and the package layering
(``core → resilience``) stays acyclic.

Crashes are injected at covering boundaries (the manager's ``due()``
probe), which is exactly the granularity at which durability is
promised: work inside a half-finished covering is lost by design and
redone on resume, so from the outside a mid-covering crash is
indistinguishable from a crash at the previous boundary.

The executor fault hooks (:class:`KillWorkerOnce`,
:class:`DelayChunkOnce`, :class:`FailPickleOnce`) are top-level
picklable classes using an exclusive-create flag file to fire exactly
once across a process pool — the same idiom the fault-injection test
suite established.
"""

from __future__ import annotations

import os
import pickle
import random
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Sequence

from ..observability.metrics import METRICS
from .checkpoint import CheckpointManager
from .deadline import Deadline

#: The full fault vocabulary.  ``crash``/``corrupt_checkpoint``/
#: ``clock_skew`` are harness-level and run anywhere;
#: ``kill_worker``/``delay_chunk``/``pickle_failure`` act on the
#: parallel executor and need the run to use one.
FAULT_KINDS = (
    "crash",
    "corrupt_checkpoint",
    "clock_skew",
    "kill_worker",
    "delay_chunk",
    "pickle_failure",
)

#: The kinds meaningful for a serial (in-process) run.
SERIAL_FAULT_KINDS = ("crash", "corrupt_checkpoint", "clock_skew")


class InjectedCrash(Exception):
    """A simulated process death, raised at a covering boundary.

    Deliberately *not* a :class:`~repro.errors.ReproError`: nothing in
    the library catches it, so it unwinds through every layer without
    triggering the error-path snapshot — the durable state is whatever
    the last cadenced save wrote, exactly as after a real SIGKILL.
    """


@dataclass(frozen=True)
class Fault:
    """One scheduled fault event.

    ``at`` parameterizes *when* the fault fires: the covering boundary
    for ``crash``, the lineage index for the others.  ``param`` is the
    kind-specific magnitude (bytes to flip, seconds of skew/delay).
    """

    kind: str
    at: int
    param: float = 0.0


class FaultSchedule:
    """A seed expanded into a deterministic fault sequence.

    Equal seeds (and knobs) produce equal schedules — byte for byte,
    process for process — which is what makes a chaos failure
    reproducible from its seed alone.
    """

    def __init__(
        self,
        seed: int,
        *,
        kinds: Sequence[str] = SERIAL_FAULT_KINDS,
        max_crashes: int = 3,
        horizon: int = 10,
    ):
        for kind in kinds:
            if kind not in FAULT_KINDS:
                raise ValueError(f"unknown fault kind {kind!r}")
        self.seed = seed
        rng = random.Random(seed)
        faults: list[Fault] = []
        crashes = rng.randint(1, max(max_crashes, 1))
        # Crash boundaries are drawn without replacement and sorted so
        # each lineage crashes strictly later than the one before —
        # progress is monotone and the run provably terminates.
        if "crash" in kinds:
            boundaries = sorted(
                rng.sample(range(horizon), min(crashes, horizon))
            )
            faults.extend(Fault("crash", at) for at in boundaries)
        for lineage in range(1, crashes + 1):
            if "corrupt_checkpoint" in kinds and rng.random() < 0.35:
                faults.append(
                    Fault("corrupt_checkpoint", lineage, rng.randint(1, 8))
                )
            if "clock_skew" in kinds and rng.random() < 0.35:
                faults.append(
                    Fault("clock_skew", lineage, rng.uniform(-30.0, 30.0))
                )
            for kind in ("kill_worker", "delay_chunk", "pickle_failure"):
                if kind in kinds and rng.random() < 0.4:
                    faults.append(Fault(kind, lineage, rng.uniform(0.05, 0.2)))
        #: Save cadence for the run, drawn so schedules exercise both
        #: save-every-boundary and lose-progress-since-last-save.
        self.every_ms = rng.choice([0.0001, 0.0001, 20.0, 200.0])
        self.faults = tuple(faults)

    def crashes(self) -> list[Fault]:
        return [f for f in self.faults if f.kind == "crash"]

    def lineage_faults(self, lineage: int, kind: str) -> list[Fault]:
        return [
            f for f in self.faults if f.kind == kind and f.at == lineage
        ]

    def __repr__(self) -> str:
        return (
            f"FaultSchedule(seed={self.seed}, every_ms={self.every_ms}, "
            f"faults={list(self.faults)})"
        )


class ChaoticCheckpointManager(CheckpointManager):
    """A checkpoint manager that dies on schedule.

    Counts covering boundaries via the ``due()`` probe (called exactly
    once per completed covering) and raises :class:`InjectedCrash`
    once the scheduled boundary is crossed.  Everything else — saves,
    validation, resume — is the production manager, which is the point:
    chaos must exercise the real code.
    """

    def __init__(self, path, *, crash_after: Optional[int] = None, **kwargs):
        super().__init__(path, **kwargs)
        self.crash_after = crash_after
        self.boundaries_seen = 0

    def due(self) -> bool:
        self.boundaries_seen += 1
        if (
            self.crash_after is not None
            and self.boundaries_seen > self.crash_after
        ):
            raise InjectedCrash(
                f"injected crash at covering boundary {self.boundaries_seen}"
            )
        return super().due()


def corrupt_snapshot(path, rng: random.Random, flips: int = 3) -> bool:
    """Flip ``flips`` random bytes of a snapshot file in place.

    Returns whether anything was corrupted (the file may not exist if
    the crashed lineage never reached a save).
    """
    try:
        with open(path, "rb") as handle:
            data = bytearray(handle.read())
    except OSError:
        return False
    if not data:
        return False
    for _ in range(max(int(flips), 1)):
        data[rng.randrange(len(data))] ^= 0xFF
    with open(path, "wb") as handle:
        handle.write(data)
    return True


class _SkewedClock:
    """A monotonic clock whose readings jump by a scheduled offset."""

    def __init__(self, skew_s: float):
        self.skew_s = skew_s
        self._calls = 0

    def __call__(self) -> float:
        self._calls += 1
        # Let the first readings pass unskewed so the jump lands
        # mid-run, where cadence arithmetic is most easily confused.
        offset = self.skew_s if self._calls > 2 else 0.0
        return time.monotonic() + offset


# -- picklable executor fault hooks (flag-file claimed, fire once) ----------


class _OneShot:
    """Base for hooks that must fire exactly once across a process pool.

    ``os.open(O_CREAT | O_EXCL)`` is the atomic claim: the first worker
    (in whichever process) to create the flag file wins and fires; all
    later invocations see ``FileExistsError`` and no-op.
    """

    def __init__(self, flag_path: str):
        self.flag_path = flag_path

    def _claim(self) -> bool:
        try:
            fd = os.open(self.flag_path, os.O_CREAT | os.O_EXCL)
        except FileExistsError:
            return False
        os.close(fd)
        return True

    def fire(self) -> None:  # pragma: no cover - overridden
        raise NotImplementedError

    def __call__(self, chunk) -> None:
        if self._claim():
            self.fire()


class KillWorkerOnce(_OneShot):
    """Kill the hosting worker process outright (``os._exit``)."""

    def fire(self) -> None:
        os._exit(1)


class DelayChunkOnce(_OneShot):
    """Stall one chunk, e.g. past ``CONFIG.chunk_timeout_s``."""

    def __init__(self, flag_path: str, delay_s: float):
        super().__init__(flag_path)
        self.delay_s = delay_s

    def fire(self) -> None:
        time.sleep(self.delay_s)


class FailPickleOnce(_OneShot):
    """Raise a ``PicklingError``, as a poisoned payload would."""

    def fire(self) -> None:
        raise pickle.PicklingError("chaos: injected pickling failure")


@dataclass
class ChaosReport:
    """What a :func:`chaos_run` did and how the system responded."""

    result: Any = None
    lineages: int = 0
    crashes: int = 0
    corruptions: int = 0
    skews: int = 0
    resume_outcomes: list = field(default_factory=list)
    #: METRICS delta of the final (completing) lineage only — the one
    #: whose counters the parity property compares against an
    #: uninterrupted run.
    final_delta: dict = field(default_factory=dict)

    @property
    def completed_from_snapshot(self) -> bool:
        return bool(
            self.resume_outcomes
        ) and self.resume_outcomes[-1] in ("resumed", "complete")


def chaos_run(
    run: Callable[[CheckpointManager], Any],
    *,
    schedule: FaultSchedule,
    checkpoint_path,
    deadline: Optional[Deadline] = None,
    max_lineages: int = 64,
) -> ChaosReport:
    """Drive ``run`` through a fault schedule until a lineage completes.

    ``run`` is the computation under test: a callable that accepts a
    :class:`CheckpointManager` and returns its final result — e.g.
    ``lambda mgr: inverse_chase(mapping, target, checkpoint=mgr)``.
    Every lineage gets a fresh manager over the same snapshot path
    (``resume=True`` from the second lineage on); scheduled faults are
    applied around it.  ``deadline``, when given, is shared across
    lineages and skewed by ``clock_skew`` faults, so deadline expiry
    under a warped clock is exercised too.

    Raises ``RuntimeError`` after ``max_lineages`` restarts — a chaos
    schedule must always converge, because crash boundaries are
    strictly increasing and every other fault degrades to a cold start
    at worst.
    """
    crashes = schedule.crashes()
    report = ChaosReport()
    rng = random.Random(schedule.seed ^ 0xC4A05)
    for lineage in range(max_lineages):
        report.lineages = lineage + 1
        crash_after = (
            crashes[lineage].at if lineage < len(crashes) else None
        )
        clock: Callable[[], float] = time.monotonic
        skews = schedule.lineage_faults(lineage, "clock_skew")
        if skews:
            report.skews += len(skews)
            clock = _SkewedClock(skews[0].param)
            if deadline is not None and deadline._expires_at is not None:
                # Skew the deadline's absolute expiry by the same jump
                # (both are monotonic seconds): a backward jump expires
                # it early, a forward one extends it — either way the
                # run must stay correct, merely differently bounded.
                deadline._expires_at += skews[0].param
        manager = ChaoticCheckpointManager(
            checkpoint_path,
            every_ms=schedule.every_ms,
            resume=lineage > 0,
            crash_after=crash_after,
            clock=clock,
        )
        baseline = METRICS.snapshot()
        try:
            report.result = run(manager)
        except InjectedCrash:
            report.crashes += 1
            report.resume_outcomes.append(manager.resume_outcome)
            for fault in schedule.lineage_faults(lineage + 1, "corrupt_checkpoint"):
                if corrupt_snapshot(checkpoint_path, rng, fault.param):
                    report.corruptions += 1
            continue
        report.resume_outcomes.append(manager.resume_outcome)
        report.final_delta = METRICS.delta_since(baseline)
        return report
    raise RuntimeError(
        f"chaos schedule did not converge in {max_lineages} lineages: "
        f"{schedule!r}"
    )
