"""Resource governance & fault tolerance for the intractable paths.

The paper's Section 5 lower bounds (J-validity NP-complete, Q-certainty
coNP-complete) mean every top-level operation of this library can blow
up on adversarial inputs.  This package is the answer:

* :class:`~repro.resilience.deadline.Deadline` — composable, picklable
  wall-clock / step / memory budgets, checked cooperatively inside the
  covering enumeration, the homomorphism engine, the inverse chase,
  certainty and repair;
* :class:`~repro.errors.DeadlineExceededError` — expiry with partial
  progress attached (covers seen, recoveries emitted so far);
* :class:`~repro.resilience.anytime.AnytimeResult` — the tagged output
  of ``mode="degrade"`` runs, which escalate down a ladder of cheaper
  semantics (full enumeration → minimal covers → the PTIME Section 6.1
  constructions) instead of failing.

The executor-level fault tolerance (per-chunk timeouts, bounded retry,
worker-fault recovery, fault injection) lives with the executor in
:mod:`repro.engine.executor`; this package holds the algorithmic side.

This package deliberately imports only :mod:`repro.errors` and
:mod:`repro.engine` so that :mod:`repro.core` and :mod:`repro.logic`
can depend on it without cycles.
"""

from .anytime import AnytimeResult, Rung, Status
from .deadline import Deadline

__all__ = ["AnytimeResult", "Deadline", "Rung", "Status"]
