"""Resource governance & fault tolerance for the intractable paths.

The paper's Section 5 lower bounds (J-validity NP-complete, Q-certainty
coNP-complete) mean every top-level operation of this library can blow
up on adversarial inputs.  This package is the answer:

* :class:`~repro.resilience.deadline.Deadline` — composable, picklable
  wall-clock / step / memory budgets, checked cooperatively inside the
  covering enumeration, the homomorphism engine, the inverse chase,
  certainty and repair;
* :class:`~repro.errors.DeadlineExceededError` — expiry with partial
  progress attached (covers seen, recoveries emitted so far);
* :class:`~repro.resilience.anytime.AnytimeResult` — the tagged output
  of ``mode="degrade"`` runs, which escalate down a ladder of cheaper
  semantics (full enumeration → minimal covers → the PTIME Section 6.1
  constructions) instead of failing;
* :class:`~repro.resilience.checkpoint.CheckpointManager` — durable,
  versioned snapshots of resumable enumeration state, so a crash or
  restart costs the delta since the last save instead of the run;
* :mod:`~repro.resilience.chaos` — a seeded fault-schedule harness
  that injects worker kills, delays, checkpoint corruption, clock skew
  and pickling failures to *prove* the recovery guarantees hold.

The executor-level fault tolerance (per-chunk timeouts, bounded retry,
worker-fault recovery, heartbeat crash detection, fault injection)
lives with the executor in :mod:`repro.engine.executor`; this package
holds the algorithmic side.

This package deliberately imports only :mod:`repro.errors`,
:mod:`repro.engine` and :mod:`repro.observability` so that
:mod:`repro.core` and :mod:`repro.logic` can depend on it without
cycles.
"""

from .anytime import AnytimeResult, Rung, Status
from .chaos import (
    FAULT_KINDS,
    SERIAL_FAULT_KINDS,
    ChaosReport,
    Fault,
    FaultSchedule,
    InjectedCrash,
    chaos_run,
)
from .checkpoint import (
    SEMANTIC_COUNTERS,
    SNAPSHOT_MAGIC,
    SNAPSHOT_VERSION,
    CheckpointManager,
    instance_fingerprint,
    mapping_fingerprint,
    options_fingerprint,
    read_snapshot,
    write_snapshot,
)
from .deadline import Deadline

__all__ = [
    "AnytimeResult",
    "ChaosReport",
    "CheckpointManager",
    "Deadline",
    "FAULT_KINDS",
    "Fault",
    "FaultSchedule",
    "InjectedCrash",
    "Rung",
    "SEMANTIC_COUNTERS",
    "SERIAL_FAULT_KINDS",
    "SNAPSHOT_MAGIC",
    "SNAPSHOT_VERSION",
    "Status",
    "chaos_run",
    "instance_fingerprint",
    "mapping_fingerprint",
    "options_fingerprint",
    "read_snapshot",
    "write_snapshot",
]
