"""Durable, versioned snapshots for crash-safe long recoveries.

The hard paths of this library — covering enumeration, the inverse
chase, certain-answer evaluation — are worst-case exponential, so
production runs are *long*.  Before this module, any worker crash, OOM
kill or process restart discarded all progress; the only safety net
was the in-memory degradation ladder.  A :class:`CheckpointManager`
closes that gap: the enumeration layers periodically serialize their
resumable state into a snapshot file, and a restarted process picks up
from the last completed covering instead of from zero.

Snapshot format (version 1)
---------------------------

A snapshot is a UTF-8 text file of JSON lines:

* a **header** line — magic, format version, snapshot kind, the
  mapping/target/options fingerprints that scope it, the live
  ``Instance.epoch`` at save time, and whether the run completed;
* one **record** line per named payload — the payload pickled and
  base64-encoded, with a CRC-32 checksum of the raw pickle bytes;
* a **footer** line carrying the record count.

Writes are atomic: the snapshot is written to a temporary file in the
same directory, flushed and fsynced, then moved over the destination
with ``os.replace``.  A crash mid-write can therefore never destroy
the previous good snapshot — the worst case is losing the delta since
the last save.

Validation on resume
--------------------

``load`` re-reads and re-checksums every record and raises
:class:`~repro.errors.CheckpointCorruptError` on any structural or
checksum failure, and :class:`~repro.errors.CheckpointMismatchError`
when a structurally-valid snapshot belongs to a different computation
(different mapping, target, options or format version).  The
``begin`` entry point used by the enumeration layers converts both
into a **cold start** (returning ``None``) while counting the event —
a bad checkpoint costs the saved progress, never correctness.

Epochs vs fingerprints: ``Instance.epoch`` is process-local, so it can
only authenticate a snapshot within the process that wrote it.  Across
process restarts — the whole point of durability — scoping rests on
content fingerprints (:func:`instance_fingerprint`,
:func:`mapping_fingerprint`); the stored epoch is kept for
observability and for the in-process fast path where matching epochs
prove the target is the very same object.

Compatibility policy
--------------------

``SNAPSHOT_VERSION`` names the on-disk format.  A reader accepts only
its own version: the state inside a snapshot (enumeration frontiers,
verdict caches) is tightly coupled to the algorithms that wrote it, so
cross-version resume would be false economy.  Bumping the version is
the explicit signal that old snapshots are cold-start-only — which is
always safe, because a snapshot is a pure accelerator, never the
source of truth.

This module deliberately knows nothing about coverings or recoveries:
payloads are opaque named blobs.  The enumeration layers
(:mod:`repro.core.inverse_chase`) decide what state to store and how
to splice it back in, keeping the dependency direction
``core → resilience`` intact.
"""

from __future__ import annotations

import base64
import contextlib
import gc
import hashlib
import json
import os
import pickle
import tempfile
import time
import zlib
from typing import Callable, Optional

from ..errors import CheckpointCorruptError, CheckpointMismatchError
from ..observability.metrics import METRICS
from ..observability.spans import TRACER

SNAPSHOT_MAGIC = "repro-checkpoint"
SNAPSHOT_VERSION = 1

#: Counters whose totals are part of a run's *semantic* outcome — the
#: ones the chaos suite asserts parity on.  A snapshot stores their
#: deltas since the run began; resuming merges the delta back, so a
#: crashed-and-resumed lineage reports the same totals as an
#: uninterrupted run.  (Work counters like ``covers_enumerated`` are
#: deliberately excluded: the resume re-walks the enumeration tree to
#: its frontier, regenerating them exactly.)
SEMANTIC_COUNTERS = (
    "coverings_evaluated",
    "recoveries_emitted",
    "justification_hits",
    "justification_misses",
)


def _sha256(parts) -> str:
    digest = hashlib.sha256()
    for part in parts:
        digest.update(part.encode("utf-8"))
        digest.update(b"\x00")
    return digest.hexdigest()


#: Fingerprints memoized by ``Instance.epoch``: epochs are
#: process-unique construction stamps and instances are immutable, so
#: an epoch hit can only ever serve the very object it was computed
#: for.  Bounded by wholesale clearing — entries are tiny but the
#: instances they describe may be long gone.
_FINGERPRINT_CACHE: dict[int, str] = {}
_FINGERPRINT_CACHE_MAX = 256


def instance_fingerprint(instance) -> str:
    """A content fingerprint of an instance, stable across processes.

    Hashes the sorted textual facts, so equal fact sets fingerprint
    equally no matter which process (or which construction path) built
    them — unlike ``Instance.epoch``, which is a process-local stamp.
    Memoized per epoch: repeated checkpointed runs against the same
    instance (chaos lineages, benchmark sweeps) pay the O(n log n)
    stringify-and-sort once.
    """
    epoch = getattr(instance, "epoch", None)
    if epoch is not None:
        cached = _FINGERPRINT_CACHE.get(epoch)
        if cached is not None:
            return cached
    fingerprint = _sha256(sorted(str(fact) for fact in instance.facts))
    if epoch is not None:
        if len(_FINGERPRINT_CACHE) >= _FINGERPRINT_CACHE_MAX:
            _FINGERPRINT_CACHE.clear()
        _FINGERPRINT_CACHE[epoch] = fingerprint
    return fingerprint


def mapping_fingerprint(mapping) -> str:
    """A content fingerprint of a mapping's dependencies."""
    return _sha256(sorted(repr(tgd) for tgd in mapping))


def options_fingerprint(options: dict) -> str:
    """Fingerprint of the option values that change enumeration state.

    Two runs may only share a snapshot when they would enumerate the
    same sequence of coverings and apply the same gates; the caller
    passes exactly the options that influence that.
    """
    return _sha256(f"{k}={options[k]!r}" for k in sorted(options))


# -- the on-disk format ------------------------------------------------------


@contextlib.contextmanager
def _gc_paused():
    """Suspend (and on exit restore) the cyclic garbage collector.

    Snapshot encoding allocates megabytes of short-lived buffers; the
    collections that burst triggers scan the caller's entire live heap
    — for a large enumeration, hundreds of milliseconds spread over the
    run.  Nothing encoding allocates outlives the save, so deferring
    collection is free.  Nested pauses are fine: only the outermost
    re-enables.
    """
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        yield
    finally:
        if was_enabled:
            gc.enable()


def encode_record(name: str, payload) -> str:
    """One snapshot record line: the payload pickled, deflated, CRC'd.

    Exposed separately from :func:`write_snapshot` so a caller can
    encode an expensive payload once and reuse the line across saves
    (see ``CheckpointManager.save``'s ``tokens``).

    The pickle is zlib-compressed (fastest level — pickled term graphs
    deflate 3-4x, and the time saved base64-ing and fsyncing the
    smaller payload covers the compression cost) and the checksum is
    taken over the stored bytes, so corruption is detected before any
    decompression is attempted.

    Collection is paused for the whole encode: a multi-megabyte
    snapshot allocates a large pickle memo, compression and base64
    buffers, and the garbage collections that burst triggers scan the
    caller's entire (large, live) enumeration heap — observed to double
    encode latency and to keep slowing the run *after* the save
    returns.  Nothing allocated here survives except the returned line.
    """
    with _gc_paused():
        raw = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        packed = zlib.compress(raw, 1)
        return json.dumps(
            {
                "record": name,
                "crc32": zlib.crc32(packed),
                "z64": base64.b64encode(packed).decode("ascii"),
            },
            sort_keys=True,
        )


def write_snapshot(
    path,
    *,
    kind: str,
    scope: dict,
    payloads: dict,
    complete: bool = False,
    encoded: Optional[dict] = None,
) -> int:
    """Atomically write one snapshot; returns the bytes written.

    ``scope`` holds the fingerprints (and the live epoch) that
    authenticate the snapshot on resume; ``payloads`` maps record names
    to picklable state blobs.  ``encoded`` optionally maps a payload
    name to its pre-encoded record line (from :func:`encode_record`),
    skipping the pickle for that payload — the write itself still
    rewrites the whole file atomically.
    """
    header = {
        "magic": SNAPSHOT_MAGIC,
        "version": SNAPSHOT_VERSION,
        "kind": kind,
        "complete": bool(complete),
        "saved_at_unix": round(time.time(), 3),
        **scope,
    }
    lines = [json.dumps(header, sort_keys=True)]
    for name in sorted(payloads):
        if encoded is not None and name in encoded:
            lines.append(encoded[name])
        else:
            lines.append(encode_record(name, payloads[name]))
    lines.append(json.dumps({"footer": len(payloads)}, sort_keys=True))
    data = ("\n".join(lines) + "\n").encode("utf-8")

    path = os.fspath(path)
    directory = os.path.dirname(os.path.abspath(path))
    fd, tmp_path = tempfile.mkstemp(
        prefix=os.path.basename(path) + ".tmp.", dir=directory
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise
    return len(data)


def read_snapshot(path) -> tuple[dict, dict]:
    """Read and validate a snapshot: ``(header, payloads)``.

    :raises CheckpointCorruptError: on any structural or checksum
        failure — a missing file, a truncated record set, a CRC
        mismatch, undecodable JSON/base64/pickle.
    """
    path = os.fspath(path)
    try:
        text = open(path, "r", encoding="utf-8").read()
    except (OSError, UnicodeDecodeError) as exc:
        raise CheckpointCorruptError(path, f"unreadable: {exc}") from exc
    lines = [line for line in text.splitlines() if line.strip()]
    if not lines:
        raise CheckpointCorruptError(path, "empty file")

    def parse(line: str, what: str) -> dict:
        try:
            parsed = json.loads(line)
        except ValueError as exc:
            raise CheckpointCorruptError(path, f"undecodable {what}") from exc
        if not isinstance(parsed, dict):
            raise CheckpointCorruptError(path, f"malformed {what}")
        return parsed

    header = parse(lines[0], "header")
    if header.get("magic") != SNAPSHOT_MAGIC:
        raise CheckpointCorruptError(path, "not a repro checkpoint")
    footer = parse(lines[-1], "footer")
    if "footer" not in footer:
        raise CheckpointCorruptError(path, "missing footer (truncated write?)")
    records = lines[1:-1]
    if footer["footer"] != len(records):
        raise CheckpointCorruptError(
            path,
            f"footer promises {footer['footer']} record(s), found {len(records)}",
        )
    payloads: dict = {}
    for line in records:
        entry = parse(line, "record")
        name = entry.get("record")
        compressed = "z64" in entry
        body_key = "z64" if compressed else "b64"
        if not isinstance(name, str) or "crc32" not in entry or body_key not in entry:
            raise CheckpointCorruptError(path, "malformed record")
        try:
            raw = base64.b64decode(entry[body_key], validate=True)
        except (ValueError, TypeError) as exc:
            raise CheckpointCorruptError(
                path, f"record {name!r} payload undecodable"
            ) from exc
        if zlib.crc32(raw) != entry["crc32"]:
            raise CheckpointCorruptError(path, f"record {name!r} checksum mismatch")
        if compressed:
            try:
                raw = zlib.decompress(raw)
            except zlib.error as exc:
                raise CheckpointCorruptError(
                    path, f"record {name!r} does not inflate: {exc}"
                ) from exc
        try:
            payloads[name] = pickle.loads(raw)
        except Exception as exc:
            raise CheckpointCorruptError(
                path, f"record {name!r} does not unpickle: {exc}"
            ) from exc
    return header, payloads


# -- the manager -------------------------------------------------------------


class CheckpointManager:
    """Cadenced durable snapshots for one resumable computation.

    Constructed once per run (typically from the CLI flags) and handed
    to the enumeration layer, which calls :meth:`begin` before
    enumerating, :meth:`due`/:meth:`save` at safe boundaries, and lets
    :meth:`begin`'s returned payloads seed its state when resuming.

    ``resume=False`` (the default) ignores any existing snapshot and
    overwrites it on the first save; ``resume=True`` validates the
    existing snapshot and returns its payloads — or ``None`` for a cold
    start when the file is absent, corrupt, or belongs to a different
    computation (mismatch).  Both degraded cases are counted
    (``checkpoint_corruptions`` / ``checkpoint_mismatches``) so chaos
    runs can assert the safety net actually engaged.
    """

    def __init__(
        self,
        path,
        *,
        every_ms: float = 1000.0,
        resume: bool = False,
        clock: Callable[[], float] = time.monotonic,
    ):
        if every_ms <= 0:
            raise ValueError("every_ms must be positive")
        self.path = os.fspath(path)
        self.every_ms = float(every_ms)
        self.resume = bool(resume)
        self._clock = clock
        self._last_save: Optional[float] = None
        self._kind: Optional[str] = None
        self._scope: dict = {}
        self._baseline: Optional[dict] = None
        #: Encoded-record reuse across saves: name -> (token, line).
        self._encoded_cache: dict = {}
        #: Filled by :meth:`begin` for reporting: "cold", "resumed",
        #: "complete", or the rejection reason.
        self.resume_outcome: str = "cold"

    # -- lifecycle ----------------------------------------------------------

    def begin(
        self, kind: str, *, scope: dict, counters_baseline: Optional[dict] = None
    ) -> Optional[dict]:
        """Open the run; returns the snapshot payloads when resuming.

        ``scope`` carries the fingerprints authenticating the snapshot
        (``mapping_fp``/``target_fp``/``options_fp``) plus the live
        ``epoch``.  ``counters_baseline`` is the METRICS snapshot taken
        at run start; deltas of :data:`SEMANTIC_COUNTERS` are measured
        against it (see :meth:`counters_delta`).
        """
        self._kind = kind
        self._scope = dict(scope)
        self._encoded_cache = {}
        self._baseline = (
            dict(counters_baseline)
            if counters_baseline is not None
            else METRICS.snapshot()
        )
        self._last_save = self._clock()
        if not self.resume:
            return None
        if not os.path.exists(self.path):
            # Nothing to resume from — an ordinary first run, not a
            # degraded one, so no corruption counter.
            self.resume_outcome = "no-snapshot"
            return None
        try:
            with TRACER.span("checkpoint.load"):
                header, payloads = self.load(kind=kind, scope=self._scope)
        except CheckpointCorruptError:
            METRICS.inc("checkpoint_corruptions")
            self.resume_outcome = "rejected-corrupt"
            return None
        except CheckpointMismatchError:
            METRICS.inc("checkpoint_mismatches")
            self.resume_outcome = "rejected-mismatch"
            return None
        METRICS.inc("checkpoint_restores")
        self.resume_outcome = "complete" if header.get("complete") else "resumed"
        payloads["__complete__"] = bool(header.get("complete"))
        return payloads

    def load(self, *, kind: str, scope: dict) -> tuple[dict, dict]:
        """Read the snapshot and verify it belongs to this computation.

        Public for tests and tooling; :meth:`begin` is the forgiving
        wrapper that converts failures into a cold start.
        """
        if not os.path.exists(self.path):
            raise CheckpointCorruptError(self.path, "no such file")
        header, payloads = read_snapshot(self.path)
        checks = [
            ("version", str(SNAPSHOT_VERSION), str(header.get("version"))),
            ("kind", kind, str(header.get("kind"))),
        ]
        # Fingerprints scope the snapshot; the epoch is process-local
        # and deliberately not compared (see the module docstring).
        for field in ("mapping_fp", "target_fp", "options_fp"):
            if field in scope:
                checks.append((field, str(scope[field]), str(header.get(field))))
        for field, expected, found in checks:
            if expected != found:
                raise CheckpointMismatchError(self.path, field, expected, found)
        return header, payloads

    # -- cadence ------------------------------------------------------------

    def due(self) -> bool:
        """Whether the configured interval elapsed since the last save."""
        if self._last_save is None:
            return True
        return (self._clock() - self._last_save) * 1000.0 >= self.every_ms

    # -- persistence --------------------------------------------------------

    def save(
        self,
        payloads: dict,
        *,
        complete: bool = False,
        tokens: Optional[dict] = None,
    ) -> None:
        """Write a snapshot of ``payloads`` atomically (see module docs).

        ``tokens`` optionally maps a payload name to a cheap hashable
        value that uniquely identifies its content within this run
        (e.g. a prefix length of an append-only list).  When the token
        matches the one from the previous save, the already-encoded
        record line is reused instead of re-pickling the payload —
        serialization cost then scales with what *changed* between
        saves, not with total accumulated state.

        A payload value may be a zero-argument callable: it is treated
        as a lazy factory, invoked only when its record actually needs
        encoding.  Combined with a token this makes a cache hit skip
        both the serialization *and* the materialization of bulk state.
        """
        if self._kind is None:
            raise RuntimeError("CheckpointManager.save before begin")
        tokens = tokens or {}
        encoded: dict = {}
        resolved: dict = {}
        # One collector pause spans materialization and every record
        # encode — the factories and pickles allocate only scratch, and
        # letting collections interleave would re-scan the live
        # enumeration heap once per record.
        with _gc_paused():
            for name, value in payloads.items():
                if name in tokens:
                    cached = self._encoded_cache.get(name)
                    if cached is not None and cached[0] == tokens[name]:
                        encoded[name] = cached[1]
                        resolved[name] = None  # line reused; value never read
                        continue
                if callable(value):
                    value = value()
                if name in tokens:
                    line = encode_record(name, value)
                    self._encoded_cache[name] = (tokens[name], line)
                    encoded[name] = line
                resolved[name] = value
        with TRACER.span("checkpoint.save"):
            nbytes = write_snapshot(
                self.path,
                kind=self._kind,
                scope=self._scope,
                payloads=resolved,
                complete=complete,
                encoded=encoded or None,
            )
        self._last_save = self._clock()
        METRICS.inc("checkpoint_saves")
        METRICS.inc("checkpoint_bytes_written", nbytes)

    # -- counters -----------------------------------------------------------

    def counters_delta(self) -> dict:
        """Deltas of the semantic counters since the run's baseline."""
        if self._baseline is None:
            return {}
        now = METRICS.snapshot()
        return {
            name: now.get(name, 0) - self._baseline.get(name, 0)
            for name in SEMANTIC_COUNTERS
            if now.get(name, 0) != self._baseline.get(name, 0)
        }

    def merge_counters(self, saved: Optional[dict]) -> None:
        """Merge a snapshot's semantic-counter deltas into METRICS.

        Called once on resume, *before* any new work: the baseline was
        taken earlier in :meth:`begin`, so subsequent
        :meth:`counters_delta` calls include the merged head plus the
        new tail — exactly what the next snapshot must carry.
        """
        if saved:
            METRICS.merge({name: int(n) for name, n in saved.items() if n})

    def __repr__(self) -> str:
        return (
            f"CheckpointManager({self.path!r}, every_ms={self.every_ms}, "
            f"resume={self.resume})"
        )
