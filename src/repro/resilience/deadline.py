"""Cooperative resource deadlines for the NP-hard paths.

Section 5 of the paper proves the core decision problems intractable
(J-validity is NP-complete, Q-certainty coNP-complete), so every
top-level entry point can run unboundedly on adversarial inputs.  A
:class:`Deadline` bounds that work *cooperatively*: the enumeration
loops of the library (covering enumeration, the homomorphism search,
the inverse chase, the repair search) periodically call
:meth:`Deadline.step` / :meth:`Deadline.check`, and expiry raises
:class:`~repro.errors.DeadlineExceededError` carrying whatever partial
progress the interrupted layer accumulated.

Three independent limits, each optional:

* ``wall_ms``        — wall-clock milliseconds from construction (or
  from the last :meth:`restart`), measured on the monotonic clock;
* ``max_steps``      — cooperative work steps (homomorphism search
  nodes, covering branches, repair candidates, ...): a deterministic
  limit, so tests and reproducible pipelines prefer it;
* ``max_memory_mb``  — an *estimate* of retained bytes, accumulated by
  :meth:`charge_memory` at allocation-heavy sites.

Deadlines are **composable** (:meth:`combined_with` returns a deadline
that trips when either constituent does, while work keeps accruing to
both — e.g. a per-request deadline nested under a global one) and
**picklable**: the wall-clock anchor is an absolute monotonic
timestamp, valid across processes on one machine, so process-pool
workers observe the same expiry as the parent.  Step/memory accounting
performed inside a process worker stays in that worker (exactly like
the engine counters); the parent's own checks still bound the overall
run.
"""

from __future__ import annotations

import time
from typing import Optional, Sequence

from ..observability.metrics import METRICS
from ..errors import DeadlineExceededError

#: The wall clock is consulted only every this many steps: a
#: ``time.monotonic()`` call costs ~50ns, a step increment ~20ns, and
#: the paths being guarded do orders of magnitude more work per step.
_WALL_CHECK_INTERVAL = 64


class Deadline:
    """A composable wall-clock / step / memory budget (see module docs)."""

    __slots__ = (
        "wall_ms",
        "max_steps",
        "max_memory_mb",
        "_expires_at",
        "_steps",
        "_memory_bytes",
        "_parents",
        "_countdown",
    )

    def __init__(
        self,
        wall_ms: Optional[float] = None,
        max_steps: Optional[int] = None,
        max_memory_mb: Optional[float] = None,
        *,
        parents: Sequence["Deadline"] = (),
        _expires_at: Optional[float] = None,
    ):
        if wall_ms is not None and wall_ms < 0:
            raise ValueError("wall_ms must be non-negative")
        if max_steps is not None and max_steps < 0:
            raise ValueError("max_steps must be non-negative")
        if max_memory_mb is not None and max_memory_mb < 0:
            raise ValueError("max_memory_mb must be non-negative")
        self.wall_ms = wall_ms
        self.max_steps = max_steps
        self.max_memory_mb = max_memory_mb
        if _expires_at is not None:
            self._expires_at = _expires_at
        elif wall_ms is not None:
            self._expires_at = time.monotonic() + wall_ms / 1000.0
        else:
            self._expires_at = None
        self._steps = 0
        self._memory_bytes = 0
        self._parents = tuple(parents)
        self._countdown = _WALL_CHECK_INTERVAL

    # -- introspection ---------------------------------------------------------

    @property
    def steps(self) -> int:
        """Cooperative steps charged so far (this object only)."""
        return self._steps

    @property
    def memory_estimate_bytes(self) -> int:
        """Bytes charged so far via :meth:`charge_memory`."""
        return self._memory_bytes

    def remaining_ms(self) -> Optional[float]:
        """Wall-clock milliseconds left, ``None`` when unbounded.

        Composition-aware: the tightest remaining budget among this
        deadline and its parents.
        """
        remaining: Optional[float] = None
        if self._expires_at is not None:
            remaining = max(0.0, (self._expires_at - time.monotonic()) * 1000.0)
        for parent in self._parents:
            theirs = parent.remaining_ms()
            if theirs is not None and (remaining is None or theirs < remaining):
                remaining = theirs
        return remaining

    def expired(self) -> Optional[str]:
        """The description of the tripped limit, or ``None`` when alive."""
        if self._expires_at is not None and time.monotonic() >= self._expires_at:
            return f"wall clock {self.wall_ms}ms"
        if self.max_steps is not None and self._steps >= self.max_steps:
            return f"step budget {self.max_steps}"
        if (
            self.max_memory_mb is not None
            and self._memory_bytes >= self.max_memory_mb * 1024 * 1024
        ):
            return f"memory estimate {self.max_memory_mb}MB"
        for parent in self._parents:
            reason = parent.expired()
            if reason is not None:
                return reason
        return None

    # -- cooperative checks ----------------------------------------------------

    def check(self, what: str = "computation", progress: Optional[dict] = None) -> None:
        """Raise :class:`DeadlineExceededError` if any limit has tripped."""
        reason = self.expired()
        if reason is not None:
            METRICS.inc("deadline_hits")
            raise DeadlineExceededError(what, reason, progress=progress)

    def step(
        self, n: int = 1, what: str = "computation", progress: Optional[dict] = None
    ) -> None:
        """Charge ``n`` cooperative steps, then check the limits.

        The step limit is checked on every call (it must be exact to be
        deterministic); the wall clock only every
        ``_WALL_CHECK_INTERVAL`` steps, keeping the per-step overhead
        to a couple of integer operations.
        """
        self._steps += n
        for parent in self._parents:
            parent._steps += n
        if self.max_steps is not None and self._steps >= self.max_steps:
            METRICS.inc("deadline_hits")
            raise DeadlineExceededError(
                what, f"step budget {self.max_steps}", progress=progress
            )
        for parent in self._parents:
            if parent.max_steps is not None and parent._steps >= parent.max_steps:
                METRICS.inc("deadline_hits")
                raise DeadlineExceededError(
                    what, f"step budget {parent.max_steps}", progress=progress
                )
        self._countdown -= n
        if self._countdown <= 0:
            self._countdown = _WALL_CHECK_INTERVAL
            self.check(what, progress)

    def charge_memory(
        self, nbytes: int, what: str = "computation", progress: Optional[dict] = None
    ) -> None:
        """Charge an allocation estimate, then check the memory limit."""
        self._memory_bytes += nbytes
        for parent in self._parents:
            parent._memory_bytes += nbytes
        if (
            self.max_memory_mb is not None
            and self._memory_bytes >= self.max_memory_mb * 1024 * 1024
        ) or any(
            parent.max_memory_mb is not None
            and parent._memory_bytes >= parent.max_memory_mb * 1024 * 1024
            for parent in self._parents
        ):
            METRICS.inc("deadline_hits")
            raise DeadlineExceededError(
                what, f"memory estimate {self.max_memory_mb}MB", progress=progress
            )

    # -- composition & lifecycle -----------------------------------------------

    def combined_with(self, other: "Deadline") -> "Deadline":
        """A deadline that trips when either constituent does.

        Work charged to the combination also accrues to both
        constituents, so a shared outer deadline keeps its global
        accounting while each call carries its own tighter limit.
        """
        return Deadline(parents=(self, other))

    def __and__(self, other: "Deadline") -> "Deadline":
        return self.combined_with(other)

    def restarted(self) -> "Deadline":
        """A fresh deadline with the same limits, re-anchored to *now*.

        Used by the degradation ladder: each escalation rung receives
        the full configured budget again, so the worst-case total run
        time is ``rungs x wall_ms`` plus the polynomial fallback.
        Parent links are dropped — a restarted deadline is a new,
        independent budget.
        """
        return Deadline(
            wall_ms=self.wall_ms,
            max_steps=self.max_steps,
            max_memory_mb=self.max_memory_mb,
        )

    def __reduce__(self):
        # Preserve the absolute monotonic expiry: on one machine the
        # monotonic clock is system-wide, so workers in a process pool
        # observe the same wall deadline as the parent.
        return (
            _rebuild_deadline,
            (
                self.wall_ms,
                self.max_steps,
                self.max_memory_mb,
                self._expires_at,
                self._steps,
                self._memory_bytes,
                self._parents,
            ),
        )

    def __repr__(self) -> str:
        limits = []
        if self.wall_ms is not None:
            limits.append(f"wall_ms={self.wall_ms}")
        if self.max_steps is not None:
            limits.append(f"max_steps={self.max_steps}")
        if self.max_memory_mb is not None:
            limits.append(f"max_memory_mb={self.max_memory_mb}")
        if self._parents:
            limits.append(f"parents={len(self._parents)}")
        return f"Deadline({', '.join(limits) or 'unbounded'})"


def _rebuild_deadline(
    wall_ms, max_steps, max_memory_mb, expires_at, steps, memory_bytes, parents
) -> Deadline:
    deadline = Deadline(
        wall_ms=wall_ms,
        max_steps=max_steps,
        max_memory_mb=max_memory_mb,
        parents=parents,
        _expires_at=expires_at,
    )
    deadline._steps = steps
    deadline._memory_bytes = memory_bytes
    return deadline
