"""Anytime results: tagged outputs of the degradation ladder.

When an NP-hard entry point runs in ``mode="degrade"``, it no longer
promises the exact answer — it promises *an* answer, tagged with what
it is and which rung of the escalation ladder produced it:

1. ``"enumeration"``         — the requested enumeration finished in
   budget; the result is exact.
2. ``"minimal-covers"``      — the full (``cover_mode="all"``)
   enumeration expired and the minimal-cover enumeration (UCQ-
   equivalent, see :mod:`repro.core.covers`) finished under a
   restarted budget; exact for UCQ purposes.
3. ``"partial-enumeration"`` — the enumeration expired mid-stream; the
   result is the recoveries already emitted.  Each one passed the
   Definition 2 justification gate, so every member is a genuine
   recovery — the *set* is merely incomplete (sound, not complete).
4. ``"tractable"``           — nothing was emitted in budget; fall
   back to the PTIME constructions of Section 6.1 (Theorems 5-7) on
   the maximal uniquely-covered subset.  Exact when Theorem 5's
   preconditions hold, otherwise sound-incomplete.

The ``status`` tag is the contract: ``"exact"`` results equal what the
un-degraded call would have returned (up to UCQ equivalence for rungs
2 and 4/Theorem 5); ``"sound-incomplete"`` results are a subset of it
with the soundness guarantee stated above.
"""

from __future__ import annotations

from typing import Iterator, Literal, Optional

Status = Literal["exact", "sound-incomplete"]
Rung = Literal["enumeration", "minimal-covers", "partial-enumeration", "tractable"]


class AnytimeResult:
    """A value plus the provenance of which ladder rung produced it.

    Behaves like its ``value`` for iteration, length and truthiness,
    so ``for recovery in result`` and ``if result`` read naturally;
    code that needs the guarantee level consults ``status`` / ``rung``.
    """

    __slots__ = ("_value", "_status", "_rung", "_detail", "_progress")

    def __init__(
        self,
        value,
        status: Status,
        rung: Rung,
        detail: str = "",
        progress: Optional[dict] = None,
    ):
        if status not in ("exact", "sound-incomplete"):
            raise ValueError(f"unknown anytime status {status!r}")
        object.__setattr__(self, "_value", value)
        object.__setattr__(self, "_status", status)
        object.__setattr__(self, "_rung", rung)
        object.__setattr__(self, "_detail", detail)
        object.__setattr__(self, "_progress", dict(progress) if progress else {})

    @property
    def value(self):
        """The payload: a recovery list, an answer set, ..."""
        return self._value

    @property
    def status(self) -> Status:
        """``"exact"`` or ``"sound-incomplete"`` (see module docs)."""
        return self._status

    @property
    def rung(self) -> Rung:
        """Which escalation rung answered."""
        return self._rung

    @property
    def detail(self) -> str:
        """Human-readable provenance (which theorem / why degraded)."""
        return self._detail

    @property
    def progress(self) -> dict:
        """Counters accumulated before degradation (covers seen, ...)."""
        return dict(self._progress)

    @property
    def is_exact(self) -> bool:
        return self._status == "exact"

    def __iter__(self) -> Iterator:
        return iter(self._value)

    def __len__(self) -> int:
        return len(self._value)

    def __bool__(self) -> bool:
        return bool(self._value)

    def __contains__(self, item) -> bool:
        return item in self._value

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AnytimeResult):
            return NotImplemented
        return (
            self._value == other._value
            and self._status == other._status
            and self._rung == other._rung
        )

    def __reduce__(self):
        return (
            AnytimeResult,
            (self._value, self._status, self._rung, self._detail, self._progress),
        )

    def __repr__(self) -> str:
        size = len(self._value) if hasattr(self._value, "__len__") else "?"
        return (
            f"AnytimeResult({self._status}, rung={self._rung!r}, size={size})"
        )

    def __setattr__(self, name, value):  # pragma: no cover - guard
        raise AttributeError("AnytimeResult is immutable")
