"""Exporters turning tracer/metrics state into JSON documents and text.

Two consumers share these shapes: the CLI (``--trace`` prints the text
tree, ``--metrics-json PATH`` writes the JSON document) and the
quick_bench harness (which reads per-phase wall times out of the same
span tree instead of running its own stopwatches).
"""

from __future__ import annotations

import json
from typing import Any, Mapping, Optional

from .metrics import METRICS
from .spans import Span, TRACER


def metrics_document(
    counters: Optional[Mapping[str, int]] = None,
    trace: Optional[list[dict[str, Any]]] = None,
    **extra: Any,
) -> dict[str, Any]:
    """The ``--metrics-json`` payload: counters + span tree + metadata."""
    doc: dict[str, Any] = {
        "counters": dict(sorted((counters if counters is not None else METRICS.snapshot()).items())),
        "trace": trace if trace is not None else TRACER.to_dict(),
    }
    doc.update(extra)
    return doc


def write_metrics_json(path: str, **kwargs: Any) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(metrics_document(**kwargs), handle, indent=2, sort_keys=False)
        handle.write("\n")


def format_trace(roots: Optional[list[Span]] = None) -> str:
    """A readable indented rendering of the span forest for ``--trace``."""
    if roots is None:
        roots = TRACER.roots()
    lines: list[str] = ["trace:"]
    if not roots:
        lines.append("  (no spans recorded)")
    for root in roots:
        _format_span(root, lines, depth=1)
    return "\n".join(lines)


def _format_span(span: Span, lines: list[str], depth: int) -> None:
    parts = [f"{span.name}: {span.wall_ms:.2f} ms"]
    if span.count > 1:
        parts.append(f"x{span.count}")
    if span.steps:
        parts.append(f"steps={span.steps}")
    if span.metrics:
        shown = ", ".join(f"{k}={v}" for k, v in sorted(span.metrics.items()))
        parts.append(f"[{shown}]")
    lines.append("  " * depth + " ".join(parts))
    for child in span.children:
        _format_span(child, lines, depth + 1)


def phase_wall_times(trace: list[dict[str, Any]]) -> dict[str, float]:
    """``{name: wall_ms}`` for each top-level phase under each root.

    quick_bench uses this to source BENCH_*.json phase timings from the
    engine's own spans.  Children of the root(s) are the phases; a name
    appearing under several roots accumulates.
    """
    phases: dict[str, float] = {}
    for root in trace:
        for child in root.get("children", ()):  # phases live one level down
            name = child["name"]
            phases[name] = phases.get(name, 0.0) + float(child["wall_ms"])
    return phases
