"""Nestable spans: structured wall-time tracing for the engine's hot paths.

A :class:`Span` records one timed region — name, wall time, an optional
step count, attached metrics deltas, and its children — and the
:class:`Tracer` keeps a per-thread stack of open spans so nesting falls
out of ordinary ``with`` blocks:

    with TRACER.span("inverse_chase.finish") as sp:
        ...
        sp.add_steps(1)

Tracing is off by default.  When disabled, ``span()`` returns a shared
no-op context manager so instrumented hot paths cost one attribute read
and one truthiness check — nothing allocates and no clock is touched.

Two shapes of span exist:

* **plain spans** (the default) appear once per entry in the trace
  tree, like any tracing UI would show them;
* **aggregate spans** (``aggregate=True``) merge repeated entries with
  the same name under the same parent into a single node accumulating
  ``count`` and total ``wall_ms``.  Hot paths that run thousands of
  times per query (per-covering evaluation, per-chunk dispatch) use
  these so a trace stays readable and bounded.

For lazy pipelines — the engine streams coverings and homomorphisms
through generators — a naive ``with span(...)`` around the *consumer*
would bill the producer's suspended time to the wrong node.
:func:`Tracer.traced_iter` wraps an iterator and times each ``next()``
call into an aggregate span instead, so the trace charges exactly the
time spent producing elements.

Worker threads inherit nothing: each thread's spans root at that
thread's own stack, and aggregate roots from all threads merge into
the tracer's shared root list.  This module imports only the stdlib.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Iterable, Iterator, Optional

from .metrics import METRICS


class Span:
    """One timed region of engine work."""

    __slots__ = (
        "name",
        "wall_ms",
        "count",
        "steps",
        "metrics",
        "children",
        "_aggregates",
        "_started",
        "_baseline",
    )

    def __init__(self, name: str) -> None:
        self.name = name
        self.wall_ms = 0.0
        #: Number of entries merged into this node (1 for plain spans).
        self.count = 0
        #: Optional domain-specific progress count (items, coverings…).
        self.steps = 0
        #: Metrics that moved while this span was open (plain spans only).
        self.metrics: dict[str, int] = {}
        self.children: list[Span] = []
        #: name -> child for aggregate children, so repeats merge O(1).
        self._aggregates: dict[str, Span] = {}
        self._started: Optional[float] = None
        self._baseline: Optional[dict[str, int]] = None

    def add_steps(self, amount: int = 1) -> None:
        self.steps += amount

    def child(self, name: str, aggregate: bool = False) -> "Span":
        if aggregate:
            existing = self._aggregates.get(name)
            if existing is not None:
                return existing
            span = Span(name)
            self._aggregates[name] = span
        else:
            span = Span(name)
        self.children.append(span)
        return span

    def to_dict(self) -> dict[str, Any]:
        node: dict[str, Any] = {"name": self.name, "wall_ms": round(self.wall_ms, 3)}
        if self.count > 1:
            node["count"] = self.count
        if self.steps:
            node["steps"] = self.steps
        if self.metrics:
            node["metrics"] = dict(sorted(self.metrics.items()))
        if self.children:
            node["children"] = [c.to_dict() for c in self.children]
        return node


class _NullSpan:
    """The do-nothing span handed out while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> None:
        return None

    def add_steps(self, amount: int = 1) -> None:
        return None


_NULL_SPAN = _NullSpan()


class _SpanContext:
    """Context manager opening/closing one span on the owning thread."""

    __slots__ = ("_tracer", "_name", "_aggregate", "_span")

    def __init__(self, tracer: "Tracer", name: str, aggregate: bool) -> None:
        self._tracer = tracer
        self._name = name
        self._aggregate = aggregate
        self._span: Optional[Span] = None

    def __enter__(self) -> Span:
        self._span = self._tracer._open(self._name, self._aggregate)
        return self._span

    def __exit__(self, *exc: object) -> None:
        if self._span is not None:
            self._tracer._close(self._span)
            self._span = None

    # Convenience so ``with TRACER.span(...) as sp`` and the disabled
    # path expose the same minimal surface before __enter__.
    def add_steps(self, amount: int = 1) -> None:
        if self._span is not None:
            self._span.add_steps(amount)


class Tracer:
    """Per-thread span stacks feeding one shared trace forest."""

    __slots__ = ("enabled", "_local", "_lock", "_roots", "_root_aggregates")

    def __init__(self) -> None:
        self.enabled = False
        self._local = threading.local()
        self._lock = threading.Lock()
        self._roots: list[Span] = []
        self._root_aggregates: dict[str, Span] = {}

    # -- lifecycle -------------------------------------------------------------

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        with self._lock:
            self._roots.clear()
            self._root_aggregates.clear()
        self._local = threading.local()

    # -- recording -------------------------------------------------------------

    def span(self, name: str, aggregate: bool = False):
        """Open a span named ``name``; no-op when tracing is disabled.

        ``aggregate=True`` merges repeated same-named entries under the
        same parent into one node with a ``count`` — use it for spans
        entered per item on hot loops.
        """
        if not self.enabled:
            return _NULL_SPAN
        return _SpanContext(self, name, aggregate)

    def traced_iter(self, name: str, iterable: Iterable[Any]) -> Iterator[Any]:
        """Yield from ``iterable``, timing each ``next()`` into one span.

        The engine's pipelines are lazy, so wrapping a *consumer* in a
        span would charge producer time to the consumer while the
        generator is suspended.  This charges exactly the production
        time of each element to an aggregate span named ``name``.
        """
        if not self.enabled:
            yield from iterable
            return
        iterator = iter(iterable)
        while True:
            with self.span(name, aggregate=True) as sp:
                try:
                    item = next(iterator)
                except StopIteration:
                    return
                sp.add_steps(1)
            yield item

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _open(self, name: str, aggregate: bool) -> Span:
        stack = self._stack()
        if stack:
            span = stack[-1].child(name, aggregate=aggregate)
        elif aggregate:
            with self._lock:
                span = self._root_aggregates.get(name)
                if span is None:
                    span = Span(name)
                    self._root_aggregates[name] = span
                    self._roots.append(span)
        else:
            span = Span(name)
            with self._lock:
                self._roots.append(span)
        span._started = time.perf_counter()
        if not aggregate:
            span._baseline = METRICS.snapshot()
        stack.append(span)
        return span

    def _close(self, span: Span) -> None:
        stack = self._stack()
        # Closing out of order (a generator finalized late) unwinds to
        # the matching entry rather than corrupting the stack.
        while stack:
            top = stack.pop()
            if top is span:
                break
        if span._started is not None:
            span.wall_ms += (time.perf_counter() - span._started) * 1000.0
            span._started = None
        span.count += 1
        if span._baseline is not None:
            delta = METRICS.delta_since(span._baseline)
            span._baseline = None
            if delta:
                for key, value in delta.items():
                    span.metrics[key] = span.metrics.get(key, 0) + value

    # -- reading ---------------------------------------------------------------

    def roots(self) -> list[Span]:
        with self._lock:
            return list(self._roots)

    def to_dict(self) -> list[dict[str, Any]]:
        return [root.to_dict() for root in self.roots()]


#: The process-global tracer the engine's instrumentation points use.
TRACER = Tracer()
