"""The metrics registry: one sink for every engine counter.

:class:`MetricsRegistry` replaces the three ad-hoc statistic sinks that
grew with the engine (the ``EngineCounters`` slot object, the per-cache
hit/miss attributes, the planner counters) with a single named-counter
store behind a snapshot / merge / reset API:

* **increments are thread-safe and cheap** — each thread accumulates
  into its own private cell (a plain dict, no lock on the hot path);
  totals are summed across cells on :meth:`snapshot` / :meth:`get`.
  The old ``COUNTERS.name += 1`` pattern lost updates under the thread
  executor because the read-modify-write raced; ``inc`` cannot.
* **deltas are picklable** — :meth:`delta_since` diffs a snapshot into
  a plain ``{name: int}`` dict that crosses the process-pool pickle
  boundary, and :meth:`merge` folds such a delta back in.  The
  executor uses this pair to ship worker-side increments back to the
  parent at chunk boundaries, so ``--stats`` no longer undercounts
  under ``--jobs N`` with the process backend.

Counter names are free-form strings; the engine's known names (and the
registered caches' ``<name>_cache_hits`` / ``_misses``) get zero
defaults in :meth:`repro.engine.counters.EngineCounters.snapshot`, so
reports stay shape-stable even when nothing moved.

This module must stay import-free of the rest of ``repro``: the data
layer reaches it through ``repro.engine.counters``, so any dependency
upward would be circular.
"""

from __future__ import annotations

import threading
import weakref
from typing import Mapping, Optional


class MetricsRegistry:
    """A thread-safe, mergeable registry of named monotonic counters."""

    __slots__ = ("_lock", "_local", "_retired", "_cells")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._local = threading.local()
        #: Totals folded in from dead threads' cells and from merges
        #: performed before any increment on the calling thread.
        self._retired: dict[str, int] = {}
        #: Live per-thread cells: ``(weakref-to-thread, counts)``.
        self._cells: list[tuple[weakref.ref, dict[str, int]]] = []

    # -- the hot path ----------------------------------------------------------

    def _cell(self) -> dict[str, int]:
        cell = getattr(self._local, "cell", None)
        if cell is None:
            cell = {}
            ref = weakref.ref(threading.current_thread())
            with self._lock:
                self._cells.append((ref, cell))
            self._local.cell = cell
        return cell

    def inc(self, name: str, amount: int = 1) -> None:
        """Add ``amount`` to ``name``.  Lock-free per thread; never lost."""
        cell = self._cell()
        cell[name] = cell.get(name, 0) + amount

    # -- snapshot / merge / reset ----------------------------------------------

    def get(self, name: str) -> int:
        """The merged total of one counter across all threads."""
        with self._lock:
            total = self._retired.get(name, 0)
            for _, cell in self._cells:
                total += cell.get(name, 0)
        return total

    def snapshot(self) -> dict[str, int]:
        """All counters that ever moved, merged across threads."""
        with self._lock:
            self._compact_locked()
            totals = dict(self._retired)
            for _, cell in self._cells:
                # list() of a builtin dict's items is atomic under the
                # GIL, so a concurrently incrementing owner is safe.
                for name, amount in list(cell.items()):
                    totals[name] = totals.get(name, 0) + amount
        return totals

    def delta_since(self, baseline: Mapping[str, int]) -> dict[str, int]:
        """The picklable nonzero difference ``snapshot() - baseline``.

        Process-pool workers call this at the end of a chunk (with the
        snapshot taken at the chunk's start) and ship the plain dict
        back for the parent to :meth:`merge`.
        """
        delta: dict[str, int] = {}
        for name, value in self.snapshot().items():
            diff = value - baseline.get(name, 0)
            if diff:
                delta[name] = diff
        return delta

    def merge(self, delta: Optional[Mapping[str, int]]) -> None:
        """Fold a delta (e.g. one shipped from a worker process) in."""
        if not delta:
            return
        cell = self._cell()
        for name, amount in delta.items():
            if amount:
                cell[name] = cell.get(name, 0) + amount

    def reset(self) -> None:
        """Zero every counter (typically at the start of a CLI run)."""
        with self._lock:
            self._retired.clear()
            for _, cell in self._cells:
                cell.clear()

    def _compact_locked(self) -> None:
        """Fold cells of finished threads into the retired totals.

        Keeps ``_cells`` bounded over a long session of short-lived
        pools without losing a single worker-side increment.
        """
        live: list[tuple[weakref.ref, dict[str, int]]] = []
        for ref, cell in self._cells:
            thread = ref()
            if thread is None or not thread.is_alive():
                for name, amount in cell.items():
                    self._retired[name] = self._retired.get(name, 0) + amount
            else:
                live.append((ref, cell))
        self._cells[:] = live


#: The process-global registry every engine layer increments into.
METRICS = MetricsRegistry()


#: Counters that legitimately depend on how work was *scheduled*, not
#: on what was computed: chunk bookkeeping, retries, pool lifecycle,
#: budget trips.  Parity checks between serial and parallel runs must
#: ignore them.
SCHEDULING_METRICS = frozenset(
    {
        "parallel_chunks",
        "parallel_fallbacks",
        "chunk_retries",
        "chunk_timeouts",
        "pool_restarts",
        "deadline_hits",
        "degradations",
    }
)

#: Counters that additionally vary under the *process* backend even
#: when the computed work is identical: workers rebuild instances from
#: pickles, recompile plans and re-derive cache entries in their own
#: address space, and per-task justification snapshots can recompute a
#: verdict another worker already knows.
PROCESS_VARIANT_METRICS = frozenset(
    {
        "instances_built",
        "instances_shared",
        "facts_indexed",
        "plans_compiled",
        "plan_domains_pruned",
        "justification_hits",
        "justification_misses",
    }
)


def parity_view(snapshot: Mapping[str, int], backend: str = "thread") -> dict[str, int]:
    """The executor-invariant projection of a metrics snapshot.

    ``backend="thread"`` (or ``"serial"``) drops only the scheduling
    counters: everything else — including cache hits/misses, which the
    single-flight caches keep deterministic — must match a serial run
    exactly.  ``backend="process"`` additionally drops the
    per-address-space counters and all cache statistics.
    """
    view: dict[str, int] = {}
    for name, value in snapshot.items():
        if name in SCHEDULING_METRICS:
            continue
        if backend == "process" and (
            name in PROCESS_VARIANT_METRICS
            or name.endswith("_cache_hits")
            or name.endswith("_cache_misses")
        ):
            continue
        view[name] = value
    return view


def parity_diff(
    reference: Mapping[str, int],
    candidate: Mapping[str, int],
    backend: str = "thread",
) -> dict[str, tuple[int, int]]:
    """``{name: (reference, candidate)}`` for every mismatched counter.

    Both snapshots are projected through :func:`parity_view` first; an
    empty result means the runs agree on every comparable counter.
    """
    left = parity_view(reference, backend)
    right = parity_view(candidate, backend)
    diffs: dict[str, tuple[int, int]] = {}
    for name in sorted(set(left) | set(right)):
        a, b = left.get(name, 0), right.get(name, 0)
        if a != b:
            diffs[name] = (a, b)
    return diffs
