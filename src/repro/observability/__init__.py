"""Unified observability: the metrics registry and span tracer.

This package is the single telemetry surface for the engine.  All
counters flow through :data:`METRICS` (``repro.engine.counters`` and
the cache statistics are facades over it), and all per-phase timing
flows through :data:`TRACER`.  Everything here is stdlib-only so the
lowest layers (``repro.data``, ``repro.logic``) can depend on it
without cycles.
"""

from .metrics import (
    METRICS,
    MetricsRegistry,
    PROCESS_VARIANT_METRICS,
    SCHEDULING_METRICS,
    parity_diff,
    parity_view,
)
from .spans import Span, TRACER, Tracer
from .export import (
    format_trace,
    metrics_document,
    phase_wall_times,
    write_metrics_json,
)

__all__ = [
    "METRICS",
    "MetricsRegistry",
    "PROCESS_VARIANT_METRICS",
    "SCHEDULING_METRICS",
    "parity_diff",
    "parity_view",
    "Span",
    "TRACER",
    "Tracer",
    "format_trace",
    "metrics_document",
    "phase_wall_times",
    "write_metrics_json",
]
