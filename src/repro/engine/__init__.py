"""The performance layer: executors, caches, counters, feature flags.

``repro.engine`` holds everything that makes the reproduction fast
without changing *what* is computed:

* :class:`~repro.engine.executor.Executor` — pluggable serial /
  thread / process fan-out with deterministic result ordering and
  graceful serial fallback (used by the inverse chase, certain-answer
  intersection and the baselines);
* :class:`~repro.engine.cache.LRUCache` — keyed memoization behind
  ``hom_set`` and ``minimal_subsumers``;
* :data:`~repro.engine.counters.COUNTERS` — lightweight perf counters
  surfaced by the CLI's ``--stats`` flag;
* :data:`~repro.engine.config.CONFIG` — switches for every
  optimisation, so benchmarks can measure each in isolation.

This package deliberately never imports ``repro.data`` / ``repro.core``
(they import *it*), keeping the layering acyclic.
"""

from .cache import (
    LRUCache,
    PartitionedLRUCache,
    SingleFlightMap,
    cache_partition,
    clear_registered_caches,
    configure_partition,
    current_partition,
    drop_cache_partition,
    partition_budget,
    partitioned_cache_stats,
    registered_cache_names,
)
from .config import CONFIG, EngineConfig, configure, engine_options
from .counters import COUNTERS, KNOWN_COUNTERS, EngineCounters
from .executor import SERIAL, Backend, Executor, default_jobs, resolve_executor

__all__ = [
    "Backend",
    "CONFIG",
    "COUNTERS",
    "EngineConfig",
    "EngineCounters",
    "Executor",
    "KNOWN_COUNTERS",
    "LRUCache",
    "PartitionedLRUCache",
    "SERIAL",
    "SingleFlightMap",
    "cache_partition",
    "clear_registered_caches",
    "configure",
    "configure_partition",
    "current_partition",
    "default_jobs",
    "drop_cache_partition",
    "engine_options",
    "partition_budget",
    "partitioned_cache_stats",
    "registered_cache_names",
    "resolve_executor",
]
