"""Pluggable parallel execution for embarrassingly-parallel pipelines.

The paper's constructions expose natural per-item parallelism: each
covering of ``Chase⁻¹(Σ, J)`` runs an independent backward-chase →
forward-chase → soundness-gate pipeline, and each recovery's UCQ
answer set can be computed independently before intersecting.  An
:class:`Executor` fans such items out in chunks while guaranteeing
**deterministic, input-ordered results** — parallel runs are
set-and-order-equal to serial runs by construction.

Three backends:

* ``"serial"`` — a plain lazy loop (the default; also what tiny inputs
  fall back to, per ``CONFIG.min_parallel_items``);
* ``"thread"`` — :class:`concurrent.futures.ThreadPoolExecutor`; no
  pickling requirements, a good default on I/O-mixed or small-object
  work (``"auto"`` resolves to it);
* ``"process"`` — :class:`concurrent.futures.ProcessPoolExecutor`;
  true multi-core parallelism for CPU-bound pipelines.  All of the
  library's value objects define ``__reduce__`` so they cross the
  pickle boundary.

Fault model — two failure classes with opposite handling:

* **Application errors** (``fn`` itself raised): captured *inside* the
  worker and shipped back as a value, then re-raised in the caller
  unchanged.  They are never retried and never silently recomputed —
  a deterministic ``fn`` would just raise again, and a flaky one
  should not have its failures papered over.
* **Infrastructure failures** (a worker died, the pool broke, a
  payload refused to pickle, a chunk timed out): retried up to
  ``CONFIG.chunk_retries`` times with linear backoff — a broken
  process pool is replaced by a fresh one first
  (``COUNTERS.pool_restarts``) — and on exhaustion the chunk is
  recomputed in-process (``COUNTERS.parallel_fallbacks``), so callers
  always get a complete, correctly-ordered result.

Per-chunk timeouts (``CONFIG.chunk_timeout_s``) count as
infrastructure failures (``COUNTERS.chunk_timeouts``).  While a chunk
is pending on a process pool, the parent polls worker liveness every
``CONFIG.worker_heartbeat_s`` seconds: a worker found dead orphans the
chunk (``COUNTERS.worker_crashes``), which is then deterministically
reassigned — same chunk, same order slot — to a restarted pool
(``COUNTERS.orphans_reassigned``), so a killed worker costs one chunk
of latency, never the run.  The fault-injection hook
``CONFIG.inject_faults`` — a picklable callable run in the worker
before each chunk — lets tests kill workers, delay chunks and poison
pickles to exercise all of the above.

Pool shutdown is deterministic: the pool is torn down with
``wait=True`` in the generator's ``finally``, so no worker process
survives the iterator — whether it was exhausted, abandoned
mid-stream (``close()`` / garbage collection) or exited via an
exception.

Inputs are consumed lazily in windows of ``jobs × chunk_size`` items,
so budgeted enumerations (e.g. ``max_covers``) keep their exception
semantics and unbounded generators never materialize fully.
"""

from __future__ import annotations

import os
import pickle
import time
from concurrent.futures import (
    BrokenExecutor,
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from concurrent.futures import TimeoutError as FuturesTimeoutError
from itertools import islice
from typing import Callable, Iterable, Iterator, Literal, Optional, Sequence, TypeVar, Union

from .config import CONFIG
from ..observability.metrics import METRICS
from ..observability.spans import TRACER

T = TypeVar("T")
R = TypeVar("R")

Backend = Literal["auto", "serial", "thread", "process"]


def default_jobs() -> int:
    """A sensible worker count: the CPU count, capped at 8."""
    return min(os.cpu_count() or 1, 8)


class _WorkerError:
    """An application exception captured inside a worker.

    Wrapping (instead of letting the exception propagate through the
    future) is what lets the parent tell *application* errors apart
    from *infrastructure* ones: with the wrapper in place, any
    exception surfacing from ``future.result()`` is by construction
    the pool's — a dead worker, a pickling failure, a timeout — while
    ``fn``'s own errors arrive as values and are re-raised faithfully.
    """

    __slots__ = ("exception",)

    def __init__(self, exception: BaseException):
        self.exception = exception


def _run_chunk(
    fn: Callable[[T], R],
    chunk: Sequence[T],
    fault: Optional[Callable] = None,
    capture: bool = False,
) -> tuple[Union[list[R], _WorkerError], Optional[dict[str, int]]]:
    """Worker entry point: evaluate one chunk, preserving order.

    Returns ``(payload, metrics_delta)``.  ``capture=True`` (the
    process backend) snapshots the worker-local metrics registry
    around the chunk and ships the picklable delta back, so increments
    made inside the worker merge into the parent at the chunk
    boundary instead of dying with the worker's address space.  Thread
    workers share the parent registry and ship ``None``.
    """
    if fault is not None:
        fault(chunk)
    baseline = METRICS.snapshot() if capture else None
    try:
        payload: Union[list[R], _WorkerError] = [fn(item) for item in chunk]
    except Exception as exc:
        payload = _WorkerError(exc)
    delta = METRICS.delta_since(baseline) if capture else None
    return payload, delta


#: Exceptions from ``future.result()`` treated as *transient*
#: infrastructure failures, worth retrying: a worker died, the pool
#: broke, the OS hiccuped.  Application errors never appear here (see
#: :class:`_WorkerError`).
_TRANSIENT_ERRORS = (BrokenExecutor, OSError)

#: Exceptions from ``future.result()`` treated as *deterministic*
#: infrastructure failures: the pickling machinery's complaints
#: (``PickleError`` plus the ``TypeError`` / ``AttributeError`` /
#: ``ImportError`` family raised for unpicklable lambdas, closures and
#: lost module globals).  Retrying cannot help; the executor degrades
#: to in-process evaluation instead.
_PERMANENT_ERRORS = (pickle.PickleError, TypeError, AttributeError, ImportError)

#: Sentinel returned by ``_await_chunk`` for deterministic failures.
_PERMANENT = object()


class _WorkerCrashed(Exception):
    """Internal: the heartbeat saw a dead worker while a chunk was pending.

    Raised (and caught) entirely inside :meth:`Executor._await_chunk`;
    it marks the pending chunk as *orphaned* so its reassignment is
    counted separately from garden-variety retries.
    """


def _dead_workers(pool) -> int:
    """How many of a process pool's workers are no longer alive."""
    processes = getattr(pool, "_processes", None)
    if not processes:
        return 0
    return sum(
        1
        for proc in list(processes.values())
        if proc is not None and not proc.is_alive()
    )


class Executor:
    """A reusable fan-out policy: backend, worker count, chunking.

    Executors are cheap to construct; the underlying pool is created
    per :meth:`map` call and torn down afterwards, which keeps the
    object trivially picklable and fork-safe.
    """

    __slots__ = ("jobs", "backend", "chunk_size")

    def __init__(
        self,
        jobs: Optional[int] = None,
        backend: Backend = "auto",
        chunk_size: Optional[int] = None,
    ):
        if backend not in ("auto", "serial", "thread", "process"):
            raise ValueError(f"unknown executor backend {backend!r}")
        if jobs is None:
            jobs = 1 if backend in ("auto", "serial") else default_jobs()
        if jobs < 0:
            raise ValueError("jobs must be non-negative")
        jobs = max(jobs, 1)
        if backend == "auto":
            backend = "serial" if jobs == 1 else "thread"
        if backend == "serial":
            jobs = 1
        self.jobs = jobs
        self.backend = backend
        self.chunk_size = chunk_size

    @property
    def is_serial(self) -> bool:
        return self.backend == "serial" or self.jobs == 1

    def __repr__(self) -> str:
        return f"Executor(jobs={self.jobs}, backend={self.backend!r})"

    # -- mapping ---------------------------------------------------------------

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> Iterator[R]:
        """Yield ``fn(item)`` for every item, in input order.

        Serial executors stay fully lazy (one item at a time).
        Parallel executors consume ``items`` window by window; within a
        window, chunks run concurrently and results are drained in
        submission order, so the output sequence is identical to the
        serial one.
        """
        if self.is_serial:
            return (fn(item) for item in items)
        return self._parallel_map(fn, items)

    def _parallel_map(self, fn: Callable[[T], R], items: Iterable[T]) -> Iterator[R]:
        iterator = iter(items)
        chunk_size = self.chunk_size or 1
        window = max(self.jobs * chunk_size, chunk_size)
        fault = CONFIG.inject_faults
        # Only process workers live in their own address space; thread
        # workers increment the parent registry directly, and capturing
        # for them would double-count on merge.
        capture = self.backend == "process"
        # The pool lives in a one-slot holder so retry logic can swap a
        # broken pool for a fresh one mid-stream.
        holder: list = [self._make_pool()]
        degraded = False
        try:
            while True:
                batch = list(islice(iterator, window))
                if not batch:
                    return
                if len(batch) < CONFIG.min_parallel_items or degraded:
                    for item in batch:
                        yield fn(item)
                    continue
                chunks = [
                    batch[i : i + chunk_size]
                    for i in range(0, len(batch), chunk_size)
                ]
                futures: list[Optional[Future]] = []
                for chunk in chunks:
                    try:
                        futures.append(
                            holder[0].submit(_run_chunk, fn, chunk, fault, capture)
                        )
                    except Exception:
                        # Submission itself failed (pool shut down or
                        # broken beyond the per-chunk recovery below):
                        # stop handing work to pools entirely.
                        futures.append(None)
                        degraded = True
                METRICS.inc("parallel_chunks", len(chunks))
                for chunk, future in zip(chunks, futures):
                    with TRACER.span("executor.chunk", aggregate=True) as sp:
                        sp.add_steps(len(chunk))
                        outcome = None
                        if future is not None:
                            outcome = self._await_chunk(
                                holder, fn, chunk, future, fault, capture
                            )
                        if isinstance(outcome, _WorkerError):
                            # An application error: re-raise it
                            # unchanged.  No retry, no serial
                            # recomputation.
                            raise outcome.exception
                        if outcome is _PERMANENT:
                            # Unpicklable payloads fail
                            # deterministically: stop handing work to
                            # the pool for good.
                            degraded = True
                            outcome = None
                        if outcome is None:
                            METRICS.inc("parallel_fallbacks")
                            outcome = [fn(item) for item in chunk]
                    yield from outcome
        finally:
            # Deterministic teardown: block until every worker is
            # reaped, even when the consumer abandons the iterator
            # mid-stream (close() runs this via GeneratorExit).
            holder[0].shutdown(wait=True, cancel_futures=True)

    def _await_chunk(
        self,
        holder: list,
        fn: Callable[[T], R],
        chunk: Sequence[T],
        future: Future,
        fault: Optional[Callable],
        capture: bool = False,
    ) -> Union[list[R], "_WorkerError", None]:
        """Wait for one chunk, with timeout + bounded retry.

        Returns the chunk's results, a :class:`_WorkerError` for an
        application exception, ``_PERMANENT`` for a deterministic
        serialization failure, or ``None`` when every attempt failed on
        transient infrastructure (the caller then recomputes
        in-process).  A metrics delta shipped by a process worker is
        merged into the parent registry here — including alongside an
        application error, whose partial increments are real work.
        """
        timeout = CONFIG.chunk_timeout_s
        max_retries = max(CONFIG.chunk_retries or 0, 0)
        backoff = CONFIG.retry_backoff_s or 0
        attempt = 0
        while True:
            orphaned = False
            try:
                payload, delta = self._heartbeat_result(holder[0], future, timeout)
                METRICS.merge(delta)
                return payload
            except _WorkerCrashed:
                # The heartbeat saw a dead worker while the chunk was
                # still pending: the chunk is orphaned.
                METRICS.inc("worker_crashes")
                orphaned = True
                future.cancel()
            except FuturesTimeoutError:
                METRICS.inc("chunk_timeouts")
                future.cancel()
            except _TRANSIENT_ERRORS as exc:
                if isinstance(exc, BrokenExecutor):
                    # The pool noticed the death before the heartbeat
                    # did; same orphan, different messenger.
                    METRICS.inc("worker_crashes")
                    orphaned = True
            except _PERMANENT_ERRORS:
                return _PERMANENT
            if isinstance(holder[0], ProcessPoolExecutor):
                # A broken process pool poisons every later submit;
                # replace it before retrying.  (Thread pools stay
                # healthy across worker exceptions.)
                try:
                    if getattr(holder[0], "_broken", False) or _dead_workers(
                        holder[0]
                    ):
                        holder[0].shutdown(wait=False, cancel_futures=True)
                        holder[0] = self._make_pool()
                        METRICS.inc("pool_restarts")
                except Exception:
                    return None
            if attempt >= max_retries:
                return None
            attempt += 1
            METRICS.inc("chunk_retries")
            if orphaned:
                # Deterministic reassignment: the identical chunk goes
                # back out and its results land in the original order
                # slot, so a killed worker costs one chunk of latency,
                # never the run and never the ordering.
                METRICS.inc("orphans_reassigned")
            if backoff:
                time.sleep(backoff * attempt)
            try:
                future = holder[0].submit(_run_chunk, fn, chunk, fault, capture)
            except Exception:
                return None

    def _heartbeat_result(self, pool, future: Future, timeout: Optional[float]):
        """``future.result`` with liveness polling of process workers.

        Waits in ``CONFIG.worker_heartbeat_s`` slices; between slices,
        checks the pool's worker processes.  A worker found dead while
        the chunk is still pending raises :class:`_WorkerCrashed`
        immediately instead of waiting out the full chunk timeout —
        with :class:`ProcessPoolExecutor` any worker death breaks the
        whole pool, so the pending chunk can never complete.  Thread
        pools (whose workers cannot die independently) and a disabled
        heartbeat fall through to a plain blocking wait.
        """
        heartbeat = CONFIG.worker_heartbeat_s or 0
        if heartbeat <= 0 or not isinstance(pool, ProcessPoolExecutor):
            return future.result(timeout=timeout)
        expires_at = None if timeout is None else time.monotonic() + timeout
        while True:
            wait = heartbeat
            if expires_at is not None:
                wait = min(wait, max(expires_at - time.monotonic(), 0.001))
            try:
                return future.result(timeout=wait)
            except FuturesTimeoutError:
                if expires_at is not None and time.monotonic() >= expires_at:
                    raise
                # Re-check completion before declaring a crash: the
                # worker may have finished the chunk and then died.
                if not future.done() and (
                    getattr(pool, "_broken", False) or _dead_workers(pool)
                ):
                    raise _WorkerCrashed() from None

    def _make_pool(self):
        if self.backend == "process":
            return ProcessPoolExecutor(max_workers=self.jobs)
        return ThreadPoolExecutor(
            max_workers=self.jobs, thread_name_prefix="repro-engine"
        )


#: The default executor: serial, lazy, zero overhead.
SERIAL = Executor(jobs=1, backend="serial")

ExecutorLike = Union[Executor, int, None]


def resolve_executor(
    executor: ExecutorLike = None, jobs: Optional[int] = None, backend: Backend = "auto"
) -> Executor:
    """Normalize the ``executor=`` / ``jobs=`` calling conventions.

    Accepts an :class:`Executor` (returned as-is), an integer worker
    count, or ``None`` (then ``jobs`` decides; ``None``/``0``/``1``
    mean serial).
    """
    if isinstance(executor, Executor):
        return executor
    if isinstance(executor, int):
        jobs = executor
    if jobs is None or jobs <= 1:
        return SERIAL
    return Executor(jobs=jobs, backend=backend)
