"""Pluggable parallel execution for embarrassingly-parallel pipelines.

The paper's constructions expose natural per-item parallelism: each
covering of ``Chase⁻¹(Σ, J)`` runs an independent backward-chase →
forward-chase → soundness-gate pipeline, and each recovery's UCQ
answer set can be computed independently before intersecting.  An
:class:`Executor` fans such items out in chunks while guaranteeing
**deterministic, input-ordered results** — parallel runs are
set-and-order-equal to serial runs by construction.

Three backends:

* ``"serial"`` — a plain lazy loop (the default; also what tiny inputs
  fall back to, per ``CONFIG.min_parallel_items``);
* ``"thread"`` — :class:`concurrent.futures.ThreadPoolExecutor`; no
  pickling requirements, a good default on I/O-mixed or small-object
  work (``"auto"`` resolves to it);
* ``"process"`` — :class:`concurrent.futures.ProcessPoolExecutor`;
  true multi-core parallelism for CPU-bound pipelines.  All of the
  library's value objects define ``__reduce__`` so they cross the
  pickle boundary.

Worker failure is handled gracefully: if a pool breaks or a payload
refuses to pickle, the affected chunk — and everything after it — is
recomputed serially in the parent, so callers always get a complete,
correctly-ordered result (``COUNTERS.parallel_fallbacks`` records the
event).

Inputs are consumed lazily in windows of ``jobs × chunk_size`` items,
so budgeted enumerations (e.g. ``max_covers``) keep their exception
semantics and unbounded generators never materialize fully.
"""

from __future__ import annotations

import os
from concurrent.futures import (
    BrokenExecutor,
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from itertools import islice
from typing import Callable, Iterable, Iterator, Literal, Optional, Sequence, TypeVar, Union

from .config import CONFIG
from .counters import COUNTERS

T = TypeVar("T")
R = TypeVar("R")

Backend = Literal["auto", "serial", "thread", "process"]


def default_jobs() -> int:
    """A sensible worker count: the CPU count, capped at 8."""
    return min(os.cpu_count() or 1, 8)


class Executor:
    """A reusable fan-out policy: backend, worker count, chunking.

    Executors are cheap to construct; the underlying pool is created
    per :meth:`map` call and torn down afterwards, which keeps the
    object trivially picklable and fork-safe.
    """

    __slots__ = ("jobs", "backend", "chunk_size")

    def __init__(
        self,
        jobs: Optional[int] = None,
        backend: Backend = "auto",
        chunk_size: Optional[int] = None,
    ):
        if backend not in ("auto", "serial", "thread", "process"):
            raise ValueError(f"unknown executor backend {backend!r}")
        if jobs is None:
            jobs = 1 if backend in ("auto", "serial") else default_jobs()
        if jobs < 0:
            raise ValueError("jobs must be non-negative")
        jobs = max(jobs, 1)
        if backend == "auto":
            backend = "serial" if jobs == 1 else "thread"
        if backend == "serial":
            jobs = 1
        self.jobs = jobs
        self.backend = backend
        self.chunk_size = chunk_size

    @property
    def is_serial(self) -> bool:
        return self.backend == "serial" or self.jobs == 1

    def __repr__(self) -> str:
        return f"Executor(jobs={self.jobs}, backend={self.backend!r})"

    # -- mapping ---------------------------------------------------------------

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> Iterator[R]:
        """Yield ``fn(item)`` for every item, in input order.

        Serial executors stay fully lazy (one item at a time).
        Parallel executors consume ``items`` window by window; within a
        window, chunks run concurrently and results are drained in
        submission order, so the output sequence is identical to the
        serial one.
        """
        if self.is_serial:
            return (fn(item) for item in items)
        return self._parallel_map(fn, items)

    def _parallel_map(self, fn: Callable[[T], R], items: Iterable[T]) -> Iterator[R]:
        iterator = iter(items)
        chunk_size = self.chunk_size or 1
        window = max(self.jobs * chunk_size, chunk_size)
        pool = self._make_pool()
        broken = False
        try:
            while True:
                batch = list(islice(iterator, window))
                if not batch:
                    return
                if len(batch) < CONFIG.min_parallel_items or broken:
                    for item in batch:
                        yield fn(item)
                    continue
                chunks = [
                    batch[i : i + chunk_size]
                    for i in range(0, len(batch), chunk_size)
                ]
                futures: list[Optional[Future]] = []
                for chunk in chunks:
                    try:
                        futures.append(pool.submit(_run_chunk, fn, chunk))
                    except Exception:
                        # Pool already broken or payload unpicklable.
                        futures.append(None)
                        broken = True
                COUNTERS.parallel_chunks += len(chunks)
                for chunk, future in zip(chunks, futures):
                    results: Optional[Sequence[R]] = None
                    if future is not None:
                        try:
                            results = future.result()
                        except (BrokenExecutor, OSError, TypeError, ValueError, AttributeError, ImportError):
                            # A dead worker or a pickling failure; fall
                            # back to in-process evaluation and stop
                            # handing work to this pool.
                            broken = True
                            results = None
                    if results is None:
                        COUNTERS.parallel_fallbacks += 1
                        results = [fn(item) for item in chunk]
                    yield from results
        finally:
            pool.shutdown(wait=False, cancel_futures=True)

    def _make_pool(self):
        if self.backend == "process":
            return ProcessPoolExecutor(max_workers=self.jobs)
        return ThreadPoolExecutor(
            max_workers=self.jobs, thread_name_prefix="repro-engine"
        )


def _run_chunk(fn: Callable[[T], R], chunk: Sequence[T]) -> list[R]:
    """Worker entry point: evaluate one chunk, preserving order."""
    return [fn(item) for item in chunk]


#: The default executor: serial, lazy, zero overhead.
SERIAL = Executor(jobs=1, backend="serial")

ExecutorLike = Union[Executor, int, None]


def resolve_executor(
    executor: ExecutorLike = None, jobs: Optional[int] = None, backend: Backend = "auto"
) -> Executor:
    """Normalize the ``executor=`` / ``jobs=`` calling conventions.

    Accepts an :class:`Executor` (returned as-is), an integer worker
    count, or ``None`` (then ``jobs`` decides; ``None``/``0``/``1``
    mean serial).
    """
    if isinstance(executor, Executor):
        return executor
    if isinstance(executor, int):
        jobs = executor
    if jobs is None or jobs <= 1:
        return SERIAL
    return Executor(jobs=jobs, backend=backend)
