"""Engine feature flags and tuning knobs.

The performance layer added on top of the paper's algorithms is
switchable: every optimisation consults the process-global
:data:`CONFIG` so benchmarks can measure each one (and emulate the
pre-engine "seed" code path by turning them all off).

Knobs:

* ``semantics`` — default recovery-semantics mode (see
  :mod:`repro.semantics`); ``"paper"`` unless the ``REPRO_SEMANTICS``
  environment variable says otherwise.  Stored as a plain name and
  resolved lazily so this module keeps importing nothing from the rest
  of ``repro``.
* ``lazy_indexes`` — build an :class:`~repro.data.instances.Instance`'s
  per-relation / per-position indexes on first lookup instead of at
  construction time.  Chase-heavy loops create many short-lived
  instances (recovery images, justification candidates) that are only
  ever hashed or compared; laziness skips their index builds entirely.
* ``incremental_ops`` — let ``union`` / ``with_facts`` /
  ``without_facts`` reuse the receiver's already-built indexes,
  re-indexing only the touched ``(relation, position, term)`` keys and
  sharing the frozen entries of unchanged relations.
* ``sort_cache`` — memoize the deterministic candidate-fact presort of
  the homomorphism engine per candidate set, instead of re-sorting in
  every backtracking frame.
* ``memoize_hom_sets`` / ``memoize_subsumers`` — keyed LRU caches for
  ``hom_set(Σ, J)`` and ``minimal_subsumers(Σ)`` (sizes below).
* ``join_kernel`` — route homomorphism search through the compiled
  join-plan kernel (:mod:`repro.planner`): canonicalized patterns,
  cached plans, candidate-domain pruning, early projection and an
  existence-only mode.  Off falls back to the original backtracking
  matcher, which doubles as the differential-testing oracle.
* ``plan_cache_size`` — LRU capacity of the compiled-plan cache,
  keyed on ``(canonical pattern, instance epoch)``.
* ``value_fastpaths`` — cache the structural hash of terms on first
  use, and skip re-coercion / re-validation when transforming values
  that are already known to be well-formed (``Atom.apply`` over a
  term-to-term mapping, ``Instance.apply`` with a variable-free
  range).  These paths dominate the inner loops of the homomorphism
  engine and the inverse chase.
* ``columnar_backend`` — attach an interned columnar store
  (:mod:`repro.data.columnar`) to instances on demand and route
  compiled join plans through the vectorized executor
  (:mod:`repro.planner.vectorized`): int columns, per-position hash
  indexes and set intersections instead of ``Atom`` dictionaries.
  The default honours the ``REPRO_COLUMNAR`` environment variable
  (``0`` disables) so CI can matrix over both backends; the object
  backend remains the differential oracle.
* ``columnar_min_facts`` — instances below this many facts never
  build a columnar store: at micro scale the interning and column
  builds cost more than the per-object overhead they remove, and the
  established micro-benchmarks keep measuring the object path.

Fault-tolerance knobs for the parallel executor:

* ``chunk_timeout_s`` / ``chunk_retries`` / ``retry_backoff_s`` —
  per-chunk wall-clock timeout with bounded, backed-off retry before
  the chunk is recomputed in-process.
* ``worker_heartbeat_s`` — cadence at which the parent polls process
  workers for liveness while a chunk is pending; a detected death
  orphans the chunk, which is deterministically reassigned.
* ``inject_faults`` — a test-only hook run in the worker before each
  chunk; used by the fault-injection suite to kill workers, delay
  chunks and poison pickles.

Use :func:`configure` for permanent changes and :func:`engine_options`
as a context manager for scoped ones (the benchmark harness does the
latter).  This module must not import the rest of ``repro``.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator


class EngineConfig:
    """Mutable switchboard for the engine optimisations."""

    __slots__ = (
        "semantics",
        "lazy_indexes",
        "incremental_ops",
        "sort_cache",
        "memoize_hom_sets",
        "memoize_subsumers",
        "value_fastpaths",
        "join_kernel",
        "columnar_backend",
        "columnar_min_facts",
        "plan_cache_size",
        "hom_set_cache_size",
        "subsumers_cache_size",
        "min_parallel_items",
        "chunk_timeout_s",
        "chunk_retries",
        "retry_backoff_s",
        "worker_heartbeat_s",
        "inject_faults",
    )

    def __init__(self) -> None:
        #: Default recovery-semantics mode; the name is resolved
        #: through :func:`repro.semantics.get_semantics` at call time
        #: (never here — this module must stay import-leaf), so a typo
        #: surfaces as ``UnknownSemanticsError`` on first use.
        self.semantics = os.environ.get("REPRO_SEMANTICS", "paper")
        self.lazy_indexes = True
        self.incremental_ops = True
        self.sort_cache = True
        self.memoize_hom_sets = True
        self.memoize_subsumers = True
        self.value_fastpaths = True
        self.join_kernel = True
        self.columnar_backend = os.environ.get("REPRO_COLUMNAR", "1") != "0"
        #: Instances smaller than this never build a columnar store;
        #: the vectorized path only pays off once candidate pools are
        #: large enough to amortize interning and column construction.
        self.columnar_min_facts = 1024
        self.plan_cache_size = 512
        self.hom_set_cache_size = 256
        self.subsumers_cache_size = 128
        #: Below this many work items the executor stays serial: the
        #: fan-out overhead dwarfs the work on tiny instances.
        self.min_parallel_items = 4
        #: Per-chunk wall-clock timeout for parallel execution, in
        #: seconds.  ``None`` (the default) waits indefinitely.  A
        #: timed-out chunk is retried (below) and finally recomputed
        #: in-process, so results stay complete either way.
        self.chunk_timeout_s = None
        #: How many times a timed-out or infrastructure-failed chunk is
        #: resubmitted before falling back to in-process evaluation.
        self.chunk_retries = 2
        #: Base backoff between chunk retries, in seconds; attempt ``k``
        #: sleeps ``k * retry_backoff_s``.
        self.retry_backoff_s = 0.05
        #: Heartbeat cadence for process workers, in seconds.  While a
        #: chunk is pending, the parent wakes at this interval and
        #: checks the pool's worker processes for liveness; a dead
        #: worker marks the chunk orphaned and it is deterministically
        #: reassigned (same chunk, same order slot) to a healthy pool.
        #: ``0`` / ``None`` disables the polling and leaves crash
        #: detection to the pool's own broken-executor signal.
        self.worker_heartbeat_s = 0.1
        #: Fault-injection hook for tests: a picklable callable invoked
        #: in the worker as ``hook(chunk)`` before the chunk is
        #: evaluated.  It may sleep (delaying the chunk past a
        #: timeout), raise, or kill the worker outright; ``None``
        #: disables injection.
        self.inject_faults = None

    def as_dict(self) -> dict[str, object]:
        return {name: getattr(self, name) for name in self.__slots__}


#: The process-global engine configuration.
CONFIG = EngineConfig()


def configure(**options: object) -> None:
    """Set engine options by name; unknown names raise ``ValueError``."""
    for name, value in options.items():
        if name not in EngineConfig.__slots__:
            raise ValueError(f"unknown engine option {name!r}")
        setattr(CONFIG, name, value)


@contextmanager
def engine_options(**options: object) -> Iterator[EngineConfig]:
    """Temporarily override engine options (restored on exit).

    Disabling either memoization flag also clears the corresponding
    cache on entry *and* exit, so measurements inside the block never
    see entries populated outside it and vice versa.
    """
    for name in options:
        if name not in EngineConfig.__slots__:
            raise ValueError(f"unknown engine option {name!r}")
    previous = {name: getattr(CONFIG, name) for name in options}
    configure(**options)
    _clear_caches_if_toggled(options)
    try:
        yield CONFIG
    finally:
        for name, value in previous.items():
            setattr(CONFIG, name, value)
        _clear_caches_if_toggled(options)


def _clear_caches_if_toggled(options: dict[str, object]) -> None:
    toggled = {
        "memoize_hom_sets",
        "memoize_subsumers",
        "join_kernel",
        "columnar_backend",
        "columnar_min_facts",
        "plan_cache_size",
    }
    if toggled & options.keys():
        from .cache import clear_registered_caches

        clear_registered_caches()
