"""Keyed LRU caches with hit/miss accounting.

:class:`LRUCache` is a small, dependency-free LRU used to memoize the
engine's pure-but-expensive derivations — ``HOM(Σ, J)`` and ``SUB(Σ)``
— behind hashable keys (mappings and instances are immutable and
hashable throughout the library, which is what makes this safe).

Every cache registers itself in a module-level registry so that
:func:`repro.engine.counters.EngineCounters.snapshot` can report all
cache statistics and the benchmark harness can flush everything
between measured configurations via :func:`clear_registered_caches`.
"""

from __future__ import annotations

import threading
import weakref
from collections import OrderedDict
from typing import Callable, Hashable, Optional, TypeVar

V = TypeVar("V")

_REGISTRY: "weakref.WeakSet[LRUCache]" = weakref.WeakSet()
_SENTINEL = object()


class LRUCache:
    """A named, bounded, thread-safe least-recently-used cache."""

    __slots__ = ("name", "_maxsize", "_data", "_lock", "hits", "misses", "__weakref__")

    def __init__(self, name: str, maxsize: int = 128):
        self.name = name
        self._maxsize = maxsize
        self._data: OrderedDict[Hashable, object] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        _REGISTRY.add(self)

    @property
    def maxsize(self) -> int:
        return self._maxsize

    def resize(self, maxsize: int) -> None:
        if maxsize == self._maxsize:
            return
        with self._lock:
            self._maxsize = maxsize
            while len(self._data) > self._maxsize:
                self._data.popitem(last=False)

    def get_or_compute(self, key: Hashable, compute: Callable[[], V]) -> V:
        """The cached value for ``key``, computing and storing on a miss.

        The computation runs outside the lock — it may be slow and may
        itself use other caches; a rare duplicated computation under
        contention is harmless because cached functions are pure.
        """
        with self._lock:
            value = self._data.get(key, _SENTINEL)
            if value is not _SENTINEL:
                self._data.move_to_end(key)
                self.hits += 1
                return value  # type: ignore[return-value]
            self.misses += 1
        value = compute()
        with self._lock:
            self._data[key] = value
            self._data.move_to_end(key)
            while len(self._data) > self._maxsize:
                self._data.popitem(last=False)
        return value

    def clear(self) -> None:
        with self._lock:
            self._data.clear()

    def __len__(self) -> int:
        return len(self._data)


def registered_cache_stats() -> dict[str, int]:
    """``{"<name>_cache_hits": ..., "<name>_cache_misses": ...}`` for all caches."""
    stats: dict[str, int] = {}
    for cache in list(_REGISTRY):
        stats[f"{cache.name}_cache_hits"] = cache.hits
        stats[f"{cache.name}_cache_misses"] = cache.misses
    return stats


def clear_registered_caches() -> None:
    """Flush every registered cache (statistics are kept)."""
    for cache in list(_REGISTRY):
        cache.clear()
