"""Keyed LRU caches with hit/miss accounting and single-flight misses.

:class:`LRUCache` is a small, dependency-free LRU used to memoize the
engine's pure-but-expensive derivations — ``HOM(Σ, J)`` and ``SUB(Σ)``
— behind hashable keys (mappings and instances are immutable and
hashable throughout the library, which is what makes this safe).

Misses are **single-flight**: when several threads miss the same key
at once, exactly one computes while the others wait on the in-flight
entry and then share the result.  Besides avoiding duplicated work,
this keeps the hit/miss totals *deterministic* — a thread-parallel run
records the same counts as a serial run (one miss per distinct key,
hits for everyone else), which the counter-parity guarantees in
``--stats`` rely on.

Statistics feed the unified metrics registry
(:data:`repro.observability.METRICS`) under ``<name>_cache_hits`` /
``<name>_cache_misses``; the per-instance ``hits`` / ``misses``
attributes remain for that cache object's lifetime.  Every cache also
registers itself in a module-level registry so the benchmark harness
can flush everything between measured configurations via
:func:`clear_registered_caches`.

:func:`registered_cache_stats` is deprecated — read the same keys from
``METRICS.snapshot()`` (or ``COUNTERS.snapshot()``) instead.
"""

from __future__ import annotations

import threading
import weakref
from typing import Callable, Hashable, Iterator, Optional, TypeVar

from ..observability.metrics import METRICS

V = TypeVar("V")

_REGISTRY: "weakref.WeakSet[LRUCache]" = weakref.WeakSet()
_SENTINEL = object()


class _InFlight:
    """Placeholder parked under a key while its value is being computed."""

    __slots__ = ("event", "owner", "value", "failed")

    def __init__(self, owner: int):
        self.event = threading.Event()
        self.owner = owner
        self.value: object = _SENTINEL
        self.failed = False


class LRUCache:
    """A named, bounded, thread-safe least-recently-used cache."""

    __slots__ = (
        "name",
        "_maxsize",
        "_data",
        "_lock",
        "_hits_key",
        "_misses_key",
        "hits",
        "misses",
        "__weakref__",
    )

    def __init__(self, name: str, maxsize: int = 128):
        self.name = name
        self._maxsize = maxsize
        # A plain insertion-ordered dict, oldest first.  Recency is
        # maintained by pop-and-reinsert.  Deliberately NOT an
        # OrderedDict: the C implementation's items/keys views do a
        # value lookup per key, which re-hashes every key on every
        # iteration — ruinous for plan-cache keys that are large atom
        # tuples (the checkpoint layer iterates keys() at every save).
        self._data: dict[Hashable, object] = {}
        self._lock = threading.Lock()
        self._hits_key = f"{name}_cache_hits"
        self._misses_key = f"{name}_cache_misses"
        self.hits = 0
        self.misses = 0
        _REGISTRY.add(self)

    @property
    def maxsize(self) -> int:
        return self._maxsize

    def resize(self, maxsize: int) -> None:
        # The no-change early return must also hold the lock: checked
        # outside it, a shrink racing an insert could see the *old*
        # size, return, and leave the cache above the new maxsize.
        with self._lock:
            if maxsize == self._maxsize:
                return
            self._maxsize = maxsize
            self._evict_locked()

    def _evict_locked(self) -> None:
        while len(self._data) > self._maxsize:
            del self._data[next(iter(self._data))]

    def get_or_compute(self, key: Hashable, compute: Callable[[], V]) -> V:
        """The cached value for ``key``, computing and storing on a miss.

        The computation runs outside the lock — it may be slow and may
        itself use *other* caches (the engine's cache nesting is a DAG,
        so no deadlock).  Concurrent misses on the same key are
        single-flight: one thread computes (one miss), the rest block
        and share the result (one hit each), exactly the counts a
        serial run would record.
        """
        ident = threading.get_ident()
        while True:
            with self._lock:
                value = self._data.get(key, _SENTINEL)
                if isinstance(value, _InFlight):
                    entry = value
                    if entry.owner == ident:
                        # Re-entrant lookup of a key this thread is
                        # already computing: recurse into compute()
                        # rather than deadlocking on our own event.
                        self.misses += 1
                        METRICS.inc(self._misses_key)
                        entry = None
                    else:
                        self.hits += 1
                        METRICS.inc(self._hits_key)
                elif value is not _SENTINEL:
                    self._data[key] = self._data.pop(key)  # mark recent
                    self.hits += 1
                    METRICS.inc(self._hits_key)
                    return value  # type: ignore[return-value]
                else:
                    entry = _InFlight(ident)
                    self._data[key] = entry
                    self.misses += 1
                    METRICS.inc(self._misses_key)
                    break
            if entry is None:
                return compute()
            entry.event.wait()
            if not entry.failed:
                return entry.value  # type: ignore[return-value]
            # The computing thread raised; its placeholder is gone.
            # Re-enter the loop — this thread may become the computer.
            continue
        return self._compute_and_publish(key, entry, compute)

    def _compute_and_publish(
        self, key: Hashable, entry: _InFlight, compute: Callable[[], V]
    ) -> V:
        try:
            value = compute()
        except BaseException:
            with self._lock:
                if self._data.get(key) is entry:
                    del self._data[key]
            entry.failed = True
            entry.event.set()
            raise
        with self._lock:
            # Pop first: plain-dict assignment keeps an existing key's
            # position, and the fresh value must land at the (most
            # recent) end.
            self._data.pop(key, None)
            self._data[key] = value
            self._evict_locked()
        entry.value = value
        entry.event.set()
        return value

    def clear(self) -> None:
        with self._lock:
            # In-flight entries stay out of the sweep: their computers
            # still publish to waiters, and dropping the placeholder
            # here would just let a concurrent miss duplicate work.
            for key in [
                k for k, v in self._data.items() if not isinstance(v, _InFlight)
            ]:
                del self._data[key]

    def keys(self) -> list:
        """A point-in-time list of settled keys (in-flight ones excluded).

        Used by the checkpoint layer to record which plan keys were warm
        at save time, so a resumed process can recompile them up front.
        """
        with self._lock:
            return [
                k for k, v in self._data.items() if not isinstance(v, _InFlight)
            ]

    def __len__(self) -> int:
        return len(self._data)


class SingleFlightMap:
    """A dict-like verdict memo with single-flight computation.

    Used for the justification-verdict cache in the inverse chase: a
    plain ``dict`` memo lets two threads both miss a key and both pay
    the (expensive, pure) verification, which also skews the
    ``justification_hits``/``_misses`` counters away from the serial
    run.  This map makes concurrent misses single-flight while keeping
    the mapping surface (``get`` / ``__setitem__`` / ``update`` /
    ``items``) the existing code uses.

    It pickles as a plain dict snapshot (via ``__reduce__``), so
    process-pool workers receive a point-in-time copy — the same
    semantics the old dict had.
    """

    __slots__ = ("_data", "_lock", "hit_metric", "miss_metric")

    def __init__(
        self,
        initial: Optional[dict] = None,
        hit_metric: Optional[str] = None,
        miss_metric: Optional[str] = None,
    ):
        self._data: dict = dict(initial) if initial else {}
        self._lock = threading.Lock()
        self.hit_metric = hit_metric
        self.miss_metric = miss_metric

    def get_or_compute(self, key: Hashable, compute: Callable[[], V]) -> V:
        ident = threading.get_ident()
        while True:
            with self._lock:
                value = self._data.get(key, _SENTINEL)
                if isinstance(value, _InFlight):
                    entry = value
                    if entry.owner == ident:
                        if self.miss_metric:
                            METRICS.inc(self.miss_metric)
                        entry = None
                    elif self.hit_metric:
                        METRICS.inc(self.hit_metric)
                elif value is not _SENTINEL:
                    if self.hit_metric:
                        METRICS.inc(self.hit_metric)
                    return value  # type: ignore[return-value]
                else:
                    entry = _InFlight(ident)
                    self._data[key] = entry
                    if self.miss_metric:
                        METRICS.inc(self.miss_metric)
                    break
            if entry is None:
                return compute()
            entry.event.wait()
            if not entry.failed:
                return entry.value  # type: ignore[return-value]

        try:
            value = compute()
        except BaseException:
            with self._lock:
                if self._data.get(key) is entry:
                    del self._data[key]
            entry.failed = True
            entry.event.set()
            raise
        with self._lock:
            self._data[key] = value
        entry.value = value
        entry.event.set()
        return value

    def get(self, key: Hashable, default: object = None) -> object:
        with self._lock:
            value = self._data.get(key, _SENTINEL)
        if value is _SENTINEL or isinstance(value, _InFlight):
            return default
        return value

    def __setitem__(self, key: Hashable, value: object) -> None:
        with self._lock:
            existing = self._data.get(key)
            if not isinstance(existing, _InFlight):
                self._data[key] = value

    def update(self, other) -> None:
        items = other.items() if hasattr(other, "items") else other
        with self._lock:
            for key, value in items:
                if not isinstance(self._data.get(key), _InFlight):
                    self._data[key] = value

    def items(self) -> Iterator[tuple]:
        with self._lock:
            return iter(
                [
                    (k, v)
                    for k, v in self._data.items()
                    if not isinstance(v, _InFlight)
                ]
            )

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            value = self._data.get(key, _SENTINEL)
        return value is not _SENTINEL and not isinstance(value, _InFlight)

    def __len__(self) -> int:
        with self._lock:
            return sum(
                1 for v in self._data.values() if not isinstance(v, _InFlight)
            )

    def __reduce__(self):
        settled = {
            k: v for k, v in self._data.items() if not isinstance(v, _InFlight)
        }
        return (
            SingleFlightMap,
            (settled, self.hit_metric, self.miss_metric),
        )


def registered_cache_names() -> list[str]:
    """The names of every live registered cache, sorted."""
    return sorted({cache.name for cache in list(_REGISTRY)})


def registered_cache_stats() -> dict[str, int]:
    """``{"<name>_cache_hits": ..., "<name>_cache_misses": ...}``.

    .. deprecated::
        Statistics now live in the unified metrics registry; read
        ``<name>_cache_hits`` / ``<name>_cache_misses`` from
        ``METRICS.snapshot()`` (or ``COUNTERS.snapshot()``).  This
        shim reports the registry's totals for live caches.
    """
    snapshot = METRICS.snapshot()
    stats: dict[str, int] = {}
    for name in registered_cache_names():
        stats[f"{name}_cache_hits"] = snapshot.get(f"{name}_cache_hits", 0)
        stats[f"{name}_cache_misses"] = snapshot.get(f"{name}_cache_misses", 0)
    return stats


def clear_registered_caches() -> None:
    """Flush every registered cache (statistics are kept)."""
    for cache in list(_REGISTRY):
        cache.clear()
