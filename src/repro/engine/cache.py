"""Keyed LRU caches with hit/miss accounting and single-flight misses.

:class:`LRUCache` is a small, dependency-free LRU used to memoize the
engine's pure-but-expensive derivations — ``HOM(Σ, J)`` and ``SUB(Σ)``
— behind hashable keys (mappings and instances are immutable and
hashable throughout the library, which is what makes this safe).

Misses are **single-flight**: when several threads miss the same key
at once, exactly one computes while the others wait on the in-flight
entry and then share the result.  Besides avoiding duplicated work,
this keeps the hit/miss totals *deterministic* — a thread-parallel run
records the same counts as a serial run (one miss per distinct key,
hits for everyone else), which the counter-parity guarantees in
``--stats`` rely on.

Statistics feed the unified metrics registry
(:data:`repro.observability.METRICS`) under ``<name>_cache_hits`` /
``<name>_cache_misses``; the per-instance ``hits`` / ``misses``
attributes remain for that cache object's lifetime.  Every cache also
registers itself in a module-level registry so the benchmark harness
can flush everything between measured configurations via
:func:`clear_registered_caches`.

Multi-tenant partitioning
-------------------------

The service layer (:mod:`repro.service`) shares one process across
tenants, and a shared LRU is a noisy-neighbour channel: one tenant's
burst of distinct keys evicts every other tenant's warm state.
:class:`PartitionedLRUCache` closes that channel.  It looks exactly
like an :class:`LRUCache`, but internally keeps one independent LRU
per *partition*; the active partition is ambient, thread-local state
set with :func:`cache_partition`::

    with cache_partition("tenant:acme"):
        hom_set(mapping, target)   # hits/evicts only acme's partition

Code that never enters a partition uses the default partition (``""``)
and behaves byte-for-byte like the old shared cache — the library and
CLI paths are unchanged.  Per-partition capacity budgets are pinned
with :func:`configure_partition` (a pinned partition ignores global
``resize`` calls, so ``CONFIG``-driven resizes cannot lift a tenant's
budget), and :func:`drop_cache_partition` releases a tenant's state
wholesale.  All partitions of a cache share its metric keys, so
process-wide counter totals aggregate across tenants unchanged.
"""

from __future__ import annotations

import threading
import weakref
from contextlib import contextmanager
from typing import Callable, Hashable, Iterator, Optional, TypeVar

from ..observability.metrics import METRICS

V = TypeVar("V")

_REGISTRY: "weakref.WeakSet[LRUCache]" = weakref.WeakSet()
_SENTINEL = object()


class _InFlight:
    """Placeholder parked under a key while its value is being computed."""

    __slots__ = ("event", "owner", "value", "failed")

    def __init__(self, owner: int):
        self.event = threading.Event()
        self.owner = owner
        self.value: object = _SENTINEL
        self.failed = False


class LRUCache:
    """A named, bounded, thread-safe least-recently-used cache."""

    __slots__ = (
        "name",
        "_maxsize",
        "_data",
        "_lock",
        "_hits_key",
        "_misses_key",
        "hits",
        "misses",
        "__weakref__",
    )

    def __init__(self, name: str, maxsize: int = 128):
        self.name = name
        self._maxsize = maxsize
        # A plain insertion-ordered dict, oldest first.  Recency is
        # maintained by pop-and-reinsert.  Deliberately NOT an
        # OrderedDict: the C implementation's items/keys views do a
        # value lookup per key, which re-hashes every key on every
        # iteration — ruinous for plan-cache keys that are large atom
        # tuples (the checkpoint layer iterates keys() at every save).
        self._data: dict[Hashable, object] = {}
        self._lock = threading.Lock()
        self._hits_key = f"{name}_cache_hits"
        self._misses_key = f"{name}_cache_misses"
        self.hits = 0
        self.misses = 0
        _REGISTRY.add(self)

    @property
    def maxsize(self) -> int:
        return self._maxsize

    def resize(self, maxsize: int) -> None:
        # The no-change early return must also hold the lock: checked
        # outside it, a shrink racing an insert could see the *old*
        # size, return, and leave the cache above the new maxsize.
        with self._lock:
            if maxsize == self._maxsize:
                return
            self._maxsize = maxsize
            self._evict_locked()

    def _evict_locked(self) -> None:
        while len(self._data) > self._maxsize:
            del self._data[next(iter(self._data))]

    def get_or_compute(self, key: Hashable, compute: Callable[[], V]) -> V:
        """The cached value for ``key``, computing and storing on a miss.

        The computation runs outside the lock — it may be slow and may
        itself use *other* caches (the engine's cache nesting is a DAG,
        so no deadlock).  Concurrent misses on the same key are
        single-flight: one thread computes (one miss), the rest block
        and share the result (one hit each), exactly the counts a
        serial run would record.
        """
        ident = threading.get_ident()
        while True:
            with self._lock:
                value = self._data.get(key, _SENTINEL)
                if isinstance(value, _InFlight):
                    entry = value
                    if entry.owner == ident:
                        # Re-entrant lookup of a key this thread is
                        # already computing: recurse into compute()
                        # rather than deadlocking on our own event.
                        self.misses += 1
                        METRICS.inc(self._misses_key)
                        entry = None
                    else:
                        self.hits += 1
                        METRICS.inc(self._hits_key)
                elif value is not _SENTINEL:
                    self._data[key] = self._data.pop(key)  # mark recent
                    self.hits += 1
                    METRICS.inc(self._hits_key)
                    return value  # type: ignore[return-value]
                else:
                    entry = _InFlight(ident)
                    self._data[key] = entry
                    self.misses += 1
                    METRICS.inc(self._misses_key)
                    break
            if entry is None:
                return compute()
            entry.event.wait()
            if not entry.failed:
                return entry.value  # type: ignore[return-value]
            # The computing thread raised; its placeholder is gone.
            # Re-enter the loop — this thread may become the computer.
            continue
        return self._compute_and_publish(key, entry, compute)

    def _compute_and_publish(
        self, key: Hashable, entry: _InFlight, compute: Callable[[], V]
    ) -> V:
        try:
            value = compute()
        except BaseException:
            with self._lock:
                if self._data.get(key) is entry:
                    del self._data[key]
            entry.failed = True
            entry.event.set()
            raise
        with self._lock:
            # Pop first: plain-dict assignment keeps an existing key's
            # position, and the fresh value must land at the (most
            # recent) end.
            self._data.pop(key, None)
            self._data[key] = value
            self._evict_locked()
        entry.value = value
        entry.event.set()
        return value

    def clear(self) -> None:
        with self._lock:
            # In-flight entries stay out of the sweep: their computers
            # still publish to waiters, and dropping the placeholder
            # here would just let a concurrent miss duplicate work.
            for key in [
                k for k, v in self._data.items() if not isinstance(v, _InFlight)
            ]:
                del self._data[key]

    def keys(self) -> list:
        """A point-in-time list of settled keys (in-flight ones excluded).

        Used by the checkpoint layer to record which plan keys were warm
        at save time, so a resumed process can recompile them up front.
        """
        with self._lock:
            return [
                k for k, v in self._data.items() if not isinstance(v, _InFlight)
            ]

    def peek(self, key: Hashable, default: object = None) -> object:
        """The settled value for ``key`` without recency or counter effects.

        Used by lineage-aware cache carry-forward: the planner inspects
        a parent epoch's entries to re-key still-valid plans for an
        evolved child, and that sweep must not skew hit/miss parity or
        evict anything.
        """
        with self._lock:
            value = self._data.get(key, _SENTINEL)
        if value is _SENTINEL or isinstance(value, _InFlight):
            return default
        return value

    def put(self, key: Hashable, value: object) -> None:
        """Insert a precomputed value (no hit/miss accounting).

        The carry-forward half of :meth:`peek`: a plan re-keyed for an
        evolved instance is stored directly.  An in-flight computation
        for the key wins over the carried value (the computer is about
        to publish a fresh result to waiting threads).
        """
        with self._lock:
            existing = self._data.get(key, _SENTINEL)
            if isinstance(existing, _InFlight):
                return
            self._data.pop(key, None)
            self._data[key] = value
            self._evict_locked()

    def __len__(self) -> int:
        return len(self._data)


class SingleFlightMap:
    """A dict-like verdict memo with single-flight computation.

    Used for the justification-verdict cache in the inverse chase: a
    plain ``dict`` memo lets two threads both miss a key and both pay
    the (expensive, pure) verification, which also skews the
    ``justification_hits``/``_misses`` counters away from the serial
    run.  This map makes concurrent misses single-flight while keeping
    the mapping surface (``get`` / ``__setitem__`` / ``update`` /
    ``items``) the existing code uses.

    It pickles as a plain dict snapshot (via ``__reduce__``), so
    process-pool workers receive a point-in-time copy — the same
    semantics the old dict had.
    """

    __slots__ = ("_data", "_lock", "hit_metric", "miss_metric")

    def __init__(
        self,
        initial: Optional[dict] = None,
        hit_metric: Optional[str] = None,
        miss_metric: Optional[str] = None,
    ):
        self._data: dict = dict(initial) if initial else {}
        self._lock = threading.Lock()
        self.hit_metric = hit_metric
        self.miss_metric = miss_metric

    def get_or_compute(self, key: Hashable, compute: Callable[[], V]) -> V:
        ident = threading.get_ident()
        while True:
            with self._lock:
                value = self._data.get(key, _SENTINEL)
                if isinstance(value, _InFlight):
                    entry = value
                    if entry.owner == ident:
                        if self.miss_metric:
                            METRICS.inc(self.miss_metric)
                        entry = None
                    elif self.hit_metric:
                        METRICS.inc(self.hit_metric)
                elif value is not _SENTINEL:
                    if self.hit_metric:
                        METRICS.inc(self.hit_metric)
                    return value  # type: ignore[return-value]
                else:
                    entry = _InFlight(ident)
                    self._data[key] = entry
                    if self.miss_metric:
                        METRICS.inc(self.miss_metric)
                    break
            if entry is None:
                return compute()
            entry.event.wait()
            if not entry.failed:
                return entry.value  # type: ignore[return-value]

        try:
            value = compute()
        except BaseException:
            with self._lock:
                if self._data.get(key) is entry:
                    del self._data[key]
            entry.failed = True
            entry.event.set()
            raise
        with self._lock:
            self._data[key] = value
        entry.value = value
        entry.event.set()
        return value

    def get(self, key: Hashable, default: object = None) -> object:
        with self._lock:
            value = self._data.get(key, _SENTINEL)
        if value is _SENTINEL or isinstance(value, _InFlight):
            return default
        return value

    def __setitem__(self, key: Hashable, value: object) -> None:
        with self._lock:
            existing = self._data.get(key)
            if not isinstance(existing, _InFlight):
                self._data[key] = value

    def update(self, other) -> None:
        items = other.items() if hasattr(other, "items") else other
        with self._lock:
            for key, value in items:
                if not isinstance(self._data.get(key), _InFlight):
                    self._data[key] = value

    def items(self) -> Iterator[tuple]:
        with self._lock:
            return iter(
                [
                    (k, v)
                    for k, v in self._data.items()
                    if not isinstance(v, _InFlight)
                ]
            )

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            value = self._data.get(key, _SENTINEL)
        return value is not _SENTINEL and not isinstance(value, _InFlight)

    def __len__(self) -> int:
        with self._lock:
            return sum(
                1 for v in self._data.values() if not isinstance(v, _InFlight)
            )

    def __reduce__(self):
        settled = {
            k: v for k, v in self._data.items() if not isinstance(v, _InFlight)
        }
        return (
            SingleFlightMap,
            (settled, self.hit_metric, self.miss_metric),
        )


def registered_cache_names() -> list[str]:
    """The names of every live registered cache, sorted."""
    return sorted({cache.name for cache in list(_REGISTRY)})


def clear_registered_caches() -> None:
    """Flush every registered cache (statistics are kept)."""
    for cache in list(_REGISTRY):
        cache.clear()


# ---------------------------------------------------------------------------
# Tenant partitioning
# ---------------------------------------------------------------------------

_PARTITION_LOCAL = threading.local()
_PARTITIONED: "weakref.WeakSet[PartitionedLRUCache]" = weakref.WeakSet()
_PARTITION_BUDGETS: dict[str, int] = {}
_PARTITION_LOCK = threading.Lock()


def current_partition() -> str:
    """The calling thread's active cache partition (``""`` = default)."""
    return getattr(_PARTITION_LOCAL, "name", "")


@contextmanager
def cache_partition(name: str) -> Iterator[str]:
    """Route this thread's partitioned-cache traffic to ``name``.

    Nests and restores on exit; the empty string is the default
    partition every non-service caller implicitly uses.
    """
    previous = getattr(_PARTITION_LOCAL, "name", "")
    _PARTITION_LOCAL.name = name
    try:
        yield name
    finally:
        _PARTITION_LOCAL.name = previous


def configure_partition(name: str, maxsize: int) -> None:
    """Pin a capacity budget for partition ``name`` on every
    partitioned cache.

    A pinned partition keeps ``maxsize`` entries per cache regardless
    of later global ``resize`` calls — the mechanism the service layer
    uses to give each tenant a fixed cache budget that a config-driven
    resize cannot silently lift.
    """
    if not name:
        raise ValueError("the default partition's size is the cache maxsize")
    if maxsize <= 0:
        raise ValueError(f"partition budget must be positive, got {maxsize}")
    with _PARTITION_LOCK:
        _PARTITION_BUDGETS[name] = maxsize
        caches = list(_PARTITIONED)
    for cache in caches:
        cache._apply_budget(name, maxsize)


def partition_budget(name: str) -> Optional[int]:
    """The pinned budget for partition ``name``, or ``None``."""
    with _PARTITION_LOCK:
        return _PARTITION_BUDGETS.get(name)


def drop_cache_partition(name: str) -> None:
    """Discard partition ``name`` (entries and budget) everywhere.

    Used when a tenant is retired — their warm state is released
    without touching any other partition.  Dropping the default
    partition is equivalent to clearing the caches.
    """
    with _PARTITION_LOCK:
        _PARTITION_BUDGETS.pop(name, None)
        caches = list(_PARTITIONED)
    for cache in caches:
        cache._drop(name)


def partitioned_cache_stats() -> dict[str, dict[str, dict[str, int]]]:
    """``{cache: {partition: {size, maxsize, hits, misses}}}`` across
    every live :class:`PartitionedLRUCache` — the ``/metrics`` view of
    which tenants hold warm state and how full their budgets are."""
    with _PARTITION_LOCK:
        caches = list(_PARTITIONED)
    return {
        cache.name: cache.partition_stats()
        for cache in sorted(caches, key=lambda c: c.name)
    }


class PartitionedLRUCache:
    """An :class:`LRUCache` facade with one independent LRU per partition.

    Every method operates on the calling thread's *active* partition
    (see :func:`cache_partition`), except :meth:`clear`, which flushes
    all of them — matching what ``clear_registered_caches`` means for
    a shared cache.  Inner caches share the outer ``name`` so metric
    keys (``<name>_cache_hits`` / ``_misses``) aggregate across
    partitions, and each registers itself like any other cache.
    """

    __slots__ = ("name", "_default_maxsize", "_parts", "_lock", "__weakref__")

    def __init__(self, name: str, maxsize: int = 128):
        self.name = name
        self._default_maxsize = maxsize
        # The default partition exists from birth so the cache's metric
        # names are registered at import time, exactly like the shared
        # caches this class replaced; tenant partitions appear lazily.
        self._parts: dict[str, LRUCache] = {"": LRUCache(name, maxsize=maxsize)}
        self._lock = threading.Lock()
        _PARTITIONED.add(self)

    def _part(self) -> LRUCache:
        partition = current_partition()
        cache = self._parts.get(partition)
        if cache is None:
            with self._lock:
                cache = self._parts.get(partition)
                if cache is None:
                    size = _PARTITION_BUDGETS.get(partition) if partition else None
                    cache = LRUCache(
                        self.name,
                        maxsize=size if size is not None else self._default_maxsize,
                    )
                    self._parts[partition] = cache
        return cache

    def _apply_budget(self, partition: str, maxsize: int) -> None:
        cache = self._parts.get(partition)
        if cache is not None:
            cache.resize(maxsize)

    def _drop(self, partition: str) -> None:
        with self._lock:
            self._parts.pop(partition, None)

    # -- the LRUCache surface, scoped to the active partition ---------------

    @property
    def maxsize(self) -> int:
        return self._part().maxsize

    def resize(self, maxsize: int) -> None:
        """Resize the active partition — unless its budget is pinned.

        Config-driven resizes (``CONFIG.plan_cache_size`` checks on the
        hot path) flow through here; a tenant partition with a pinned
        budget ignores them, so tuning the global knob never grows or
        shrinks a tenant's allocation.
        """
        partition = current_partition()
        if partition and partition_budget(partition) is not None:
            return
        if not partition:
            self._default_maxsize = maxsize
        self._part().resize(maxsize)

    def get_or_compute(self, key: Hashable, compute: Callable[[], V]) -> V:
        return self._part().get_or_compute(key, compute)

    def keys(self) -> list:
        return self._part().keys()

    def peek(self, key: Hashable, default: object = None) -> object:
        return self._part().peek(key, default)

    def put(self, key: Hashable, value: object) -> None:
        return self._part().put(key, value)

    def clear(self) -> None:
        with self._lock:
            parts = list(self._parts.values())
        for cache in parts:
            cache.clear()

    @property
    def hits(self) -> int:
        return self._part().hits

    @property
    def misses(self) -> int:
        return self._part().misses

    def __len__(self) -> int:
        return len(self._part())

    # -- introspection for isolation tests and /metrics ---------------------

    def partitions(self) -> list[str]:
        with self._lock:
            return sorted(self._parts)

    def partition_stats(self) -> dict[str, dict[str, int]]:
        """``{partition: {size, maxsize, hits, misses}}`` for every
        partition this cache has materialized."""
        with self._lock:
            parts = dict(self._parts)
        return {
            partition: {
                "size": len(cache),
                "maxsize": cache.maxsize,
                "hits": cache.hits,
                "misses": cache.misses,
            }
            for partition, cache in sorted(parts.items())
        }
