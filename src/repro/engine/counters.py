"""Engine counters — now a facade over the unified metrics registry.

.. deprecated::
    Direct attribute access on :data:`COUNTERS` (``COUNTERS.x += 1``,
    ``COUNTERS.x``) is kept working for backward compatibility but new
    code should call :data:`repro.observability.METRICS` directly
    (``METRICS.inc("x")`` / ``METRICS.get("x")``).  The attribute
    surface will eventually go away.

Historically this module held a process-global slot object mutated
with plain ``+=``.  That pattern had two faults the observability
layer fixes:

* under the **thread** executor, ``+=`` is a read-modify-write and
  racing workers dropped increments;
* under the **process** executor, workers mutated their own copy and
  the parent never saw the increments at all, so ``--stats`` silently
  undercounted exactly when ``--jobs N`` mattered.

:class:`EngineCounters` is now attribute sugar over
:data:`repro.observability.METRICS`.  Reads return the merged
cross-thread total; writes are translated into atomic deltas, so the
legacy ``COUNTERS.name += 1`` spelling is race-free: the read records
a per-thread shadow of the value it returned, and the following
assignment increments the registry by ``new - shadow`` instead of
storing the stale absolute value.

This module may import :mod:`repro.observability` (stdlib-only) but
nothing else in ``repro`` — the data layer imports it, so any
dependency back into ``repro.data`` or ``repro.core`` would be
circular.
"""

from __future__ import annotations

import threading

from ..observability.metrics import METRICS

#: Every counter the engine increments, in reporting order.  Snapshots
#: zero-default these so reports stay shape-stable even when a counter
#: never moved.
KNOWN_COUNTERS = (
    "homomorphisms_explored",
    "plans_compiled",
    "plan_components_evaluated",
    "plan_domains_pruned",
    "plan_existence_shortcircuits",
    "vector_plans_compiled",
    "planner_vectorized",
    "planner_vector_fallbacks",
    "columnar_stores_built",
    "columnar_facts_stored",
    "columnar_terms_interned",
    "columnar_indexes_built",
    "columnar_rows_scanned",
    "covers_enumerated",
    "coverings_evaluated",
    "recoveries_emitted",
    "facts_indexed",
    "instances_built",
    "instances_shared",
    "justification_hits",
    "justification_misses",
    "parallel_chunks",
    "parallel_fallbacks",
    "chunk_retries",
    "chunk_timeouts",
    "pool_restarts",
    "deadline_hits",
    "degradations",
)

_KNOWN = frozenset(KNOWN_COUNTERS)


class EngineCounters:
    """Deprecated attribute facade over the metrics registry.

    ``COUNTERS.x`` returns the merged total of metric ``x`` and
    remembers it in a per-thread shadow; ``COUNTERS.x = v`` increments
    the registry by ``v - shadow`` (consuming the shadow), which turns
    the classic ``COUNTERS.x += 1`` into an atomic ``inc`` no matter
    how many threads race it.
    """

    __slots__ = ("_local",)

    def __init__(self) -> None:
        object.__setattr__(self, "_local", threading.local())

    def _shadow(self) -> dict[str, int]:
        shadow = getattr(self._local, "shadow", None)
        if shadow is None:
            shadow = {}
            self._local.shadow = shadow
        return shadow

    def __getattr__(self, name: str) -> int:
        if name in _KNOWN:
            value = METRICS.get(name)
            self._shadow()[name] = value
            return value
        raise AttributeError(name)

    def __setattr__(self, name: str, value: int) -> None:
        if name not in _KNOWN:
            raise AttributeError(f"unknown engine counter {name!r}")
        shadow = self._shadow()
        base = shadow.pop(name, None)
        if base is None:
            base = METRICS.get(name)
        delta = value - base
        if delta:
            METRICS.inc(name, delta)

    def reset(self) -> None:
        """Zero every metric (typically at the start of a CLI command).

        This resets the *whole* registry — engine counters and cache
        statistics alike — so per-run reports start from zero.
        """
        METRICS.reset()
        self._shadow().clear()

    def snapshot(self) -> dict[str, int]:
        """All metrics, with zero defaults for the known counter names
        and every registered cache's ``_cache_hits`` / ``_cache_misses``
        so new caches appear automatically and reports keep their shape.
        """
        values = {name: 0 for name in KNOWN_COUNTERS}
        from .cache import registered_cache_names

        for cache_name in registered_cache_names():
            values.setdefault(f"{cache_name}_cache_hits", 0)
            values.setdefault(f"{cache_name}_cache_misses", 0)
        values.update(METRICS.snapshot())
        return values


#: The process-global counter facade (deprecated; prefer METRICS).
COUNTERS = EngineCounters()
