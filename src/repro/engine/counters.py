"""Lightweight engine performance counters.

One process-global :class:`EngineCounters` instance (:data:`COUNTERS`)
is threaded through the hot paths of the library: the homomorphism
engine, the covering enumeration, the instance indexes and the
executor.  Increments are plain integer additions on an object with
``__slots__`` — cheap enough to leave enabled unconditionally, and
atomic enough under the GIL for statistics purposes.

The CLI surfaces a snapshot via ``--stats`` (see
:func:`repro.reporting.format_counters`); benchmarks use
:meth:`EngineCounters.snapshot` / :meth:`EngineCounters.reset` around
measured regions.

This module must stay import-free of the rest of ``repro`` — the data
layer imports it, so any dependency back into ``repro.data`` or
``repro.core`` would be circular.
"""

from __future__ import annotations


class EngineCounters:
    """Monotonic counters for the engine's hot paths."""

    __slots__ = (
        "homomorphisms_explored",
        "plans_compiled",
        "plan_components_evaluated",
        "plan_domains_pruned",
        "plan_existence_shortcircuits",
        "covers_enumerated",
        "coverings_evaluated",
        "recoveries_emitted",
        "facts_indexed",
        "instances_built",
        "instances_shared",
        "justification_hits",
        "justification_misses",
        "parallel_chunks",
        "parallel_fallbacks",
        "chunk_retries",
        "chunk_timeouts",
        "pool_restarts",
        "deadline_hits",
        "degradations",
    )

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        """Zero every counter (typically at the start of a CLI command)."""
        for name in self.__slots__:
            setattr(self, name, 0)

    def snapshot(self) -> dict[str, int]:
        """The current counter values plus cache statistics, as a dict.

        Cache hit/miss figures come from the LRU caches registered in
        :mod:`repro.engine.cache`, so new caches appear automatically.
        """
        values = {name: getattr(self, name) for name in self.__slots__}
        from .cache import registered_cache_stats

        values.update(registered_cache_stats())
        return values


#: The process-global counter set.
COUNTERS = EngineCounters()
