"""Universal and canonical solutions (Proposition 1).

A target instance ``J`` is a *universal solution* for a source ``I``
when it is a solution and maps homomorphically into every solution —
equivalently, into the canonical solution ``Chase(Sigma, I)``.  It is
a *canonical solution* when it is isomorphic to the chase result.  The
paper notes (§3) that both are justified solutions, and Proposition 1
states that deciding "is ``J`` a universal solution for *some*
source?" is NP-complete in ``|J|``.

The pairwise tests here are exact.  The existential test searches
sources among the inverse-chase candidates: every universal solution
is justified, so its source is reached by some covering of ``J``, and
the candidate whose final homomorphism grounds the backward instance
the same way is checked directly.
"""

from __future__ import annotations

from typing import Optional

from ..data.instances import Instance
from ..logic.homomorphisms import is_isomorphic, maps_into
from ..logic.tgds import Mapping
from ..chase.standard import chase, satisfies
from .covers import CoverMode
from .inverse_chase import inverse_chase_candidates


def is_universal_solution_for(
    mapping: Mapping, source: Instance, target: Instance
) -> bool:
    """Whether ``J`` is a universal solution for ``I`` under ``Sigma``."""
    if not satisfies(source, target, mapping):
        return False
    canonical = chase(mapping, source, dedup="frontier").result
    return maps_into(target, canonical)


def is_canonical_solution_for(
    mapping: Mapping, source: Instance, target: Instance
) -> bool:
    """Whether ``J`` is (isomorphic to) the canonical solution of ``I``.

    The canonical solution is the chase result with one firing per
    body homomorphism — the notion of [Gottlob & Nash] the paper cites.
    """
    return is_isomorphic(target, chase(mapping, source).result)


def find_universal_source(
    mapping: Mapping,
    target: Instance,
    *,
    cover_mode: CoverMode = "minimal",
    max_covers: Optional[int] = None,
    max_recoveries: Optional[int] = None,
) -> Optional[Instance]:
    """A source instance ``I`` for which ``J`` is a universal solution.

    Searches the recoveries produced by the inverse chase (every
    universal solution is justified, so candidate sources abound when
    one exists); returns ``None`` when no searched candidate works.
    The underlying decision problem is NP-complete (Proposition 1),
    and this search inherits the inverse chase's budgets.
    """
    seen: set[Instance] = set()
    for candidate in inverse_chase_candidates(
        mapping,
        target,
        cover_mode=cover_mode,
        max_covers=max_covers,
        max_recoveries=max_recoveries,
    ):
        recovery = candidate.recovery
        if recovery in seen:
            continue
        seen.add(recovery)
        if is_universal_solution_for(mapping, recovery, target):
            return recovery
    return None


def is_universal_solution_for_some_source(
    mapping: Mapping,
    target: Instance,
    **options,
) -> bool:
    """Proposition 1's decision, via :func:`find_universal_source`."""
    return find_universal_source(mapping, target, **options) is not None
