"""Subsumption constraints (Definitions 6-8 of the paper).

A *minimal subsumer* witnesses that triggering some dependencies during
source recovery inevitably triggers another one.  Formally, premises
``theta_1, ..., theta_n`` (instantiations of tgds of ``Sigma``) subsume
a conclusion ``theta_0`` (an instantiation of ``xi_0``) when

    theta_0(body(xi_0))  subseteq  theta_1(body(xi_1)) u ... u theta_n(body(xi_n))

subject to the paper's *uniqueness* condition: every variable occurring
only in the body of a premise is mapped to a unique fresh variable (a
**token** below) that nothing else may equal — except variables of
``xi_0``, which may be mapped onto tokens.  Tokens model the fresh
nulls the inverse chase invents for body-only variables.

Two readings reconciled with the paper's examples:

* Premises may instantiate the *same* tgd several times, and the
  conclusion tgd may coincide with a premise tgd — Example 8's single
  self-joining constraint requires both.
* Constraints whose conclusion pattern is guaranteed by the premises
  themselves (e.g. the identity instantiation) are *tautological* and
  removed, which is exactly what Example 5 does.  Tautology is decided
  by evaluating the constraint on the generic instantiation of its own
  premises; a canonical-instance argument shows this test is exact.

``SUB(Sigma)`` is the set of non-tautological minimal subsumers.  A set
``H subseteq HOM(Sigma, J)`` *models* a constraint (Definition 8) when
every consistent matching of the premise patterns by homomorphisms of
``H`` is accompanied by a conclusion homomorphism in ``H``; token
positions of the conclusion are existential.
"""

from __future__ import annotations

from itertools import combinations_with_replacement, product
from typing import Iterable, Optional, Sequence

from ..data.atoms import Atom
from ..data.substitutions import Substitution
from ..data.terms import Constant, Term, Variable
from ..engine.cache import PartitionedLRUCache
from ..engine.config import CONFIG
from ..errors import BudgetExceededError
from ..logic.tgds import TGD, Mapping
from ..observability.spans import TRACER
from .hom_sets import TargetHomomorphism

# Prefix marking token variables; "!" cannot appear in parsed variable
# names, so tokens never collide with dependency variables.
_TOKEN_PREFIX = "!"


def _is_token(term: Term) -> bool:
    return isinstance(term, Variable) and term.name.startswith(_TOKEN_PREFIX)


class SubsumptionConstraint:
    """One constraint ``theta_1, ..., theta_n -> theta_0``.

    Every ``theta`` maps the variables of its tgd to *scene terms*:
    constants, shared class variables, or rigid tokens (variables whose
    name starts with ``!``).
    """

    __slots__ = ("_premises", "_conclusion", "_key")

    def __init__(
        self,
        premises: Sequence[tuple[TGD, Substitution]],
        conclusion: tuple[TGD, Substitution],
    ):
        premises = tuple(premises)
        object.__setattr__(self, "_premises", premises)
        object.__setattr__(self, "_conclusion", conclusion)
        object.__setattr__(
            self,
            "_key",
            (
                tuple((t, s) for t, s in premises),
                conclusion,
            ),
        )

    @property
    def premises(self) -> tuple[tuple[TGD, Substitution], ...]:
        """The premise instantiations ``(xi_i, theta_i)``."""
        return self._premises

    @property
    def conclusion(self) -> tuple[TGD, Substitution]:
        """The conclusion instantiation ``(xi_0, theta_0)``."""
        return self._conclusion

    @property
    def conclusion_tgd(self) -> TGD:
        return self._conclusion[0]

    def tokens(self) -> set[Variable]:
        """All rigid token variables appearing in the constraint."""
        found: set[Variable] = set()
        for _, theta in (*self._premises, self._conclusion):
            for value in theta.values():
                if _is_token(value):
                    found.add(value)
        return found

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SubsumptionConstraint):
            return NotImplemented
        return self._key == other._key

    def __hash__(self) -> int:
        return hash(self._key)

    def __repr__(self) -> str:
        def fmt(part: tuple[TGD, Substitution]) -> str:
            tgd, theta = part
            return f"{tgd.name}{theta}"

        left = ", ".join(fmt(p) for p in self._premises)
        return f"{left} => {fmt(self._conclusion)}"

    def __reduce__(self):
        return (SubsumptionConstraint, (self._premises, self._conclusion))

    def __setattr__(self, name, value):  # pragma: no cover - guard
        raise AttributeError("SubsumptionConstraint is immutable")


# ---------------------------------------------------------------------------
# Search for minimal subsumers: a unification CSP over the "scene".
# ---------------------------------------------------------------------------


class _Scene:
    """The premise copies and the union-find the embedding search runs on.

    Node kinds: constants and tokens are *rigid*; premise head
    variables are *flexible* (may become constants or merge with each
    other, but never equal a token); conclusion variables are *free*
    (may take any value, including tokens).
    """

    def __init__(self) -> None:
        self.parent: dict[Term, Term] = {}
        self.flexible: set[Term] = set()

    def add(self, term: Term, *, flexible: bool = False) -> None:
        if term not in self.parent:
            self.parent[term] = term
            if flexible:
                self.flexible.add(term)

    def find(self, term: Term) -> Term:
        # No path compression: the backtracking search undoes unions
        # from a log of the exact parent-pointer writes, and compression
        # would introduce writes the log never sees.
        root = term
        while self.parent[root] != root:
            root = self.parent[root]
        return root

    def _rigid(self, root: Term) -> Optional[Term]:
        if isinstance(root, Constant) or _is_token(root):
            return root
        return None

    def _class_has_flexible(self, root: Term) -> bool:
        return root in self.flexible

    def union(self, a: Term, b: Term) -> Optional[list[tuple[Term, Term, bool]]]:
        """Merge the classes of ``a`` and ``b``.

        Returns an undo log on success, ``None`` on constraint failure
        (two distinct rigid values, or a token meeting a flexible var).
        """
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return []
        rigid_a, rigid_b = self._rigid(ra), self._rigid(rb)
        if rigid_a is not None and rigid_b is not None:
            return None
        # Keep the rigid representative as the root.
        if rigid_b is not None:
            ra, rb = rb, ra
            rigid_a, rigid_b = rigid_b, rigid_a
        flex_a = self._class_has_flexible(ra)
        flex_b = self._class_has_flexible(rb)
        if rigid_a is not None and _is_token(rigid_a) and (flex_a or flex_b):
            return None
        log: list[tuple[Term, Term, bool]] = []
        log.append((rb, self.parent[rb], rb in self.flexible))
        self.parent[rb] = ra
        if flex_b and ra not in self.flexible:
            log.append((ra, self.parent[ra], False))
            self.flexible.add(ra)
        self.flexible.discard(rb)
        return log

    def undo(self, log: list[tuple[Term, Term, bool]]) -> None:
        for term, parent, was_flexible in reversed(log):
            self.parent[term] = parent
            if was_flexible:
                self.flexible.add(term)
            else:
                self.flexible.discard(term)


def _premise_copy(tgd: TGD, copy_index: int) -> tuple[TGD, Substitution]:
    """Instantiate one premise copy: fresh flexible vars and tokens."""
    renaming: dict[Term, Term] = {}
    body_only = tgd.body_only_variables
    for var in sorted(tgd.variables):
        if var in body_only:
            renaming[var] = Variable(f"{_TOKEN_PREFIX}{var.name}@{copy_index}")
        else:
            renaming[var] = Variable(f"{var.name}@{copy_index}")
    return tgd, Substitution(renaming)


def _solve_embeddings(
    conclusion_tgd: TGD,
    premise_copies: Sequence[tuple[TGD, Substitution]],
) -> Iterable[tuple[dict[Term, Term], list[int]]]:
    """All embeddings of ``body(xi_0)`` into the premise scene.

    Yields ``(resolution, atom_premises)`` where ``resolution`` maps
    every node to its class representative and ``atom_premises[k]`` is
    the premise index the ``k``-th body atom was matched into.
    """
    scene = _Scene()
    scene_atoms: list[tuple[int, Atom]] = []
    for i, (tgd, theta) in enumerate(premise_copies):
        for var in tgd.variables:
            image = theta.image(var)
            scene.add(image, flexible=not _is_token(image))
        for body_atom in tgd.body:
            scene_atoms.append((i, theta.apply_atom(body_atom)))
    for _, placed in scene_atoms:
        for arg in placed.args:
            scene.add(arg)
    for var in conclusion_tgd.variables:
        scene.add(var)
    for atom_ in conclusion_tgd.body + conclusion_tgd.head:
        for arg in atom_.args:
            scene.add(arg)

    body = list(conclusion_tgd.body)
    choice: list[int] = [0] * len(body)

    def backtrack(k: int) -> Iterable[tuple[dict[Term, Term], list[int]]]:
        if k == len(body):
            resolution = {node: scene.find(node) for node in scene.parent}
            yield resolution, list(choice)
            return
        pattern = body[k]
        for premise_index, placed in scene_atoms:
            if placed.relation != pattern.relation or placed.arity != pattern.arity:
                continue
            logs: list[list[tuple[Term, Term, bool]]] = []
            failed = False
            for p_arg, s_arg in zip(pattern.args, placed.args):
                log = scene.union(p_arg, s_arg)
                if log is None:
                    failed = True
                    break
                logs.append(log)
            if not failed:
                choice[k] = premise_index
                yield from backtrack(k + 1)
            for log in reversed(logs):
                scene.undo(log)

    yield from backtrack(0)


def _essential_premises(
    conclusion_tgd: TGD,
    premise_copies: Sequence[tuple[TGD, Substitution]],
    resolution: dict[Term, Term],
) -> bool:
    """Whether no premise copy can be dropped (Definition 6 minimality)."""

    def resolve_atom(a: Atom) -> Atom:
        return a.map_terms(lambda t: resolution.get(t, t))

    conclusion_atoms = {
        resolve_atom(a) for a in conclusion_tgd.body
    }
    images: list[set[Atom]] = []
    for tgd, theta in premise_copies:
        images.append({resolve_atom(theta.apply_atom(a)) for a in tgd.body})
    for i in range(len(premise_copies)):
        rest: set[Atom] = set()
        for j, image in enumerate(images):
            if j != i:
                rest |= image
        if conclusion_atoms <= rest:
            return False
    return True


def _canonical_constraint(
    conclusion_tgd: TGD,
    premise_copies: Sequence[tuple[TGD, Substitution]],
    resolution: dict[Term, Term],
) -> SubsumptionConstraint:
    """Build the constraint with classes renamed canonically.

    Class representatives become ``r1, r2, ...`` and tokens ``!t1, ...``
    in order of first appearance, so that structurally equal solutions
    deduplicate and output is deterministic.
    """
    names: dict[Term, Term] = {}

    def canon(term: Term) -> Term:
        root = resolution.get(term, term)
        if isinstance(root, Constant):
            return root
        if root not in names:
            if _is_token(root):
                names[root] = Variable(f"{_TOKEN_PREFIX}t{len(names) + 1}")
            else:
                names[root] = Variable(f"r{len(names) + 1}")
        return names[root]

    parts: list[tuple[TGD, Substitution]] = []
    for tgd, theta in premise_copies:
        mapping = {
            var: canon(theta.image(var)) for var in sorted(tgd.variables)
        }
        parts.append((tgd, Substitution(mapping)))
    conclusion_map: dict[Term, Term] = {}
    head_only = conclusion_tgd.existential_variables
    token_count = [0]
    for var in sorted(conclusion_tgd.variables):
        if var in head_only and resolution.get(var, var) == var:
            # Unconstrained conclusion variables (existential in the
            # head) are free: model them as fresh tokens.
            token_count[0] += 1
            conclusion_map[var] = Variable(
                f"{_TOKEN_PREFIX}z{token_count[0]}"
            )
        else:
            conclusion_map[var] = canon(var)
    conclusion = (conclusion_tgd, Substitution(conclusion_map))
    parts.sort(key=lambda p: (p[0].name or "", repr(p[1])))
    return SubsumptionConstraint(parts, conclusion)


#: Memo for ``SUB(Sigma)``.  The constraint derivation depends only on
#: the mapping, so the inverse chase pays it once per scenario instead
#: of once per call (see ``CONFIG.memoize_subsumers``).
_SUBSUMERS_CACHE = PartitionedLRUCache(
    "subsumers", maxsize=CONFIG.subsumers_cache_size
)


def minimal_subsumers(
    mapping: Mapping,
    max_premises: Optional[int] = None,
    limit: int = 10000,
) -> list[SubsumptionConstraint]:
    """All minimal subsumption constraints of ``Sigma`` (Definitions 6-7).

    ``max_premises`` caps the number of premise instantiations per
    constraint; it defaults to the size of the largest tgd body, which
    is always sufficient for minimal constraints (every premise must
    contribute an atom nothing else covers).

    :raises BudgetExceededError: when more than ``limit`` constraints
        are generated (the search is exponential in ``|Sigma|``, which
        the paper treats as a constant).
    """
    def compute() -> list[SubsumptionConstraint]:
        with TRACER.span("core.subsumption.derive", aggregate=True):
            return _derive_subsumers(mapping, max_premises, limit)

    if not CONFIG.memoize_subsumers:
        return list(compute())
    _SUBSUMERS_CACHE.resize(CONFIG.subsumers_cache_size)
    return list(
        _SUBSUMERS_CACHE.get_or_compute((mapping, max_premises, limit), compute)
    )


def _derive_subsumers(
    mapping: Mapping,
    max_premises: Optional[int],
    limit: int,
) -> tuple[SubsumptionConstraint, ...]:
    constraints: dict[SubsumptionConstraint, None] = {}
    for conclusion_tgd in mapping:
        cap = len(conclusion_tgd.body)
        if max_premises is not None:
            cap = min(cap, max_premises)
        for n in range(1, cap + 1):
            for combo in combinations_with_replacement(mapping.tgds, n):
                copies = [
                    _premise_copy(tgd, i + 1) for i, tgd in enumerate(combo)
                ]
                for resolution, _ in _solve_embeddings(conclusion_tgd, copies):
                    if not _essential_premises(conclusion_tgd, copies, resolution):
                        continue
                    constraint = _canonical_constraint(
                        conclusion_tgd, copies, resolution
                    )
                    if is_tautological(constraint):
                        continue
                    constraints[constraint] = None
                    if len(constraints) > limit:
                        raise BudgetExceededError(
                            "subsumption constraints", limit
                        )
    return tuple(constraints)


# ---------------------------------------------------------------------------
# Definition 8: model checking H |= constraint.
# ---------------------------------------------------------------------------


def _premise_profile(
    tgd: TGD, theta: Substitution
) -> tuple[list[tuple[Term, Term]], list[tuple[Term, Constant]]]:
    """Split a premise's head variables into class and constant positions."""
    class_positions: list[tuple[Term, Term]] = []
    const_positions: list[tuple[Term, Constant]] = []
    for var in sorted(tgd.head_variables):
        scene = theta.image(var)
        if isinstance(scene, Constant):
            const_positions.append((var, scene))
        elif not _is_token(scene):
            class_positions.append((var, scene))
    return class_positions, const_positions


def _premise_matchings(
    constraint: SubsumptionConstraint,
    by_tgd: dict[TGD, list[TargetHomomorphism]],
) -> Iterable[dict[Term, Term]]:
    """All consistent class-value assignments matching the premises in H.

    Implemented as an indexed join: each premise's homomorphisms are
    bucketed by their values on the classes already bound by earlier
    premises, so only consistent combinations are ever enumerated —
    on self-join constraints (Example 8) this turns the quadratic
    product into per-join-key work.
    """
    premises = list(constraint.premises)
    pools = [by_tgd.get(tgd, []) for tgd, _ in premises]
    if any(not pool for pool in pools):
        return
    profiles = [_premise_profile(tgd, theta) for tgd, theta in premises]

    # Pre-filter each pool by its constant positions.
    filtered: list[list[TargetHomomorphism]] = []
    for pool, (class_pos, const_pos) in zip(pools, profiles):
        filtered.append(
            [
                hom
                for hom in pool
                if all(hom.image(var) == value for var, value in const_pos)
                # Repeated classes within one premise must be consistent.
                and _self_consistent(hom, class_pos)
            ]
        )
        if not filtered[-1]:
            return

    # Join order: as given; index premise i by the classes shared with
    # the prefix assignment.
    bound_classes: set[Term] = set()
    shared_keys: list[list[tuple[Term, Term]]] = []
    for class_pos, _ in profiles:
        shared = [(var, scene) for var, scene in class_pos if scene in bound_classes]
        shared_keys.append(shared)
        bound_classes |= {scene for _, scene in class_pos}

    indexes: list[dict[tuple[Term, ...], list[TargetHomomorphism]]] = []
    for pool, shared in zip(filtered, shared_keys):
        bucket: dict[tuple[Term, ...], list[TargetHomomorphism]] = {}
        for hom in pool:
            key = tuple(hom.image(var) for var, _ in shared)
            bucket.setdefault(key, []).append(hom)
        indexes.append(bucket)

    assignment: dict[Term, Term] = {}

    def join(i: int) -> Iterable[dict[Term, Term]]:
        if i == len(premises):
            yield dict(assignment)
            return
        class_pos, _ = profiles[i]
        key = tuple(assignment[scene] for _, scene in shared_keys[i])
        for hom in indexes[i].get(key, []):
            added: list[Term] = []
            ok = True
            for var, scene in class_pos:
                value = hom.image(var)
                known = assignment.get(scene)
                if known is None:
                    assignment[scene] = value
                    added.append(scene)
                elif known != value:
                    ok = False
                    break
            if ok:
                yield from join(i + 1)
            for scene in added:
                del assignment[scene]

    yield from join(0)


def _self_consistent(
    hom: TargetHomomorphism, class_positions: list[tuple[Term, Term]]
) -> bool:
    """Whether a homomorphism assigns one value per class it touches."""
    seen: dict[Term, Term] = {}
    for var, scene in class_positions:
        value = hom.image(var)
        known = seen.get(scene)
        if known is None:
            seen[scene] = value
        elif known != value:
            return False
    return True


def _conclusion_index(
    constraint: SubsumptionConstraint,
    by_tgd: dict[TGD, Sequence[TargetHomomorphism]],
) -> tuple[list[Term], frozenset[tuple[Term, ...]]]:
    """Precompute the conclusion lookup: class-variable positions and the
    set of class-value tuples realized by some admissible homomorphism.

    A homomorphism is admissible when it matches the conclusion's
    constants and assigns equal values wherever the conclusion repeats
    a token; its key is its value tuple at the class positions.  The
    Definition 8 conclusion check then reduces to one set lookup per
    premise matching.
    """
    tgd0, theta0 = constraint.conclusion
    class_vars: list[tuple[Term, Term]] = []  # (head var, class scene term)
    const_vars: list[tuple[Term, Constant]] = []
    token_vars: list[tuple[Term, Term]] = []
    for var in sorted(tgd0.head_variables):
        scene = theta0.image(var)
        if isinstance(scene, Constant):
            const_vars.append((var, scene))
        elif _is_token(scene):
            token_vars.append((var, scene))
        else:
            class_vars.append((var, scene))
    keys: set[tuple[Term, ...]] = set()
    for hom in by_tgd.get(tgd0, []):
        if any(hom.image(var) != value for var, value in const_vars):
            continue
        token_binding: dict[Term, Term] = {}
        consistent = True
        for var, token in token_vars:
            value = hom.image(var)
            known = token_binding.get(token)
            if known is None:
                token_binding[token] = value
            elif known != value:
                consistent = False
                break
        if not consistent:
            continue
        keys.add(tuple(hom.image(var) for var, _ in class_vars))
    return [scene for _, scene in class_vars], frozenset(keys)


def _conclusion_holds(
    class_scenes: list[Term],
    keys: frozenset[tuple[Term, ...]],
    assignment: dict[Term, Term],
) -> bool:
    wanted = []
    for scene in class_scenes:
        value = assignment.get(scene)
        if value is None:
            return False
        wanted.append(value)
    return tuple(wanted) in keys


def _group_by_tgd(
    homs: Sequence[TargetHomomorphism],
) -> dict[TGD, list[TargetHomomorphism]]:
    grouped: dict[TGD, list[TargetHomomorphism]] = {}
    for hom in homs:
        grouped.setdefault(hom.tgd, []).append(hom)
    return grouped


def models_constraint(
    homs: Sequence[TargetHomomorphism],
    constraint: SubsumptionConstraint,
    conclusion_pool: Optional[Sequence[TargetHomomorphism]] = None,
    *,
    by_tgd: Optional[dict[TGD, list[TargetHomomorphism]]] = None,
) -> bool:
    """``H |= constraint`` (Definition 8).

    With ``conclusion_pool`` the conclusion homomorphism is sought in
    that pool instead of in ``H`` itself.  Passing ``HOM(Sigma, J)``
    turns the check into a *refutation* test: when even the full
    homomorphism set contains no conclusion match, no covering
    extending ``H`` can model the constraint, so ``H`` is hopeless.
    The inverse chase uses this weaker test with minimal covers —
    the strict Definition 8 check can reject a minimal covering whose
    SUB-closure (a non-minimal covering) is perfectly sound.

    ``by_tgd`` accepts a precomputed grouping of ``homs`` (see
    :func:`models_all`), sparing the per-constraint rebucketing when
    one set ``H`` is checked against many constraints.
    """
    if by_tgd is None:
        by_tgd = _group_by_tgd(homs)
    if conclusion_pool is None:
        conclusion_by_tgd: dict[TGD, Sequence[TargetHomomorphism]] = by_tgd
    else:
        conclusion_by_tgd = _group_by_tgd(conclusion_pool)
    class_scenes, keys = _conclusion_index(constraint, conclusion_by_tgd)
    for assignment in _premise_matchings(constraint, by_tgd):
        if not _conclusion_holds(class_scenes, keys, assignment):
            return False
    return True


def models_all(
    homs: Sequence[TargetHomomorphism],
    constraints: Iterable[SubsumptionConstraint],
    conclusion_pool: Optional[Sequence[TargetHomomorphism]] = None,
) -> bool:
    """``H |= SUB(Sigma)``: conjunction over all constraints.

    ``H`` is bucketed by tgd once, up front, instead of once per
    constraint — the covering loop of the inverse chase checks every
    covering against the full ``SUB(Sigma)``, so the grouping cost is
    paid per covering rather than per (covering, constraint) pair.
    """
    homs = list(homs)
    grouped = _group_by_tgd(homs)
    return all(
        models_constraint(homs, c, conclusion_pool, by_tgd=grouped)
        for c in constraints
    )


def is_tautological(constraint: SubsumptionConstraint) -> bool:
    """Whether every set ``H`` models the constraint.

    Exact test: instantiate the premises generically (a distinct fresh
    constant per class) and check the constraint against the resulting
    homomorphism set.  A canonical-instance argument shows the generic
    set models the constraint iff every set does: any concrete premise
    matching factors through the generic one, carrying the conclusion
    homomorphism along.
    """
    generic: dict[Term, Constant] = {}

    def value_of(scene: Term) -> Term:
        if isinstance(scene, Constant):
            return scene
        if scene not in generic:
            generic[scene] = Constant(f"@g{len(generic) + 1}")
        return generic[scene]

    homs: list[TargetHomomorphism] = []
    for tgd, theta in constraint.premises:
        binding = {
            var: value_of(theta.image(var)) for var in sorted(tgd.head_variables)
        }
        homs.append(TargetHomomorphism(tgd, Substitution(binding)))
    return models_constraint(homs, constraint)
