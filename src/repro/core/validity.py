"""The J-validity decision problem (Theorem 3).

``J`` is valid for recovery under ``Sigma`` iff some source instance
justifies it — equivalently (proof of Theorem 3) iff some covering
``H in COV(Sigma, J)`` models ``SUB(Sigma)`` and survives the
homomorphism gate of Definition 9.  The problem is NP-complete in
``|J|``; the procedures below are the natural guess-and-check search
with early exit, plus cheap necessary conditions used as fast paths.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..data.atoms import Atom
from ..data.instances import Instance
from ..data.terms import Variable
from ..logic.tgds import Mapping
from ..observability.spans import TRACER
from ..resilience import Deadline
from .covers import CoverMode, is_coverable
from .hom_sets import hom_set
from .inverse_chase import inverse_chase_candidates
from .subsumption import SubsumptionConstraint


def _head_atoms_can_cover(mapping: Mapping, target: Instance) -> bool:
    """Cheap necessary condition for coverability, checked per relation.

    A target fact can only be covered by instantiating some tgd head
    atom, which requires the relation and arity to match and every
    non-variable head argument to equal the fact's argument.  This
    unification test is linear in ``|J|`` times the (fixed, small)
    number of head atoms, so it rejects hopeless targets without
    computing ``HOM(Sigma, J)`` at all.
    """

    def unifies(head_atom: Atom, fact: Atom) -> bool:
        return all(
            isinstance(h, Variable) or h == f
            for h, f in zip(head_atom.args, fact.args)
        )

    by_relation: dict[tuple[str, int], list[Atom]] = {}
    for tgd in mapping:
        for head_atom in tgd.head:
            by_relation.setdefault(
                (head_atom.relation, head_atom.arity), []
            ).append(head_atom)
    for fact in target.facts:
        producers = by_relation.get((fact.relation, fact.arity), ())
        if not any(unifies(head_atom, fact) for head_atom in producers):
            return False
    return True


def is_valid_for_recovery(
    mapping: Mapping,
    target: Instance,
    *,
    cover_mode: CoverMode = "minimal",
    subsumption: Optional[Sequence[SubsumptionConstraint]] = None,
    max_covers: Optional[int] = None,
    deadline: Optional[Deadline] = None,
) -> bool:
    """Decide whether ``J`` is valid for recovery under ``Sigma``.

    Fast path: if ``HOM(Sigma, J)`` does not even cover ``J``, no
    covering exists and the answer is immediately negative.  Otherwise
    the inverse chase is run lazily and stopped at the first emitted
    recovery.

    ``deadline`` bounds the search cooperatively; J-validity is
    NP-complete (Theorem 3), and expiry raises
    :class:`~repro.errors.DeadlineExceededError` — the question stays
    genuinely undecided, so there is no sound degraded answer to give.
    """
    with TRACER.span("core.validity"):
        if target.is_empty:
            # The empty target is justified by the empty source: there
            # are no triggers and the empty instance is its own minimal
            # solution.
            return True
        if not _head_atoms_can_cover(mapping, target):
            return False
        if not is_coverable(hom_set(mapping, target, deadline), target):
            return False
        for _ in inverse_chase_candidates(
            mapping,
            target,
            cover_mode=cover_mode,
            subsumption=subsumption,
            max_covers=max_covers,
            deadline=deadline,
        ):
            return True
        return False


def find_recovery(
    mapping: Mapping,
    target: Instance,
    *,
    cover_mode: CoverMode = "minimal",
    subsumption: Optional[Sequence[SubsumptionConstraint]] = None,
    max_covers: Optional[int] = None,
    deadline: Optional[Deadline] = None,
) -> Optional[Instance]:
    """A witness recovery for ``J``, or ``None`` when ``J`` is invalid."""
    for candidate in inverse_chase_candidates(
        mapping,
        target,
        cover_mode=cover_mode,
        subsumption=subsumption,
        max_covers=max_covers,
        deadline=deadline,
    ):
        return candidate.recovery
    return None
