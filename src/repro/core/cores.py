"""Cores of instances.

The *core* of an instance is its smallest retract: a sub-instance the
whole instance maps into homomorphically, containing no smaller such
sub-instance.  Cores are the canonical representatives of homomorphic
equivalence classes — two instances are homomorphically equivalent iff
their cores are isomorphic — which makes them the natural minimal
presentation of the recoveries the inverse chase produces (recoveries
frequently carry homomorphically-redundant generic rows such as the
``R(X2, X3, c)`` of Example 7).

Computing the core is itself NP-hard in general; the standard
fact-elimination algorithm below is exact and fast on the small,
sparsely-nulled instances recovery produces.
"""

from __future__ import annotations

from typing import Optional

from ..data.instances import Instance
from ..logic.homomorphisms import homomorphisms, is_isomorphic, maps_into


def _retract_without(instance: Instance, fact) -> Optional[Instance]:
    """A retract of ``instance`` avoiding ``fact``, or ``None``.

    Seeks an endomorphism of the instance whose image omits ``fact``;
    the image (a proper retract) is returned.
    """
    smaller = instance.without_facts([fact])
    for hom in homomorphisms(list(instance.facts), smaller):
        return instance.apply(hom)
    return None


def core(instance: Instance) -> Instance:
    """The core of ``instance`` (unique up to null renaming).

    Iteratively folds the instance onto proper retracts until no fact
    can be eliminated.  Ground instances are their own cores.
    """
    current = instance
    changed = True
    while changed:
        changed = False
        for fact in sorted(current.facts):
            if fact.is_ground:
                continue
            retract = _retract_without(current, fact)
            if retract is not None:
                current = retract
                changed = True
                break
    return current


def is_core(instance: Instance) -> bool:
    """Whether the instance admits no proper retract."""
    return len(core(instance)) == len(instance)


def cores_isomorphic(left: Instance, right: Instance) -> bool:
    """Homomorphic equivalence, decided through core isomorphism."""
    return is_isomorphic(core(left), core(right))


def core_recoveries(recoveries: list[Instance]) -> list[Instance]:
    """Minimal presentation of a recovery set.

    Replaces every recovery by its core and drops duplicates (up to
    isomorphism) and entries another entry already maps into — the
    result is homomorphically equivalent to the input set, so UCQ
    certain answers computed over it are unchanged (Theorem 2's
    criterion).
    """
    cored = [core(recovery) for recovery in recoveries]
    kept: list[Instance] = []
    for candidate in sorted(cored, key=len):
        # A kept instance mapping into the candidate makes it redundant:
        # monotone answers of the kept one are a subset wherever the
        # candidate would constrain the intersection.
        if any(maps_into(existing, candidate) for existing in kept):
            continue
        kept.append(candidate)
    return kept
