"""The instance-based recovery semantics (Definitions 1-3).

This module implements the paper's semantics *directly from the
definitions*, independently of the inverse chase, so the rest of the
library (and the test suite) can verify candidate recoveries against
an oracle that does not share code with the algorithm under test.

* :func:`is_minimal_solution` — Definition 1.
* :func:`is_justified` — Definition 2: ``(I, J) |= Sigma`` and ``J``
  maps homomorphically into some minimal solution for ``I``.
* :func:`is_recovery` — Definition 3 membership test for
  ``REC(Sigma, J)``.

Deciding justification requires searching over minimal solutions.
Every minimal solution is the image ``g(Chase(Sigma, I))`` of the
canonical solution under some specialization ``g`` of its nulls, and a
renaming argument bounds the useful codomain by
``dom(J) u nulls(Chase(Sigma, I))``.  Rather than enumerating all
``g`` blindly, :func:`is_justified` runs a *placement search*: it maps
each fact of ``J`` onto a fact of the canonical chase, accumulating
the null specializations those placements force, and only then
enumerates completions for the remaining free nulls (needed because
collapsing an unused witness can be what makes the image minimal).
The overall problem is NP-hard (Theorem 3), so the completion phase
carries a budget.
"""

from __future__ import annotations

from itertools import product
from typing import TYPE_CHECKING, Iterator, Optional

if TYPE_CHECKING:  # pragma: no cover - annotation only, no runtime import
    from ..resilience.deadline import Deadline

from ..data.atoms import Atom
from ..data.instances import Instance
from ..data.terms import Constant, Null, Term
from ..errors import BudgetExceededError
from ..logic.homomorphisms import maps_into
from ..logic.tgds import Mapping
from ..chase.standard import chase, satisfies


def is_minimal_solution(mapping: Mapping, source: Instance, target: Instance) -> bool:
    """Definition 1: ``(I, J) |= Sigma`` and no proper subset of ``J`` is a model."""
    if not satisfies(source, target, mapping):
        return False
    for fact in target.facts:
        if satisfies(source, target.without_facts([fact]), mapping):
            return False
    return True


def minimal_solution_images(
    mapping: Mapping,
    source: Instance,
    target: Instance,
    *,
    max_search: int = 200000,
) -> Iterator[Instance]:
    """All minimal solutions for ``source`` relevant to justifying ``target``.

    Brute-force reference enumeration: homomorphic images of the
    canonical solution ``Chase(Sigma, I)`` with null images drawn from
    ``dom(J) u nulls(Chase(Sigma, I))``, filtered for minimality.  Up
    to a renaming of values outside ``dom(J)`` — which affects neither
    minimality nor the existence of a homomorphism from ``J`` — every
    minimal solution appears.  Used as an oracle in tests;
    :func:`is_justified` uses the faster placement search.

    :raises BudgetExceededError: when the search space exceeds
        ``max_search`` assignments.
    """
    canonical = chase(mapping, source, dedup="frontier").result
    chase_nulls = sorted(canonical.nulls())
    codomain = sorted(set(target.domain()) | set(chase_nulls))
    space = max(1, len(codomain)) ** len(chase_nulls)
    if space > max_search:
        raise BudgetExceededError("minimal-solution search", max_search)
    seen: set[Instance] = set()
    for images in product(codomain, repeat=len(chase_nulls)):
        g = dict(zip(chase_nulls, images))
        candidate = canonical.apply(g)
        if candidate in seen:
            continue
        seen.add(candidate)
        if is_minimal_solution(mapping, source, candidate):
            yield candidate


class _Specialization:
    """A union-find over the canonical chase's nulls with value bindings.

    Placement forces equalities between chase nulls and bindings of
    chase nulls to constants (or to nulls of ``J``, which behave like
    constants here: they are rigid values of the target).
    """

    def __init__(self) -> None:
        self.parent: dict[Term, Term] = {}
        self.value: dict[Term, Term] = {}
        self.trail: list[tuple[str, Term, Optional[Term]]] = []

    def _ensure(self, null: Term) -> None:
        if null not in self.parent:
            self.parent[null] = null

    def find(self, null: Term) -> Term:
        self._ensure(null)
        root = null
        while self.parent[root] != root:
            root = self.parent[root]
        return root

    def resolved(self, term: Term) -> Term:
        """The current value of a chase term (itself when unbound)."""
        if not isinstance(term, Null):
            return term
        root = self.find(term)
        return self.value.get(root, root)

    def mark(self) -> int:
        return len(self.trail)

    def rollback(self, mark: int) -> None:
        while len(self.trail) > mark:
            kind, key, old = self.trail.pop()
            if kind == "parent":
                self.parent[key] = old  # type: ignore[assignment]
            else:
                if old is None:
                    self.value.pop(key, None)
                else:
                    self.value[key] = old

    def bind(self, null: Term, value: Term) -> bool:
        """Bind a chase null to a rigid value; False on conflict."""
        root = self.find(null)
        current = self.value.get(root)
        if current is not None:
            return current == value
        self.trail.append(("value", root, None))
        self.value[root] = value
        return True

    def equate(self, left: Term, right: Term) -> bool:
        """Force two chase nulls to share a value; False on conflict."""
        ra, rb = self.find(left), self.find(right)
        if ra == rb:
            return True
        va, vb = self.value.get(ra), self.value.get(rb)
        if va is not None and vb is not None and va != vb:
            return False
        self.trail.append(("parent", rb, self.parent[rb]))
        self.parent[rb] = ra
        if va is None and vb is not None:
            self.trail.append(("value", ra, None))
            self.value[ra] = vb
        return True


def _source_triggers(mapping: Mapping, source: Instance):
    """All triggers of the source: ``(tgd, frontier binding)`` pairs."""
    from ..logic.homomorphisms import homomorphisms

    triggers = []
    for tgd in mapping:
        frontier = tgd.frontier_variables
        seen = set()
        for hom in homomorphisms(tgd.body, source):
            base = hom.restrict(frontier)
            if base in seen:
                continue
            seen.add(base)
            triggers.append((tgd, base))
    return triggers


def _is_minimal_image(triggers, image: Instance) -> bool:
    """Whether ``image`` is a minimal solution for the precomputed triggers.

    A fact is *needed* when some trigger's every witness extension uses
    it; the image is a minimal solution when every trigger has a
    witness and every fact is needed.
    """
    from ..logic.homomorphisms import homomorphisms

    needed: set[Atom] = set()
    for tgd, base in triggers:
        witness_sets = []
        for hom in homomorphisms(tgd.head, image, base=dict(base)):
            witness_sets.append(frozenset(hom.apply_atoms(tgd.head)))
        if not witness_sets:
            return False  # not even a solution
        core = frozenset.intersection(*witness_sets)
        needed |= core
    return needed == image.facts


def _place_fact(
    fact: Atom,
    candidate: Atom,
    spec: _Specialization,
    j_binding: dict[Term, Term],
    bound_j_nulls: list[Term],
) -> bool:
    """Try to map one fact of ``J`` onto one canonical-chase fact.

    ``j_binding`` maps nulls of ``J`` to the chase term (possibly an
    unbound chase null) they must equal; chase nulls meeting constants
    of ``J`` get value-bound in ``spec``.
    """
    if fact.relation != candidate.relation or fact.arity != candidate.arity:
        return False
    for j_arg, c_arg in zip(fact.args, candidate.args):
        if isinstance(j_arg, Null):
            known = j_binding.get(j_arg)
            if known is None:
                j_binding[j_arg] = c_arg
                bound_j_nulls.append(j_arg)
                continue
            # The same J-null placed twice: the two chase positions
            # must end up equal.
            if isinstance(known, Null) and isinstance(c_arg, Null):
                if not spec.equate(known, c_arg):
                    return False
            elif isinstance(known, Null):
                if not spec.bind(known, c_arg):
                    return False
            elif isinstance(c_arg, Null):
                if not spec.bind(c_arg, known):
                    return False
            elif known != c_arg:
                return False
        else:
            if isinstance(c_arg, Null):
                if not spec.bind(c_arg, j_arg):
                    return False
            elif c_arg != j_arg:
                return False
    return True


def is_justified(
    mapping: Mapping,
    source: Instance,
    target: Instance,
    *,
    max_search: int = 200000,
    deadline: Optional["Deadline"] = None,
) -> bool:
    """Definition 2: ``J`` is justified by ``I`` under ``Sigma``.

    Checks (1) ``(I, J) |= Sigma`` and (2) ``J -> J'`` for some minimal
    solution ``J'`` with respect to ``Sigma`` and ``I``, via the
    placement search described in the module docstring.

    :raises BudgetExceededError: when the completion phase would exceed
        ``max_search`` assignments for some placement.
    :raises DeadlineExceededError: when ``deadline`` expires; each
        placement attempt and completion assignment charges one
        cooperative step, so a step budget bounds the whole search
        deterministically (``max_search`` alone still admits minutes of
        wall time on null-rich targets).
    """
    if not satisfies(source, target, mapping):
        return False
    if target.is_empty:
        # The empty target maps into any minimal solution, and every
        # source has one (a minimal image of its canonical chase).
        return True
    canonical = chase(mapping, source, dedup="frontier").result
    if canonical.is_empty:
        # A non-empty target cannot map into the only solution candidate.
        return False
    triggers = _source_triggers(mapping, source)
    if _is_minimal_image(triggers, target):
        # Fast path: J itself is a minimal solution, so J -> J trivially.
        return True

    facts = sorted(target.facts)
    spec = _Specialization()
    j_binding: dict[Term, Term] = {}
    codomain = sorted(set(target.domain()))
    seen_images: set[Instance] = set()
    budget = [max_search]

    def completions_ok() -> bool:
        """Enumerate completions of the unbound chase nulls; check
        minimality of each resulting image (identity first)."""
        roots = sorted({spec.find(n) for n in canonical.nulls()})
        free = [r for r in roots if r not in spec.value]
        for choice in product([None, *codomain], repeat=len(free)):
            if budget[0] <= 0:
                raise BudgetExceededError("justification completions", max_search)
            budget[0] -= 1
            if deadline is not None:
                # One completion costs O(|canonical|): map_terms rebuilds
                # every chase fact.  Charge accordingly so step budgets
                # calibrated on cheap enumeration steps stay honest here.
                deadline.step(1 + len(canonical), "justification completions")
            assignment: dict[Term, Term] = {}
            for root, value in zip(free, choice):
                if value is not None:
                    assignment[root] = value
            image = canonical.map_terms(
                lambda t: assignment.get(spec.find(t), spec.resolved(t))
                if isinstance(t, Null)
                else t
            )
            if image in seen_images:
                continue
            seen_images.add(image)
            if _is_minimal_image(triggers, image):
                return True
        return False

    def backtrack(index: int) -> bool:
        if index == len(facts):
            return completions_ok()
        fact = facts[index]
        for candidate in sorted(canonical.facts_for(fact.relation)):
            if deadline is not None:
                deadline.step(1, "justification placement")
            mark = spec.mark()
            bound: list[Term] = []
            if _place_fact(fact, candidate, spec, j_binding, bound):
                if backtrack(index + 1):
                    return True
            spec.rollback(mark)
            for null in bound:
                del j_binding[null]
        return False

    return backtrack(0)


def is_recovery(
    mapping: Mapping,
    source: Instance,
    target: Instance,
    *,
    max_search: int = 200000,
    deadline: Optional["Deadline"] = None,
) -> bool:
    """Definition 3: ``I in REC(Sigma, J)``.

    A source instance is a recovery when the target is justified by it.
    Note the paper's convention that an empty source never justifies a
    non-empty target: with no triggers the only minimal solution is
    empty, and a non-empty ``J`` has no homomorphism into it.
    """
    return is_justified(
        mapping, source, target, max_search=max_search, deadline=deadline
    )
