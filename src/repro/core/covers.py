"""Coverings of a target instance (Definition 5) and Theorem 6.

``COV(Sigma, J)`` is the set of all ``H subseteq HOM(Sigma, J)`` whose
covered facts equal ``J``.  The inverse chase ranges over coverings;
this module enumerates them.

Two enumeration modes are offered:

* ``minimal`` (default) — only inclusion-minimal coverings.  For UCQ
  certain answers this loses nothing: UCQs are monotone and every
  non-minimal covering's recovery contains a minimal covering's
  recovery (restrict the final homomorphism of Definition 9), so the
  intersection of answers is unchanged.  The equivalence is verified
  by a property test and by ablation benchmark E14.
* ``all`` — the full Definition 5, exponential in the number of
  redundant homomorphisms; used by the ablation and by the examples
  that follow the paper's text literally.

Enumeration is a classic set-cover branch: repeatedly pick an
uncovered fact with the fewest candidate homomorphisms and branch on
which of them covers it.
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterator, Literal, Optional, Sequence

from ..data.atoms import Atom
from ..data.instances import Instance
from ..observability.metrics import METRICS
from ..errors import BudgetExceededError
from ..resilience import Deadline
from .hom_sets import TargetHomomorphism, covered_by

CoverMode = Literal["minimal", "all"]


def coverage_index(
    homs: Sequence[TargetHomomorphism], target: Instance
) -> dict[Atom, list[int]]:
    """For every fact of ``J``, the indexes of the homomorphisms covering it."""
    index: dict[Atom, list[int]] = {fact: [] for fact in target.facts}
    for i, hom in enumerate(homs):
        for fact in hom.covered:
            if fact in index:
                index[fact].append(i)
    return index


def is_coverable(homs: Sequence[TargetHomomorphism], target: Instance) -> bool:
    """Whether ``HOM(Sigma, J)`` covers every fact of ``J`` at all."""
    return all(entry for entry in coverage_index(homs, target).values())


def _minimal_covers_indexes(
    homs: Sequence[TargetHomomorphism],
    target: Instance,
    limit: Optional[int],
    deadline: Optional[Deadline] = None,
) -> Iterator[frozenset[int]]:
    index = coverage_index(homs, target)
    if any(not entry for entry in index.values()):
        return

    emitted: set[frozenset[int]] = set()

    def progress() -> dict:
        return {"covers_seen": len(emitted)}

    def branch(chosen: frozenset[int], uncovered: set[Atom]) -> Iterator[frozenset[int]]:
        if deadline is not None:
            deadline.step(1, "covering enumeration", progress())
        if not uncovered:
            if any(previous <= chosen for previous in emitted):
                return
            if _is_minimal(chosen, homs, target):
                emitted.add(chosen)
                if limit is not None and len(emitted) > limit:
                    raise BudgetExceededError(
                        "covering enumeration",
                        limit,
                        partial=[
                            tuple(homs[i] for i in sorted(cover))
                            for cover in emitted
                        ],
                    )
                yield chosen
            return
        pivot = min(uncovered, key=lambda fact: len(index[fact]))
        for i in index[pivot]:
            if i in chosen:
                continue
            newly = set(homs[i].covered) & uncovered
            yield from branch(chosen | {i}, uncovered - newly)

    yield from branch(frozenset(), set(target.facts))


def _is_minimal(
    chosen: frozenset[int],
    homs: Sequence[TargetHomomorphism],
    target: Instance,
) -> bool:
    """Whether no member of ``chosen`` is redundant for covering ``target``."""
    for i in chosen:
        rest = [homs[j] for j in chosen if j != i]
        if covered_by(rest) >= target.facts:
            return False
    return True


def enumerate_covers(
    homs: Sequence[TargetHomomorphism],
    target: Instance,
    mode: CoverMode = "minimal",
    limit: Optional[int] = None,
    deadline: Optional[Deadline] = None,
) -> Iterator[tuple[TargetHomomorphism, ...]]:
    """Yield the coverings of ``target`` built from ``homs``.

    Coverings are yielded as tuples in the order of ``homs`` and are
    pairwise distinct.  ``limit`` bounds the number of coverings
    produced; exceeding it raises
    :class:`~repro.errors.BudgetExceededError` carrying the coverings
    enumerated so far in ``partial`` (the enumeration is worst-case
    exponential).  ``deadline`` bounds the search cooperatively — one
    step per branch node — raising
    :class:`~repro.errors.DeadlineExceededError` on expiry.
    """
    if mode == "minimal":
        for chosen in _minimal_covers_indexes(homs, target, limit, deadline):
            METRICS.inc("covers_enumerated")
            yield tuple(homs[i] for i in sorted(chosen))
        return
    if mode != "all":
        raise ValueError(f"unknown covering mode {mode!r}")

    minimal = list(_minimal_covers_indexes(homs, target, limit, deadline))
    if not minimal:
        return
    # Every covering is a superset of some minimal covering; enumerate
    # supersets of minimal covers, deduplicating across seeds.
    seen: set[frozenset[int]] = set()
    universe = range(len(homs))
    count = 0
    for seed in minimal:
        spare = [i for i in universe if i not in seed]
        for extra_size in range(len(spare) + 1):
            for extra in combinations(spare, extra_size):
                if deadline is not None:
                    deadline.step(
                        1, "covering enumeration", {"covers_seen": count}
                    )
                candidate = seed | frozenset(extra)
                if candidate in seen:
                    continue
                seen.add(candidate)
                count += 1
                if limit is not None and count > limit:
                    raise BudgetExceededError(
                        "covering enumeration",
                        limit,
                        partial=[
                            tuple(homs[i] for i in sorted(cover))
                            for cover in seen
                        ],
                    )
                METRICS.inc("covers_enumerated")
                yield tuple(homs[i] for i in sorted(candidate))


def count_covers(
    homs: Sequence[TargetHomomorphism],
    target: Instance,
    mode: CoverMode = "minimal",
    limit: Optional[int] = None,
) -> int:
    """``|COV(Sigma, J)|`` under the chosen mode."""
    return sum(1 for _ in enumerate_covers(homs, target, mode=mode, limit=limit))


def unique_cover(
    homs: Sequence[TargetHomomorphism],
    target: Instance,
    index: Optional[dict[Atom, list[int]]] = None,
) -> Optional[tuple[TargetHomomorphism, ...]]:
    """The unique covering when ``|COV(Sigma, J)| = 1`` (Theorem 6), else ``None``.

    Theorem 6: the covering is unique iff every homomorphism covers
    some fact that no other homomorphism covers.  In that case the
    unique covering is ``HOM(Sigma, J)`` itself.  One pass over the
    coverage index collects the homomorphisms owning a private fact,
    so the test is linear in ``|J|`` rather than quadratic in
    ``|HOM| x |J|``.

    ``index`` accepts a precomputed :func:`coverage_index` for the same
    ``(homs, target)`` pair, so callers that already built one (e.g.
    the tractable-case pipeline) avoid a second pass.
    """
    if index is None:
        index = coverage_index(homs, target)
    privately_covering: set[int] = set()
    for entry in index.values():
        if not entry:
            return None
        if len(entry) == 1:
            privately_covering.add(entry[0])
    if len(privately_covering) < len(homs):
        return None
    return tuple(homs)


def uniquely_covered_facts(
    homs: Sequence[TargetHomomorphism],
    target: Instance,
    index: Optional[dict[Atom, list[int]]] = None,
) -> set[Atom]:
    """The facts of ``J`` covered by exactly one homomorphism (Theorem 7's ``K``).

    ``index`` accepts a precomputed :func:`coverage_index`, as in
    :func:`unique_cover`.
    """
    if index is None:
        index = coverage_index(homs, target)
    return {fact for fact, entry in index.items() if len(entry) == 1}
