"""Coverings of a target instance (Definition 5) and Theorem 6.

``COV(Sigma, J)`` is the set of all ``H subseteq HOM(Sigma, J)`` whose
covered facts equal ``J``.  The inverse chase ranges over coverings;
this module enumerates them.

Two enumeration modes are offered:

* ``minimal`` (default) — only inclusion-minimal coverings.  For UCQ
  certain answers this loses nothing: UCQs are monotone and every
  non-minimal covering's recovery contains a minimal covering's
  recovery (restrict the final homomorphism of Definition 9), so the
  intersection of answers is unchanged.  The equivalence is verified
  by a property test and by ablation benchmark E14.
* ``all`` — the full Definition 5, exponential in the number of
  redundant homomorphisms; used by the ablation and by the examples
  that follow the paper's text literally.

Enumeration is a classic set-cover branch over an explicit stack:
facts are ordered most-constrained first (fewest candidate
homomorphisms), and each node branches on which candidate covers the
next uncovered fact.  Per-fact coverage counters make both the
"already covered" test and the minimality test O(1) per update, and
the iterative stack keeps 10⁵-fact targets clear of the interpreter's
recursion limit.
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterator, Literal, Optional, Sequence

from ..data.atoms import Atom
from ..data.instances import Instance
from ..observability.metrics import METRICS
from ..errors import BudgetExceededError
from ..resilience import Deadline
from .hom_sets import TargetHomomorphism

CoverMode = Literal["minimal", "all"]


def coverage_index(
    homs: Sequence[TargetHomomorphism], target: Instance
) -> dict[Atom, list[int]]:
    """For every fact of ``J``, the indexes of the homomorphisms covering it."""
    index: dict[Atom, list[int]] = {fact: [] for fact in target.facts}
    for i, hom in enumerate(homs):
        for fact in hom.covered:
            if fact in index:
                index[fact].append(i)
    return index


def is_coverable(homs: Sequence[TargetHomomorphism], target: Instance) -> bool:
    """Whether ``HOM(Sigma, J)`` covers every fact of ``J`` at all."""
    return all(entry for entry in coverage_index(homs, target).values())


def _minimal_covers_indexes(
    homs: Sequence[TargetHomomorphism],
    target: Instance,
    limit: Optional[int],
    deadline: Optional[Deadline] = None,
) -> Iterator[frozenset[int]]:
    """Enumerate minimal coverings with an explicit-stack set-cover search.

    The branch order is static — facts sorted by candidate count once,
    most-constrained first — rather than re-picking the globally
    fewest-candidate uncovered fact at every node.  The *set* of
    minimal coverings is pivot-rule independent (every covering must
    cover every fact, whichever order the facts are considered in), so
    only the emission order changes.  The explicit stack and the
    per-fact coverage counters keep the search linear per branch node
    and safe from the recursion limit: the depth equals the number of
    target facts, which at 10⁵+ facts overflows any recursive version.
    """
    index = coverage_index(homs, target)
    if any(not entry for entry in index.values()):
        return

    emitted: set[frozenset[int]] = set()

    def progress() -> dict:
        return {"covers_seen": len(emitted)}

    # Static branch order: most-constrained facts first.
    facts = sorted(index, key=lambda fact: (len(index[fact]), fact))
    fact_pos = {fact: p for p, fact in enumerate(facts)}
    candidates = [index[fact] for fact in facts]
    #: Per homomorphism, the target-fact positions it covers.
    hom_facts = [
        [fact_pos[fact] for fact in hom.covered if fact in fact_pos]
        for hom in homs
    ]
    nfacts = len(facts)
    #: How many chosen homomorphisms cover each fact position; a fact
    #: with a positive count is covered, and a chosen homomorphism all
    #: of whose facts have count >= 2 is redundant (non-minimality).
    counts = [0] * nfacts
    chosen: list[int] = []
    chosen_set: set[int] = set()

    def advance(pos: int) -> int:
        while pos < nfacts and counts[pos]:
            pos += 1
        return pos

    def choose(i: int) -> None:
        chosen.append(i)
        chosen_set.add(i)
        for p in hom_facts[i]:
            counts[p] += 1

    def unchoose(i: int) -> None:
        chosen.pop()
        chosen_set.remove(i)
        for p in hom_facts[i]:
            counts[p] -= 1

    def emit() -> Optional[frozenset[int]]:
        cover = frozenset(chosen_set)
        if any(previous <= cover for previous in emitted):
            return None
        # Minimal iff every member privately covers some fact.
        for i in chosen:
            if all(counts[p] > 1 for p in hom_facts[i]):
                return None
        emitted.add(cover)
        if limit is not None and len(emitted) > limit:
            raise BudgetExceededError(
                "covering enumeration",
                limit,
                partial=[
                    tuple(homs[i] for i in sorted(c)) for c in emitted
                ],
            )
        return cover

    start = advance(0)
    if start >= nfacts:
        if deadline is not None:
            deadline.step(1, "covering enumeration", progress())
        cover = emit()
        if cover is not None:
            yield cover
        return
    # Each frame branches on one uncovered fact position; entry_choice
    # remembers the homomorphism whose choice opened the frame.
    frames: list[tuple[int, Iterator[int]]] = [(start, iter(candidates[start]))]
    entry_choice: list[Optional[int]] = [None]
    while frames:
        pos, options = frames[-1]
        descended = False
        for i in options:
            if i in chosen_set:
                continue
            if deadline is not None:
                deadline.step(1, "covering enumeration", progress())
            choose(i)
            nxt = advance(pos + 1)
            if nxt >= nfacts:
                cover = emit()
                if cover is not None:
                    yield cover
                unchoose(i)
                continue
            frames.append((nxt, iter(candidates[nxt])))
            entry_choice.append(i)
            descended = True
            break
        if descended:
            continue
        frames.pop()
        opened_by = entry_choice.pop()
        if opened_by is not None:
            unchoose(opened_by)


def enumerate_covers(
    homs: Sequence[TargetHomomorphism],
    target: Instance,
    mode: CoverMode = "minimal",
    limit: Optional[int] = None,
    deadline: Optional[Deadline] = None,
) -> Iterator[tuple[TargetHomomorphism, ...]]:
    """Yield the coverings of ``target`` built from ``homs``.

    Coverings are yielded as tuples in the order of ``homs`` and are
    pairwise distinct.  ``limit`` bounds the number of coverings
    produced; exceeding it raises
    :class:`~repro.errors.BudgetExceededError` carrying the coverings
    enumerated so far in ``partial`` (the enumeration is worst-case
    exponential).  ``deadline`` bounds the search cooperatively — one
    step per branch node — raising
    :class:`~repro.errors.DeadlineExceededError` on expiry.
    """
    if mode == "minimal":
        for chosen in _minimal_covers_indexes(homs, target, limit, deadline):
            METRICS.inc("covers_enumerated")
            yield tuple(homs[i] for i in sorted(chosen))
        return
    if mode != "all":
        raise ValueError(f"unknown covering mode {mode!r}")

    minimal = list(_minimal_covers_indexes(homs, target, limit, deadline))
    if not minimal:
        return
    # Every covering is a superset of some minimal covering; enumerate
    # supersets of minimal covers, deduplicating across seeds.
    seen: set[frozenset[int]] = set()
    universe = range(len(homs))
    count = 0
    for seed in minimal:
        spare = [i for i in universe if i not in seed]
        for extra_size in range(len(spare) + 1):
            for extra in combinations(spare, extra_size):
                if deadline is not None:
                    deadline.step(
                        1, "covering enumeration", {"covers_seen": count}
                    )
                candidate = seed | frozenset(extra)
                if candidate in seen:
                    continue
                seen.add(candidate)
                count += 1
                if limit is not None and count > limit:
                    raise BudgetExceededError(
                        "covering enumeration",
                        limit,
                        partial=[
                            tuple(homs[i] for i in sorted(cover))
                            for cover in seen
                        ],
                    )
                METRICS.inc("covers_enumerated")
                yield tuple(homs[i] for i in sorted(candidate))


def count_covers(
    homs: Sequence[TargetHomomorphism],
    target: Instance,
    mode: CoverMode = "minimal",
    limit: Optional[int] = None,
) -> int:
    """``|COV(Sigma, J)|`` under the chosen mode."""
    return sum(1 for _ in enumerate_covers(homs, target, mode=mode, limit=limit))


def unique_cover(
    homs: Sequence[TargetHomomorphism],
    target: Instance,
    index: Optional[dict[Atom, list[int]]] = None,
) -> Optional[tuple[TargetHomomorphism, ...]]:
    """The unique covering when ``|COV(Sigma, J)| = 1`` (Theorem 6), else ``None``.

    Theorem 6: the covering is unique iff every homomorphism covers
    some fact that no other homomorphism covers.  In that case the
    unique covering is ``HOM(Sigma, J)`` itself.  One pass over the
    coverage index collects the homomorphisms owning a private fact,
    so the test is linear in ``|J|`` rather than quadratic in
    ``|HOM| x |J|``.

    ``index`` accepts a precomputed :func:`coverage_index` for the same
    ``(homs, target)`` pair, so callers that already built one (e.g.
    the tractable-case pipeline) avoid a second pass.
    """
    if index is None:
        index = coverage_index(homs, target)
    privately_covering: set[int] = set()
    for entry in index.values():
        if not entry:
            return None
        if len(entry) == 1:
            privately_covering.add(entry[0])
    if len(privately_covering) < len(homs):
        return None
    return tuple(homs)


def uniquely_covered_facts(
    homs: Sequence[TargetHomomorphism],
    target: Instance,
    index: Optional[dict[Atom, list[int]]] = None,
) -> set[Atom]:
    """The facts of ``J`` covered by exactly one homomorphism (Theorem 7's ``K``).

    ``index`` accepts a precomputed :func:`coverage_index`, as in
    :func:`unique_cover`.
    """
    if index is None:
        index = coverage_index(homs, target)
    return {fact for fact, entry in index.items() if len(entry) == 1}
