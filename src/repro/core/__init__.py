"""The paper's contribution: instance-based recovery of exchanged data."""

from .certain import certain_answer, certain_answers, certain_boolean
from .cores import core, core_recoveries, cores_isomorphic, is_core
from .covers import (
    count_covers,
    coverage_index,
    enumerate_covers,
    is_coverable,
    unique_cover,
    uniquely_covered_facts,
)
from .cq_sound import (
    cq_sound_instance,
    generalized_source_instance,
    minimal_coverings_for,
    per_hom_glb,
)
from .glb import PairingFunction, glb, glb2
from .hom_sets import TargetHomomorphism, covered_by, hom_set, tgd_homomorphisms
from .inverse_chase import (
    RecoveryCandidate,
    inverse_chase,
    inverse_chase_candidates,
)
from .semantics import (
    is_justified,
    is_minimal_solution,
    is_recovery,
    minimal_solution_images,
)
from .subsumption import (
    SubsumptionConstraint,
    is_tautological,
    minimal_subsumers,
    models_all,
    models_constraint,
)
from .tractable import (
    complete_ucq_recovery,
    forced_homomorphisms,
    is_quasi_guarded_safe,
    k_cover_recoveries,
    maximal_unique_subset,
    sound_ucq_instance,
)
from .repair import (
    recover_after_alteration,
    repair_target,
    repairs,
    uncoverable_facts,
)
from .universal import (
    find_universal_source,
    is_canonical_solution_for,
    is_universal_solution_for,
    is_universal_solution_for_some_source,
)
from .validity import find_recovery, is_valid_for_recovery

__all__ = [
    "PairingFunction",
    "RecoveryCandidate",
    "SubsumptionConstraint",
    "TargetHomomorphism",
    "certain_answer",
    "certain_answers",
    "certain_boolean",
    "complete_ucq_recovery",
    "core",
    "core_recoveries",
    "cores_isomorphic",
    "count_covers",
    "coverage_index",
    "covered_by",
    "cq_sound_instance",
    "enumerate_covers",
    "find_recovery",
    "find_universal_source",
    "forced_homomorphisms",
    "generalized_source_instance",
    "glb",
    "glb2",
    "hom_set",
    "inverse_chase",
    "inverse_chase_candidates",
    "is_canonical_solution_for",
    "is_core",
    "is_coverable",
    "is_justified",
    "is_minimal_solution",
    "is_quasi_guarded_safe",
    "is_recovery",
    "is_tautological",
    "is_universal_solution_for",
    "is_universal_solution_for_some_source",
    "is_valid_for_recovery",
    "k_cover_recoveries",
    "maximal_unique_subset",
    "minimal_coverings_for",
    "minimal_solution_images",
    "minimal_subsumers",
    "models_all",
    "models_constraint",
    "per_hom_glb",
    "recover_after_alteration",
    "repair_target",
    "repairs",
    "sound_ucq_instance",
    "tgd_homomorphisms",
    "uncoverable_facts",
    "unique_cover",
    "uniquely_covered_facts",
]
