"""``HOM(Sigma, J)``: homomorphisms from tgd heads into the target.

Section 4 of the paper.  For an s-t tgd ``xi`` with head ``beta(x, z)``
and a target instance ``J``::

    HOM(xi, J) = { h : h(beta(x, z)) subseteq J }

where ``h`` is defined on the variables of the head.  Because the tgds
of a mapping share no variables, every homomorphism uniquely identifies
the dependency it belongs to (the paper's ``xi_h``); we make that
pairing explicit in :class:`TargetHomomorphism`.
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence

from ..data.atoms import Atom
from ..data.instances import Instance
from ..data.substitutions import Substitution
from ..data.terms import Term
from ..engine.cache import PartitionedLRUCache
from ..engine.config import CONFIG
from ..logic.homomorphisms import homomorphisms
from ..logic.tgds import TGD, Mapping
from ..observability.spans import TRACER
from ..resilience import Deadline


class TargetHomomorphism:
    """An element ``h`` of ``HOM(Sigma, J)`` together with its tgd ``xi_h``."""

    __slots__ = ("_tgd", "_substitution", "_covered", "_hash")

    def __init__(self, tgd: TGD, substitution: Substitution):
        covered = frozenset(substitution.apply_atoms(tgd.head))
        object.__setattr__(self, "_tgd", tgd)
        object.__setattr__(self, "_substitution", substitution)
        object.__setattr__(self, "_covered", covered)
        object.__setattr__(self, "_hash", hash((tgd, substitution)))

    @property
    def tgd(self) -> TGD:
        """The dependency ``xi_h`` this homomorphism belongs to."""
        return self._tgd

    @property
    def substitution(self) -> Substitution:
        """The variable assignment (defined on the head variables)."""
        return self._substitution

    @property
    def covered(self) -> frozenset[Atom]:
        """``J_h = h(head(xi_h))``: the target facts this homomorphism covers."""
        return self._covered

    def image(self, term: Term) -> Term:
        return self._substitution.image(term)

    @property
    def reverse_trigger(self) -> tuple[TGD, Substitution]:
        """The trigger ``(xi_h^{-1}, h)`` used by ``Chase_H(Sigma^{-1}, J)``."""
        return (self._tgd.reverse(), self._substitution)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TargetHomomorphism):
            return NotImplemented
        return self._tgd == other._tgd and self._substitution == other._substitution

    def __hash__(self) -> int:
        return self._hash

    def __lt__(self, other: "TargetHomomorphism") -> bool:
        if not isinstance(other, TargetHomomorphism):
            return NotImplemented
        return (self._tgd.name or "", repr(self._substitution)) < (
            other._tgd.name or "",
            repr(other._substitution),
        )

    def __reduce__(self):
        return (TargetHomomorphism, (self._tgd, self._substitution))

    def __repr__(self) -> str:
        return f"<{self._tgd.name or 'tgd'} {self._substitution}>"

    def __setattr__(self, name, value):  # pragma: no cover - guard
        raise AttributeError("TargetHomomorphism is immutable")


def tgd_homomorphisms(
    tgd: TGD, target: Instance, deadline: Optional[Deadline] = None
) -> Iterator[TargetHomomorphism]:
    """``HOM(xi, J)``: all head-into-target homomorphisms of one tgd.

    ``deadline`` bounds the underlying backtracking search
    cooperatively; expiry raises
    :class:`~repro.errors.DeadlineExceededError`.
    """
    head_vars = sorted(tgd.head_variables)
    seen: set[tuple[Term, ...]] = set()
    # Projecting onto the head variables lets the join kernel
    # deduplicate assignments per plan component instead of
    # materializing one binding per redundant combination.
    for hom in homomorphisms(
        tgd.head, target, deadline=deadline, project=tgd.head_variables
    ):
        restricted = hom.restrict(tgd.head_variables)
        key = tuple(restricted.image(v) for v in head_vars)
        if key in seen:
            continue
        seen.add(key)
        yield TargetHomomorphism(tgd, restricted)


#: Memo for ``HOM(Sigma, J)``, keyed by the (hashable, immutable)
#: mapping/target pair.  The inverse chase, the certainty pipeline and
#: the baselines all recompute the same hom-set for a scenario; caching
#: it removes that redundancy (see ``CONFIG.memoize_hom_sets``).
#: Partitioned so multi-tenant callers (the service layer) keep
#: per-tenant warm state that no other tenant can evict.
_HOM_SET_CACHE = PartitionedLRUCache("hom_set", maxsize=CONFIG.hom_set_cache_size)


def hom_set(
    mapping: Mapping, target: Instance, deadline: Optional[Deadline] = None
) -> list[TargetHomomorphism]:
    """``HOM(Sigma, J)``: the union over all tgds, deterministically ordered.

    ``deadline`` bounds the computation; an interrupted computation is
    never cached, and a cached hit returns instantly regardless of the
    deadline (the result does not depend on it).
    """

    def compute() -> tuple[TargetHomomorphism, ...]:
        with TRACER.span("core.hom_set.compute", aggregate=True):
            homs: list[TargetHomomorphism] = []
            for tgd in mapping:
                homs.extend(tgd_homomorphisms(tgd, target, deadline))
            # Same order as TargetHomomorphism.__lt__, but the repr is
            # built once per homomorphism instead of once per pairwise
            # comparison — at 10⁵ homomorphisms the difference is the
            # whole sort.
            homs.sort(key=lambda h: (h.tgd.name or "", repr(h.substitution)))
            return tuple(homs)

    if not CONFIG.memoize_hom_sets:
        return list(compute())
    _HOM_SET_CACHE.resize(CONFIG.hom_set_cache_size)
    return list(_HOM_SET_CACHE.get_or_compute((mapping, target), compute))


def seed_hom_set(
    mapping: Mapping, target: Instance, homs: Sequence[TargetHomomorphism]
) -> None:
    """Warm the hom-set cache with a precomputed ``HOM(Sigma, J)``.

    The checkpoint resume path calls this with the hom-set recorded in a
    validated snapshot (the snapshot's mapping/target fingerprints were
    checked first, so the seed is known to belong to this pair), letting
    a restarted process skip the full recomputation.  A no-op when
    memoization is off or the entry is already present.
    """
    if not CONFIG.memoize_hom_sets or not homs:
        return
    _HOM_SET_CACHE.resize(CONFIG.hom_set_cache_size)
    _HOM_SET_CACHE.get_or_compute((mapping, target), lambda: tuple(homs))


def covered_by(homs: Sequence[TargetHomomorphism]) -> frozenset[Atom]:
    """``J_H``: the union of the facts covered by a set of homomorphisms."""
    facts: set[Atom] = set()
    for hom in homs:
        facts |= hom.covered
    return frozenset(facts)
