"""Homomorphic greatest lower bounds of instances (Section 6.2).

``glb(I_1, I_2)`` is an instance ``K`` with ``K -> I_1`` and
``K -> I_2`` such that every other common lower bound maps into ``K``.
It is computed by the direct-product construction of the paper: pair
up same-relation tuples and combine arguments with an injective pairing
``iota`` that preserves equal values and sends distinct pairs to fresh
nulls.

For ground instances ``Q(glb(I_1, I_2)) = Q(I_1) n Q(I_2)`` for every
CQ ``Q``; in general the glb is how Definition 12 extracts the
information *common to all ways* a target fact could have been
produced.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Optional, Sequence

from ..data.atoms import Atom
from ..data.instances import Instance, InstanceBuilder
from ..data.terms import NullFactory, Term

if TYPE_CHECKING:  # pragma: no cover - annotation only, no runtime import
    from ..resilience.deadline import Deadline


class PairingFunction:
    """The injective ``iota`` of the paper, memoized per computation.

    ``iota(x, x) = x`` and ``iota(x, y)`` for ``x != y`` is a fresh
    null, the same null every time the pair recurs within one glb
    computation (injectivity is what makes the product a greatest
    lower bound).
    """

    def __init__(self, factory: Optional[NullFactory] = None):
        self._factory = factory or NullFactory(prefix="G")
        self._pairs: dict[tuple[Term, Term], Term] = {}

    def pair(self, x: Term, y: Term) -> Term:
        if x == y:
            return x
        key = (x, y)
        if key not in self._pairs:
            self._pairs[key] = self._factory.fresh()
        return self._pairs[key]


def glb2(
    left: Instance,
    right: Instance,
    pairing: Optional[PairingFunction] = None,
    deadline: Optional["Deadline"] = None,
) -> Instance:
    """``glb(I_1, I_2)`` by the direct-product construction.

    The product has ``|I_1| * |I_2|`` candidate pairs, so a folded glb
    can grow exponentially in the number of operands; ``deadline``
    charges one cooperative step per pair, bounding the blowup.
    """
    pairing = pairing or _fresh_pairing(left, right)
    facts = InstanceBuilder()
    for relation in left.relation_names & right.relation_names:
        for l_fact in left.facts_for(relation):
            for r_fact in right.facts_for(relation):
                if deadline is not None:
                    deadline.step(1, "glb product")
                if l_fact.arity != r_fact.arity:
                    continue
                facts.add(
                    Atom(
                        relation,
                        tuple(
                            pairing.pair(a, b)
                            for a, b in zip(l_fact.args, r_fact.args)
                        ),
                    )
                )
    return facts.build()


def _fresh_pairing(
    *instances: Instance, factory: Optional[NullFactory] = None
) -> PairingFunction:
    factory = factory or NullFactory(prefix="G")
    for instance in instances:
        factory.avoid(instance.domain())
    return PairingFunction(factory)


def glb(
    instances: Sequence[Instance],
    factory: Optional[NullFactory] = None,
    deadline: Optional["Deadline"] = None,
) -> Instance:
    """``glb(I_1, ..., I_n)`` by folding :func:`glb2` left to right.

    The paper extends the binary glb recursively; the result is unique
    up to homomorphic equivalence regardless of the fold order (a
    property-tested invariant).  A single instance is its own glb; an
    empty sequence raises :class:`ValueError`.  Supplying a shared
    ``factory`` guarantees the invented pairing nulls are fresh across
    several glb computations whose results will be combined.
    """
    if not instances:
        raise ValueError("glb of an empty sequence is undefined")
    result = instances[0]
    for other in instances[1:]:
        pairing = _fresh_pairing(result, other, factory=factory)
        result = glb2(result, other, pairing, deadline)
        if result.is_empty:
            return result
    return result
