"""Tractable recovery (Section 6.1: Lemma 1, Theorems 5-7).

Three polynomial-time tools:

* :func:`is_quasi_guarded_safe` — Lemma 1's syntactic condition: every
  subsumption constraint of ``SUB(Sigma)`` is built exclusively from
  quasi-guarded tgds.  Under it the inverse chase of a covering yields
  a single recovery (no backward null ever reaches the forward-chased
  instance, so the final homomorphism cannot branch).
* :func:`complete_ucq_recovery` — Theorem 5: when additionally
  ``|COV(Sigma, J)| = 1`` (decided by Theorem 6's quadratic private-
  fact test in :func:`~repro.core.covers.unique_cover`), the inverse
  chase is deterministic and its single output answers every UCQ
  completely.
* :func:`sound_ucq_instance` — Theorem 7: without any uniqueness
  assumption, the homomorphisms *forced* into every covering (those
  that uniquely cover some fact) span a maximal uniquely-covered
  subset ``J'`` of ``J``; backward-chasing exactly those
  homomorphisms yields a source instance that maps into every
  recovery, hence answers every UCQ soundly.

The module also implements the paper's ``k``-recoveries observation
(the paragraph after Theorem 6): when ``|COV(Sigma, J)| <= k`` for a
fixed ``k`` and the mapping is quasi-guarded safe, the ``<= k``
deterministic recoveries jointly give complete UCQ answers.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..data.instances import Instance
from ..data.terms import NullFactory
from ..errors import NotRecoverableError
from ..logic.homomorphisms import instance_homomorphisms
from ..logic.tgds import Mapping
from ..chase.standard import chase, chase_restricted
from .covers import enumerate_covers, unique_cover, uniquely_covered_facts
from .hom_sets import TargetHomomorphism, covered_by, hom_set
from .subsumption import SubsumptionConstraint, minimal_subsumers, models_all


def is_quasi_guarded_safe(
    mapping: Mapping,
    subsumption: Optional[Sequence[SubsumptionConstraint]] = None,
) -> bool:
    """Lemma 1's condition: ``SUB(Sigma)`` uses only quasi-guarded tgds.

    A mapping with an empty ``SUB(Sigma)`` is trivially safe
    (Example 9).
    """
    constraints = (
        subsumption if subsumption is not None else minimal_subsumers(mapping)
    )
    for constraint in constraints:
        participants = [tgd for tgd, _ in constraint.premises]
        participants.append(constraint.conclusion_tgd)
        if any(not tgd.is_quasi_guarded for tgd in participants):
            return False
    return True


def _deterministic_recovery(
    mapping: Mapping,
    target: Instance,
    covering: Sequence[TargetHomomorphism],
) -> Instance:
    """Run Definition 9 on one covering known to yield a unique image.

    Under Lemma 1's condition the backward nulls never occur in the
    forward-chased instance, so every homomorphism ``g`` of the final
    step acts as the identity on the backward instance; it suffices to
    verify that at least one ``g`` exists.
    """
    factory = NullFactory()
    factory.avoid(target.domain())
    backward = chase_restricted(
        [hom.reverse_trigger for hom in covering], target, factory
    ).result
    forward = chase(mapping, backward, factory).result
    for g in instance_homomorphisms(forward, target, identity_on=target.domain()):
        return backward.apply(g)
    raise NotRecoverableError(
        "the covering admits no homomorphism back into the target; "
        "the target instance is not valid for recovery"
    )


def complete_ucq_recovery(
    mapping: Mapping,
    target: Instance,
    subsumption: Optional[Sequence[SubsumptionConstraint]] = None,
) -> Instance:
    """Theorem 5: the complete UCQ recovery, in polynomial time.

    Preconditions (both checked):

    1. ``|COV(Sigma, J)| = 1`` — Theorem 6's test;
    2. the mapping is quasi-guarded safe — Lemma 1.

    :raises ValueError: when a precondition fails (the problem is then
        coNP-complete in general and the caller should fall back to
        :func:`~repro.core.inverse_chase.inverse_chase`).
    :raises NotRecoverableError: when ``J`` is not valid for recovery.
    """
    constraints = (
        subsumption if subsumption is not None else minimal_subsumers(mapping)
    )
    if not is_quasi_guarded_safe(mapping, constraints):
        raise ValueError(
            "mapping is not quasi-guarded safe; Theorem 5 does not apply"
        )
    homs = hom_set(mapping, target)
    covering = unique_cover(homs, target)
    if covering is None:
        raise ValueError(
            "the target instance does not have a unique covering; "
            "Theorem 5 does not apply"
        )
    if not models_all(covering, constraints):
        raise NotRecoverableError(
            "the unique covering violates the subsumption constraints"
        )
    return _deterministic_recovery(mapping, target, covering)


def k_cover_recoveries(
    mapping: Mapping,
    target: Instance,
    k: int,
    subsumption: Optional[Sequence[SubsumptionConstraint]] = None,
) -> list[Instance]:
    """The ``<= k`` recoveries when ``|COV(Sigma, J)| <= k`` (paper, §6.1).

    Uses minimal coverings (sufficient for UCQ answers).  The returned
    instances jointly yield complete UCQ certain answers via
    :func:`~repro.core.certain.certain_answers`.

    :raises ValueError: when there are more than ``k`` coverings or the
        mapping is not quasi-guarded safe.
    """
    constraints = (
        subsumption if subsumption is not None else minimal_subsumers(mapping)
    )
    if not is_quasi_guarded_safe(mapping, constraints):
        raise ValueError(
            "mapping is not quasi-guarded safe; the k-cover case does not apply"
        )
    homs = hom_set(mapping, target)
    coverings = list(enumerate_covers(homs, target, mode="minimal", limit=k))
    recoveries: list[Instance] = []
    for covering in coverings:
        if not models_all(covering, constraints):
            continue
        recoveries.append(_deterministic_recovery(mapping, target, covering))
    if not recoveries:
        raise NotRecoverableError(
            "no covering satisfies the subsumption constraints"
        )
    return recoveries


def forced_homomorphisms(
    mapping: Mapping, target: Instance
) -> list[TargetHomomorphism]:
    """The homomorphisms contained in *every* covering of ``J``.

    These are exactly the homomorphisms that are the unique coverer of
    some fact of ``J`` (Theorem 7's set, computable in quadratic time).
    """
    homs = hom_set(mapping, target)
    unique_facts = uniquely_covered_facts(homs, target)
    return [hom for hom in homs if hom.covered & unique_facts]


def maximal_unique_subset(
    mapping: Mapping, target: Instance
) -> tuple[Instance, list[TargetHomomorphism]]:
    """Theorem 7's ``J'``: the subset of ``J`` spanned by forced homomorphisms.

    Returns ``(J', U)`` where ``U`` is the forced homomorphism set and
    ``J' = union of J_h for h in U``.  Every covering of ``J`` contains
    ``U``, so source facts recovered from ``J'`` alone occur (up to
    homomorphism) in every recovery of ``J``.
    """
    forced = forced_homomorphisms(mapping, target)
    return Instance(covered_by(forced)), forced


def sound_ucq_instance(mapping: Mapping, target: Instance) -> Instance:
    """Theorem 7's sound source instance ``I``.

    ``Q(I)↓ subseteq CERT(Q, Sigma, J)`` for every UCQ ``Q`` (when
    ``J`` is valid for recovery).  Computed by backward-chasing the
    forced homomorphisms, then grounding the result deterministically
    when the forward chase admits a single consistent image.
    """
    subset, forced = maximal_unique_subset(mapping, target)
    if not forced:
        return Instance.empty()
    factory = NullFactory()
    factory.avoid(target.domain())
    backward = chase_restricted(
        [hom.reverse_trigger for hom in forced], subset, factory
    ).result
    forward = chase(mapping, backward, factory).result
    images = set()
    for g in instance_homomorphisms(
        forward, target, identity_on=target.domain()
    ):
        images.add(backward.apply(g))
        if len(images) > 1:
            break
    if len(images) == 1:
        return images.pop()
    return backward
