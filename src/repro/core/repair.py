"""Recovering from altered targets (the paper's closing open problem).

The conclusions suggest "finding recoveries after the target instance
already has been altered by some operations" as future work: the
current semantics only accepts targets valid for recovery.  This
module implements the natural maximal-subset semantics for that
problem:

    a *repair* of an invalid target ``J`` is a subset-maximal
    ``J' subseteq J`` that is valid for recovery under ``Sigma``;
    recovering from ``J`` means recovering from its repairs.

Two phases keep the search tolerable:

1. facts covered by no homomorphism of ``HOM(Sigma, J)`` can belong to
   no valid subset (a covering must produce every fact), so they are
   removed outright;
2. the remaining conflicts are resolved by a breadth-first search over
   removal sets in increasing size, so the first hits are exactly the
   subset-maximal repairs.

Both validity testing and maximality are NP-hard, so the search takes
budgets like the rest of the library.
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterator, Optional

from ..data.atoms import Atom
from ..data.instances import Instance
from ..errors import BudgetExceededError, DeadlineExceededError
from ..logic.tgds import Mapping
from ..resilience import Deadline
from .covers import coverage_index
from .hom_sets import hom_set
from .inverse_chase import ResilienceMode, inverse_chase
from .validity import is_valid_for_recovery


def uncoverable_facts(mapping: Mapping, target: Instance) -> set[Atom]:
    """Facts no homomorphism of ``HOM(Sigma, J)`` covers.

    These can never be justified — either their relation has no
    producing rule, or every producing rule's other head atoms are
    absent — so every repair excludes them.
    """
    homs = hom_set(mapping, target)
    index = coverage_index(homs, target)
    return {fact for fact, coverers in index.items() if not coverers}


def repairs(
    mapping: Mapping,
    target: Instance,
    *,
    max_removals: int = 4,
    max_candidates: int = 10000,
    max_covers: Optional[int] = 2000,
    deadline: Optional[Deadline] = None,
) -> Iterator[Instance]:
    """Yield the subset-maximal valid-for-recovery subsets of ``J``.

    Removal sets are explored in increasing size (after the forced
    phase-1 removals), so every yielded repair is subset-maximal:
    supersets of a yielded repair were checked earlier and found
    invalid.  Yields nothing when even removing ``max_removals`` facts
    does not restore validity.

    ``deadline`` bounds the search cooperatively (it is also threaded
    into each per-candidate validity check); on expiry the raised
    :class:`~repro.errors.DeadlineExceededError` carries the repairs
    already yielded in ``partial``.

    :raises BudgetExceededError: after ``max_candidates`` removal sets
        (with the repairs found so far in ``partial``).
    """
    forced = uncoverable_facts(mapping, target)
    base = target.without_facts(forced)
    candidates_tried = 0
    yielded: list[frozenset[Atom]] = []
    found: list[Instance] = []
    try:
        for size in range(0, max_removals + 1):
            for removal in combinations(sorted(base.facts), size):
                removal_set = frozenset(removal)
                if any(previous <= removal_set for previous in yielded):
                    continue  # a superset of this candidate already repaired
                if deadline is not None:
                    deadline.check(
                        "repair search",
                        {
                            "candidates_tried": candidates_tried,
                            "repairs_found": len(found),
                        },
                    )
                candidates_tried += 1
                if candidates_tried > max_candidates:
                    raise BudgetExceededError(
                        "repair candidates", max_candidates, partial=found
                    )
                candidate = base.without_facts(removal_set)
                if is_valid_for_recovery(
                    mapping, candidate, max_covers=max_covers, deadline=deadline
                ):
                    yielded.append(removal_set)
                    found.append(candidate)
                    yield candidate
    except DeadlineExceededError as error:
        error.partial = list(found)
        error.progress.setdefault("candidates_tried", candidates_tried)
        error.progress.setdefault("repairs_found", len(found))
        raise


def repair_target(
    mapping: Mapping,
    target: Instance,
    **options,
) -> Optional[Instance]:
    """One subset-maximal repair of ``J`` (or ``J`` itself when valid)."""
    if is_valid_for_recovery(
        mapping,
        target,
        max_covers=options.get("max_covers", 2000),
        deadline=options.get("deadline"),
    ):
        return target
    for repaired in repairs(mapping, target, **options):
        return repaired
    return None


def recover_after_alteration(
    mapping: Mapping,
    target: Instance,
    *,
    max_recoveries: Optional[int] = 1000,
    deadline: Optional[Deadline] = None,
    mode: ResilienceMode = "raise",
    **options,
) -> tuple[Optional[Instance], list[Instance]]:
    """Repair an altered target, then recover from the repair.

    Returns ``(repair, recoveries)``; ``(None, [])`` when no repair is
    found within the budgets.  ``deadline`` governs both phases under
    one budget; with ``mode="degrade"`` the recovery phase returns an
    :class:`~repro.resilience.AnytimeResult` (the repair search itself
    is a yes/no question per candidate and still raises on expiry).
    """
    repaired = repair_target(mapping, target, deadline=deadline, **options)
    if repaired is None:
        return None, []
    return repaired, inverse_chase(
        mapping,
        repaired,
        max_recoveries=max_recoveries,
        deadline=deadline,
        mode=mode,
    )
