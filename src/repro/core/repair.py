"""Recovering from altered targets (the paper's closing open problem).

The conclusions suggest "finding recoveries after the target instance
already has been altered by some operations" as future work: the
current semantics only accepts targets valid for recovery.  This
module implements the natural maximal-subset semantics for that
problem:

    a *repair* of an invalid target ``J`` is a subset-maximal
    ``J' subseteq J`` that is valid for recovery under ``Sigma``;
    recovering from ``J`` means recovering from its repairs.

Two phases keep the search tolerable:

1. facts covered by no homomorphism of ``HOM(Sigma, J)`` can belong to
   no valid subset (a covering must produce every fact), so they are
   removed outright;
2. the remaining conflicts are resolved by a breadth-first search over
   removal sets in increasing size, so the first hits are exactly the
   subset-maximal repairs.

Both validity testing and maximality are NP-hard, so the search takes
budgets like the rest of the library.
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterator, Optional

from ..data.atoms import Atom
from ..data.instances import Instance
from ..errors import BudgetExceededError
from ..logic.tgds import Mapping
from .covers import coverage_index
from .hom_sets import hom_set
from .inverse_chase import inverse_chase
from .validity import is_valid_for_recovery


def uncoverable_facts(mapping: Mapping, target: Instance) -> set[Atom]:
    """Facts no homomorphism of ``HOM(Sigma, J)`` covers.

    These can never be justified — either their relation has no
    producing rule, or every producing rule's other head atoms are
    absent — so every repair excludes them.
    """
    homs = hom_set(mapping, target)
    index = coverage_index(homs, target)
    return {fact for fact, coverers in index.items() if not coverers}


def repairs(
    mapping: Mapping,
    target: Instance,
    *,
    max_removals: int = 4,
    max_candidates: int = 10000,
    max_covers: Optional[int] = 2000,
) -> Iterator[Instance]:
    """Yield the subset-maximal valid-for-recovery subsets of ``J``.

    Removal sets are explored in increasing size (after the forced
    phase-1 removals), so every yielded repair is subset-maximal:
    supersets of a yielded repair were checked earlier and found
    invalid.  Yields nothing when even removing ``max_removals`` facts
    does not restore validity.

    :raises BudgetExceededError: after ``max_candidates`` removal sets.
    """
    forced = uncoverable_facts(mapping, target)
    base = target.without_facts(forced)
    candidates_tried = 0
    yielded: list[frozenset[Atom]] = []
    for size in range(0, max_removals + 1):
        for removal in combinations(sorted(base.facts), size):
            removal_set = frozenset(removal)
            if any(previous <= removal_set for previous in yielded):
                continue  # a superset of this candidate already repaired
            candidates_tried += 1
            if candidates_tried > max_candidates:
                raise BudgetExceededError("repair candidates", max_candidates)
            candidate = base.without_facts(removal_set)
            if is_valid_for_recovery(mapping, candidate, max_covers=max_covers):
                yielded.append(removal_set)
                yield candidate


def repair_target(
    mapping: Mapping,
    target: Instance,
    **options,
) -> Optional[Instance]:
    """One subset-maximal repair of ``J`` (or ``J`` itself when valid)."""
    if is_valid_for_recovery(
        mapping, target, max_covers=options.get("max_covers", 2000)
    ):
        return target
    for repaired in repairs(mapping, target, **options):
        return repaired
    return None


def recover_after_alteration(
    mapping: Mapping,
    target: Instance,
    *,
    max_recoveries: Optional[int] = 1000,
    **options,
) -> tuple[Optional[Instance], list[Instance]]:
    """Repair an altered target, then recover from the repair.

    Returns ``(repair, recoveries)``; ``(None, [])`` when no repair is
    found within the budgets.
    """
    repaired = repair_target(mapping, target, **options)
    if repaired is None:
        return None, []
    return repaired, inverse_chase(
        mapping, repaired, max_recoveries=max_recoveries
    )
