"""Sound CQ answers: the ``I_{Sigma,J}`` construction (Section 6.2).

Without any restriction on the mapping or the target, the paper builds
in polynomial time a "CQ sub-universal" source instance that maps
homomorphically into *every* recovery (Theorem 9), and therefore
answers every CQ soundly.  The construction (Definitions 11-12):

1. For each homomorphism ``h in HOM(Sigma, J)``, enumerate the
   *minimal coverings for h*: minimal sets ``H`` of homomorphisms with
   ``J_h subseteq J_H`` — the alternative ways the facts ``J_h`` could
   have been produced.
2. Generalize each covering: within ``H``, a member ``h_i`` only
   contributes through the head atoms whose image lands in ``J_h``;
   variables appearing solely in other head atoms are replaced by
   fresh nulls (the paper's ``equivalence classes of ===(h, Sigma)`` —
   equivalent coverings generalize to isomorphic instances, which is
   how we deduplicate them and how the construction stays polynomial).
3. Backward-chase each generalized covering into a source instance and
   take the glb across the alternatives: whatever the glb keeps is
   information common to *all* ways of producing ``J_h``.
4. ``I_{Sigma,J}`` is the union of those glbs over all ``h``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, Optional, Sequence

from ..data.atoms import Atom
from ..data.instances import Instance
from ..data.substitutions import Substitution
from ..data.terms import NullFactory, Variable
from ..logic.homomorphisms import is_isomorphic
from ..logic.tgds import Mapping
from ..chase.standard import chase_restricted
from .glb import glb
from .hom_sets import TargetHomomorphism, hom_set

if TYPE_CHECKING:  # pragma: no cover - annotation only, no runtime import
    from ..resilience.deadline import Deadline


def minimal_coverings_for(
    hom: TargetHomomorphism,
    homs: Sequence[TargetHomomorphism],
) -> list[tuple[TargetHomomorphism, ...]]:
    """``COV_h(Sigma, J)``: minimal sets ``H`` with ``J_h subseteq J_H``.

    ``{h}`` itself is always a member.  Enumeration is the standard
    set-cover branch over the facts of ``J_h``.
    """
    facts = sorted(hom.covered)
    coverers: dict[Atom, list[int]] = {
        fact: [i for i, other in enumerate(homs) if fact in other.covered]
        for fact in facts
    }
    results: list[frozenset[int]] = []

    def branch(chosen: frozenset[int], remaining: list[Atom]) -> None:
        if not remaining:
            if any(previous <= chosen for previous in results):
                return
            for i in chosen:
                rest_cover = set()
                for j in chosen:
                    if j != i:
                        rest_cover |= homs[j].covered
                if set(facts) <= rest_cover:
                    return
            results.append(chosen)
            return
        pivot = min(remaining, key=lambda fact: len(coverers[fact]))
        for i in coverers[pivot]:
            if i in chosen:
                branch(chosen, [f for f in remaining if f not in homs[i].covered])
                continue
            newly = [f for f in remaining if f not in homs[i].covered]
            branch(chosen | {i}, newly)

    branch(frozenset(), facts)
    unique: list[frozenset[int]] = []
    for candidate in results:
        if candidate not in unique:
            unique.append(candidate)
    return [tuple(homs[i] for i in sorted(chosen)) for chosen in unique]


def _relevant_variables(
    member: TargetHomomorphism, anchor_facts: frozenset[Atom]
) -> set[Variable]:
    """The ``x_i`` of the paper: head variables of ``member`` occurring in
    head atoms whose image lands in the anchor's covered facts."""
    relevant: set[Variable] = set()
    for head_atom in member.tgd.head:
        if member.substitution.apply_atom(head_atom) in anchor_facts:
            relevant |= head_atom.variables
    return relevant


def generalized_source_instance(
    covering: Sequence[TargetHomomorphism],
    anchor: TargetHomomorphism,
    factory: Optional[NullFactory] = None,
) -> Instance:
    """``I_{H(h,Sigma)}``: the backward chase of the generalized covering.

    Each member keeps only the variable bindings that matter for
    covering ``J_h``; every other head variable becomes a fresh null
    before the reversed tgd fires.
    """
    factory = factory or NullFactory(prefix="C")
    triggers = []
    for member in covering:
        relevant = _relevant_variables(member, anchor.covered)
        generalized = {}
        for var in sorted(member.tgd.head_variables):
            if var in relevant:
                generalized[var] = member.substitution.image(var)
            else:
                generalized[var] = factory.fresh()
        triggers.append((member.tgd.reverse(), Substitution(generalized)))
    return chase_restricted(triggers, Instance.empty(), factory).result


def _dedup_isomorphic(instances: list[Instance]) -> list[Instance]:
    """Keep one representative per isomorphism class (the ===(h, Sigma)
    equivalence classes of the paper)."""
    representatives: list[Instance] = []
    for candidate in instances:
        if not any(is_isomorphic(candidate, seen) for seen in representatives):
            representatives.append(candidate)
    return representatives


def per_hom_glb(
    hom: TargetHomomorphism,
    homs: Sequence[TargetHomomorphism],
    factory: Optional[NullFactory] = None,
    deadline: Optional["Deadline"] = None,
) -> Instance:
    """``glb(I_{H(h,Sigma)} : H in COV_h(Sigma, J))`` for one anchor ``h``."""
    factory = factory or NullFactory(prefix="C")
    generalized = [
        generalized_source_instance(covering, hom, factory)
        for covering in minimal_coverings_for(hom, homs)
    ]
    return glb(_dedup_isomorphic(generalized), factory=factory, deadline=deadline)


def cq_sound_instance(
    mapping: Mapping,
    target: Instance,
    deadline: Optional["Deadline"] = None,
) -> Instance:
    """``I_{Sigma,J}`` (Definition 12): the CQ sub-universal source instance.

    Theorem 9: ``I_{Sigma,J}`` maps homomorphically into every recovery
    of ``J``, so ``Q(I_{Sigma,J})↓ subseteq CERT(Q, Sigma, J)`` for every
    CQ ``Q``.  Computed in time polynomial in ``|J|`` for a *fixed*
    mapping (Theorem 8); the constant is exponential in the mapping, so
    ``deadline`` bounds the glb products cooperatively for adversarial
    mappings (duplicate tgds over null-rich targets).
    """
    homs = hom_set(mapping, target, deadline)
    factory = NullFactory(prefix="C")
    factory.avoid(target.domain())
    pieces: list[Instance] = []
    for hom in homs:
        pieces.append(per_hom_glb(hom, homs, factory, deadline))
    result = Instance.empty()
    for piece in pieces:
        result = result | piece
    return result
