"""The inverse chase ``Chase^{-1}(Sigma, J)`` (Definition 9, Theorems 1-2).

Given a mapping ``Sigma`` and a target instance ``J``, the inverse
chase produces a finite set of source instances that is a
UCQ-universal recovery of ``J`` (Theorem 2).  The computation follows
Definition 9 step by step:

1. compute ``HOM(Sigma, J)``;
2. enumerate coverings ``H in COV(Sigma, J)``;
3. keep the coverings modeling the subsumption constraints
   ``SUB(Sigma)``;
4. for each surviving ``H``, chase backwards:
   ``I_H = Chase_H(Sigma^{-1}, J)``;
5. chase forwards again: ``J_H = Chase(Sigma, I_H)``;
6. for every homomorphism ``g : J_H -> J`` that is the identity on
   ``dom(J)``, emit the recovery ``g(I_H)``.

Step 6 acts as a soundness gate: a covering for which no ``g`` exists
yields no recovery.  Definition 9 additionally *presupposes* that
``J`` is valid for recovery; without that hypothesis the literal
construction can emit non-recoveries (e.g. ``Sigma = {S(x) -> T(x,y)}``
with ``J = {T(a,b), T(a,c)}``, where two covering homomorphisms share
one frontier binding and collapse to a single backward fact that
cannot witness both target tuples).  We therefore verify every
candidate against the Definition 2 oracle before emitting it
(``verify_justification``), which makes Theorem 1 hold with no
hypothesis on ``J`` and makes an empty result *characterize*
invalidity.  The converse failure also exists: a candidate can fail
the gate *only* because a dangling backward null (a body-only variable
of a reversed tgd, never constrained by any ``g``) asserts more than
``J`` supports, while a grounding of that null is a genuine recovery.
Dropping the candidate outright would leave a valid ``J`` with an
empty recovery set, so the gate retries bounded specializations of the
dangling nulls into ``dom(J)`` before giving up
(:func:`_dangling_completions`).

By default coverings are enumerated in ``minimal`` mode; see
:mod:`repro.core.covers` for why this preserves UCQ certain answers,
and benchmark E14 for the measured effect.
"""

from __future__ import annotations

from itertools import islice, product
from typing import Iterator, Literal, Optional, Sequence

from ..data.instances import Instance
from ..data.terms import NullFactory, Term
from ..engine.cache import SingleFlightMap
from ..engine.executor import Executor, ExecutorLike, resolve_executor
from ..observability.metrics import METRICS
from ..observability.spans import TRACER
from ..errors import BudgetExceededError, DeadlineExceededError, NotRecoverableError
from ..logic.homomorphisms import instance_homomorphisms
from ..logic.tgds import Mapping
from ..planner.warm import collect_warm_keys, warm_cache_token, warm_plan_caches
from ..resilience import AnytimeResult, Deadline
from ..resilience.checkpoint import (
    CheckpointManager,
    instance_fingerprint,
    mapping_fingerprint,
    options_fingerprint,
)
from ..chase.standard import chase, chase_restricted
from .covers import CoverMode, enumerate_covers
from .hom_sets import TargetHomomorphism, hom_set, seed_hom_set
from .semantics import is_justified
from .subsumption import SubsumptionConstraint, minimal_subsumers, models_all


SubsumptionMode = Literal["auto", "strict", "refute", "off"]
BudgetMode = Literal["raise", "truncate"]
ResilienceMode = Literal["raise", "degrade"]


class RecoveryCandidate:
    """One recovery with its full provenance through Definition 9."""

    __slots__ = ("_covering", "_backward", "_forward", "_g", "_recovery")

    def __init__(
        self,
        covering: tuple[TargetHomomorphism, ...],
        backward: Instance,
        forward: Instance,
        g,
        recovery: Instance,
    ):
        object.__setattr__(self, "_covering", covering)
        object.__setattr__(self, "_backward", backward)
        object.__setattr__(self, "_forward", forward)
        object.__setattr__(self, "_g", g)
        object.__setattr__(self, "_recovery", recovery)

    @property
    def covering(self) -> tuple[TargetHomomorphism, ...]:
        """The covering ``H`` the recovery was built from."""
        return self._covering

    @property
    def backward_instance(self) -> Instance:
        """``I_H = Chase_H(Sigma^{-1}, J)``."""
        return self._backward

    @property
    def forward_instance(self) -> Instance:
        """``J_H = Chase(Sigma, I_H)``."""
        return self._forward

    @property
    def homomorphism(self):
        """The finishing homomorphism ``g : J_H -> J``.

        Restricted to the nulls of ``I_H``: ``g`` is the identity on
        ``dom(J)``, and the images of the fresh nulls the forward chase
        introduced cannot affect ``g(I_H)``, so they are not recorded.
        """
        return self._g

    @property
    def recovery(self) -> Instance:
        """The emitted source instance ``g(I_H)``."""
        return self._recovery

    def __repr__(self) -> str:
        return f"RecoveryCandidate({self._recovery!r})"

    def __reduce__(self):
        return (
            RecoveryCandidate,
            (self._covering, self._backward, self._forward, self._g, self._recovery),
        )

    def __setattr__(self, name, value):  # pragma: no cover - guard
        raise AttributeError("RecoveryCandidate is immutable")


def _unpack_candidate(
    row: tuple, hom_tuple: Sequence[TargetHomomorphism]
) -> RecoveryCandidate:
    """Rebuild a candidate from its snapshot row.

    The covering entries are indices into the snapshot's ``hom_set``
    tuple (homomorphism objects only as a defensive fallback), so the
    rebuilt covering is made of the *same* objects the resume path just
    seeded into the hom-set cache — preserving the identity sharing an
    uninterrupted run would have.
    """
    cover, backward, forward, g, recovery = row
    covering = tuple(
        hom_tuple[h] if isinstance(h, int) else h for h in cover
    )
    return RecoveryCandidate(covering, backward, forward, g, recovery)


#: Bound on the specialization search of :func:`_dangling_completions`:
#: dangling nulls are rare (one per body-only variable of a reversed
#: tgd) and the bound only forgoes a completeness *repair*, never
#: soundness.
_COMPLETION_LIMIT = 512


def _dangling_completions(
    recovery: Instance, target_domain: set[Term]
) -> Iterator[dict[Term, Term]]:
    """Specializations of a failing candidate's dangling backward nulls.

    ``Chase_H(Sigma^{-1}, J)`` invents a fresh null for every body-only
    variable of a reversed tgd.  Such a null never reaches the forward
    chase, so the finishing homomorphisms ``g : J_H -> J`` leave it
    free — yet left free it asserts a source fact for *every* value,
    and the chase of that fact can force target facts ``J`` does not
    contain, failing the ``(I, J) |= Sigma`` half of the justification
    gate even when a grounded variant of the same candidate is a
    genuine recovery.  (Example: ``S0(v0), S1(v0,v1) -> T0(v1)`` and
    ``S1(v0,v1) -> T1(v0,v0)`` on ``J = {T0(a), T1(a,a)}`` produce the
    candidate ``{S0(a), S1(a,a), S1(a,?N)}`` whose free ``?N`` demands
    ``T0(?N)``; the specialization ``?N -> a`` is the recovery.)

    Yields the bounded specializations of those nulls into ``dom(J)``,
    most-specialized first in deterministic order; the caller re-checks
    each against the Definition 2 oracle, so every emission stays
    sound.
    """
    free = sorted(n for n in recovery.nulls() if n not in target_domain)
    if not free:
        return
    values = sorted(target_domain)
    if not values or (len(values) + 1) ** len(free) > _COMPLETION_LIMIT:
        return
    for choice in product([*values, None], repeat=len(free)):
        spec = {n: v for n, v in zip(free, choice) if v is not None}
        if spec:
            yield spec


def _evaluate_covering(
    task: tuple[
        Mapping,
        Instance,
        set[Term],
        tuple[TargetHomomorphism, ...],
        bool,
        SingleFlightMap,
        Optional[Deadline],
    ],
) -> tuple[list[RecoveryCandidate], dict[Instance, bool]]:
    """Steps 4-6 of Definition 9 for one covering (the parallel unit).

    A top-level function so the process backend can pickle it.  Each
    invocation creates its own :class:`NullFactory` seeded exactly like
    the serial path, so the produced instances are bit-identical to a
    serial run regardless of evaluation order.

    ``known`` carries already-computed justification verdicts as a
    :class:`SingleFlightMap`.  Thread workers receive the parent's map
    itself, so concurrent misses on one candidate are computed exactly
    once (keeping justification counters identical to a serial run);
    process workers receive a pickled point-in-time snapshot.  Fresh
    verdicts are also collected into a plain dict and returned with the
    candidates so the parent can share them with later coverings even
    across a process boundary — worker-side counter increments travel
    separately, in the executor's per-chunk metrics delta.

    ``deadline`` crosses the pickle boundary with its absolute expiry,
    so workers abandon their covering at the same wall-clock moment
    the parent would; the resulting :class:`DeadlineExceededError` is
    an application error and propagates faithfully to the caller.
    """
    mapping, target, target_domain, covering, verify, known, deadline = task
    factory = NullFactory()
    factory.avoid(target_domain)
    with TRACER.span("inverse_chase.chase", aggregate=True):
        backward = chase_restricted(
            [hom.reverse_trigger for hom in covering], target, factory
        ).result
        forward = chase(mapping, backward, factory).result
    candidates: list[RecoveryCandidate] = []
    verdicts: dict[Instance, bool] = {}

    def justified(candidate: Instance) -> bool:
        def compute() -> bool:
            verdict = is_justified(mapping, candidate, target, deadline=deadline)
            verdicts[candidate] = verdict
            return verdict

        with TRACER.span("inverse_chase.justify", aggregate=True):
            return known.get_or_compute(candidate, compute)

    # Definition 9 applies g to the backward instance, so only g's
    # behaviour on the backward nulls matters: the images of the fresh
    # nulls the forward chase introduced are projected away.  Searching
    # with that projection lets the join kernel dedup per component and
    # never materialize the collapsed bindings.
    for g in TRACER.traced_iter(
        "inverse_chase.finish",
        instance_homomorphisms(
            forward,
            target,
            identity_on=target_domain,
            project=backward.nulls(),
            deadline=deadline,
        ),
    ):
        recovery = backward.apply(g)
        if verify and not justified(recovery):
            for spec in _dangling_completions(recovery, target_domain):
                completed = recovery.apply(spec)
                if justified(completed):
                    g, recovery = g.extend(spec), completed
                    break
            else:
                continue
        candidates.append(
            RecoveryCandidate(covering, backward, forward, g, recovery)
        )
    return candidates, verdicts


def inverse_chase_candidates(
    mapping: Mapping,
    target: Instance,
    *,
    cover_mode: CoverMode = "minimal",
    subsumption_mode: SubsumptionMode = "auto",
    subsumption: Optional[Sequence[SubsumptionConstraint]] = None,
    max_covers: Optional[int] = None,
    max_recoveries: Optional[int] = None,
    verify_justification: bool = True,
    executor: ExecutorLike = None,
    jobs: Optional[int] = None,
    deadline: Optional[Deadline] = None,
    on_budget: BudgetMode = "raise",
    checkpoint: Optional[CheckpointManager] = None,
) -> Iterator[RecoveryCandidate]:
    """Yield recovery candidates with provenance (lazy Definition 9).

    :param cover_mode: ``"minimal"`` (default, UCQ-equivalent) or
        ``"all"`` (the literal Definition 9).
    :param subsumption_mode: how ``SUB(Sigma)`` filters coverings.
        ``"strict"`` is the literal Definition 8 check within ``H``
        (the paper's algorithm — pair it with ``cover_mode="all"`` for
        the full Definition 9; with minimal covers it can prune a
        covering whose sound SUB-closure is non-minimal and therefore
        never enumerated).  ``"refute"`` rejects ``H`` only when no
        covering extending ``H`` can satisfy SUB — safe with minimal
        covers.  ``"off"`` skips the filter entirely (ablation E15);
        the justification gate still guarantees soundness, at the
        price of extra homomorphically-redundant recoveries.
        ``"auto"`` (default) picks ``"refute"`` for minimal covers and
        ``"strict"`` for all covers.
    :param subsumption: a precomputed ``SUB(Sigma)`` to reuse across
        calls with the same mapping.
    :param max_covers: budget on enumerated coverings.
    :param max_recoveries: budget on emitted recoveries
        (:class:`~repro.errors.BudgetExceededError` beyond it).
    :param verify_justification: verify each candidate against the
        Definition 2 oracle before emitting it (see the module
        docstring).  Disable only for targets known to be valid for
        recovery — e.g. honestly exchanged benchmark targets — where
        the check is redundant work.
    :param executor: an :class:`~repro.engine.executor.Executor` (or a
        worker count) fanning coverings out in parallel.  Each covering
        is an independent backward-chase → forward-chase → gate
        pipeline; results keep the serial enumeration order, so
        parallel and serial runs yield identical sequences.
    :param jobs: shorthand for ``executor`` when only a worker count is
        needed; ``None``/``0``/``1`` stay serial (and fully lazy).
    :param deadline: a cooperative :class:`~repro.resilience.Deadline`
        checked inside the covering enumeration, the per-covering
        pipelines and the final homomorphism search.  Expiry raises
        :class:`~repro.errors.DeadlineExceededError` whose ``progress``
        records coverings seen and recoveries emitted so far.
    :param on_budget: what hitting ``max_covers``/``max_recoveries``
        does — ``"raise"`` (the default, a
        :class:`~repro.errors.BudgetExceededError` with the partial
        items attached) or ``"truncate"`` (end the iteration quietly
        with what was produced in budget).
    :param checkpoint: a
        :class:`~repro.resilience.checkpoint.CheckpointManager`
        persisting resumable state at surviving-covering boundaries.
        With ``resume=True`` the manager validates an existing snapshot
        against the live mapping/target/options fingerprints; on a
        match the already-emitted candidates are replayed (and their
        semantic counters merged) before enumeration continues past the
        last completed covering — the yielded sequence is bit-identical
        to an uninterrupted run.  A corrupt or mismatched snapshot
        falls back to a cold start.
    """
    resume_payloads = None
    if checkpoint is not None:
        resume_payloads = checkpoint.begin(
            "inverse_chase",
            scope={
                "mapping_fp": mapping_fingerprint(mapping),
                "target_fp": instance_fingerprint(target),
                "options_fp": options_fingerprint(
                    {
                        "cover_mode": cover_mode,
                        "subsumption_mode": subsumption_mode,
                        "subsumption": None
                        if subsumption is None
                        else sorted(repr(c) for c in subsumption),
                        "max_covers": max_covers,
                        "max_recoveries": max_recoveries,
                        "verify_justification": verify_justification,
                        "on_budget": on_budget,
                    }
                ),
                "epoch": target.epoch,
            },
        )
        if resume_payloads is not None:
            # Warm the derived caches before any recomputation: the
            # snapshot's fingerprints were just validated, so its
            # hom-set and plan keys are known to belong to this pair.
            saved_homs = resume_payloads.get("homs") or {}
            seed_hom_set(mapping, target, saved_homs.get("hom_set") or ())
            warm_plan_caches(saved_homs.get("plan_keys"), target)
    with TRACER.span("inverse_chase.hom_set"):
        homs = hom_set(mapping, target, deadline)
    if subsumption_mode == "auto":
        subsumption_mode = "refute" if cover_mode == "minimal" else "strict"
    constraints: Sequence[SubsumptionConstraint] = ()
    if subsumption_mode != "off":
        constraints = (
            subsumption if subsumption is not None else minimal_subsumers(mapping)
        )
    target_domain = target.domain()
    emitted = 0
    covers_seen = 0
    conclusion_pool = homs if subsumption_mode == "refute" else None
    # Distinct (covering, g) pairs frequently produce the same recovery
    # (homomorphisms differing only on forward-chase nulls); cache the
    # justification verdict per recovery instance.  The cache is shared
    # across parallel workers: threads use the map itself (single-flight,
    # so concurrent misses compute once and the hit/miss counters match
    # a serial run), processes get a snapshot per task and ship fresh
    # verdicts back.
    justified_cache = SingleFlightMap(
        hit_metric="justification_hits", miss_metric="justification_misses"
    )
    runner = resolve_executor(executor, jobs)

    # -- checkpoint/resume state --------------------------------------
    # ``skip_coverings`` surviving coverings were fully processed by a
    # previous lineage: re-walk the (cheap, deterministic) enumeration
    # past them and skip their (dominant) per-covering pipelines.
    # ``checkpointed`` accumulates every candidate yielded this lineage
    # (replayed + new); ``boundary`` is the persistable state as of the
    # last *completed* covering — saves never include a half-processed
    # covering, so a resume can never replay part of one and then
    # re-derive it.
    skip_coverings = 0
    replay: list[RecoveryCandidate] = []
    resume_complete = False
    if resume_payloads is not None:
        saved_enum = resume_payloads.get("enum") or {}
        saved_hom_tuple = (resume_payloads.get("homs") or {}).get("hom_set") or ()
        checkpoint.merge_counters(resume_payloads.get("counters"))
        justified_cache.update(saved_enum.get("verdicts") or {})
        saved_progress = resume_payloads.get("progress") or {}
        skip_coverings = int(saved_progress.get("coverings_done", 0))
        replay = [
            _unpack_candidate(row, saved_hom_tuple)
            for row in saved_enum.get("candidates") or ()
        ]
        resume_complete = bool(resume_payloads.get("__complete__"))
    coverings_done = 0
    checkpointed: list[RecoveryCandidate] = []
    boundary: Optional[dict] = None

    def mark_boundary() -> None:
        # O(1) on the hot per-covering path: ``checkpointed`` is
        # append-only and verdicts settle in insertion order, so prefix
        # lengths fully determine the state as of this boundary.  The
        # actual payload lists are materialized in save_checkpoint,
        # which runs on the (rare) cadence rather than every covering.
        nonlocal boundary
        boundary = {
            "progress": {
                "coverings_done": coverings_done,
                "emitted": emitted,
                "covers_seen": covers_seen,
            },
            "n_candidates": len(checkpointed),
            "n_verdicts": len(justified_cache),
            "counters": checkpoint.counters_delta(),
        }

    # Position of each hom in ``homs`` — built lazily at the first save
    # that has candidates to pack.  ``homs`` is fixed for the whole
    # enumeration, so the index assignment is stable across saves and
    # matches the order of the snapshot's ``hom_set`` tuple.
    hom_pos: dict[TargetHomomorphism, int] = {}

    def pack_candidate(candidate: RecoveryCandidate) -> tuple:
        # A covering is drawn from ``homs``, so its entries serialize as
        # plain indices into the hom-set record — re-pickling the (large)
        # homomorphism objects per candidate would dominate encode time.
        # The object itself is kept as a fallback for the (never expected)
        # case of a hom outside the enumeration pool.
        cover = tuple(hom_pos.get(h, h) for h in candidate.covering)
        return (
            cover,
            candidate.backward_instance,
            candidate.forward_instance,
            candidate.homomorphism,
            candidate.recovery,
        )

    def save_checkpoint(*, complete: bool = False) -> None:
        # The bulk state travels as TWO lazy, token-guarded records.
        # ``homs`` (the hom-set and warm plan keys) is fixed once the
        # plan caches settle, so after the first cadenced save later
        # saves — including the final complete-save — reuse its encoded
        # line verbatim.  ``enum`` holds what actually grows (packed
        # candidates + verdicts); its verdict keys are the candidates'
        # recovery instances, so keeping those two in one pickle stores
        # each shared subgraph once.
        n_candidates = boundary["n_candidates"]
        n_verdicts = boundary["n_verdicts"]

        def homs_state() -> dict:
            return {
                "hom_set": tuple(homs),
                "plan_keys": collect_warm_keys(target),
            }

        def enum_state() -> dict:
            if not hom_pos and homs:
                hom_pos.update((h, i) for i, h in enumerate(homs))
            return {
                "candidates": [
                    pack_candidate(c) for c in checkpointed[:n_candidates]
                ],
                "verdicts": dict(
                    islice(justified_cache.items(), n_verdicts)
                ),
            }

        payloads = {
            "progress": boundary["progress"],
            "counters": boundary["counters"],
            "homs": homs_state,
            "enum": enum_state,
        }
        tokens = {
            "homs": (len(homs), warm_cache_token()),
            "enum": (n_candidates, n_verdicts),
        }
        checkpoint.save(payloads, complete=complete, tokens=tokens)

    def covering_finished() -> None:
        nonlocal coverings_done
        if checkpoint is None:
            return
        coverings_done += 1
        mark_boundary()
        if checkpoint.due():
            save_checkpoint()

    def justified(candidate: Instance) -> bool:
        with TRACER.span("inverse_chase.justify", aggregate=True):
            return justified_cache.get_or_compute(
                candidate,
                lambda: is_justified(mapping, candidate, target, deadline=deadline),
            )

    def progress() -> dict:
        return {"covers_seen": covers_seen, "recoveries_emitted": emitted}

    def enrich(error) -> None:
        """Stamp the running totals onto an escaping resource error."""
        error.progress.setdefault("covers_seen", covers_seen)
        error.progress.setdefault("recoveries_emitted", emitted)

    def over_budget() -> Optional[BudgetExceededError]:
        if max_recoveries is not None and emitted > max_recoveries:
            return BudgetExceededError(
                "inverse chase recoveries", max_recoveries
            )
        return None

    def surviving_coverings() -> Iterator[tuple[TargetHomomorphism, ...]]:
        nonlocal covers_seen, skip_coverings
        coverings = enumerate_covers(
            homs, target, mode=cover_mode, limit=max_covers, deadline=deadline
        )
        while True:
            try:
                covering = next(coverings)
            except StopIteration:
                return
            except BudgetExceededError:
                if on_budget == "truncate":
                    return
                raise
            covers_seen += 1
            if subsumption_mode != "off" and not models_all(
                covering, constraints, conclusion_pool
            ):
                continue
            if skip_coverings > 0:
                # Already fully processed by the lineage that wrote the
                # snapshot; its candidates were replayed up front.
                skip_coverings -= 1
                continue
            yield covering

    try:
        if checkpoint is not None:
            # Replay the candidates the previous lineage already
            # emitted, in their original order; their metric increments
            # arrived via merge_counters, so none are re-counted here.
            for candidate in replay:
                emitted += 1
                checkpointed.append(candidate)
                yield candidate
            coverings_done = skip_coverings
            mark_boundary()
            if resume_complete:
                # The snapshot covers the whole enumeration; the file
                # on disk already says so — nothing left to compute.
                return
        if runner.is_serial:
            # The serial path stays lazy per homomorphism g: callers like
            # is_valid_for_recovery pull a single candidate and stop.
            for covering in TRACER.traced_iter(
                "inverse_chase.covers", surviving_coverings()
            ):
                METRICS.inc("coverings_evaluated")
                if deadline is not None:
                    deadline.check("inverse chase", progress())
                factory = NullFactory()
                factory.avoid(target_domain)
                with TRACER.span("inverse_chase.chase", aggregate=True):
                    backward = chase_restricted(
                        [hom.reverse_trigger for hom in covering], target, factory
                    ).result
                    forward = chase(mapping, backward, factory).result
                for g in TRACER.traced_iter(
                    "inverse_chase.finish",
                    instance_homomorphisms(
                        forward,
                        target,
                        identity_on=target_domain,
                        project=backward.nulls(),
                        deadline=deadline,
                    ),
                ):
                    recovery = backward.apply(g)
                    if verify_justification and not justified(recovery):
                        # A failing candidate may still ground to a genuine
                        # recovery when its only defect is a dangling
                        # backward null (see _dangling_completions).
                        for spec in _dangling_completions(recovery, target_domain):
                            completed = recovery.apply(spec)
                            if justified(completed):
                                g, recovery = g.extend(spec), completed
                                break
                        else:
                            continue
                    emitted += 1
                    METRICS.inc("recoveries_emitted")
                    error = over_budget()
                    if error is not None:
                        if on_budget == "truncate":
                            return
                        raise error
                    candidate = RecoveryCandidate(
                        covering, backward, forward, g, recovery
                    )
                    checkpointed.append(candidate)
                    yield candidate
                covering_finished()
            if checkpoint is not None:
                save_checkpoint(complete=True)
            return

        if runner.chunk_size is None:
            # One covering's pipeline usually runs well under a
            # millisecond, comparable to a single submission's
            # overhead.  Batch them.
            runner = Executor(
                jobs=runner.jobs, backend=runner.backend, chunk_size=8
            )
        tasks = (
            (
                mapping,
                target,
                target_domain,
                covering,
                verify_justification,
                justified_cache,
                deadline,
            )
            for covering in TRACER.traced_iter(
                "inverse_chase.covers", surviving_coverings()
            )
        )
        for candidates, verdicts in runner.map(_evaluate_covering, tasks):
            METRICS.inc("coverings_evaluated")
            if deadline is not None:
                deadline.check("inverse chase", progress())
            justified_cache.update(verdicts)
            for candidate in candidates:
                emitted += 1
                METRICS.inc("recoveries_emitted")
                error = over_budget()
                if error is not None:
                    if on_budget == "truncate":
                        return
                    raise error
                checkpointed.append(candidate)
                yield candidate
            covering_finished()
        if checkpoint is not None:
            save_checkpoint(complete=True)
    except (BudgetExceededError, DeadlineExceededError) as error:
        enrich(error)
        if checkpoint is not None and boundary is not None:
            # Persist the last completed covering so the interrupted
            # work is resumable; failure to save must not mask the
            # resource error itself.
            try:
                save_checkpoint()
            except OSError:
                pass
        raise


def inverse_chase(
    mapping: Mapping,
    target: Instance,
    *,
    cover_mode: CoverMode = "minimal",
    subsumption_mode: SubsumptionMode = "auto",
    subsumption: Optional[Sequence[SubsumptionConstraint]] = None,
    max_covers: Optional[int] = None,
    max_recoveries: Optional[int] = None,
    verify_justification: bool = True,
    executor: ExecutorLike = None,
    jobs: Optional[int] = None,
    deadline: Optional[Deadline] = None,
    mode: ResilienceMode = "raise",
    on_budget: BudgetMode = "raise",
    checkpoint: Optional[CheckpointManager] = None,
):
    """``Chase^{-1}(Sigma, J)``: the deduplicated set of recoveries.

    Returns the empty list exactly when ``J`` is not valid for recovery
    under ``Sigma`` (Theorem 3's characterization).  ``executor`` /
    ``jobs`` parallelize per covering, preserving the serial order.

    Resource governance (see :mod:`repro.resilience`):

    * ``deadline`` bounds the run cooperatively.  With the default
      ``mode="raise"``, expiry raises
      :class:`~repro.errors.DeadlineExceededError` whose ``partial``
      holds the deduplicated recoveries already produced and whose
      ``progress`` counts coverings seen / recoveries emitted.
    * ``mode="degrade"`` never raises on expiry; it walks the
      escalation ladder instead and returns an
      :class:`~repro.resilience.AnytimeResult` (which iterates like
      the plain list) tagged with what the answer is:

      1. the requested enumeration finished → ``exact``;
      2. ``cover_mode="all"`` expired → retry with minimal covers
         (UCQ-equivalent) under a restarted budget → ``exact``;
      3. recoveries were emitted before expiry → those —
         each passed the Definition 2 justification gate (when
         ``verify_justification`` is on), so every member is a genuine
         recovery — tagged ``sound-incomplete``;
      4. nothing emitted → the PTIME Section 6.1 constructions:
         Theorem 5's unique recovery when its preconditions hold
         (``exact`` for UCQ purposes), else Theorem 7's sound source
         instance from the maximal uniquely-covered subset
         (``sound-incomplete``).

    * ``on_budget="truncate"`` turns ``max_covers``/``max_recoveries``
      overruns into quiet truncation instead of
      :class:`~repro.errors.BudgetExceededError` (which, when raised,
      carries the partial recovery list too).
    * ``checkpoint`` persists resumable enumeration state at covering
      boundaries and, with ``resume=True``, continues a crashed run
      from its last snapshot (see
      :mod:`repro.resilience.checkpoint`).  Under ``mode="degrade"``
      only the first (requested) enumeration rung checkpoints — the
      later rungs are already the cheap fallbacks.
    """
    if mode not in ("raise", "degrade"):
        raise ValueError(f"unknown resilience mode {mode!r}")
    options = dict(
        subsumption_mode=subsumption_mode,
        subsumption=subsumption,
        max_covers=max_covers,
        max_recoveries=max_recoveries,
        verify_justification=verify_justification,
        executor=executor,
        jobs=jobs,
        on_budget=on_budget,
    )
    if mode == "degrade":
        return _degraded_inverse_chase(
            mapping,
            target,
            cover_mode=cover_mode,
            deadline=deadline,
            checkpoint=checkpoint,
            **options,
        )
    result: list[Instance] = []
    try:
        _collect_recoveries(
            mapping,
            target,
            result,
            cover_mode=cover_mode,
            deadline=deadline,
            checkpoint=checkpoint,
            **options,
        )
    except (BudgetExceededError, DeadlineExceededError) as error:
        # Hand the caller what was already produced: every entry passed
        # the justification gate, so the partial list is sound.
        error.partial = list(result)
        error.progress.setdefault("recoveries_emitted", len(result))
        raise
    return result


def _collect_recoveries(
    mapping: Mapping,
    target: Instance,
    into: list[Instance],
    *,
    cover_mode: CoverMode,
    deadline: Optional[Deadline],
    checkpoint: Optional[CheckpointManager] = None,
    **options,
) -> list[Instance]:
    """Drain the candidate stream into ``into``, deduplicating.

    Appending into a caller-owned list (instead of returning one) is
    what lets the degradation ladder salvage partial progress when an
    exception interrupts the drain.
    """
    seen: set[Instance] = set(into)
    for candidate in inverse_chase_candidates(
        mapping,
        target,
        cover_mode=cover_mode,
        deadline=deadline,
        checkpoint=checkpoint,
        **options,
    ):
        if candidate.recovery not in seen:
            seen.add(candidate.recovery)
            into.append(candidate.recovery)
    return into


def _degraded_inverse_chase(
    mapping: Mapping,
    target: Instance,
    *,
    cover_mode: CoverMode,
    deadline: Optional[Deadline],
    checkpoint: Optional[CheckpointManager] = None,
    **options,
) -> AnytimeResult:
    """The escalation ladder behind ``inverse_chase(mode="degrade")``.

    Only the first rung — the enumeration the caller actually asked
    for — checkpoints: the later rungs exist to produce *some* answer
    quickly once that enumeration has already blown its budget, and a
    rung-specific snapshot would shadow the valuable one.
    """
    partial: list[Instance] = []
    first_error: Optional[Exception] = None
    try:
        with TRACER.span("resilience.rung.enumeration"):
            value = _collect_recoveries(
                mapping,
                target,
                partial,
                cover_mode=cover_mode,
                deadline=deadline,
                checkpoint=checkpoint,
                **options,
            )
        return AnytimeResult(
            list(value),
            "exact",
            "enumeration",
            detail=f"{cover_mode}-cover enumeration completed in budget",
        )
    except (BudgetExceededError, DeadlineExceededError) as error:
        first_error = error
        METRICS.inc("degradations")

    progress = dict(getattr(first_error, "progress", {}))
    progress["degraded_because"] = str(first_error)

    # Rung 2: the literal Definition 9 expired; minimal covers are
    # UCQ-equivalent (see repro.core.covers) and exponentially fewer.
    # The rung receives a restarted budget of the same size.
    if cover_mode != "minimal":
        try:
            with TRACER.span("resilience.rung.minimal-covers"):
                value = _collect_recoveries(
                    mapping,
                    target,
                    partial,
                    cover_mode="minimal",
                    deadline=deadline.restarted() if deadline is not None else None,
                    **options,
                )
            return AnytimeResult(
                list(value),
                "exact",
                "minimal-covers",
                detail=(
                    "full enumeration expired; minimal-cover enumeration "
                    "(UCQ-equivalent) completed under a restarted budget"
                ),
                progress=progress,
            )
        except (BudgetExceededError, DeadlineExceededError):
            METRICS.inc("degradations")

    # Rung 3: answer from the recoveries emitted before expiry.  With
    # verify_justification on (the default) each passed the
    # Definition 2 gate, so the set is sound — merely incomplete.
    if partial:
        return AnytimeResult(
            list(partial),
            "sound-incomplete",
            "partial-enumeration",
            detail=(
                f"enumeration expired after {len(partial)} verified "
                "recovery(ies); the set may be incomplete"
            ),
            progress=progress,
        )

    # Rung 4: nothing in budget — fall back to the polynomial
    # constructions of Section 6.1 on the maximal uniquely-covered
    # subset.  Imported here: tractable.py imports covers/hom_sets too,
    # and a module-level import would be cyclic.
    from .tractable import complete_ucq_recovery, sound_ucq_instance

    try:
        with TRACER.span("resilience.rung.tractable"):
            recovery = complete_ucq_recovery(
                mapping, target, subsumption=options.get("subsumption")
            )
        return AnytimeResult(
            [recovery],
            "exact",
            "tractable",
            detail=(
                "enumeration expired; Theorem 5 applies (quasi-guarded "
                "safe, unique covering) — the single recovery is "
                "UCQ-complete"
            ),
            progress=progress,
        )
    except (ValueError, NotRecoverableError):
        pass
    with TRACER.span("resilience.rung.tractable"):
        sound = sound_ucq_instance(mapping, target)
    value = [] if sound.is_empty else [sound]
    return AnytimeResult(
        value,
        "sound-incomplete",
        "tractable",
        detail=(
            "enumeration expired; Theorem 7's sound source instance "
            "from the maximal uniquely-covered subset (UCQ answers on "
            "it are certain, but it need not witness every target fact)"
        ),
        progress=progress,
    )
