"""The inverse chase ``Chase^{-1}(Sigma, J)`` (Definition 9, Theorems 1-2).

Given a mapping ``Sigma`` and a target instance ``J``, the inverse
chase produces a finite set of source instances that is a
UCQ-universal recovery of ``J`` (Theorem 2).  The computation follows
Definition 9 step by step:

1. compute ``HOM(Sigma, J)``;
2. enumerate coverings ``H in COV(Sigma, J)``;
3. keep the coverings modeling the subsumption constraints
   ``SUB(Sigma)``;
4. for each surviving ``H``, chase backwards:
   ``I_H = Chase_H(Sigma^{-1}, J)``;
5. chase forwards again: ``J_H = Chase(Sigma, I_H)``;
6. for every homomorphism ``g : J_H -> J`` that is the identity on
   ``dom(J)``, emit the recovery ``g(I_H)``.

Step 6 acts as a soundness gate: a covering for which no ``g`` exists
yields no recovery.  Definition 9 additionally *presupposes* that
``J`` is valid for recovery; without that hypothesis the literal
construction can emit non-recoveries (e.g. ``Sigma = {S(x) -> T(x,y)}``
with ``J = {T(a,b), T(a,c)}``, where two covering homomorphisms share
one frontier binding and collapse to a single backward fact that
cannot witness both target tuples).  We therefore verify every
candidate against the Definition 2 oracle before emitting it
(``verify_justification``), which makes Theorem 1 hold with no
hypothesis on ``J`` and makes an empty result *characterize*
invalidity.  The converse failure also exists: a candidate can fail
the gate *only* because a dangling backward null (a body-only variable
of a reversed tgd, never constrained by any ``g``) asserts more than
``J`` supports, while a grounding of that null is a genuine recovery.
Dropping the candidate outright would leave a valid ``J`` with an
empty recovery set, so the gate retries bounded specializations of the
dangling nulls into ``dom(J)`` before giving up
(:func:`_dangling_completions`).

By default coverings are enumerated in ``minimal`` mode; see
:mod:`repro.core.covers` for why this preserves UCQ certain answers,
and benchmark E14 for the measured effect.
"""

from __future__ import annotations

from itertools import product
from typing import Iterator, Literal, Optional, Sequence

from ..data.instances import Instance
from ..data.terms import NullFactory, Term
from ..engine.cache import SingleFlightMap
from ..engine.executor import Executor, ExecutorLike, resolve_executor
from ..observability.metrics import METRICS
from ..observability.spans import TRACER
from ..errors import BudgetExceededError, DeadlineExceededError, NotRecoverableError
from ..logic.homomorphisms import instance_homomorphisms
from ..logic.tgds import Mapping
from ..resilience import AnytimeResult, Deadline
from ..chase.standard import chase, chase_restricted
from .covers import CoverMode, enumerate_covers
from .hom_sets import TargetHomomorphism, hom_set
from .semantics import is_justified
from .subsumption import SubsumptionConstraint, minimal_subsumers, models_all


SubsumptionMode = Literal["auto", "strict", "refute", "off"]
BudgetMode = Literal["raise", "truncate"]
ResilienceMode = Literal["raise", "degrade"]


class RecoveryCandidate:
    """One recovery with its full provenance through Definition 9."""

    __slots__ = ("_covering", "_backward", "_forward", "_g", "_recovery")

    def __init__(
        self,
        covering: tuple[TargetHomomorphism, ...],
        backward: Instance,
        forward: Instance,
        g,
        recovery: Instance,
    ):
        object.__setattr__(self, "_covering", covering)
        object.__setattr__(self, "_backward", backward)
        object.__setattr__(self, "_forward", forward)
        object.__setattr__(self, "_g", g)
        object.__setattr__(self, "_recovery", recovery)

    @property
    def covering(self) -> tuple[TargetHomomorphism, ...]:
        """The covering ``H`` the recovery was built from."""
        return self._covering

    @property
    def backward_instance(self) -> Instance:
        """``I_H = Chase_H(Sigma^{-1}, J)``."""
        return self._backward

    @property
    def forward_instance(self) -> Instance:
        """``J_H = Chase(Sigma, I_H)``."""
        return self._forward

    @property
    def homomorphism(self):
        """The finishing homomorphism ``g : J_H -> J``.

        Restricted to the nulls of ``I_H``: ``g`` is the identity on
        ``dom(J)``, and the images of the fresh nulls the forward chase
        introduced cannot affect ``g(I_H)``, so they are not recorded.
        """
        return self._g

    @property
    def recovery(self) -> Instance:
        """The emitted source instance ``g(I_H)``."""
        return self._recovery

    def __repr__(self) -> str:
        return f"RecoveryCandidate({self._recovery!r})"

    def __reduce__(self):
        return (
            RecoveryCandidate,
            (self._covering, self._backward, self._forward, self._g, self._recovery),
        )

    def __setattr__(self, name, value):  # pragma: no cover - guard
        raise AttributeError("RecoveryCandidate is immutable")


#: Bound on the specialization search of :func:`_dangling_completions`:
#: dangling nulls are rare (one per body-only variable of a reversed
#: tgd) and the bound only forgoes a completeness *repair*, never
#: soundness.
_COMPLETION_LIMIT = 512


def _dangling_completions(
    recovery: Instance, target_domain: set[Term]
) -> Iterator[dict[Term, Term]]:
    """Specializations of a failing candidate's dangling backward nulls.

    ``Chase_H(Sigma^{-1}, J)`` invents a fresh null for every body-only
    variable of a reversed tgd.  Such a null never reaches the forward
    chase, so the finishing homomorphisms ``g : J_H -> J`` leave it
    free — yet left free it asserts a source fact for *every* value,
    and the chase of that fact can force target facts ``J`` does not
    contain, failing the ``(I, J) |= Sigma`` half of the justification
    gate even when a grounded variant of the same candidate is a
    genuine recovery.  (Example: ``S0(v0), S1(v0,v1) -> T0(v1)`` and
    ``S1(v0,v1) -> T1(v0,v0)`` on ``J = {T0(a), T1(a,a)}`` produce the
    candidate ``{S0(a), S1(a,a), S1(a,?N)}`` whose free ``?N`` demands
    ``T0(?N)``; the specialization ``?N -> a`` is the recovery.)

    Yields the bounded specializations of those nulls into ``dom(J)``,
    most-specialized first in deterministic order; the caller re-checks
    each against the Definition 2 oracle, so every emission stays
    sound.
    """
    free = sorted(n for n in recovery.nulls() if n not in target_domain)
    if not free:
        return
    values = sorted(target_domain)
    if not values or (len(values) + 1) ** len(free) > _COMPLETION_LIMIT:
        return
    for choice in product([*values, None], repeat=len(free)):
        spec = {n: v for n, v in zip(free, choice) if v is not None}
        if spec:
            yield spec


def _evaluate_covering(
    task: tuple[
        Mapping,
        Instance,
        set[Term],
        tuple[TargetHomomorphism, ...],
        bool,
        SingleFlightMap,
        Optional[Deadline],
    ],
) -> tuple[list[RecoveryCandidate], dict[Instance, bool]]:
    """Steps 4-6 of Definition 9 for one covering (the parallel unit).

    A top-level function so the process backend can pickle it.  Each
    invocation creates its own :class:`NullFactory` seeded exactly like
    the serial path, so the produced instances are bit-identical to a
    serial run regardless of evaluation order.

    ``known`` carries already-computed justification verdicts as a
    :class:`SingleFlightMap`.  Thread workers receive the parent's map
    itself, so concurrent misses on one candidate are computed exactly
    once (keeping justification counters identical to a serial run);
    process workers receive a pickled point-in-time snapshot.  Fresh
    verdicts are also collected into a plain dict and returned with the
    candidates so the parent can share them with later coverings even
    across a process boundary — worker-side counter increments travel
    separately, in the executor's per-chunk metrics delta.

    ``deadline`` crosses the pickle boundary with its absolute expiry,
    so workers abandon their covering at the same wall-clock moment
    the parent would; the resulting :class:`DeadlineExceededError` is
    an application error and propagates faithfully to the caller.
    """
    mapping, target, target_domain, covering, verify, known, deadline = task
    factory = NullFactory()
    factory.avoid(target_domain)
    with TRACER.span("inverse_chase.chase", aggregate=True):
        backward = chase_restricted(
            [hom.reverse_trigger for hom in covering], target, factory
        ).result
        forward = chase(mapping, backward, factory).result
    candidates: list[RecoveryCandidate] = []
    verdicts: dict[Instance, bool] = {}

    def justified(candidate: Instance) -> bool:
        def compute() -> bool:
            verdict = is_justified(mapping, candidate, target)
            verdicts[candidate] = verdict
            return verdict

        with TRACER.span("inverse_chase.justify", aggregate=True):
            return known.get_or_compute(candidate, compute)

    # Definition 9 applies g to the backward instance, so only g's
    # behaviour on the backward nulls matters: the images of the fresh
    # nulls the forward chase introduced are projected away.  Searching
    # with that projection lets the join kernel dedup per component and
    # never materialize the collapsed bindings.
    for g in TRACER.traced_iter(
        "inverse_chase.finish",
        instance_homomorphisms(
            forward,
            target,
            identity_on=target_domain,
            project=backward.nulls(),
            deadline=deadline,
        ),
    ):
        recovery = backward.apply(g)
        if verify and not justified(recovery):
            for spec in _dangling_completions(recovery, target_domain):
                completed = recovery.apply(spec)
                if justified(completed):
                    g, recovery = g.extend(spec), completed
                    break
            else:
                continue
        candidates.append(
            RecoveryCandidate(covering, backward, forward, g, recovery)
        )
    return candidates, verdicts


def inverse_chase_candidates(
    mapping: Mapping,
    target: Instance,
    *,
    cover_mode: CoverMode = "minimal",
    subsumption_mode: SubsumptionMode = "auto",
    subsumption: Optional[Sequence[SubsumptionConstraint]] = None,
    max_covers: Optional[int] = None,
    max_recoveries: Optional[int] = None,
    verify_justification: bool = True,
    executor: ExecutorLike = None,
    jobs: Optional[int] = None,
    deadline: Optional[Deadline] = None,
    on_budget: BudgetMode = "raise",
) -> Iterator[RecoveryCandidate]:
    """Yield recovery candidates with provenance (lazy Definition 9).

    :param cover_mode: ``"minimal"`` (default, UCQ-equivalent) or
        ``"all"`` (the literal Definition 9).
    :param subsumption_mode: how ``SUB(Sigma)`` filters coverings.
        ``"strict"`` is the literal Definition 8 check within ``H``
        (the paper's algorithm — pair it with ``cover_mode="all"`` for
        the full Definition 9; with minimal covers it can prune a
        covering whose sound SUB-closure is non-minimal and therefore
        never enumerated).  ``"refute"`` rejects ``H`` only when no
        covering extending ``H`` can satisfy SUB — safe with minimal
        covers.  ``"off"`` skips the filter entirely (ablation E15);
        the justification gate still guarantees soundness, at the
        price of extra homomorphically-redundant recoveries.
        ``"auto"`` (default) picks ``"refute"`` for minimal covers and
        ``"strict"`` for all covers.
    :param subsumption: a precomputed ``SUB(Sigma)`` to reuse across
        calls with the same mapping.
    :param max_covers: budget on enumerated coverings.
    :param max_recoveries: budget on emitted recoveries
        (:class:`~repro.errors.BudgetExceededError` beyond it).
    :param verify_justification: verify each candidate against the
        Definition 2 oracle before emitting it (see the module
        docstring).  Disable only for targets known to be valid for
        recovery — e.g. honestly exchanged benchmark targets — where
        the check is redundant work.
    :param executor: an :class:`~repro.engine.executor.Executor` (or a
        worker count) fanning coverings out in parallel.  Each covering
        is an independent backward-chase → forward-chase → gate
        pipeline; results keep the serial enumeration order, so
        parallel and serial runs yield identical sequences.
    :param jobs: shorthand for ``executor`` when only a worker count is
        needed; ``None``/``0``/``1`` stay serial (and fully lazy).
    :param deadline: a cooperative :class:`~repro.resilience.Deadline`
        checked inside the covering enumeration, the per-covering
        pipelines and the final homomorphism search.  Expiry raises
        :class:`~repro.errors.DeadlineExceededError` whose ``progress``
        records coverings seen and recoveries emitted so far.
    :param on_budget: what hitting ``max_covers``/``max_recoveries``
        does — ``"raise"`` (the default, a
        :class:`~repro.errors.BudgetExceededError` with the partial
        items attached) or ``"truncate"`` (end the iteration quietly
        with what was produced in budget).
    """
    with TRACER.span("inverse_chase.hom_set"):
        homs = hom_set(mapping, target, deadline)
    if subsumption_mode == "auto":
        subsumption_mode = "refute" if cover_mode == "minimal" else "strict"
    constraints: Sequence[SubsumptionConstraint] = ()
    if subsumption_mode != "off":
        constraints = (
            subsumption if subsumption is not None else minimal_subsumers(mapping)
        )
    target_domain = target.domain()
    emitted = 0
    covers_seen = 0
    conclusion_pool = homs if subsumption_mode == "refute" else None
    # Distinct (covering, g) pairs frequently produce the same recovery
    # (homomorphisms differing only on forward-chase nulls); cache the
    # justification verdict per recovery instance.  The cache is shared
    # across parallel workers: threads use the map itself (single-flight,
    # so concurrent misses compute once and the hit/miss counters match
    # a serial run), processes get a snapshot per task and ship fresh
    # verdicts back.
    justified_cache = SingleFlightMap(
        hit_metric="justification_hits", miss_metric="justification_misses"
    )
    runner = resolve_executor(executor, jobs)

    def justified(candidate: Instance) -> bool:
        with TRACER.span("inverse_chase.justify", aggregate=True):
            return justified_cache.get_or_compute(
                candidate, lambda: is_justified(mapping, candidate, target)
            )

    def progress() -> dict:
        return {"covers_seen": covers_seen, "recoveries_emitted": emitted}

    def enrich(error) -> None:
        """Stamp the running totals onto an escaping resource error."""
        error.progress.setdefault("covers_seen", covers_seen)
        error.progress.setdefault("recoveries_emitted", emitted)

    def over_budget() -> Optional[BudgetExceededError]:
        if max_recoveries is not None and emitted > max_recoveries:
            return BudgetExceededError(
                "inverse chase recoveries", max_recoveries
            )
        return None

    def surviving_coverings() -> Iterator[tuple[TargetHomomorphism, ...]]:
        nonlocal covers_seen
        coverings = enumerate_covers(
            homs, target, mode=cover_mode, limit=max_covers, deadline=deadline
        )
        while True:
            try:
                covering = next(coverings)
            except StopIteration:
                return
            except BudgetExceededError:
                if on_budget == "truncate":
                    return
                raise
            covers_seen += 1
            if subsumption_mode != "off" and not models_all(
                covering, constraints, conclusion_pool
            ):
                continue
            yield covering

    try:
        if runner.is_serial:
            # The serial path stays lazy per homomorphism g: callers like
            # is_valid_for_recovery pull a single candidate and stop.
            for covering in TRACER.traced_iter(
                "inverse_chase.covers", surviving_coverings()
            ):
                METRICS.inc("coverings_evaluated")
                if deadline is not None:
                    deadline.check("inverse chase", progress())
                factory = NullFactory()
                factory.avoid(target_domain)
                with TRACER.span("inverse_chase.chase", aggregate=True):
                    backward = chase_restricted(
                        [hom.reverse_trigger for hom in covering], target, factory
                    ).result
                    forward = chase(mapping, backward, factory).result
                for g in TRACER.traced_iter(
                    "inverse_chase.finish",
                    instance_homomorphisms(
                        forward,
                        target,
                        identity_on=target_domain,
                        project=backward.nulls(),
                        deadline=deadline,
                    ),
                ):
                    recovery = backward.apply(g)
                    if verify_justification and not justified(recovery):
                        # A failing candidate may still ground to a genuine
                        # recovery when its only defect is a dangling
                        # backward null (see _dangling_completions).
                        for spec in _dangling_completions(recovery, target_domain):
                            completed = recovery.apply(spec)
                            if justified(completed):
                                g, recovery = g.extend(spec), completed
                                break
                        else:
                            continue
                    emitted += 1
                    METRICS.inc("recoveries_emitted")
                    error = over_budget()
                    if error is not None:
                        if on_budget == "truncate":
                            return
                        raise error
                    yield RecoveryCandidate(
                        covering, backward, forward, g, recovery
                    )
            return

        if runner.chunk_size is None:
            # One covering's pipeline usually runs well under a
            # millisecond, comparable to a single submission's
            # overhead.  Batch them.
            runner = Executor(
                jobs=runner.jobs, backend=runner.backend, chunk_size=8
            )
        tasks = (
            (
                mapping,
                target,
                target_domain,
                covering,
                verify_justification,
                justified_cache,
                deadline,
            )
            for covering in TRACER.traced_iter(
                "inverse_chase.covers", surviving_coverings()
            )
        )
        for candidates, verdicts in runner.map(_evaluate_covering, tasks):
            METRICS.inc("coverings_evaluated")
            if deadline is not None:
                deadline.check("inverse chase", progress())
            justified_cache.update(verdicts)
            for candidate in candidates:
                emitted += 1
                METRICS.inc("recoveries_emitted")
                error = over_budget()
                if error is not None:
                    if on_budget == "truncate":
                        return
                    raise error
                yield candidate
    except (BudgetExceededError, DeadlineExceededError) as error:
        enrich(error)
        raise


def inverse_chase(
    mapping: Mapping,
    target: Instance,
    *,
    cover_mode: CoverMode = "minimal",
    subsumption_mode: SubsumptionMode = "auto",
    subsumption: Optional[Sequence[SubsumptionConstraint]] = None,
    max_covers: Optional[int] = None,
    max_recoveries: Optional[int] = None,
    verify_justification: bool = True,
    executor: ExecutorLike = None,
    jobs: Optional[int] = None,
    deadline: Optional[Deadline] = None,
    mode: ResilienceMode = "raise",
    on_budget: BudgetMode = "raise",
):
    """``Chase^{-1}(Sigma, J)``: the deduplicated set of recoveries.

    Returns the empty list exactly when ``J`` is not valid for recovery
    under ``Sigma`` (Theorem 3's characterization).  ``executor`` /
    ``jobs`` parallelize per covering, preserving the serial order.

    Resource governance (see :mod:`repro.resilience`):

    * ``deadline`` bounds the run cooperatively.  With the default
      ``mode="raise"``, expiry raises
      :class:`~repro.errors.DeadlineExceededError` whose ``partial``
      holds the deduplicated recoveries already produced and whose
      ``progress`` counts coverings seen / recoveries emitted.
    * ``mode="degrade"`` never raises on expiry; it walks the
      escalation ladder instead and returns an
      :class:`~repro.resilience.AnytimeResult` (which iterates like
      the plain list) tagged with what the answer is:

      1. the requested enumeration finished → ``exact``;
      2. ``cover_mode="all"`` expired → retry with minimal covers
         (UCQ-equivalent) under a restarted budget → ``exact``;
      3. recoveries were emitted before expiry → those —
         each passed the Definition 2 justification gate (when
         ``verify_justification`` is on), so every member is a genuine
         recovery — tagged ``sound-incomplete``;
      4. nothing emitted → the PTIME Section 6.1 constructions:
         Theorem 5's unique recovery when its preconditions hold
         (``exact`` for UCQ purposes), else Theorem 7's sound source
         instance from the maximal uniquely-covered subset
         (``sound-incomplete``).

    * ``on_budget="truncate"`` turns ``max_covers``/``max_recoveries``
      overruns into quiet truncation instead of
      :class:`~repro.errors.BudgetExceededError` (which, when raised,
      carries the partial recovery list too).
    """
    if mode not in ("raise", "degrade"):
        raise ValueError(f"unknown resilience mode {mode!r}")
    options = dict(
        subsumption_mode=subsumption_mode,
        subsumption=subsumption,
        max_covers=max_covers,
        max_recoveries=max_recoveries,
        verify_justification=verify_justification,
        executor=executor,
        jobs=jobs,
        on_budget=on_budget,
    )
    if mode == "degrade":
        return _degraded_inverse_chase(
            mapping, target, cover_mode=cover_mode, deadline=deadline, **options
        )
    result: list[Instance] = []
    try:
        _collect_recoveries(
            mapping, target, result, cover_mode=cover_mode, deadline=deadline, **options
        )
    except (BudgetExceededError, DeadlineExceededError) as error:
        # Hand the caller what was already produced: every entry passed
        # the justification gate, so the partial list is sound.
        error.partial = list(result)
        error.progress.setdefault("recoveries_emitted", len(result))
        raise
    return result


def _collect_recoveries(
    mapping: Mapping,
    target: Instance,
    into: list[Instance],
    *,
    cover_mode: CoverMode,
    deadline: Optional[Deadline],
    **options,
) -> list[Instance]:
    """Drain the candidate stream into ``into``, deduplicating.

    Appending into a caller-owned list (instead of returning one) is
    what lets the degradation ladder salvage partial progress when an
    exception interrupts the drain.
    """
    seen: set[Instance] = set(into)
    for candidate in inverse_chase_candidates(
        mapping, target, cover_mode=cover_mode, deadline=deadline, **options
    ):
        if candidate.recovery not in seen:
            seen.add(candidate.recovery)
            into.append(candidate.recovery)
    return into


def _degraded_inverse_chase(
    mapping: Mapping,
    target: Instance,
    *,
    cover_mode: CoverMode,
    deadline: Optional[Deadline],
    **options,
) -> AnytimeResult:
    """The escalation ladder behind ``inverse_chase(mode="degrade")``."""
    partial: list[Instance] = []
    first_error: Optional[Exception] = None
    try:
        with TRACER.span("resilience.rung.enumeration"):
            value = _collect_recoveries(
                mapping,
                target,
                partial,
                cover_mode=cover_mode,
                deadline=deadline,
                **options,
            )
        return AnytimeResult(
            list(value),
            "exact",
            "enumeration",
            detail=f"{cover_mode}-cover enumeration completed in budget",
        )
    except (BudgetExceededError, DeadlineExceededError) as error:
        first_error = error
        METRICS.inc("degradations")

    progress = dict(getattr(first_error, "progress", {}))
    progress["degraded_because"] = str(first_error)

    # Rung 2: the literal Definition 9 expired; minimal covers are
    # UCQ-equivalent (see repro.core.covers) and exponentially fewer.
    # The rung receives a restarted budget of the same size.
    if cover_mode != "minimal":
        try:
            with TRACER.span("resilience.rung.minimal-covers"):
                value = _collect_recoveries(
                    mapping,
                    target,
                    partial,
                    cover_mode="minimal",
                    deadline=deadline.restarted() if deadline is not None else None,
                    **options,
                )
            return AnytimeResult(
                list(value),
                "exact",
                "minimal-covers",
                detail=(
                    "full enumeration expired; minimal-cover enumeration "
                    "(UCQ-equivalent) completed under a restarted budget"
                ),
                progress=progress,
            )
        except (BudgetExceededError, DeadlineExceededError):
            METRICS.inc("degradations")

    # Rung 3: answer from the recoveries emitted before expiry.  With
    # verify_justification on (the default) each passed the
    # Definition 2 gate, so the set is sound — merely incomplete.
    if partial:
        return AnytimeResult(
            list(partial),
            "sound-incomplete",
            "partial-enumeration",
            detail=(
                f"enumeration expired after {len(partial)} verified "
                "recovery(ies); the set may be incomplete"
            ),
            progress=progress,
        )

    # Rung 4: nothing in budget — fall back to the polynomial
    # constructions of Section 6.1 on the maximal uniquely-covered
    # subset.  Imported here: tractable.py imports covers/hom_sets too,
    # and a module-level import would be cyclic.
    from .tractable import complete_ucq_recovery, sound_ucq_instance

    try:
        with TRACER.span("resilience.rung.tractable"):
            recovery = complete_ucq_recovery(
                mapping, target, subsumption=options.get("subsumption")
            )
        return AnytimeResult(
            [recovery],
            "exact",
            "tractable",
            detail=(
                "enumeration expired; Theorem 5 applies (quasi-guarded "
                "safe, unique covering) — the single recovery is "
                "UCQ-complete"
            ),
            progress=progress,
        )
    except (ValueError, NotRecoverableError):
        pass
    with TRACER.span("resilience.rung.tractable"):
        sound = sound_ucq_instance(mapping, target)
    value = [] if sound.is_empty else [sound]
    return AnytimeResult(
        value,
        "sound-incomplete",
        "tractable",
        detail=(
            "enumeration expired; Theorem 7's sound source instance "
            "from the maximal uniquely-covered subset (UCQ answers on "
            "it are certain, but it need not witness every target fact)"
        ),
        progress=progress,
    )
