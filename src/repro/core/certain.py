"""Certain answers over recovery sets (Section 3, Definition 4).

``CERT(Q, Sigma, J)`` is the intersection of the null-free answers of
``Q`` over all recoveries of ``J``.  By Theorem 2 the finite set
``Chase^{-1}(Sigma, J)`` is a UCQ-universal recovery, so for any UCQ
the intersection over that set equals the certain answer; this module
implements exactly that.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from ..data.instances import Instance
from ..data.terms import Term
from ..errors import NotRecoverableError
from ..logic.queries import Query, as_ucq
from ..logic.tgds import Mapping
from .covers import CoverMode
from .inverse_chase import inverse_chase
from .subsumption import SubsumptionConstraint


def certain_answers(
    query: Query, instances: Iterable[Instance]
) -> set[tuple[Term, ...]]:
    """The intersection of null-free answers over a set of instances.

    Raises :class:`ValueError` on an empty collection: the certain
    answer over no instances is undefined (it would be "everything").
    """
    ucq = as_ucq(query)
    result: Optional[set[tuple[Term, ...]]] = None
    for instance in instances:
        answers = ucq.certain_evaluate(instance)
        result = answers if result is None else (result & answers)
        if not result:
            return set()
    if result is None:
        raise ValueError("certain answers over an empty set of instances")
    return result


def certain_answer(
    query: Query,
    mapping: Mapping,
    target: Instance,
    *,
    cover_mode: CoverMode = "minimal",
    subsumption: Optional[Sequence[SubsumptionConstraint]] = None,
    max_covers: Optional[int] = None,
    max_recoveries: Optional[int] = None,
) -> set[tuple[Term, ...]]:
    """``CERT(Q, Sigma, J)`` computed through the inverse chase.

    :raises NotRecoverableError: when ``J`` is not valid for recovery
        under ``Sigma`` (the recovery set is empty and the certain
        answer undefined).
    """
    recoveries = inverse_chase(
        mapping,
        target,
        cover_mode=cover_mode,
        subsumption=subsumption,
        max_covers=max_covers,
        max_recoveries=max_recoveries,
    )
    if not recoveries:
        raise NotRecoverableError(
            "target instance is not valid for recovery under the mapping"
        )
    return certain_answers(query, recoveries)


def certain_boolean(
    query: Query,
    mapping: Mapping,
    target: Instance,
    **options,
) -> bool:
    """Certain truth of a Boolean query: true in every recovery."""
    ucq = as_ucq(query)
    if not ucq.is_boolean:
        raise ValueError("certain_boolean expects a Boolean query")
    return () in certain_answer(ucq, mapping, target, **options)
