"""Certain answers over recovery sets (Section 3, Definition 4).

``CERT(Q, Sigma, J)`` is the intersection of the null-free answers of
``Q`` over all recoveries of ``J``.  By Theorem 2 the finite set
``Chase^{-1}(Sigma, J)`` is a UCQ-universal recovery, so for any UCQ
the intersection over that set equals the certain answer; this module
implements exactly that.

Per-recovery UCQ evaluation is independent work, so
:func:`certain_answers` accepts an :class:`~repro.engine.executor.Executor`
and fans the evaluations out; the intersection is folded in input
order with the same early exit on the empty set as the serial loop.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from ..data.instances import Instance
from ..data.terms import Term
from ..engine.executor import Executor, ExecutorLike, resolve_executor
from ..observability.metrics import METRICS
from ..observability.spans import TRACER
from ..errors import BudgetExceededError, DeadlineExceededError, NotRecoverableError
from ..logic.queries import Query, UnionOfConjunctiveQueries, as_ucq
from ..logic.tgds import Mapping
from ..resilience import AnytimeResult, Deadline
from .covers import CoverMode
from .inverse_chase import BudgetMode, ResilienceMode, inverse_chase
from .subsumption import SubsumptionConstraint


def _evaluate_on(task) -> set[tuple[Term, ...]]:
    """Worker: one recovery's null-free answer set (picklable unit).

    The task is ``(ucq, instance)`` or ``(ucq, instance, deadline)``;
    the serial path threads the caller's deadline down into the join
    kernel so expiry fires inside plan evaluation, while parallel
    tasks ship without one (deadlines are process-local; the fold in
    :func:`certain_answers` still checks between instances).
    """
    ucq, instance, *rest = task
    deadline = rest[0] if rest else None
    return ucq.certain_evaluate(instance, deadline)


def certain_answers(
    query: Query,
    instances: Iterable[Instance],
    *,
    executor: ExecutorLike = None,
    jobs: Optional[int] = None,
    deadline: Optional[Deadline] = None,
) -> set[tuple[Term, ...]]:
    """The intersection of null-free answers over a set of instances.

    Raises :class:`ValueError` on an empty collection: the certain
    answer over no instances is undefined (it would be "everything").

    ``executor`` / ``jobs`` evaluate the per-instance answer sets in
    parallel.  The intersection folds results in input order and still
    exits early once it is empty — with a parallel executor at most one
    window of evaluations past the emptying instance is computed.

    ``deadline`` is checked between instances; expiry raises
    :class:`~repro.errors.DeadlineExceededError` with the number of
    instances folded so far in ``progress``.  (A partial intersection
    over-approximates the certain answer, so it is *not* returned.)
    """
    ucq = as_ucq(query)
    runner = resolve_executor(executor, jobs)
    if not runner.is_serial and runner.chunk_size is None:
        # One UCQ evaluation is micro-work; per-item fan-out would cost
        # more in submissions than it saves, and on recovery sets in the
        # thousands small chunks thrash the scheduler.  Batch coarsely.
        runner = Executor(
            jobs=runner.jobs, backend=runner.backend, chunk_size=256
        )
    result: Optional[set[tuple[Term, ...]]] = None
    folded = 0
    inner_deadline = deadline if runner.is_serial else None
    answer_sets = runner.map(
        _evaluate_on, ((ucq, inst, inner_deadline) for inst in instances)
    )
    for answers in TRACER.traced_iter("certain.evaluate", answer_sets):
        if deadline is not None:
            deadline.check("certain answers", {"instances_folded": folded})
        result = answers if result is None else (result & answers)
        folded += 1
        if not result:
            return set()
    if result is None:
        raise ValueError("certain answers over an empty set of instances")
    return result


def certain_answer(
    query: Query,
    mapping: Mapping,
    target: Instance,
    *,
    cover_mode: CoverMode = "minimal",
    subsumption: Optional[Sequence[SubsumptionConstraint]] = None,
    max_covers: Optional[int] = None,
    max_recoveries: Optional[int] = None,
    verify_justification: bool = True,
    executor: ExecutorLike = None,
    jobs: Optional[int] = None,
    deadline: Optional[Deadline] = None,
    mode: ResilienceMode = "raise",
    on_budget: BudgetMode = "raise",
    checkpoint=None,
):
    """``CERT(Q, Sigma, J)`` computed through the inverse chase.

    ``executor`` / ``jobs`` parallelize both phases: the per-covering
    inverse-chase pipelines and the per-recovery query evaluations.
    ``verify_justification`` is forwarded to
    :func:`~repro.core.inverse_chase.inverse_chase`; disable it only
    for targets known to be valid for recovery (e.g. honestly exchanged
    ones), where the Definition 2 oracle is redundant work.
    ``checkpoint`` forwards a
    :class:`~repro.resilience.CheckpointManager` to the inverse-chase
    phase, making the expensive enumeration crash-safe and resumable;
    the query-evaluation phase recomputes from the restored recoveries.

    Resource governance: ``deadline`` bounds both phases under one
    budget.  With ``mode="raise"`` (default) expiry raises
    :class:`~repro.errors.DeadlineExceededError`.  With
    ``mode="degrade"`` the call returns an
    :class:`~repro.resilience.AnytimeResult` instead: ``exact`` when
    the full pipeline finished, otherwise the answers of the query on
    Theorem 7's sound source instance (computable in PTIME), tagged
    ``sound-incomplete`` — every returned tuple is a certain answer,
    but some certain answers may be missing.  Note the degraded
    direction is deliberately *not* the intersection over the partial
    recovery set: intersecting over a subset of the recoveries
    over-approximates, which would be unsound.

    :raises NotRecoverableError: when ``J`` is not valid for recovery
        under ``Sigma`` (the recovery set is empty and the certain
        answer undefined).
    """
    if mode not in ("raise", "degrade"):
        raise ValueError(f"unknown resilience mode {mode!r}")
    runner = resolve_executor(executor, jobs)

    def full_pipeline() -> set[tuple[Term, ...]]:
        recoveries = inverse_chase(
            mapping,
            target,
            cover_mode=cover_mode,
            subsumption=subsumption,
            max_covers=max_covers,
            max_recoveries=max_recoveries,
            verify_justification=verify_justification,
            executor=runner,
            deadline=deadline,
            on_budget=on_budget,
            checkpoint=checkpoint,
        )
        if not recoveries:
            raise NotRecoverableError(
                "target instance is not valid for recovery under the mapping"
            )
        return certain_answers(
            query, recoveries, executor=runner, deadline=deadline
        )

    if mode == "raise":
        return full_pipeline()
    try:
        return AnytimeResult(
            full_pipeline(),
            "exact",
            "enumeration",
            detail="full certainty pipeline completed in budget",
        )
    except (BudgetExceededError, DeadlineExceededError) as error:
        METRICS.inc("degradations")
        # Theorem 7: UCQ answers on the sound source instance are
        # certain; computing it is polynomial, so no deadline needed.
        from .tractable import sound_ucq_instance

        with TRACER.span("resilience.rung.tractable"):
            sound = sound_ucq_instance(mapping, target)
            answers = as_ucq(query).certain_evaluate(sound)
        progress = dict(getattr(error, "progress", {}))
        progress["degraded_because"] = str(error)
        return AnytimeResult(
            answers,
            "sound-incomplete",
            "tractable",
            detail=(
                "pipeline expired; answers evaluated on Theorem 7's "
                "sound source instance — every tuple is certain, some "
                "certain tuples may be missing"
            ),
            progress=progress,
        )


def certain_boolean(
    query: Query,
    mapping: Mapping,
    target: Instance,
    **options,
) -> bool:
    """Certain truth of a Boolean query: true in every recovery."""
    ucq = as_ucq(query)
    if not ucq.is_boolean:
        raise ValueError("certain_boolean expects a Boolean query")
    # ``ucq`` is already a UCQ; certain_answer's own as_ucq call is the
    # identity on it, so the conversion happens exactly once.
    return () in certain_answer(ucq, mapping, target, **options)
