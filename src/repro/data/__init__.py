"""Data model substrate: terms, atoms, schemas, substitutions, instances."""

from .atoms import (
    Atom,
    atom,
    atoms_constants,
    atoms_nulls,
    atoms_variables,
    freeze_atoms,
)
from .columnar import ColumnarRelation, ColumnarStore
from .instances import Instance, instance
from .interning import TermTable, current_table, reset_table
from .io import (
    load_instance,
    load_mapping,
    load_query,
    save_instance,
    save_mapping,
)
from .schema import RelationSymbol, Schema, ensure_disjoint
from .substitutions import IDENTITY, Substitution, merge
from .terms import (
    Constant,
    Null,
    NullFactory,
    Term,
    Variable,
    constant,
    constants_in,
    null,
    nulls_in,
    variable,
    variables_in,
)

__all__ = [
    "Atom",
    "ColumnarRelation",
    "ColumnarStore",
    "Constant",
    "IDENTITY",
    "Instance",
    "TermTable",
    "current_table",
    "reset_table",
    "Null",
    "NullFactory",
    "RelationSymbol",
    "Schema",
    "Substitution",
    "Term",
    "Variable",
    "atom",
    "atoms_constants",
    "atoms_nulls",
    "atoms_variables",
    "constant",
    "constants_in",
    "ensure_disjoint",
    "freeze_atoms",
    "instance",
    "load_instance",
    "load_mapping",
    "load_query",
    "merge",
    "null",
    "save_instance",
    "save_mapping",
    "nulls_in",
    "variable",
    "variables_in",
]
