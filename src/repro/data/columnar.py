"""Columnar fact storage: interned int columns with hash indexes.

The object data model keeps every fact as an :class:`Atom` holding a
tuple of :class:`Term` objects; at 10⁵+ facts the per-object overhead
(attribute loads, tuple allocation, structural ``__eq__``) dominates
join evaluation.  This module stores the same facts column-wise:

* every term is interned to a dense int (:mod:`repro.data.interning`);
* a :class:`ColumnarRelation` holds one relation's facts as parallel
  ``array('q')`` columns, row ``r`` of relation ``R`` being the fact
  ``R(col₀[r], col₁[r], …)``;
* per-position hash indexes (``value id → row numbers``) are built
  lazily, mirroring the instance's lazy positional tier.

Rows are sorted by the interned terms' structural order before
freezing, so row numbering — and through it every enumeration order of
the vectorized executor — is deterministic across processes even under
hash randomization.

A :class:`ColumnarStore` is a *sidecar*: the owning
:class:`~repro.data.instances.Instance` keeps its ``frozenset`` of
atoms as the source of truth (equality, hashing and pickling are
untouched), and builds the store on first demand via
``Instance.columnar_store()`` when ``CONFIG.columnar_backend`` is on
and the instance is at least ``CONFIG.columnar_min_facts`` facts.
"""

from __future__ import annotations

import threading
from array import array
from typing import Iterable, Optional

from ..observability.metrics import METRICS
from ..observability.spans import TRACER
from .atoms import Atom
from .interning import TermTable, current_table

#: Serializes store builds: builds are rare (one per large instance)
#: and racing threads would otherwise intern and count the same facts
#: twice.  Re-entrant so ``Instance.columnar_store`` can double-check
#: its cache slot under the same lock that guards the build.
_BUILD_LOCK = threading.RLock()


class ColumnarRelation:
    """One relation's facts as parallel int columns.

    ``columns[i][r]`` is the interned ``i``-th argument of row ``r``.
    ``index(i)`` maps each value id appearing at position ``i`` to the
    tuple of rows holding it — the columnar analogue of the instance's
    ``(relation, position, term)`` index.
    """

    __slots__ = ("relation", "arity", "size", "columns", "table", "_indexes", "_lock")

    def __init__(
        self, relation: str, arity: int, rows: list[tuple[int, ...]], table: TermTable
    ):
        self.relation = relation
        self.arity = arity
        self.size = len(rows)
        self.columns = tuple(
            array("q", (row[i] for row in rows)) for i in range(arity)
        )
        self.table = table
        self._indexes: dict[int, dict[int, tuple[int, ...]]] = {}
        self._lock = threading.Lock()

    def index(self, position: int) -> dict[int, tuple[int, ...]]:
        """The lazy ``value id → rows`` hash index for one position."""
        existing = self._indexes.get(position)
        if existing is not None:
            return existing
        with self._lock:
            existing = self._indexes.get(position)
            if existing is not None:
                return existing
            groups: dict[int, list[int]] = {}
            for r, value in enumerate(self.columns[position]):
                groups.setdefault(value, []).append(r)
            built = {value: tuple(rs) for value, rs in groups.items()}
            METRICS.inc("columnar_indexes_built")
            self._indexes[position] = built
            return built

    def rows_matching(self, position: int, value_id: int) -> tuple[int, ...]:
        """All rows whose ``position``-th argument is ``value_id``."""
        return self.index(position).get(value_id, ())

    def decode_row(self, row: int) -> Atom:
        """Materialize one row back into an :class:`Atom`."""
        term = self.table.term
        return Atom._of_terms(
            self.relation, tuple(term(col[row]) for col in self.columns)
        )

    def __len__(self) -> int:
        return self.size


class ColumnarStore:
    """All relations of one instance in columnar form, sharing a table."""

    __slots__ = ("table", "_relations", "size")

    def __init__(self, table: TermTable, relations: dict[tuple[str, int], ColumnarRelation]):
        self.table = table
        self._relations = relations
        self.size = sum(rel.size for rel in relations.values())

    @classmethod
    def build(
        cls, facts: Iterable[Atom], table: Optional[TermTable] = None
    ) -> "ColumnarStore":
        """Intern and columnize a fact set (sorted rows, deterministic)."""
        with _BUILD_LOCK, TRACER.span("columnar.build", aggregate=True):
            table = table or current_table()
            intern = table.intern
            grouped: dict[tuple[str, int], list[tuple[int, ...]]] = {}
            count = 0
            for fact in facts:
                count += 1
                row = tuple(intern(t) for t in fact.args)
                grouped.setdefault((fact.relation, fact.arity), []).append(row)
            relations = {}
            # Ids are assignment-ordered, not value-ordered; rows sort by
            # the terms' structural order, with the per-id sort key
            # computed once however often the id repeats.
            term = table.term
            key_of: dict[int, tuple[int, str]] = {}

            def row_key(row: tuple[int, ...]) -> tuple[tuple[int, str], ...]:
                out = []
                for v in row:
                    k = key_of.get(v)
                    if k is None:
                        k = term(v).sort_key
                        key_of[v] = k
                    out.append(k)
                return tuple(out)

            for (name, arity), rows in grouped.items():
                rows.sort(key=row_key)
                relations[(name, arity)] = ColumnarRelation(name, arity, rows, table)
            METRICS.inc("columnar_stores_built")
            METRICS.inc("columnar_facts_stored", count)
            return cls(table, relations)

    def evolved(
        self, added: Iterable[Atom], removed: Iterable[Atom]
    ) -> "ColumnarStore":
        """A store for this store's facts plus/minus a delta.

        Relations untouched by the delta share their
        :class:`ColumnarRelation` objects (columns *and* already-built
        indexes) with the receiver, so compiled vector plans carried
        forward across an :meth:`Instance.evolve` keep pointing at live
        data.  Touched relations are rebuilt by splicing the delta into
        the existing sorted row list — the structural row order is a
        total order (term sort keys are injective), so the result is
        bit-identical to a cold :meth:`build` of the same fact set.
        """
        from bisect import bisect_left, insort

        with _BUILD_LOCK, TRACER.span("columnar.evolve", aggregate=True):
            table = self.table
            intern = table.intern
            term = table.term
            key_of: dict[int, tuple[int, str]] = {}

            def term_key(v: int) -> tuple[int, str]:
                k = key_of.get(v)
                if k is None:
                    k = term(v).sort_key
                    key_of[v] = k
                return k

            def row_key(row: tuple[int, ...]) -> tuple[tuple[int, str], ...]:
                return tuple(term_key(v) for v in row)

            touched: dict[
                tuple[str, int], tuple[list[tuple[int, ...]], list[tuple[int, ...]]]
            ] = {}
            for fact in added:
                adds, _ = touched.setdefault(
                    (fact.relation, fact.arity), ([], [])
                )
                adds.append(tuple(intern(t) for t in fact.args))
            for fact in removed:
                _, dels = touched.setdefault(
                    (fact.relation, fact.arity), ([], [])
                )
                dels.append(tuple(intern(t) for t in fact.args))
            relations = dict(self._relations)
            for key, (adds, dels) in touched.items():
                name, arity = key
                rel = relations.get(key)
                rows = (
                    [] if rel is None else list(zip(*rel.columns))
                    if rel.arity
                    else [()] * rel.size
                )
                for row in dels:
                    i = bisect_left(rows, row_key(row), key=row_key)
                    if i < len(rows) and rows[i] == row:
                        del rows[i]
                for row in adds:
                    insort(rows, row, key=row_key)
                if rows:
                    relations[key] = ColumnarRelation(name, arity, rows, table)
                else:
                    relations.pop(key, None)
            METRICS.inc("columnar_stores_evolved")
            METRICS.inc(
                "columnar_relations_carried", len(relations) - len(touched)
            )
            return ColumnarStore(table, relations)

    def get(self, relation: str, arity: int) -> Optional[ColumnarRelation]:
        return self._relations.get((relation, arity))

    def relations(self) -> Iterable[ColumnarRelation]:
        return self._relations.values()

    def __len__(self) -> int:
        return self.size

    def __reduce__(self):
        # Ids are process-local; ship decoded facts and rebuild against
        # the receiving process's global table.
        facts = tuple(
            rel.decode_row(r) for rel in self._relations.values() for r in range(rel.size)
        )
        return (_restore_store, (facts,))


def _restore_store(facts: tuple[Atom, ...]) -> ColumnarStore:
    return ColumnarStore.build(facts)
