"""Instances: immutable, indexed sets of facts.

An :class:`Instance` stores a finite set of facts (atoms over constants
and labeled nulls).  It maintains two indexes used heavily by the
homomorphism engine:

* a per-relation index (``facts_for``), and
* a per-``(relation, position, term)`` index (``facts_matching``),
  which answers "all ``R``-facts whose ``i``-th argument is ``t``"
  in O(1) + output time.

Instances are immutable; the algebraic operations (union, difference,
substitution application) return new instances.  This keeps the many
intermediate instances of the inverse chase safe to share and to use
as dictionary keys.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, Mapping, Optional

from ..errors import SchemaError
from .atoms import Atom
from .schema import Schema
from .terms import Constant, Null, Term, Variable


class Instance:
    """An immutable set of facts with lookup indexes."""

    __slots__ = ("_facts", "_by_relation", "_position_index", "_hash")

    def __init__(self, facts: Iterable[Atom] = (), schema: Optional[Schema] = None):
        fact_set = frozenset(facts)
        for fact in fact_set:
            if not fact.is_fact:
                raise SchemaError(
                    f"instances may not contain variables, got {fact}"
                )
            if schema is not None:
                schema.validate_atom(fact)
        by_relation: dict[str, frozenset[Atom]] = {}
        grouped: dict[str, set[Atom]] = {}
        position_index: dict[tuple[str, int, Term], set[Atom]] = {}
        for fact in fact_set:
            grouped.setdefault(fact.relation, set()).add(fact)
            for i, term in enumerate(fact.args):
                position_index.setdefault((fact.relation, i, term), set()).add(fact)
        for name, facts_of in grouped.items():
            by_relation[name] = frozenset(facts_of)
        object.__setattr__(self, "_facts", fact_set)
        object.__setattr__(self, "_by_relation", by_relation)
        object.__setattr__(
            self,
            "_position_index",
            {k: frozenset(v) for k, v in position_index.items()},
        )
        object.__setattr__(self, "_hash", None)

    # -- constructors --------------------------------------------------------

    @classmethod
    def empty(cls) -> "Instance":
        return _EMPTY

    @classmethod
    def of(cls, *facts: Atom) -> "Instance":
        """Variadic constructor: ``Instance.of(atom(...), atom(...))``."""
        return cls(facts)

    # -- basic queries ---------------------------------------------------------

    @property
    def facts(self) -> frozenset[Atom]:
        return self._facts

    @property
    def relation_names(self) -> frozenset[str]:
        return frozenset(self._by_relation)

    def facts_for(self, relation: str) -> frozenset[Atom]:
        """All facts of one relation (empty set when absent)."""
        return self._by_relation.get(relation, frozenset())

    def facts_matching(self, relation: str, position: int, term: Term) -> frozenset[Atom]:
        """All ``relation``-facts whose ``position``-th argument equals ``term``."""
        return self._position_index.get((relation, position, term), frozenset())

    def candidates(
        self,
        pattern: Atom,
        binding: Mapping[Term, Term],
        mappable: Optional[Callable[[Term], bool]] = None,
    ) -> frozenset[Atom]:
        """Facts that could match ``pattern`` under the partial ``binding``.

        Uses the most selective bound position of the pattern: rigid
        terms, or mappable terms already bound, narrow the candidate
        set through the position index.  An unconstrained pattern falls
        back to the full relation.  ``mappable`` decides which pattern
        terms the caller's homomorphism may remap (default: variables).
        """
        if mappable is None:
            mappable = lambda term: isinstance(term, Variable)  # noqa: E731
        best: Optional[frozenset[Atom]] = None
        for i, term in enumerate(pattern.args):
            lookup: Optional[Term]
            if mappable(term):
                lookup = binding.get(term)
            else:
                lookup = term
            if lookup is None:
                continue
            found = self.facts_matching(pattern.relation, i, lookup)
            if best is None or len(found) < len(best):
                best = found
                if not best:
                    return best
        if best is None:
            return self.facts_for(pattern.relation)
        return best

    # -- domain --------------------------------------------------------------------

    def domain(self) -> set[Term]:
        """``dom(I)``: all constants and nulls occurring in the instance."""
        result: set[Term] = set()
        for fact in self._facts:
            result.update(fact.args)
        return result

    def nulls(self) -> set[Null]:
        """All labeled nulls occurring in the instance."""
        return {t for t in self.domain() if isinstance(t, Null)}

    def constants(self) -> set[Constant]:
        """All constants occurring in the instance."""
        return {t for t in self.domain() if isinstance(t, Constant)}

    @property
    def is_ground(self) -> bool:
        """True when ``dom(I)`` contains only constants."""
        return all(fact.is_ground for fact in self._facts)

    @property
    def is_empty(self) -> bool:
        return not self._facts

    # -- algebra ------------------------------------------------------------------------

    def union(self, other: "Instance") -> "Instance":
        return Instance(self._facts | other._facts)

    def difference(self, other: "Instance") -> "Instance":
        return Instance(self._facts - other._facts)

    def intersection(self, other: "Instance") -> "Instance":
        return Instance(self._facts & other._facts)

    def with_facts(self, extra: Iterable[Atom]) -> "Instance":
        return Instance(self._facts.union(extra))

    def without_facts(self, removed: Iterable[Atom]) -> "Instance":
        return Instance(self._facts.difference(removed))

    def restrict_to_schema(self, schema: Schema) -> "Instance":
        """Keep only the facts whose relation belongs to ``schema``."""
        return Instance(f for f in self._facts if f.relation in schema)

    def apply(self, mapping: Mapping[Term, Term]) -> "Instance":
        """Apply a term mapping to every fact (e.g. a homomorphism image)."""
        return Instance(fact.apply(mapping) for fact in self._facts)

    def map_terms(self, fn: Callable[[Term], Term]) -> "Instance":
        return Instance(fact.map_terms(fn) for fact in self._facts)

    def issubset(self, other: "Instance") -> bool:
        return self._facts <= other._facts

    # -- dunder --------------------------------------------------------------------------

    def __or__(self, other: "Instance") -> "Instance":
        return self.union(other)

    def __sub__(self, other: "Instance") -> "Instance":
        return self.difference(other)

    def __and__(self, other: "Instance") -> "Instance":
        return self.intersection(other)

    def __le__(self, other: "Instance") -> bool:
        return self.issubset(other)

    def __lt__(self, other: "Instance") -> bool:
        return self._facts < other._facts

    def __contains__(self, fact: Atom) -> bool:
        return fact in self._facts

    def __iter__(self) -> Iterator[Atom]:
        return iter(sorted(self._facts))

    def __len__(self) -> int:
        return len(self._facts)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Instance):
            return NotImplemented
        return self._facts == other._facts

    def __hash__(self) -> int:
        cached = self._hash
        if cached is None:
            cached = hash(self._facts)
            object.__setattr__(self, "_hash", cached)
        return cached

    def __repr__(self) -> str:
        inner = ", ".join(str(f) for f in self)
        return "{" + inner + "}"

    def __setattr__(self, name, value):  # pragma: no cover - guard
        raise AttributeError("Instance is immutable")


_EMPTY = Instance()


def instance(*facts: Atom) -> Instance:
    """Shorthand: ``instance(atom("R", "a"), atom("S", "b"))``."""
    return Instance(facts)
