"""Instances: immutable, indexed sets of facts.

An :class:`Instance` stores a finite set of facts (atoms over constants
and labeled nulls).  It maintains two indexes used heavily by the
homomorphism engine:

* a per-relation index (``facts_for``), and
* a per-``(relation, position, term)`` index (``facts_matching``),
  which answers "all ``R``-facts whose ``i``-th argument is ``t``"
  in O(1) + output time.

Instances are immutable; the algebraic operations (union, difference,
substitution application) return new instances.  This keeps the many
intermediate instances of the inverse chase safe to share and to use
as dictionary keys.

Two engine optimisations (see :mod:`repro.engine.config`) keep
chase-heavy loops from going quadratic in index work:

* **lazy indexing** — the indexes are built on first lookup, not at
  construction.  Most intermediate instances (recovery images,
  justification candidates) are only hashed and compared, so their
  indexes are never built at all;
* **incremental maintenance** — ``union`` / ``with_facts`` /
  ``without_facts`` on an instance whose indexes exist reuse them
  through :class:`InstanceBuilder`, re-freezing only the touched
  ``(relation, position, term)`` entries and sharing the rest.
"""

from __future__ import annotations

from itertools import count
from typing import Callable, Iterable, Iterator, Mapping, Optional

from ..engine.config import CONFIG
from ..observability.metrics import METRICS
from ..errors import SchemaError
from .atoms import Atom
from .columnar import _BUILD_LOCK, ColumnarStore
from .schema import Schema
from .terms import Constant, Null, Term, Variable


#: Process-wide epoch source.  Every instance construction draws a
#: fresh epoch, so ``(anything, epoch)`` cache keys can never alias a
#: different fact set — including after unpickling in a worker, where
#: the rebuilt instance gets that process's next epoch (caches are
#: per-process).  This replaces identity-based (``id()``) invalidation,
#: which is unsound across object reuse.
_EPOCHS = count(1)


class InstanceDelta:
    """Epoch lineage of an evolved instance: parent plus fact delta.

    ``Instance.evolve`` stamps its child with one of these, so caches
    keyed on epochs can carry entries forward selectively (anything
    untouched by ``added``/``removed`` relations is still valid for the
    child) instead of recomputing wholesale under churn.
    """

    __slots__ = ("parent_epoch", "added", "removed")

    def __init__(
        self,
        parent_epoch: int,
        added: frozenset[Atom],
        removed: frozenset[Atom],
    ):
        self.parent_epoch = parent_epoch
        self.added = added
        self.removed = removed

    @property
    def relations(self) -> frozenset[str]:
        """Relations touched by the delta (for cache carry-forward)."""
        return frozenset(f.relation for f in self.added) | frozenset(
            f.relation for f in self.removed
        )

    def __repr__(self) -> str:
        return (
            f"InstanceDelta(parent_epoch={self.parent_epoch}, "
            f"+{len(self.added)}, -{len(self.removed)})"
        )


class Instance:
    """An immutable set of facts with lookup indexes."""

    __slots__ = (
        "_facts",
        "_by_relation",
        "_position_index",
        "_hash",
        "_epoch",
        "_store",
        "_lineage",
    )

    def __init__(self, facts: Iterable[Atom] = (), schema: Optional[Schema] = None):
        fact_set = frozenset(facts)
        for fact in fact_set:
            if not fact.is_fact:
                raise SchemaError(
                    f"instances may not contain variables, got {fact}"
                )
            if schema is not None:
                schema.validate_atom(fact)
        object.__setattr__(self, "_facts", fact_set)
        object.__setattr__(self, "_by_relation", None)
        object.__setattr__(self, "_position_index", None)
        object.__setattr__(self, "_hash", None)
        object.__setattr__(self, "_epoch", next(_EPOCHS))
        object.__setattr__(self, "_store", None)
        object.__setattr__(self, "_lineage", None)
        METRICS.inc("instances_built")
        if not CONFIG.lazy_indexes:
            self._ensure_indexes()

    # -- constructors --------------------------------------------------------

    @classmethod
    def empty(cls) -> "Instance":
        return _EMPTY

    @classmethod
    def of(cls, *facts: Atom) -> "Instance":
        """Variadic constructor: ``Instance.of(atom(...), atom(...))``."""
        return cls(facts)

    @classmethod
    def _from_validated(cls, fact_set: frozenset[Atom]) -> "Instance":
        """Internal: wrap facts known to be valid, skipping re-validation."""
        if not fact_set:
            return _EMPTY
        inst = object.__new__(cls)
        object.__setattr__(inst, "_facts", fact_set)
        object.__setattr__(inst, "_by_relation", None)
        object.__setattr__(inst, "_position_index", None)
        object.__setattr__(inst, "_hash", None)
        object.__setattr__(inst, "_epoch", next(_EPOCHS))
        object.__setattr__(inst, "_store", None)
        object.__setattr__(inst, "_lineage", None)
        METRICS.inc("instances_built")
        if not CONFIG.lazy_indexes:
            inst._ensure_indexes()
        return inst

    @classmethod
    def _from_parts(
        cls,
        fact_set: frozenset[Atom],
        by_relation: dict[str, frozenset[Atom]],
        position_index: Optional[dict[tuple[str, int, Term], frozenset[Atom]]],
    ) -> "Instance":
        """Internal: adopt prebuilt indexes (the :class:`InstanceBuilder` path).

        ``position_index`` may be ``None`` when the base never built its
        positional tier; the result builds it lazily on first probe.
        """
        inst = object.__new__(cls)
        object.__setattr__(inst, "_facts", fact_set)
        object.__setattr__(inst, "_by_relation", by_relation)
        object.__setattr__(inst, "_position_index", position_index)
        object.__setattr__(inst, "_hash", None)
        object.__setattr__(inst, "_epoch", next(_EPOCHS))
        object.__setattr__(inst, "_store", None)
        object.__setattr__(inst, "_lineage", None)
        METRICS.inc("instances_built")
        return inst

    # -- indexing ------------------------------------------------------------

    def _ensure_relation_index(self) -> None:
        """Build the cheap by-relation tier only (idempotent).

        Lookups by relation name alone (``facts_for``, and through it
        single-atom homomorphism searches) are far more common than
        positional lookups; grouping facts by relation costs one pass,
        while the positional tier costs one entry per argument.  The
        tiers build independently so throwaway instances — e.g. the
        recoveries a certain-answer intersection sweeps over — never
        pay for positions they will not probe.
        """
        if self._by_relation is not None:
            return
        grouped: dict[str, set[Atom]] = {}
        for fact in self._facts:
            grouped.setdefault(fact.relation, set()).add(fact)
        object.__setattr__(
            self,
            "_by_relation",
            {name: frozenset(facts) for name, facts in grouped.items()},
        )

    def _ensure_indexes(self) -> None:
        """Build both index tiers (idempotent; lazy by default)."""
        self._ensure_relation_index()
        if self._position_index is not None:
            return
        position_index: dict[tuple[str, int, Term], set[Atom]] = {}
        for fact in self._facts:
            for i, term in enumerate(fact.args):
                position_index.setdefault((fact.relation, i, term), set()).add(fact)
        METRICS.inc("facts_indexed", len(self._facts))
        object.__setattr__(
            self,
            "_position_index",
            {k: frozenset(v) for k, v in position_index.items()},
        )

    @property
    def _indexes_built(self) -> bool:
        return self._by_relation is not None

    def columnar_store(self) -> Optional[ColumnarStore]:
        """The columnar sidecar of this instance, or ``None`` when inactive.

        Built on first demand when ``CONFIG.columnar_backend`` is on and
        the instance holds at least ``CONFIG.columnar_min_facts`` facts;
        the vectorized join executor (:mod:`repro.planner.vectorized`)
        takes over whenever a target offers a store.  The ``frozenset``
        of atoms stays the source of truth — equality, hashing and
        pickling never consult the store.
        """
        if not CONFIG.columnar_backend:
            return None
        if len(self._facts) < CONFIG.columnar_min_facts:
            return None
        store = self._store
        if store is None:
            with _BUILD_LOCK:
                store = self._store
                if store is None:
                    store = ColumnarStore.build(self._facts)
                    object.__setattr__(self, "_store", store)
        return store

    @property
    def lineage(self) -> Optional[InstanceDelta]:
        """The delta this instance was evolved from, or ``None``.

        Only :meth:`evolve` records lineage; every other construction
        path (including unpickling) yields a root instance.
        """
        return self._lineage

    def evolve(
        self, *, add: Iterable[Atom] = (), remove: Iterable[Atom] = ()
    ) -> "Instance":
        """A child instance with ``add`` inserted and ``remove`` retracted.

        The child records epoch lineage (:class:`InstanceDelta`), shares
        the receiver's incrementally-patched indexes, and — when the
        receiver already built a columnar store — adopts a delta-evolved
        store (bit-identical to a cold build) instead of re-sorting
        every row.  A fact listed in both ``add`` and ``remove`` ends up
        present (adds win); an empty effective delta returns ``self``.
        """
        added = frozenset(add) - self._facts
        removed = (frozenset(remove) & self._facts) - frozenset(add)
        if not added and not removed:
            return self
        for fact in added:
            if not fact.is_fact:
                raise SchemaError(
                    f"instances may not contain variables, got {fact}"
                )
        # Build (and thereby share) the indexes up front: churn workloads
        # probe the child immediately, and the builder can only patch
        # index tiers that exist.
        self._ensure_indexes()
        builder = InstanceBuilder(self)
        builder.discard_all(removed)
        builder.add_validated(added)
        child = builder.build()
        object.__setattr__(
            child, "_lineage", InstanceDelta(self._epoch, added, removed)
        )
        parent_store = self._store
        if parent_store is not None:
            object.__setattr__(
                child, "_store", parent_store.evolved(added, removed)
            )
        METRICS.inc("incremental_evolves")
        METRICS.inc("incremental_facts_added", len(added))
        METRICS.inc("incremental_facts_removed", len(removed))
        return child

    @property
    def epoch(self) -> int:
        """A process-unique construction stamp for cache keys.

        Distinct instance objects never share an epoch (even when they
        hold equal fact sets), so keying a cache on
        ``(..., instance.epoch)`` is always sound: an entry can only be
        served for the very object it was computed against, and
        immutability guarantees that object never changes.
        """
        return self._epoch

    # -- basic queries ---------------------------------------------------------

    @property
    def facts(self) -> frozenset[Atom]:
        return self._facts

    @property
    def relation_names(self) -> frozenset[str]:
        self._ensure_relation_index()
        return frozenset(self._by_relation)

    def facts_for(self, relation: str) -> frozenset[Atom]:
        """All facts of one relation (empty set when absent)."""
        self._ensure_relation_index()
        return self._by_relation.get(relation, _EMPTY_FACTS)

    def facts_matching(self, relation: str, position: int, term: Term) -> frozenset[Atom]:
        """All ``relation``-facts whose ``position``-th argument equals ``term``."""
        self._ensure_indexes()
        return self._position_index.get((relation, position, term), _EMPTY_FACTS)

    def candidates(
        self,
        pattern: Atom,
        binding: Mapping[Term, Term],
        mappable: Optional[Callable[[Term], bool]] = None,
    ) -> frozenset[Atom]:
        """Facts that could match ``pattern`` under the partial ``binding``.

        Uses the most selective bound position of the pattern: rigid
        terms, or mappable terms already bound, narrow the candidate
        set through the position index.  An unconstrained pattern falls
        back to the full relation.  ``mappable`` decides which pattern
        terms the caller's homomorphism may remap (default: variables).
        """
        if mappable is None:
            mappable = lambda term: isinstance(term, Variable)  # noqa: E731
        best: Optional[frozenset[Atom]] = None
        for i, term in enumerate(pattern.args):
            lookup: Optional[Term]
            if mappable(term):
                lookup = binding.get(term)
            else:
                lookup = term
            if lookup is None:
                continue
            found = self.facts_matching(pattern.relation, i, lookup)
            if best is None or len(found) < len(best):
                best = found
                if not best:
                    return best
        if best is None:
            return self.facts_for(pattern.relation)
        return best

    # -- domain --------------------------------------------------------------------

    def domain(self) -> set[Term]:
        """``dom(I)``: all constants and nulls occurring in the instance."""
        result: set[Term] = set()
        for fact in self._facts:
            result.update(fact.args)
        return result

    def nulls(self) -> set[Null]:
        """All labeled nulls occurring in the instance."""
        return {t for t in self.domain() if isinstance(t, Null)}

    def constants(self) -> set[Constant]:
        """All constants occurring in the instance."""
        return {t for t in self.domain() if isinstance(t, Constant)}

    @property
    def is_ground(self) -> bool:
        """True when ``dom(I)`` contains only constants."""
        return all(fact.is_ground for fact in self._facts)

    @property
    def is_empty(self) -> bool:
        return not self._facts

    # -- algebra ------------------------------------------------------------------------

    def union(self, other: "Instance") -> "Instance":
        if not other._facts:
            return self
        if not self._facts:
            return other
        if CONFIG.incremental_ops:
            # Grow from the side whose indexes already exist (prefer the
            # larger one when both do); the other side's facts are the
            # delta the builder re-indexes.
            base, extra = self, other
            if (other._indexes_built, len(other)) > (self._indexes_built, len(self)):
                base, extra = other, self
            if base._indexes_built:
                builder = InstanceBuilder(base)
                builder.add_validated(extra._facts)
                return builder.build()
        return Instance._from_validated(self._facts | other._facts)

    def difference(self, other: "Instance") -> "Instance":
        return self.without_facts(other._facts)

    def intersection(self, other: "Instance") -> "Instance":
        return Instance._from_validated(self._facts & other._facts)

    def with_facts(self, extra: Iterable[Atom]) -> "Instance":
        extra = frozenset(extra) - self._facts
        if not extra:
            return self
        for fact in extra:
            if not fact.is_fact:
                raise SchemaError(
                    f"instances may not contain variables, got {fact}"
                )
        if CONFIG.incremental_ops and self._indexes_built:
            builder = InstanceBuilder(self)
            builder.add_validated(extra)
            return builder.build()
        return Instance._from_validated(self._facts | extra)

    def without_facts(self, removed: Iterable[Atom]) -> "Instance":
        removed = frozenset(removed) & self._facts
        if not removed:
            return self
        if CONFIG.incremental_ops and self._indexes_built:
            builder = InstanceBuilder(self)
            for fact in removed:
                builder.discard(fact)
            return builder.build()
        return Instance._from_validated(self._facts - removed)

    def restrict_to_schema(self, schema: Schema) -> "Instance":
        """Keep only the facts whose relation belongs to ``schema``."""
        return Instance._from_validated(
            frozenset(f for f in self._facts if f.relation in schema)
        )

    def apply(self, mapping: Mapping[Term, Term]) -> "Instance":
        """Apply a term mapping to every fact (e.g. a homomorphism image)."""
        if not mapping:
            # An empty mapping is the identity; returning self keeps the
            # epoch stable, so compiled plans and columnar stores keyed
            # on it survive (the inverse chase applies the finishing
            # homomorphism this way whenever it is the identity off
            # dom(J)).
            return self
        if CONFIG.value_fastpaths and not any(
            isinstance(v, Variable) for v in mapping.values()
        ):
            # A variable-free range keeps every image a storable fact,
            # so the per-fact validation of the constructor is skipped.
            return Instance._from_validated(
                frozenset(fact.apply(mapping) for fact in self._facts)
            )
        return Instance(fact.apply(mapping) for fact in self._facts)

    def map_terms(self, fn: Callable[[Term], Term]) -> "Instance":
        return Instance(fact.map_terms(fn) for fact in self._facts)

    def issubset(self, other: "Instance") -> bool:
        return self._facts <= other._facts

    def builder(self) -> "InstanceBuilder":
        """An :class:`InstanceBuilder` seeded with this instance's facts."""
        return InstanceBuilder(self)

    # -- dunder --------------------------------------------------------------------------

    def __or__(self, other: "Instance") -> "Instance":
        return self.union(other)

    def __sub__(self, other: "Instance") -> "Instance":
        return self.difference(other)

    def __and__(self, other: "Instance") -> "Instance":
        return self.intersection(other)

    def __le__(self, other: "Instance") -> bool:
        return self.issubset(other)

    def __lt__(self, other: "Instance") -> bool:
        return self._facts < other._facts

    def __contains__(self, fact: Atom) -> bool:
        return fact in self._facts

    def __iter__(self) -> Iterator[Atom]:
        return iter(sorted(self._facts))

    def __len__(self) -> int:
        return len(self._facts)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Instance):
            return NotImplemented
        return self._facts == other._facts

    def __hash__(self) -> int:
        cached = self._hash
        if cached is None:
            cached = hash(self._facts)
            object.__setattr__(self, "_hash", cached)
        return cached

    def __repr__(self) -> str:
        inner = ", ".join(str(f) for f in self)
        return "{" + inner + "}"

    def __reduce__(self):
        # Indexes are rebuilt lazily on the other side of the pickle
        # boundary (the process executor ships instances to workers).
        return (_restore_instance, (tuple(self._facts),))

    def __setattr__(self, name, value):  # pragma: no cover - guard
        raise AttributeError("Instance is immutable")


def _restore_instance(facts: tuple[Atom, ...]) -> Instance:
    return Instance._from_validated(frozenset(facts))


_EMPTY = Instance()
_EMPTY_FACTS: frozenset[Atom] = frozenset()


class InstanceBuilder:
    """A mutable fact accumulator with incremental index maintenance.

    Chase loops repeatedly extend or shrink an instance by a small
    delta; rebuilding the full per-position index each time makes them
    quadratic.  A builder tracks the delta against an optional base
    instance and, when the base's indexes exist, :meth:`build` merges
    the delta into *copies* of them — re-freezing only the touched
    ``(relation, position, term)`` entries and sharing every untouched
    frozen set with the base (index sharing for unchanged relations).

    Builders validate facts on entry (no variables), so :meth:`build`
    can skip the validation pass entirely.
    """

    __slots__ = ("_base", "_added", "_removed")

    def __init__(self, base: Optional[Instance] = None):
        self._base = base if base is not None and base._facts else None
        self._added: set[Atom] = set()
        self._removed: set[Atom] = set()

    @classmethod
    def from_instance(cls, base: Instance) -> "InstanceBuilder":
        return cls(base)

    # -- mutation ------------------------------------------------------------

    def add(self, fact: Atom) -> "InstanceBuilder":
        """Add one fact (validating it); returns ``self`` for chaining."""
        if not fact.is_fact:
            raise SchemaError(f"instances may not contain variables, got {fact}")
        self._removed.discard(fact)
        if self._base is None or fact not in self._base._facts:
            self._added.add(fact)
        return self

    def add_all(self, facts: Iterable[Atom]) -> "InstanceBuilder":
        for fact in facts:
            self.add(fact)
        return self

    def add_validated(self, facts: Iterable[Atom]) -> "InstanceBuilder":
        """Add facts known to be valid (e.g. drawn from another instance)."""
        base_facts = self._base._facts if self._base is not None else _EMPTY_FACTS
        for fact in facts:
            self._removed.discard(fact)
            if fact not in base_facts:
                self._added.add(fact)
        return self

    def update(self, instance: Instance) -> "InstanceBuilder":
        """Merge every fact of ``instance`` into the builder."""
        return self.add_validated(instance._facts)

    def discard(self, fact: Atom) -> "InstanceBuilder":
        """Remove a fact if present (no error otherwise)."""
        self._added.discard(fact)
        if self._base is not None and fact in self._base._facts:
            self._removed.add(fact)
        return self

    def discard_all(self, facts: Iterable[Atom]) -> "InstanceBuilder":
        for fact in facts:
            self.discard(fact)
        return self

    # -- inspection ----------------------------------------------------------

    def facts(self) -> frozenset[Atom]:
        """The current fact set the builder would freeze."""
        base_facts = self._base._facts if self._base is not None else _EMPTY_FACTS
        if not self._added and not self._removed:
            return base_facts
        return (base_facts - self._removed) | self._added

    def __contains__(self, fact: Atom) -> bool:
        if fact in self._added:
            return True
        if self._base is None or fact in self._removed:
            return False
        return fact in self._base._facts

    def __len__(self) -> int:
        base = len(self._base._facts) if self._base is not None else 0
        return base - len(self._removed) + len(self._added)

    def __iter__(self) -> Iterator[Atom]:
        return iter(sorted(self.facts()))

    # -- freezing ------------------------------------------------------------

    def build(self) -> Instance:
        """Freeze the builder into an :class:`Instance`.

        When the base instance's indexes exist and incremental
        operations are enabled, the result adopts merged copies of them
        instead of re-indexing from scratch.
        """
        base = self._base
        if base is not None and not self._added and not self._removed:
            return base
        fact_set = self.facts()
        if (
            base is None
            or not base._indexes_built
            or not CONFIG.incremental_ops
        ):
            return Instance._from_validated(fact_set)

        by_relation = dict(base._by_relation)
        # The positional tier is only carried forward when the base built
        # it; otherwise the result inherits its laziness.
        has_positions = base._position_index is not None
        position_index = dict(base._position_index) if has_positions else None
        # Group the delta so every touched index entry is re-frozen once.
        relation_delta: dict[str, tuple[set[Atom], set[Atom]]] = {}
        key_delta: dict[tuple[str, int, Term], tuple[set[Atom], set[Atom]]] = {}
        for fact, adding in [(f, True) for f in self._added] + [
            (f, False) for f in self._removed
        ]:
            rel_add, rel_del = relation_delta.setdefault(
                fact.relation, (set(), set())
            )
            (rel_add if adding else rel_del).add(fact)
            if not has_positions:
                continue
            for i, term in enumerate(fact.args):
                key_add, key_del = key_delta.setdefault(
                    (fact.relation, i, term), (set(), set())
                )
                (key_add if adding else key_del).add(fact)
        for relation, (added, removed) in relation_delta.items():
            merged = (by_relation.get(relation, _EMPTY_FACTS) - removed) | added
            if merged:
                by_relation[relation] = merged
            else:
                by_relation.pop(relation, None)
        if has_positions:
            for key, (added, removed) in key_delta.items():
                merged = (position_index.get(key, _EMPTY_FACTS) - removed) | added
                if merged:
                    position_index[key] = merged
                else:
                    position_index.pop(key, None)
        METRICS.inc("facts_indexed", len(self._added) + len(self._removed))
        METRICS.inc("instances_shared")
        return Instance._from_parts(fact_set, by_relation, position_index)


def instance(*facts: Atom) -> Instance:
    """Shorthand: ``instance(atom("R", "a"), atom("S", "b"))``."""
    return Instance(facts)
