"""Terms: the values that populate atoms and instances.

The paper works over three pairwise-disjoint alphabets:

* ``Cons`` — a countably infinite set of *constants*,
* ``Nulls`` — a countably infinite set of *labeled nulls*, and
* variables, used inside dependencies and queries.

We model each alphabet with its own immutable class.  All three share
the :class:`Term` base so that atoms, substitutions and the
homomorphism engine can treat them uniformly.  Identity of a term is
purely structural (kind + name/value), so two ``Constant("a")`` objects
are interchangeable everywhere.

Fresh nulls are minted through :class:`NullFactory`.  The chase and the
inverse chase each carry their own factory so that independently
constructed instances never accidentally share labeled nulls, which
would wrongly join them under the semantics.
"""

from __future__ import annotations

import itertools
import threading
from typing import Iterable, Union

from ..engine.config import CONFIG


class Term:
    """Base class of :class:`Constant`, :class:`Null` and :class:`Variable`.

    Terms are immutable value objects: equality and hashing are
    structural, comparison orders terms deterministically (used to make
    printed instances and enumeration orders reproducible).
    """

    __slots__ = ("_key", "_hash")

    #: Sort rank of the concrete class; constants < nulls < variables.
    _rank = 0

    @property
    def is_constant(self) -> bool:
        return isinstance(self, Constant)

    @property
    def is_null(self) -> bool:
        return isinstance(self, Null)

    @property
    def is_variable(self) -> bool:
        return isinstance(self, Variable)

    @property
    def sort_key(self) -> tuple[int, str]:
        """A precomputable key inducing the same order as ``<``.

        ``sorted(terms)`` compares terms pairwise and re-stringifies
        ``_key`` on every comparison; ``sorted(terms, key=...)``
        stringifies each term once.  For the large candidate pools the
        planner sorts, that difference is the whole ballgame.
        """
        return (self._rank, str(self._key))

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, Term):
            return NotImplemented
        return self._rank == other._rank and self._key == other._key

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    def __hash__(self) -> int:
        cached = self._hash
        if cached is None:
            cached = hash((self._rank, self._key))
            if CONFIG.value_fastpaths:
                object.__setattr__(self, "_hash", cached)
        return cached

    def __lt__(self, other: "Term") -> bool:
        if not isinstance(other, Term):
            return NotImplemented
        if self._rank != other._rank:
            return self._rank < other._rank
        return str(self._key) < str(other._key)

    def __le__(self, other: "Term") -> bool:
        return self == other or self < other


class Constant(Term):
    """An element of ``Cons``.  Homomorphisms are the identity on these."""

    __slots__ = ()
    _rank = 0

    def __init__(self, value: Union[str, int]):
        object.__setattr__(self, "_key", value)
        object.__setattr__(self, "_hash", None)

    @property
    def value(self) -> Union[str, int]:
        """The payload carried by the constant (a string or an int)."""
        return self._key

    def __reduce__(self):
        return (Constant, (self._key,))

    def __repr__(self) -> str:
        return f"Constant({self._key!r})"

    def __str__(self) -> str:
        if isinstance(self._key, int):
            return str(self._key)
        text = str(self._key)
        # Quote anything the DSL would not read back as this constant.
        if text and text[0].isalpha() and all(
            c.isalnum() or c == "_" for c in text
        ):
            return text
        return f"'{text}'"

    def __setattr__(self, name, value):  # pragma: no cover - guard
        raise AttributeError("Constant is immutable")


class Null(Term):
    """A labeled null — an element of ``Nulls``.

    Nulls behave like existentially quantified placeholders: a
    homomorphism may map a null to any term, whereas constants are
    fixed.  Each null carries a string label; labels are globally
    meaningful, i.e. two nulls with equal labels are the *same* null.
    """

    __slots__ = ()
    _rank = 1

    def __init__(self, label: str):
        object.__setattr__(self, "_key", label)
        object.__setattr__(self, "_hash", None)

    @property
    def label(self) -> str:
        """The identifying label of this null."""
        return self._key

    def __reduce__(self):
        return (Null, (self._key,))

    def __repr__(self) -> str:
        return f"Null({self._key!r})"

    def __str__(self) -> str:
        return f"?{self._key}"

    def __setattr__(self, name, value):  # pragma: no cover - guard
        raise AttributeError("Null is immutable")


class Variable(Term):
    """A variable, used in dependencies and queries (never in instances)."""

    __slots__ = ()
    _rank = 2

    def __init__(self, name: str):
        object.__setattr__(self, "_key", name)
        object.__setattr__(self, "_hash", None)

    @property
    def name(self) -> str:
        """The name of the variable as written in the dependency."""
        return self._key

    def __reduce__(self):
        return (Variable, (self._key,))

    def __repr__(self) -> str:
        return f"Variable({self._key!r})"

    def __str__(self) -> str:
        return self._key

    def __setattr__(self, name, value):  # pragma: no cover - guard
        raise AttributeError("Variable is immutable")


class NullFactory:
    """Mints fresh labeled nulls with a common prefix.

    The factory is thread-safe and deterministic: the ``k``-th null it
    produces is always ``<prefix><k>``.  Use :meth:`fresh` during a
    chase so every invented value is new, and :meth:`avoid` to make
    sure labels already present in an instance are never reissued.
    """

    def __init__(self, prefix: str = "N"):
        self._prefix = prefix
        self._counter = itertools.count(1)
        self._lock = threading.Lock()
        self._used: set[str] = set()

    @property
    def prefix(self) -> str:
        return self._prefix

    def fresh(self) -> Null:
        """Return a null whose label has never been produced or reserved."""
        with self._lock:
            while True:
                label = f"{self._prefix}{next(self._counter)}"
                if label not in self._used:
                    self._used.add(label)
                    return Null(label)

    def fresh_many(self, count: int) -> list[Null]:
        """Return ``count`` distinct fresh nulls."""
        return [self.fresh() for _ in range(count)]

    def avoid(self, terms: Iterable[Term]) -> "NullFactory":
        """Reserve the labels of all nulls in ``terms`` so they are not reused."""
        with self._lock:
            for term in terms:
                if isinstance(term, Null):
                    self._used.add(term.label)
        return self


def constant(value: Union[str, int]) -> Constant:
    """Shorthand constructor used throughout tests and examples."""
    return Constant(value)


def null(label: str) -> Null:
    """Shorthand constructor for a labeled null."""
    return Null(label)


def variable(name: str) -> Variable:
    """Shorthand constructor for a variable."""
    return Variable(name)


def constants_in(terms: Iterable[Term]) -> set[Constant]:
    """The set of constants among ``terms``."""
    return {t for t in terms if isinstance(t, Constant)}


def nulls_in(terms: Iterable[Term]) -> set[Null]:
    """The set of labeled nulls among ``terms``."""
    return {t for t in terms if isinstance(t, Null)}


def variables_in(terms: Iterable[Term]) -> set[Variable]:
    """The set of variables among ``terms``."""
    return {t for t in terms if isinstance(t, Variable)}
