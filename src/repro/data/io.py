"""File I/O for mappings, instances and queries.

Everything is stored in the textual DSL of :mod:`repro.logic.parser`,
so files stay human-readable and diffable::

    # orders.mapping
    Order(cust, item) -> Shipment(item), Invoice(cust)
    Gift(cust, item)  -> Shipment(item)

    # warehouse.instance
    Shipment(laptop), Invoice(ada)

The loaders accept paths or open file objects; the savers write
deterministically (facts sorted) so written instances are stable under
round-trips.
"""

from __future__ import annotations

from pathlib import Path
from typing import TextIO, Union

from ..logic.parser import (
    format_instance,
    parse_instance,
    parse_query,
    parse_tgds,
)
from ..logic.queries import Query
from ..logic.tgds import Mapping
from .instances import Instance

PathLike = Union[str, Path, TextIO]


def _read(source: PathLike) -> str:
    if hasattr(source, "read"):
        return source.read()  # type: ignore[union-attr]
    return Path(source).read_text(encoding="utf-8")


def _write(destination: PathLike, text: str) -> None:
    if hasattr(destination, "write"):
        destination.write(text)  # type: ignore[union-attr]
        return
    Path(destination).write_text(text, encoding="utf-8")


def load_mapping(source: PathLike) -> Mapping:
    """Load a mapping from a DSL file (one tgd per line; # comments)."""
    return Mapping(parse_tgds(_read(source)))


def load_instance(source: PathLike) -> Instance:
    """Load an instance from a DSL file."""
    return parse_instance(_read(source))


def load_query(source: PathLike) -> Query:
    """Load a CQ or UCQ from a DSL file (rules share a head predicate)."""
    return parse_query(_read(source))


def save_instance(instance: Instance, destination: PathLike) -> None:
    """Write an instance deterministically, one fact per line."""
    lines = [str(fact) for fact in instance]
    _write(destination, "\n".join(lines) + ("\n" if lines else ""))


def save_mapping(mapping: Mapping, destination: PathLike) -> None:
    """Write a mapping, one tgd per line, with its assigned names."""
    lines = []
    for tgd in mapping:
        body = ", ".join(str(a) for a in tgd.body)
        head = ", ".join(str(a) for a in tgd.head)
        lines.append(f"{body} -> {head}  # {tgd.name}")
    _write(destination, "\n".join(lines) + "\n")


def format_instance_text(instance: Instance) -> str:
    """The single-line DSL rendering (re-export for convenience)."""
    return format_instance(instance)
