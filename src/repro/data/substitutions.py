"""Substitutions and homomorphism objects.

A :class:`Substitution` is a finite mapping on terms.  The paper's
homomorphisms are substitutions that are the identity on constants;
:meth:`Substitution.is_homomorphism` checks exactly that.  Composition
follows the paper's convention ``(f @ g)(x) = f(g(x))``.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping, Optional, Union

from .atoms import Atom
from .terms import Constant, Null, Term, Variable


class Substitution(Mapping[Term, Term]):
    """An immutable finite mapping from terms to terms.

    Lookup through :meth:`image` is *total*: terms outside the explicit
    domain map to themselves, matching the convention that
    homomorphisms are extended with the identity.
    """

    __slots__ = ("_map", "_hash")

    def __init__(self, mapping: Optional[Mapping[Term, Term]] = None):
        cleaned: dict[Term, Term] = {}
        if mapping:
            for key, value in mapping.items():
                if not isinstance(key, Term) or not isinstance(value, Term):
                    raise TypeError("substitution entries must be terms")
                if key != value:
                    cleaned[key] = value
        object.__setattr__(self, "_map", cleaned)
        object.__setattr__(self, "_hash", None)

    # -- Mapping protocol -----------------------------------------------------

    def __getitem__(self, key: Term) -> Term:
        return self._map[key]

    def __iter__(self) -> Iterator[Term]:
        return iter(self._map)

    def __len__(self) -> int:
        return len(self._map)

    # -- application ------------------------------------------------------------

    def image(self, term: Term) -> Term:
        """The image of ``term``; identity outside the explicit domain."""
        return self._map.get(term, term)

    def apply_atom(self, atom: Atom) -> Atom:
        """Apply the substitution to every argument of ``atom``."""
        return atom.apply(self._map)

    def apply_atoms(self, atoms: Iterable[Atom]) -> list[Atom]:
        """Apply the substitution to a conjunction of atoms."""
        return [self.apply_atom(a) for a in atoms]

    def apply_tuple(self, terms: Iterable[Term]) -> tuple[Term, ...]:
        """Apply the substitution pointwise to a tuple of terms."""
        return tuple(self.image(t) for t in terms)

    # -- algebra ------------------------------------------------------------------

    def compose(self, inner: "Substitution") -> "Substitution":
        """Return ``self @ inner``, i.e. apply ``inner`` first.

        ``(self.compose(inner)).image(x) == self.image(inner.image(x))``.
        """
        combined: dict[Term, Term] = {}
        for key, value in inner.items():
            combined[key] = self.image(value)
        for key, value in self._map.items():
            combined.setdefault(key, value)
        return Substitution(combined)

    def __matmul__(self, inner: "Substitution") -> "Substitution":
        return self.compose(inner)

    def restrict(self, domain: Iterable[Term]) -> "Substitution":
        """The restriction of the substitution to ``domain`` (paper: f|_S)."""
        wanted = set(domain)
        return Substitution({k: v for k, v in self._map.items() if k in wanted})

    def extend(self, extra: Mapping[Term, Term]) -> "Substitution":
        """A new substitution adding ``extra``; conflicts raise ``ValueError``."""
        combined = dict(self._map)
        for key, value in extra.items():
            existing = combined.get(key)
            if existing is not None and existing != value:
                raise ValueError(
                    f"conflicting binding for {key}: {existing} vs {value}"
                )
            combined[key] = value
        return Substitution(combined)

    def without(self, keys: Iterable[Term]) -> "Substitution":
        """A new substitution with ``keys`` removed from the domain."""
        dropped = set(keys)
        return Substitution({k: v for k, v in self._map.items() if k not in dropped})

    # -- predicates ------------------------------------------------------------------

    @property
    def is_homomorphism(self) -> bool:
        """True when the mapping is the identity on constants."""
        return all(not isinstance(k, Constant) for k in self._map)

    @property
    def is_injective(self) -> bool:
        """True when no two domain elements share an image."""
        values = list(self._map.values())
        return len(values) == len(set(values))

    @property
    def is_variable_renaming(self) -> bool:
        """True when the mapping injectively sends variables to variables."""
        return self.is_injective and all(
            isinstance(k, Variable) and isinstance(v, Variable)
            for k, v in self._map.items()
        )

    def agrees_with(self, other: "Substitution") -> bool:
        """True when the two substitutions agree on shared domain elements."""
        small, large = (
            (self._map, other._map)
            if len(self._map) <= len(other._map)
            else (other._map, self._map)
        )
        return all(large.get(k, v) == v for k, v in small.items())

    # -- dunder ------------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Substitution):
            return NotImplemented
        return self._map == other._map

    def __hash__(self) -> int:
        cached = self._hash
        if cached is None:
            cached = hash(frozenset(self._map.items()))
            object.__setattr__(self, "_hash", cached)
        return cached

    def __reduce__(self):
        return (Substitution, (self._map,))

    def __repr__(self) -> str:
        inner = ", ".join(
            f"{k}/{v}" for k, v in sorted(self._map.items(), key=lambda kv: kv[0])
        )
        return "{" + inner + "}"

    def __setattr__(self, name, value):  # pragma: no cover - guard
        raise AttributeError("Substitution is immutable")


IDENTITY = Substitution()


def merge(subs: Iterable[Substitution]) -> Optional[Substitution]:
    """Merge substitutions into one; ``None`` when they conflict."""
    combined: dict[Term, Term] = {}
    for sub in subs:
        for key, value in sub.items():
            existing = combined.get(key)
            if existing is not None and existing != value:
                return None
            combined[key] = value
    return Substitution(combined)
