"""Term interning: dense integer ids for constants and nulls.

The columnar storage backend (:mod:`repro.data.columnar`) stores facts
as parallel integer columns.  The translation between :class:`Term`
values and those integers lives here, in a process-global
:class:`TermTable`:

* ``intern`` assigns the next dense id to an unseen term (and returns
  the existing id otherwise), tagging it by alphabet — constants,
  labeled nulls and variables each carry a distinct tag so int-space
  code can re-derive a term's kind without decoding it;
* ``term`` decodes an id back to the interned term (results cross the
  int/object boundary exactly once, at the edge of the vectorized
  executor);
* ``id_of`` looks an id up *without* interning, for probe values that
  may never occur in any instance.

Ids are process-local: a pickled store ships its terms, never its ids,
and re-interns on the receiving side (see ``ColumnarStore.__reduce__``),
so process-pool executors keep working exactly as they do for the
object backend.  The table only ever grows; :func:`reset_table` swaps
in a fresh global for tests, while stores built against the old table
keep their own reference and stay internally consistent.
"""

from __future__ import annotations

import threading
from typing import Iterable, Optional

from ..observability.metrics import METRICS
from .terms import Constant, Null, Term

#: Tags recorded per interned term; int-space kind checks use these.
TAG_CONSTANT = 0
TAG_NULL = 1
TAG_VARIABLE = 2


def _tag_of(term: Term) -> int:
    if isinstance(term, Constant):
        return TAG_CONSTANT
    if isinstance(term, Null):
        return TAG_NULL
    return TAG_VARIABLE


class TermTable:
    """A bidirectional, append-only term ↔ dense-int mapping.

    Thread-safe: interning takes a lock, decoding reads an append-only
    list (safe without one).  Equality of ids implies structural
    equality of terms and vice versa, within one table.
    """

    __slots__ = ("_lock", "_terms", "_tags", "_ids")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._terms: list[Term] = []
        self._tags: list[int] = []
        self._ids: dict[Term, int] = {}

    def intern(self, term: Term) -> int:
        """The dense id of ``term``, assigning the next one when unseen."""
        tid = self._ids.get(term)
        if tid is not None:
            return tid
        with self._lock:
            tid = self._ids.get(term)
            if tid is None:
                tid = len(self._terms)
                self._terms.append(term)
                self._tags.append(_tag_of(term))
                self._ids[term] = tid
                METRICS.inc("columnar_terms_interned")
            return tid

    def intern_many(self, terms: Iterable[Term]) -> list[int]:
        intern = self.intern
        return [intern(t) for t in terms]

    def id_of(self, term: Term) -> Optional[int]:
        """The id of ``term`` if already interned, else ``None`` (no insert)."""
        return self._ids.get(term)

    def term(self, tid: int) -> Term:
        """Decode an id back to its term."""
        return self._terms[tid]

    def tag(self, tid: int) -> int:
        """The alphabet tag (constant / null / variable) of an id."""
        return self._tags[tid]

    def is_null_id(self, tid: int) -> bool:
        return self._tags[tid] == TAG_NULL

    def __len__(self) -> int:
        return len(self._terms)

    def __contains__(self, term: Term) -> bool:
        return term in self._ids

    def __reduce__(self):
        # Ids are process-local; ship the terms and re-intern on the
        # other side so the rebuilt table is internally consistent.
        return (_restore_table, (tuple(self._terms),))


def _restore_table(terms: tuple[Term, ...]) -> "TermTable":
    table = TermTable()
    for term in terms:
        table.intern(term)
    return table


_TABLE = TermTable()
_TABLE_LOCK = threading.Lock()


def current_table() -> TermTable:
    """The process-global term table new columnar stores intern into."""
    return _TABLE


def reset_table() -> TermTable:
    """Swap in a fresh global table (tests; bounded-memory long runs).

    Existing stores keep the table they were built against, so they
    remain internally consistent; only *new* stores see the fresh one.
    """
    global _TABLE
    with _TABLE_LOCK:
        _TABLE = TermTable()
        return _TABLE
