"""Relational schemas.

A :class:`Schema` is a finite set of relation symbols with fixed
arities.  Data exchange uses two disjoint schemas — the source schema
``S`` and the target schema ``T`` — bundled by
:class:`~repro.logic.tgds.Mapping`.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping as TMapping, Optional

from ..errors import SchemaError
from .atoms import Atom


class RelationSymbol:
    """A relation name together with its fixed arity."""

    __slots__ = ("_name", "_arity")

    def __init__(self, name: str, arity: int):
        if not name:
            raise SchemaError("relation name must be non-empty")
        if arity < 0:
            raise SchemaError(f"arity of {name} must be non-negative, got {arity}")
        object.__setattr__(self, "_name", name)
        object.__setattr__(self, "_arity", arity)

    @property
    def name(self) -> str:
        return self._name

    @property
    def arity(self) -> int:
        return self._arity

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RelationSymbol):
            return NotImplemented
        return self._name == other._name and self._arity == other._arity

    def __hash__(self) -> int:
        return hash((self._name, self._arity))

    def __reduce__(self):
        return (RelationSymbol, (self._name, self._arity))

    def __repr__(self) -> str:
        return f"{self._name}/{self._arity}"

    def __setattr__(self, name, value):  # pragma: no cover - guard
        raise AttributeError("RelationSymbol is immutable")


class Schema:
    """An immutable collection of relation symbols keyed by name."""

    __slots__ = ("_relations",)

    def __init__(self, relations: Iterable[RelationSymbol] = ()):
        by_name: dict[str, RelationSymbol] = {}
        for rel in relations:
            existing = by_name.get(rel.name)
            if existing is not None and existing.arity != rel.arity:
                raise SchemaError(
                    f"relation {rel.name} declared with arities "
                    f"{existing.arity} and {rel.arity}"
                )
            by_name[rel.name] = rel
        object.__setattr__(self, "_relations", by_name)

    @classmethod
    def from_arities(cls, arities: TMapping[str, int]) -> "Schema":
        """Build a schema from a ``{name: arity}`` mapping."""
        return cls(RelationSymbol(n, a) for n, a in arities.items())

    @classmethod
    def inferred_from_atoms(cls, atoms: Iterable[Atom]) -> "Schema":
        """Infer a schema from atoms, checking arity consistency."""
        arities: dict[str, int] = {}
        for a in atoms:
            known = arities.get(a.relation)
            if known is not None and known != a.arity:
                raise SchemaError(
                    f"relation {a.relation} used with arities {known} and {a.arity}"
                )
            arities[a.relation] = a.arity
        return cls.from_arities(arities)

    # -- queries ----------------------------------------------------------------

    @property
    def relation_names(self) -> frozenset[str]:
        return frozenset(self._relations)

    def arity(self, name: str) -> int:
        try:
            return self._relations[name].arity
        except KeyError:
            raise SchemaError(f"unknown relation {name}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._relations

    def __iter__(self) -> Iterator[RelationSymbol]:
        return iter(sorted(self._relations.values(), key=lambda r: r.name))

    def __len__(self) -> int:
        return len(self._relations)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self._relations == other._relations

    def __hash__(self) -> int:
        return hash(frozenset(self._relations.values()))

    def __reduce__(self):
        return (Schema, (tuple(self._relations.values()),))

    # -- validation ----------------------------------------------------------------

    def validate_atom(self, atom: Atom) -> None:
        """Raise :class:`SchemaError` unless ``atom`` conforms to the schema."""
        if atom.relation not in self._relations:
            raise SchemaError(f"atom {atom} uses unknown relation {atom.relation}")
        expected = self._relations[atom.relation].arity
        if atom.arity != expected:
            raise SchemaError(
                f"atom {atom} has arity {atom.arity}, schema expects {expected}"
            )

    def validate_atoms(self, atoms: Iterable[Atom]) -> None:
        for a in atoms:
            self.validate_atom(a)

    def is_disjoint_from(self, other: "Schema") -> bool:
        """True when the two schemas share no relation name."""
        return not (self.relation_names & other.relation_names)

    def union(self, other: "Schema") -> "Schema":
        """The union schema; conflicting arities raise :class:`SchemaError`."""
        return Schema(list(self._relations.values()) + list(other._relations.values()))

    def __repr__(self) -> str:
        inner = ", ".join(repr(r) for r in self)
        return f"Schema({{{inner}}})"


def ensure_disjoint(source: Schema, target: Schema) -> None:
    """Raise unless the source and target schemas are disjoint.

    Data exchange requires ``S`` and ``T`` to share no relation symbol
    (paper, §1); the overlap is reported in the error message.
    """
    overlap = source.relation_names & target.relation_names
    if overlap:
        raise SchemaError(
            "source and target schemas must be disjoint; both contain "
            + ", ".join(sorted(overlap))
        )
