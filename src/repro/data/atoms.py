"""Relational atoms.

An :class:`Atom` is a relation symbol applied to a tuple of terms,
e.g. ``R(a, ?N1, x)``.  Atoms appear in three roles:

* *facts* — atoms over constants and nulls, stored in instances;
* *patterns* — atoms that may contain variables, appearing in the
  bodies and heads of dependencies and in queries;
* *frozen patterns* — patterns whose variables have been replaced by
  nulls, used when a conjunction of atoms is viewed "as an instance
  where each variable corresponds to a null value" (paper, §2).

Atoms are immutable and hashable, so instances can store them in sets
and the homomorphism engine can memoize on them.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, Mapping, Sequence, Union

from ..engine.config import CONFIG
from .terms import Constant, Null, Term, Variable

TermLike = Union[Term, str, int]


def _coerce(term: TermLike) -> Term:
    """Turn bare strings/ints into terms using the textual convention.

    * an ``int`` or a string that does not match the rules below is a
      :class:`Constant`;
    * a string starting with ``?`` or ``_`` is a :class:`Null`
      (label = remainder);
    * a string starting with ``$`` is a :class:`Variable`
      (name = remainder).

    Explicit :class:`Term` objects pass through unchanged, so callers
    who need full control simply construct terms directly.
    """
    if isinstance(term, Term):
        return term
    if isinstance(term, int):
        return Constant(term)
    if isinstance(term, str):
        if term.startswith("?") or term.startswith("_"):
            return Null(term[1:])
        if term.startswith("$"):
            return Variable(term[1:])
        return Constant(term)
    raise TypeError(f"cannot interpret {term!r} as a term")


class Atom:
    """An immutable relational atom ``relation(args...)``."""

    __slots__ = ("_relation", "_args", "_hash")

    def __init__(self, relation: str, args: Sequence[TermLike]):
        if not relation:
            raise ValueError("relation name must be non-empty")
        coerced = tuple(_coerce(a) for a in args)
        object.__setattr__(self, "_relation", relation)
        object.__setattr__(self, "_args", coerced)
        object.__setattr__(self, "_hash", hash((relation, coerced)))

    @classmethod
    def _of_terms(cls, relation: str, args: tuple[Term, ...]) -> "Atom":
        """Internal: wrap arguments already known to be terms, uncoerced."""
        atom = object.__new__(cls)
        object.__setattr__(atom, "_relation", relation)
        object.__setattr__(atom, "_args", args)
        object.__setattr__(atom, "_hash", hash((relation, args)))
        return atom

    @property
    def relation(self) -> str:
        """The relation symbol of the atom."""
        return self._relation

    @property
    def args(self) -> tuple[Term, ...]:
        """The argument tuple of the atom."""
        return self._args

    @property
    def arity(self) -> int:
        return len(self._args)

    # -- term classification ------------------------------------------------

    def terms(self) -> Iterator[Term]:
        """Iterate over the arguments (with repetitions)."""
        return iter(self._args)

    @property
    def variables(self) -> set[Variable]:
        """All variables occurring in the atom."""
        return {t for t in self._args if isinstance(t, Variable)}

    @property
    def nulls(self) -> set[Null]:
        """All labeled nulls occurring in the atom."""
        return {t for t in self._args if isinstance(t, Null)}

    @property
    def constants(self) -> set[Constant]:
        """All constants occurring in the atom."""
        return {t for t in self._args if isinstance(t, Constant)}

    @property
    def is_fact(self) -> bool:
        """True when the atom contains no variables (it can be stored)."""
        return not any(isinstance(t, Variable) for t in self._args)

    @property
    def is_ground(self) -> bool:
        """True when every argument is a constant."""
        return all(isinstance(t, Constant) for t in self._args)

    # -- transformation ------------------------------------------------------

    def apply(self, mapping: Mapping[Term, Term]) -> "Atom":
        """Replace arguments by their image in ``mapping`` (missing = keep)."""
        args = tuple(mapping.get(t, t) for t in self._args)
        if CONFIG.value_fastpaths:
            # The images of a term-to-term mapping need no coercion.
            return Atom._of_terms(self._relation, args)
        return Atom(self._relation, args)

    def map_terms(self, fn: Callable[[Term], Term]) -> "Atom":
        """Apply ``fn`` to every argument."""
        return Atom(self._relation, tuple(fn(t) for t in self._args))

    # -- dunder --------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Atom):
            return NotImplemented
        return (
            self._hash == other._hash
            and self._relation == other._relation
            and self._args == other._args
        )

    def __hash__(self) -> int:
        return self._hash

    def __lt__(self, other: "Atom") -> bool:
        if not isinstance(other, Atom):
            return NotImplemented
        if self._relation != other._relation:
            return self._relation < other._relation
        return list(self._args) < list(other._args)

    def __reduce__(self):
        return (Atom, (self._relation, self._args))

    def __repr__(self) -> str:
        return f"Atom({self._relation!r}, {self._args!r})"

    def __str__(self) -> str:
        inner = ", ".join(str(t) for t in self._args)
        return f"{self._relation}({inner})"

    def __setattr__(self, name, value):  # pragma: no cover - guard
        raise AttributeError("Atom is immutable")


def atom(relation: str, *args: TermLike) -> Atom:
    """Convenience constructor: ``atom("R", "a", "?N", "$x")``."""
    return Atom(relation, args)


def atoms_variables(atoms: Iterable[Atom]) -> set[Variable]:
    """All variables occurring in a conjunction of atoms."""
    result: set[Variable] = set()
    for a in atoms:
        result |= a.variables
    return result


def atoms_nulls(atoms: Iterable[Atom]) -> set[Null]:
    """All nulls occurring in a conjunction of atoms."""
    result: set[Null] = set()
    for a in atoms:
        result |= a.nulls
    return result


def atoms_constants(atoms: Iterable[Atom]) -> set[Constant]:
    """All constants occurring in a conjunction of atoms."""
    result: set[Constant] = set()
    for a in atoms:
        result |= a.constants
    return result


def freeze_atoms(
    atoms: Iterable[Atom], rename: Callable[[Variable], Null] | None = None
) -> tuple[list[Atom], dict[Variable, Null]]:
    """Freeze a conjunction: replace each variable by a null.

    Returns the frozen atoms together with the variable-to-null mapping
    used, so callers can translate answers back.  By default the null
    reuses the variable's name, which is safe because frozen patterns
    are only ever compared against instances, never merged into them.
    """
    mapping: dict[Variable, Null] = {}

    def default_rename(v: Variable) -> Null:
        return Null(f"v_{v.name}")

    rename = rename or default_rename
    frozen: list[Atom] = []
    for a in atoms:
        new_args: list[Term] = []
        for t in a.args:
            if isinstance(t, Variable):
                if t not in mapping:
                    mapping[t] = rename(t)
                new_args.append(mapping[t])
            else:
                new_args.append(t)
        frozen.append(Atom(a.relation, new_args))
    return frozen, mapping
