"""The semantics-strategy contract: what a recovery semantics must answer.

A *semantics* fixes four things the rest of the stack treats as
interchangeable policy (ROADMAP open item 5):

* the **solution space** — which source instances count as recoveries
  of a target instance (:meth:`SemanticsStrategy.recoveries`);
* the **justification test** — when a single source instance is a
  member of that space (:meth:`SemanticsStrategy.is_recovery`);
* the **certainty evaluation** — what it means for a query answer to
  be certain over the space (:meth:`SemanticsStrategy.certain`);
* the **repair notion** — what happens to targets outside the
  semantics' domain of validity (:meth:`SemanticsStrategy.repairs_of`
  and :meth:`SemanticsStrategy.repair_and_recover`).

Every method takes the same resource-governance keywords the core
entry points take (``deadline``, ``mode``, ``executor``/``jobs``,
enumeration budgets), so a strategy composes with the resilience
ladder instead of sidestepping it: ``mode="degrade"`` must return an
:class:`~repro.resilience.AnytimeResult` with honest ``status``/
``rung`` provenance, exactly like the paper pipeline does.

Strategies are looked up by name through :mod:`repro.semantics.registry`
and observed uniformly: :meth:`BaseSemantics.observe` wraps each
operation in a ``semantics.<name>.<op>`` span and bumps a
``semantics[<name>].<op>`` counter, so ``/metrics`` and ``--trace``
attribute work to the mode that caused it.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import TYPE_CHECKING, Iterator, Protocol, runtime_checkable

from ..observability.metrics import METRICS
from ..observability.spans import TRACER

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from ..data.instances import Instance
    from ..logic.queries import Query
    from ..logic.tgds import Mapping


@runtime_checkable
class SemanticsStrategy(Protocol):
    """The pluggable recovery/certainty semantics interface.

    Implementations are stateless policy objects; one shared instance
    serves every caller (they must therefore be thread-safe, which
    stateless delegation to the core entry points gives for free).
    """

    #: Registry key and wire value (``--semantics`` / request field).
    name: str
    #: One-line human description shown in ``describe()`` output.
    description: str

    def recoveries(self, mapping: "Mapping", target: "Instance", **options):
        """The solution space: recoveries of ``target`` under this mode.

        Returns a ``list[Instance]`` (or, with ``mode="degrade"``, an
        :class:`~repro.resilience.AnytimeResult` wrapping one).  An
        empty list means the target admits no solution under this
        semantics within the given budgets.
        """
        ...

    def certain(self, query: "Query", mapping: "Mapping", target: "Instance", **options):
        """Certain answers of ``query`` over the solution space.

        Raises :class:`~repro.errors.NotRecoverableError` when the
        space is empty (certainty undefined); with ``mode="degrade"``
        returns an :class:`~repro.resilience.AnytimeResult`.
        """
        ...

    def is_recovery(
        self, mapping: "Mapping", source: "Instance", target: "Instance", **options
    ) -> bool:
        """Membership test: does ``source`` belong to the solution space?"""
        ...

    def is_valid(self, mapping: "Mapping", target: "Instance", **options) -> bool:
        """Whether the target admits a non-empty solution space."""
        ...

    def repairs_of(
        self, mapping: "Mapping", target: "Instance", **options
    ) -> list["Instance"]:
        """The repair notion: target instances this mode recovers from.

        For a target already inside the semantics' validity domain this
        is ``[target]`` itself; otherwise the mode's notion of repaired
        variants (possibly empty when repairing is out of budget).
        """
        ...

    def repair_and_recover(self, mapping: "Mapping", target: "Instance", **options):
        """``(repairs, recoveries)`` — the ``/repair`` endpoint's contract."""
        ...

    def describe(self) -> dict:
        """A JSON-friendly summary (name, description, repair notion)."""
        ...


class BaseSemantics:
    """Shared observability plumbing for concrete strategies."""

    name: str = ""
    description: str = ""
    #: Human phrase for the mode's repair notion (``describe()``).
    repair_notion: str = ""

    @contextmanager
    def observe(self, op: str) -> Iterator[None]:
        """Attribute one strategy operation to this mode.

        Bumps ``semantics[<name>].<op>`` and opens a
        ``semantics.<name>.<op>`` span, so per-mode work shows up in
        ``/metrics`` documents and ``--trace`` trees without the
        strategies threading counters by hand.
        """
        METRICS.inc(f"semantics[{self.name}].{op}")
        with TRACER.span(f"semantics.{self.name}.{op}"):
            yield

    def describe(self) -> dict:
        return {
            "name": self.name,
            "description": self.description,
            "repair_notion": self.repair_notion,
        }

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"
