"""The semantics registry: named, pluggable recovery semantics.

The registry is the single resolution point for every surface that
names a mode — ``EngineConfig.semantics``, the CLI ``--semantics``
flag and the service's per-request ``semantics`` field all funnel
through :func:`get_semantics`, so an unknown name fails identically
everywhere with the registered alternatives listed.

Third-party strategies register with :func:`register_semantics`; the
two built-in modes (``paper``, ``exchange_repairs``) are registered by
:mod:`repro.semantics` at import time.
"""

from __future__ import annotations

import threading
from typing import Optional

from ..errors import ReproError
from .base import SemanticsStrategy


class UnknownSemanticsError(ReproError):
    """A semantics mode name that no registered strategy answers to."""

    def __init__(self, name: object, known: tuple[str, ...]):
        self.name = name
        self.known = known
        super().__init__(
            f"unknown semantics mode {name!r}; registered modes: "
            + ", ".join(known)
        )


_LOCK = threading.Lock()
_STRATEGIES: dict[str, SemanticsStrategy] = {}


def register_semantics(
    strategy: SemanticsStrategy, *, replace: bool = False
) -> SemanticsStrategy:
    """Register a strategy under its ``name``; returns it for chaining.

    Re-registering a taken name raises ``ValueError`` unless
    ``replace=True`` — a silent overwrite could reroute every live
    surface (CLI, service) mid-process.
    """
    name = getattr(strategy, "name", "")
    if not isinstance(name, str) or not name:
        raise ValueError("semantics strategy must expose a non-empty name")
    with _LOCK:
        if not replace and name in _STRATEGIES:
            raise ValueError(f"semantics mode {name!r} is already registered")
        _STRATEGIES[name] = strategy
    return strategy


def get_semantics(name: Optional[str] = None) -> SemanticsStrategy:
    """Resolve a mode by name (default: the ``CONFIG.semantics`` mode).

    :raises UnknownSemanticsError: for names no strategy answers to —
        including a misconfigured ``CONFIG.semantics``.
    """
    if name is None:
        from ..engine.config import CONFIG

        name = CONFIG.semantics
    with _LOCK:
        strategy = _STRATEGIES.get(name)  # type: ignore[arg-type]
        known = tuple(sorted(_STRATEGIES))
    if strategy is None:
        raise UnknownSemanticsError(name, known)
    return strategy


def semantics_names() -> tuple[str, ...]:
    """The registered mode names, sorted."""
    with _LOCK:
        return tuple(sorted(_STRATEGIES))


def describe_semantics() -> list[dict]:
    """``describe()`` of every registered mode, in name order."""
    with _LOCK:
        strategies = [_STRATEGIES[name] for name in sorted(_STRATEGIES)]
    return [strategy.describe() for strategy in strategies]
