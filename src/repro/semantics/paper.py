"""The paper's instance-based semantics as the default strategy.

Pure delegation: every method forwards to the exact core entry point
the pre-strategy code paths called, with identical defaults, so the
``paper`` mode is bit-identical to calling the core layer directly —
the differential suite in ``tests/semantics`` pins this on the shared
fixtures over both storage backends and all executors.  The only
additions are the per-mode span/counter wrappers from
:class:`~repro.semantics.base.BaseSemantics`, which observe results
without touching them.
"""

from __future__ import annotations

from typing import Optional

from ..core.certain import certain_answer
from ..core.inverse_chase import inverse_chase
from ..core.repair import repair_target, repairs
from ..core.semantics import is_recovery as _is_recovery
from ..core.validity import is_valid_for_recovery
from ..data.instances import Instance
from ..logic.queries import Query
from ..logic.tgds import Mapping
from ..resilience import AnytimeResult
from .base import BaseSemantics


class PaperSemantics(BaseSemantics):
    """Definitions 1-4 of the source paper, unchanged."""

    name = "paper"
    description = (
        "the paper's instance-based semantics: justified targets, "
        "Chase^{-1} recovery sets, UCQ certain answers (Definitions 1-4)"
    )
    repair_notion = (
        "none within the semantics — invalid targets have an empty "
        "recovery set; subset-maximal target repair is a separate, "
        "explicit operation (/repair, `repro repair`)"
    )

    def recoveries(self, mapping: Mapping, target: Instance, **options):
        with self.observe("recoveries"):
            return inverse_chase(mapping, target, **options)

    def certain(self, query: Query, mapping: Mapping, target: Instance, **options):
        with self.observe("certain"):
            return certain_answer(query, mapping, target, **options)

    def is_recovery(
        self, mapping: Mapping, source: Instance, target: Instance, **options
    ) -> bool:
        with self.observe("is_recovery"):
            return _is_recovery(mapping, source, target, **options)

    def is_valid(self, mapping: Mapping, target: Instance, **options) -> bool:
        with self.observe("is_valid"):
            return is_valid_for_recovery(mapping, target, **options)

    def repairs_of(
        self, mapping: Mapping, target: Instance, **options
    ) -> list[Instance]:
        """Subset-maximal valid subsets (the paper's closing open problem).

        Not part of the recovery semantics proper — ``recoveries`` of
        an invalid target is simply empty — but exposed so the repair
        workflow is reachable uniformly through the strategy interface.
        A valid target is its own (only) repair.
        """
        with self.observe("repairs"):
            if is_valid_for_recovery(
                mapping,
                target,
                max_covers=options.pop("max_covers", 2000),
                deadline=options.get("deadline"),
            ):
                return [target]
            return list(repairs(mapping, target, **options))

    def repair_and_recover(self, mapping: Mapping, target: Instance, **options):
        """One subset-maximal repair plus its recovery set.

        Mirrors :func:`repro.core.repair.recover_after_alteration`
        (first repair wins), keeping the ``/repair`` endpoint's
        pre-strategy behavior byte-for-byte.
        """
        with self.observe("repair_and_recover"):
            max_recoveries = options.pop("max_recoveries", 1000)
            deadline = options.pop("deadline", None)
            mode = options.pop("mode", "raise")
            repaired: Optional[Instance] = repair_target(
                mapping, target, deadline=deadline, **options
            )
            if repaired is None:
                empty: list[Instance] = []
                outcome = (
                    AnytimeResult(
                        empty,
                        "exact",
                        "enumeration",
                        detail="no repair found within the removal budget",
                    )
                    if mode == "degrade"
                    else empty
                )
                return [], outcome
            outcome = inverse_chase(
                mapping,
                repaired,
                max_recoveries=max_recoveries,
                deadline=deadline,
                mode=mode,
            )
            return [repaired], outcome
