"""Pluggable recovery semantics (ROADMAP open item 5).

The package decouples *which* semantics the stack answers under from
*how* the answer is computed: :class:`~repro.semantics.base.SemanticsStrategy`
names the four policy axes (solution space, justification test,
certainty evaluation, repair notion), the registry resolves modes by
name, and every surface — ``EngineConfig.semantics``, the CLI
``--semantics`` flag, the service's per-request ``semantics`` field —
routes through :func:`get_semantics`.

Two modes ship built in:

* ``paper`` (default) — the source paper's instance-based semantics,
  delegating bit-identically to :mod:`repro.core`;
* ``exchange_repairs`` — the Exchange-Repairs adaptation
  (arXiv 1509.06390): invalid targets are replaced by their
  subset-maximal valid subsets, solutions are recoveries of some
  repair, XR-certain answers hold under every repair.
"""

from __future__ import annotations

from .base import BaseSemantics, SemanticsStrategy
from .exchange_repairs import ExchangeRepairsSemantics
from .paper import PaperSemantics
from .registry import (
    UnknownSemanticsError,
    describe_semantics,
    get_semantics,
    register_semantics,
    semantics_names,
)

#: The built-in strategies, registered at import time.
PAPER = register_semantics(PaperSemantics())
EXCHANGE_REPAIRS = register_semantics(ExchangeRepairsSemantics())

__all__ = [
    "BaseSemantics",
    "SemanticsStrategy",
    "PaperSemantics",
    "ExchangeRepairsSemantics",
    "UnknownSemanticsError",
    "describe_semantics",
    "get_semantics",
    "register_semantics",
    "semantics_names",
    "PAPER",
    "EXCHANGE_REPAIRS",
]
