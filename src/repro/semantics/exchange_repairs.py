"""Exchange-Repairs semantics (ten Cate–Halpert–Kolaitis, arXiv 1509.06390).

The XR framework evaluates queries over *repairs* of an inconsistent
exchanged instance instead of refusing it.  Transposed to this
library's recovery direction: a target ``J`` that is not valid for
recovery (the paper's semantics would return an empty recovery set)
is replaced by its subset-maximal valid subsets — the repairs of
:mod:`repro.core.repair` — and the semantics quantifies over them:

* **solution space** — ``XREC(Sigma, J) = union over repairs J' of
  REC(Sigma, J')``: a source is an exchange-repair solution when it
  recovers *some* repair;
* **justification test** — membership in that union;
* **certainty evaluation** — ``XR-CERT(Q, Sigma, J) = intersection
  over repairs J' of CERT(Q, Sigma, J')``: a tuple is XR-certain when
  it is certain no matter which repair the true target is;
* **repair notion** — the subset-maximal valid subsets themselves.

On a target that *is* valid for recovery there is exactly one repair
(``J`` itself), so every operation delegates verbatim to the paper
pipeline — XR is a conservative extension, which the differential
suite checks property-style.

Degradation composes per direction with opposite polarity:

* the recovery **union** over a *partial* repair set is sound
  (every member recovers a genuine repair) but incomplete, so an
  expired enumeration degrades to the union found so far, tagged
  ``sound-incomplete`` / ``partial-enumeration``;
* the certainty **intersection** over a partial repair set
  *over-approximates* (missing repairs can only shrink it), so on an
  incomplete repair enumeration the only sound degraded answer is the
  empty set — mirroring :func:`repro.core.certain.certain_answers`'
  refusal to return a partial intersection.
"""

from __future__ import annotations

from typing import Optional

from ..core.certain import certain_answer
from ..core.inverse_chase import inverse_chase
from ..core.repair import repairs
from ..core.semantics import is_recovery as _is_recovery
from ..core.validity import is_valid_for_recovery
from ..data.instances import Instance
from ..errors import BudgetExceededError, DeadlineExceededError, NotRecoverableError
from ..logic.queries import Query
from ..logic.tgds import Mapping
from ..resilience import AnytimeResult
from .base import BaseSemantics

#: Keywords consumed by the repair-enumeration phase; everything else
#: in ``**options`` flows through to the per-repair paper pipeline.
_REPAIR_KEYS = ("max_removals", "max_candidates")


class ExchangeRepairsSemantics(BaseSemantics):
    """Repair-tolerant recovery: quantify over subset-maximal repairs."""

    name = "exchange_repairs"
    description = (
        "Exchange-Repairs semantics (arXiv 1509.06390) transposed to "
        "recovery: invalid targets are replaced by their subset-maximal "
        "valid subsets; solutions are recoveries of some repair, "
        "XR-certain answers hold in every repair"
    )
    repair_notion = (
        "subset-maximal valid-for-recovery subsets of the target "
        "(repro.core.repair); a valid target is its own only repair"
    )

    # ------------------------------------------------------------------
    # repair enumeration
    # ------------------------------------------------------------------

    def _split_options(self, options: dict) -> tuple[dict, dict]:
        """``(repair_options, pipeline_options)`` from mixed keywords."""
        repair_options = {
            key: options.pop(key) for key in _REPAIR_KEYS if key in options
        }
        for shared in ("max_covers", "deadline"):
            if options.get(shared) is not None:
                repair_options[shared] = options[shared]
        return repair_options, options

    def _is_valid_target(
        self,
        mapping: Mapping,
        target: Instance,
        options: dict,
        *,
        degrade: bool = False,
    ) -> bool:
        """Paper validity of the target (the single-repair fast path).

        With ``degrade=True`` a budget expiry during the check is
        answered ``False``: the repair path runs next, its own
        enumeration expires against the same deadline immediately, and
        the caller degrades soundly instead of leaking the exception.
        """
        try:
            return is_valid_for_recovery(
                mapping,
                target,
                cover_mode=options.get("cover_mode", "minimal"),
                subsumption=options.get("subsumption"),
                max_covers=options.get("max_covers", 2000),
                deadline=options.get("deadline"),
            )
        except (BudgetExceededError, DeadlineExceededError):
            if not degrade:
                raise
            return False

    def _enumerate_repairs(
        self, mapping: Mapping, target: Instance, repair_options: dict, *, degrade: bool
    ) -> tuple[list[Instance], bool, str]:
        """``(repairs, complete, detail)`` under the mode's error policy.

        With ``degrade=False`` budget expiry propagates; with
        ``degrade=True`` it is absorbed and the repairs found so far
        come back flagged incomplete.
        """
        try:
            return list(repairs(mapping, target, **repair_options)), True, ""
        except (BudgetExceededError, DeadlineExceededError) as error:
            if not degrade:
                raise
            partial = [
                instance
                for instance in getattr(error, "partial", None) or []
                if isinstance(instance, Instance)
            ]
            return partial, False, f"repair enumeration expired: {error}"

    # ------------------------------------------------------------------
    # SemanticsStrategy
    # ------------------------------------------------------------------

    def repairs_of(
        self, mapping: Mapping, target: Instance, **options
    ) -> list[Instance]:
        with self.observe("repairs"):
            repair_options, pipeline = self._split_options(dict(options))
            if self._is_valid_target(mapping, target, pipeline):
                return [target]
            return list(repairs(mapping, target, **repair_options))

    def is_valid(self, mapping: Mapping, target: Instance, **options) -> bool:
        """XR-valid: at least one repair exists within the budgets."""
        with self.observe("is_valid"):
            repair_options, pipeline = self._split_options(dict(options))
            if self._is_valid_target(mapping, target, pipeline):
                return True
            for _ in repairs(mapping, target, **repair_options):
                return True
            return False

    def is_recovery(
        self, mapping: Mapping, source: Instance, target: Instance, **options
    ) -> bool:
        """Membership in the union: a recovery of *some* repair."""
        with self.observe("is_recovery"):
            options = dict(options)
            repair_options = {
                key: options.pop(key) for key in _REPAIR_KEYS if key in options
            }
            deadline = options.get("deadline")
            if deadline is not None:
                repair_options["deadline"] = deadline
            if is_valid_for_recovery(mapping, target, deadline=deadline):
                return _is_recovery(mapping, source, target, **options)
            return any(
                _is_recovery(mapping, source, repaired, **options)
                for repaired in repairs(mapping, target, **repair_options)
            )

    def _union_recoveries(
        self,
        mapping: Mapping,
        repaired_list: list[Instance],
        complete: bool,
        repair_detail: str,
        mode: str,
        pipeline: dict,
    ):
        """Deduplicated recovery union over an enumerated repair set."""
        union: list[Instance] = []
        seen: set[Instance] = set()
        all_exact = True
        details: list[str] = []
        if repair_detail:
            details.append(repair_detail)
        for repaired in repaired_list:
            outcome = inverse_chase(mapping, repaired, mode=mode, **pipeline)
            if isinstance(outcome, AnytimeResult) and not outcome.is_exact:
                all_exact = False
                details.append(f"repair pipeline degraded to rung {outcome.rung}")
            for recovery in outcome:
                if recovery not in seen:
                    seen.add(recovery)
                    union.append(recovery)

        if mode == "raise":
            return union
        exact = complete and all_exact
        return AnytimeResult(
            union,
            "exact" if exact else "sound-incomplete",
            "enumeration" if exact else "partial-enumeration",
            detail=(
                f"exchange-repairs union over {len(repaired_list)} repair(s)"
                + ("" if not details else "; " + "; ".join(details))
            ),
            progress={"repairs": len(repaired_list), "repairs_complete": complete},
        )

    def recoveries(self, mapping: Mapping, target: Instance, **options):
        """``XREC(Sigma, J)``: deduplicated union over the repairs.

        Valid targets delegate verbatim to the paper pipeline (one
        repair: ``J`` itself), including checkpoint support.  The
        repair path drops ``checkpoint`` — checkpoint scopes are
        fingerprinted per (mapping, target) pair and the per-repair
        runs would collide.
        """
        with self.observe("recoveries"):
            repair_options, pipeline = self._split_options(dict(options))
            mode = pipeline.pop("mode", "raise")
            if mode not in ("raise", "degrade"):
                raise ValueError(f"unknown resilience mode {mode!r}")
            degrade = mode == "degrade"
            if self._is_valid_target(mapping, target, pipeline, degrade=degrade):
                return inverse_chase(mapping, target, mode=mode, **pipeline)

            pipeline.pop("checkpoint", None)
            repaired_list, complete, repair_detail = self._enumerate_repairs(
                mapping, target, repair_options, degrade=degrade
            )
            return self._union_recoveries(
                mapping, repaired_list, complete, repair_detail, mode, pipeline
            )

    def certain(self, query: Query, mapping: Mapping, target: Instance, **options):
        """``XR-CERT(Q, Sigma, J)``: intersection over the repairs.

        A partial repair set would over-approximate the intersection,
        so in degrade mode an incomplete repair enumeration yields the
        empty set (sound, maximally incomplete).  Per-repair degraded
        answers are sound under-approximations, and an intersection of
        sound under-approximations is itself sound, so those *are*
        folded in.
        """
        with self.observe("certain"):
            repair_options, pipeline = self._split_options(dict(options))
            mode = pipeline.pop("mode", "raise")
            if mode not in ("raise", "degrade"):
                raise ValueError(f"unknown resilience mode {mode!r}")
            degrade = mode == "degrade"
            if self._is_valid_target(mapping, target, pipeline, degrade=degrade):
                return certain_answer(query, mapping, target, mode=mode, **pipeline)

            pipeline.pop("checkpoint", None)
            repaired_list, complete, repair_detail = self._enumerate_repairs(
                mapping, target, repair_options, degrade=degrade
            )
            if not repaired_list and complete:
                raise NotRecoverableError(
                    "target has no exchange-repair within the removal "
                    "budget; XR-certain answers are undefined"
                )
            if not complete:
                return AnytimeResult(
                    set(),
                    "sound-incomplete",
                    "partial-enumeration",
                    detail=(
                        "repair enumeration incomplete; a partial "
                        "intersection over-approximates XR-certainty, so "
                        "the sound degraded answer is empty — "
                        + repair_detail
                    ),
                    progress={"repairs": len(repaired_list), "repairs_complete": False},
                )

            result: Optional[set] = None
            all_exact = True
            details: list[str] = []
            for repaired in repaired_list:
                outcome = certain_answer(
                    query, mapping, repaired, mode=mode, **pipeline
                )
                if isinstance(outcome, AnytimeResult):
                    if not outcome.is_exact:
                        all_exact = False
                        details.append(
                            f"repair certainty degraded to rung {outcome.rung}"
                        )
                    answers = set(outcome.value)
                else:
                    answers = set(outcome)
                result = answers if result is None else (result & answers)
                if not result:
                    result = set()
                    break
            assert result is not None  # repaired_list is non-empty here

            if mode == "raise":
                return result
            exact = all_exact
            return AnytimeResult(
                result,
                "exact" if exact else "sound-incomplete",
                "enumeration" if exact else "partial-enumeration",
                detail=(
                    f"exchange-repairs intersection over "
                    f"{len(repaired_list)} repair(s)"
                    + ("" if not details else "; " + "; ".join(details))
                ),
                progress={"repairs": len(repaired_list), "repairs_complete": True},
            )

    def repair_and_recover(self, mapping: Mapping, target: Instance, **options):
        """All repairs plus the recovery union — the ``/repair`` shape."""
        with self.observe("repair_and_recover"):
            repair_options, pipeline = self._split_options(dict(options))
            mode = pipeline.pop("mode", "raise")
            if mode not in ("raise", "degrade"):
                raise ValueError(f"unknown resilience mode {mode!r}")
            degrade = mode == "degrade"
            pipeline.pop("checkpoint", None)
            if self._is_valid_target(mapping, target, pipeline, degrade=degrade):
                repaired_list: list[Instance] = [target]
                complete, repair_detail = True, ""
            else:
                repaired_list, complete, repair_detail = self._enumerate_repairs(
                    mapping, target, repair_options, degrade=degrade
                )
            outcome = self._union_recoveries(
                mapping, repaired_list, complete, repair_detail, mode, pipeline
            )
            return repaired_list, outcome
