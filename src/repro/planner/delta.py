"""Delta-seeded homomorphism search and plan-cache carry-forward.

Semi-naive maintenance (:mod:`repro.incremental`) asks two things of
the planner that the epoch-keyed full compiler is the wrong shape for:

* **Anchored enumeration** — every homomorphism that *uses* a delta
  fact.  Running one full join plan per atom position with that atom
  bound to the delta rows would be complete, but compiling a plan
  prefilters every other atom against the whole instance — O(|J|) per
  epoch, which defeats O(|ΔJ|) maintenance.  Instead the search here
  seeds each anchor's candidate pools directly from the instance's
  incrementally-maintained indexes (the object positional tier, which
  ``Instance.evolve`` patches per touched key): unify the anchored
  atom with the delta fact, then backtrack over the remaining atoms
  picking the narrowest index bucket under the current binding.  Work
  is output-sensitive — proportional to the bindings reachable from
  the delta fact, never to ``|J|``.
* **Carry-forward** — compiled plans are keyed on
  ``(canonical key, epoch)`` and a delta'd instance has a fresh epoch,
  so every warm plan would recompile from scratch.  A plan whose
  relations are disjoint from the delta's touched relations describes
  candidate pools the delta cannot have changed;
  :func:`carry_forward_plans` re-keys those entries (object and
  vectorized) from the parent epoch to the child's.  Vector plans
  embed :class:`~repro.data.columnar.ColumnarRelation` objects; the
  evolved store shares exactly the untouched relations' objects, so a
  relation-disjoint vector plan still points at live columns.

The emitted substitutions are value-equal to what the compiled kernels
(:mod:`repro.planner.evaluate` / :mod:`repro.planner.vectorized`)
yield for the same pattern restricted to homomorphisms touching the
delta, so callers can mix both paths and compare results bit-for-bit.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping, Optional, Sequence

from ..data.atoms import Atom
from ..data.instances import Instance
from ..data.substitutions import Substitution
from ..data.terms import Constant, Term
from ..observability.metrics import METRICS
from ..observability.spans import TRACER
from .plan import _PLAN_CACHE
from .vectorized import _VECTOR_PLAN_CACHE


def _mappable(term: Term, frozen: frozenset[Term]) -> bool:
    return not isinstance(term, Constant) and term not in frozen


def _unify_atom(
    atom: Atom,
    fact: Atom,
    binding: dict[Term, Term],
    frozen: frozenset[Term],
) -> Optional[list[Term]]:
    """Extend ``binding`` so ``atom`` maps onto ``fact``.

    Returns the newly-bound terms (for backtracking) or ``None`` when
    the unification fails; on failure the binding is restored.
    """
    if atom.relation != fact.relation or atom.arity != fact.arity:
        return None
    undo: list[Term] = []
    for p, t in zip(atom.args, fact.args):
        if not _mappable(p, frozen):
            if p != t:
                break
        else:
            bound = binding.get(p)
            if bound is None:
                binding[p] = t
                undo.append(p)
            elif bound != t:
                break
    else:
        return undo
    for p in undo:
        del binding[p]
    return None


class _Meter:
    """Batched deadline accounting, one tick per candidate fact visited."""

    __slots__ = ("deadline", "pending")

    def __init__(self, deadline):
        self.deadline = deadline
        self.pending = 0

    def tick(self) -> None:
        if self.deadline is None:
            return
        self.pending += 1
        if self.pending >= 32:
            self.deadline.step(self.pending, "delta search")
            self.pending = 0


def _seeded_solutions(
    remaining: list[Atom],
    target: Instance,
    binding: dict[Term, Term],
    frozen: frozenset[Term],
    meter: _Meter,
) -> Iterator[dict[Term, Term]]:
    """All extensions of ``binding`` mapping ``remaining`` into ``target``.

    Most-constrained-first backtracking: at every depth the unmatched
    atom with the narrowest candidate bucket (under the current
    binding, through the positional index) is matched next, so pools
    stay proportional to the join's fan-out from the seed values.
    """
    if not remaining:
        yield dict(binding)
        return
    mappable = lambda term: _mappable(term, frozen)  # noqa: E731
    best_i = -1
    best: Optional[frozenset[Atom]] = None
    for i, atom in enumerate(remaining):
        found = target.candidates(atom, binding, mappable)
        if best is None or len(found) < len(best):
            best_i, best = i, found
            if not best:
                return
    atom = remaining[best_i]
    rest = remaining[:best_i] + remaining[best_i + 1 :]
    for fact in best:
        meter.tick()
        undo = _unify_atom(atom, fact, binding, frozen)
        if undo is None:
            continue
        yield from _seeded_solutions(rest, target, binding, frozen, meter)
        for p in undo:
            del binding[p]


def delta_restricted_homomorphisms(
    pattern: Sequence[Atom],
    target: Instance,
    delta_facts: Iterable[Atom],
    *,
    base: Optional[Mapping[Term, Term]] = None,
    frozen: frozenset[Term] = frozenset(),
    project: Optional[Iterable[Term]] = None,
    deadline=None,
) -> Iterator[Substitution]:
    """Homomorphisms of ``pattern`` into ``target`` using a delta fact.

    Yields exactly the substitutions ``homomorphisms(pattern, target,
    base=…, frozen=…, project=…)`` would yield whose image uses at
    least one fact of ``delta_facts`` — the semi-naive frontier.  One
    anchored search runs per (atom position, delta fact) pair with that
    atom bound to the fact; results are deduplicated across anchors.
    """
    pattern = list(pattern)
    base_map = dict(base) if base else {}
    project_set = None if project is None else set(project)
    meter = _Meter(deadline)
    seen: set[frozenset] = set()
    delta = sorted(set(delta_facts))
    METRICS.inc("incremental_delta_searches")
    with TRACER.span("planner.delta_search", aggregate=True):
        for i, atom in enumerate(pattern):
            rest = pattern[:i] + pattern[i + 1 :]
            for fact in delta:
                if fact not in target:
                    continue
                binding = dict(base_map)
                undo = _unify_atom(atom, fact, binding, frozen)
                if undo is None:
                    continue
                METRICS.inc("incremental_anchor_probes")
                for solution in _seeded_solutions(
                    rest, target, binding, frozen, meter
                ):
                    if project_set is not None:
                        solution = {
                            k: v for k, v in solution.items() if k in project_set
                        }
                    key = frozenset(solution.items())
                    if key not in seen:
                        seen.add(key)
                        yield Substitution(solution)
                for p in undo:
                    del binding[p]


def seeded_has_homomorphism(
    pattern: Sequence[Atom],
    target: Instance,
    *,
    base: Optional[Mapping[Term, Term]] = None,
    frozen: frozenset[Term] = frozenset(),
    deadline=None,
) -> bool:
    """Existence of an extension of ``base`` mapping ``pattern`` in.

    The re-derivation probe of delete-and-rederive maintenance: the
    head binding seeds the pools, so the check costs the fan-out from
    the bound values, not a fresh O(|J|) plan compilation per epoch.
    """
    meter = _Meter(deadline)
    for _ in _seeded_solutions(
        list(pattern), target, dict(base) if base else {}, frozen, meter
    ):
        return True
    return False


def carry_forward_plans(child: Instance) -> int:
    """Re-key still-valid compiled plans from a parent epoch to ``child``.

    Only meaningful for instances with lineage (``Instance.evolve``).
    A cached plan is carried when every relation in its canonical key
    is untouched by the delta: its prefiltered candidate pools (facts
    or columnar rows) are then identical for the child, and evaluation
    state that *does* depend on the instance (bound-value membership
    checks) is instantiated per call anyway.  Returns the number of
    plans carried; safe to call repeatedly (``put`` is idempotent).
    """
    lineage = child.lineage
    if lineage is None:
        return 0
    changed = lineage.relations
    parent_epoch = lineage.parent_epoch
    carried = 0
    for cache in (_PLAN_CACHE, _VECTOR_PLAN_CACHE):
        for cache_key in cache.keys():
            key, epoch = cache_key
            if epoch != parent_epoch:
                continue
            if any(relation in changed for relation, _slots in key):
                continue
            plan = cache.peek(cache_key)
            if plan is None:
                continue
            cache.put((key, child.epoch), plan)
            carried += 1
    if carried:
        METRICS.inc("incremental_plans_carried", carried)
    return carried
