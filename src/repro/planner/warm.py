"""Plan-cache warm keys for checkpoint/resume.

Compiled join plans are pure accelerators keyed on
``(canonical pattern key, target epoch)``.  Epochs are process-local,
so a restarted process starts with cold plan caches even when it
resumes an enumeration from a snapshot — and then pays the compile
cost again mid-pipeline, exactly where latency hurts.  A snapshot
therefore records *which* canonical keys were warm at save time
(:func:`collect_warm_keys`); the resume path recompiles them against
the live target up front (:func:`warm_plan_caches`), under the live
epoch.

Only the keys travel: a compiled plan holds fact tuples and row ids
bound to the process that built it, while the canonical key is a pure
value (relation names and canonical slots) that pickles cleanly and
stays meaningful across processes.  Warming is strictly best-effort —
a key that no longer compiles is skipped, never fatal — because the
caches rebuild lazily anyway.
"""

from __future__ import annotations

from typing import Optional

from ..data.instances import Instance
from ..engine.config import CONFIG
from ..observability.metrics import METRICS
from .plan import _PLAN_CACHE, compile_plan
from .vectorized import _VECTOR_PLAN_CACHE, compile_vector_plan


#: Warm keys above this many atoms are left out of snapshots.  A
#: canonical key the size of the whole instance (instance-level
#: homomorphism plans) would dominate the snapshot's bytes, and
#: recompiling it *up front* on resume front-loads the most expensive
#: canonicalization before any result is produced — for such plans the
#: lazy rebuild on first use is strictly better latency shaping.
WARM_KEY_ATOM_LIMIT = 256


def collect_warm_keys(target: Instance) -> dict:
    """The canonical plan keys currently compiled for ``target``.

    Returns ``{"object": [...], "vector": [...]}`` — the keys in the
    object-kernel and vectorized plan caches whose epoch matches the
    live target, excluding keys larger than
    :data:`WARM_KEY_ATOM_LIMIT`.  Entries for other instances are not
    recorded: the snapshot is scoped to one (mapping, target)
    computation.
    """
    epoch = target.epoch
    return {
        "object": [
            key
            for (key, ep) in _PLAN_CACHE.keys()
            if ep == epoch and len(key) <= WARM_KEY_ATOM_LIMIT
        ],
        "vector": [
            key
            for (key, ep) in _VECTOR_PLAN_CACHE.keys()
            if ep == epoch and len(key) <= WARM_KEY_ATOM_LIMIT
        ],
    }


def warm_cache_token() -> tuple:
    """A cheap value that changes whenever the plan caches may have.

    Miss counters double as insert counters, and entries only leave a
    cache on insert-driven eviction, ``clear`` or ``resize`` (which the
    lengths capture) — so an unchanged token means
    :func:`collect_warm_keys` would return what it returned last time.
    The checkpoint layer uses this to skip re-collecting (and
    re-serializing) warm keys between saves.
    """
    return (
        _PLAN_CACHE.misses,
        len(_PLAN_CACHE),
        _VECTOR_PLAN_CACHE.misses,
        len(_VECTOR_PLAN_CACHE),
    )


def warm_plan_caches(keys: Optional[dict], target: Instance) -> int:
    """Recompile recorded plan keys against the live target; returns count.

    Vector keys are only compiled when the columnar backend is active
    for this target (config may differ from the run that saved the
    snapshot); object keys always compile.  Failures are swallowed —
    a stale key costs nothing but its compile attempt.
    """
    if not keys:
        return 0
    warmed = 0
    epoch = target.epoch
    if _PLAN_CACHE.maxsize != CONFIG.plan_cache_size:
        _PLAN_CACHE.resize(CONFIG.plan_cache_size)
    for key in keys.get("object") or ():
        try:
            _PLAN_CACHE.get_or_compute(
                (key, epoch), lambda key=key: compile_plan(key, target)
            )
            warmed += 1
        except Exception:
            continue
    vector_keys = keys.get("vector") or ()
    if vector_keys:
        store = target.columnar_store()
        if store is not None:
            if _VECTOR_PLAN_CACHE.maxsize != CONFIG.plan_cache_size:
                _VECTOR_PLAN_CACHE.resize(CONFIG.plan_cache_size)
            for key in vector_keys:
                try:
                    _VECTOR_PLAN_CACHE.get_or_compute(
                        (key, epoch),
                        lambda key=key: compile_vector_plan(key, store),
                    )
                    warmed += 1
                except Exception:
                    continue
    if warmed:
        METRICS.inc("plans_prewarmed", warmed)
    return warmed
