"""Join-plan evaluation.

Evaluation runs the compiled plan of a pattern against the target it
was compiled for:

* membership checks first (atoms with no free variables), which
  short-circuit the whole call;
* each connected component independently, with an iterative
  backtracking join over the plan's static atom order and probe
  indexes;
* the cross product of the per-component solutions last, merged with
  the caller's ``base`` entries into :class:`Substitution` results.

Three modes share the component enumerator:

* **full enumeration** — every component's solutions are materialized
  except the last, which streams; for full bindings the raw solution
  dictionaries are pairwise distinct by construction, so no seen-set
  is kept (the identity-pair cleaning of :class:`Substitution` is
  injective over a fixed domain);
* **projection** (``project=``) — components are deduplicated on their
  projected variables only, and components with no projected variable
  collapse to an existence check;
* **existence** — stops at the first solution of every component and
  never materializes bindings at all.

A cooperative :class:`~repro.resilience.Deadline` is charged one step
per candidate fact visited, batched like the backtracking matcher so a
never-tripping deadline costs one integer increment per visit.

When the target offers a columnar store
(``CONFIG.columnar_backend`` on and the instance at least
``columnar_min_facts`` facts), both entry points hand the whole call to
the vectorized executor (:mod:`repro.planner.vectorized`) instead; the
object path below remains the small-instance default and the
differential oracle.
"""

from __future__ import annotations

from itertools import product
from typing import TYPE_CHECKING, Iterable, Iterator, Mapping, Optional, Sequence

from ..data.atoms import Atom
from ..data.instances import Instance
from ..data.substitutions import Substitution
from ..data.terms import Term
from ..engine.config import CONFIG
from ..observability.metrics import METRICS
from ..observability.spans import TRACER
from .plan import Component, Plan, plan_for
from .vectorized import vector_has_homomorphism, vector_homomorphisms

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from ..resilience import Deadline


class _Meter:
    """Batched deadline accounting, one tick per candidate fact visited."""

    __slots__ = ("deadline", "pending")

    def __init__(self, deadline: Optional["Deadline"]):
        self.deadline = deadline
        self.pending = 0

    def tick(self) -> None:
        if self.deadline is None:
            return
        self.pending += 1
        if self.pending >= 32:
            self.deadline.step(self.pending, "join kernel")
            self.pending = 0


def _component_solutions(
    component: Component,
    binding: list,
    bound_values: list,
    meter: _Meter,
) -> Iterator[tuple]:
    """All solutions of one component, as value tuples over its var ids.

    Iterative backtracking over the plan's static join order; the
    shared ``binding`` array is restored between yields, and abandoned
    generators only leave entries for this component's own variables
    dirty (components have disjoint variables).
    """
    METRICS.inc("plan_components_evaluated")
    atoms = component.atoms
    var_ids = component.var_ids
    depth = 0
    iters = [atoms[0].candidate_iter(binding, bound_values)] + [None] * (
        len(atoms) - 1
    )
    undos: list[list] = [[] for _ in atoms]
    while True:
        atom = atoms[depth]
        for vid in undos[depth]:
            binding[vid] = None
        undos[depth] = []
        matched = False
        for fact in iters[depth]:
            meter.tick()
            undo = atom.match(fact, binding, bound_values)
            if undo is None:
                continue
            undos[depth] = undo
            matched = True
            break
        if not matched:
            depth -= 1
            if depth < 0:
                return
            continue
        if depth + 1 == len(atoms):
            yield tuple(binding[vid] for vid in var_ids)
            continue
        depth += 1
        iters[depth] = atoms[depth].candidate_iter(binding, bound_values)


def _passes_checks(plan: Plan, target: Instance, bound_values: list) -> bool:
    """Instantiate and test the plan's variable-free membership checks."""
    for relation, slots in plan.bound_checks:
        args = tuple(
            slot[1] if slot[0] == "r" else bound_values[slot[1]] for slot in slots
        )
        if Atom._of_terms(relation, args) not in target:
            return False
    return True


def _prepare(pattern, target, base, frozen):
    plan, var_terms, bound_terms = plan_for(
        pattern, target, frozen=frozen, base=base
    )
    bound_values = [base[term] for term in bound_terms]
    return plan, var_terms, bound_values


def kernel_has_homomorphism(
    pattern: Sequence[Atom],
    target: Instance,
    *,
    base: Optional[Mapping[Term, Term]] = None,
    frozen: frozenset[Term] = frozenset(),
    deadline: Optional["Deadline"] = None,
) -> bool:
    """Existence-only evaluation: first solution per component, no bindings."""
    pattern = list(pattern)
    if not pattern:
        return True
    if deadline is not None:
        # Canonicalizing and compiling (or even cache-keying) a pattern
        # is Θ(|pattern|) before the join search starts; charge it so a
        # step budget also bounds huge-pattern probes (e.g. mapping a
        # Def. 12 sub-universal instance into each recovery).
        deadline.step(len(pattern), "plan compilation")
    store = target.columnar_store()
    if store is not None:
        METRICS.inc("planner_vectorized")
        return vector_has_homomorphism(
            pattern, target, store, base=base, frozen=frozen, deadline=deadline
        )
    if CONFIG.columnar_backend:
        METRICS.inc("planner_vector_fallbacks")
    plan, _, bound_values = _prepare(pattern, target, base or {}, frozen)
    if not plan.satisfiable or not _passes_checks(plan, target, bound_values):
        return False
    meter = _Meter(deadline)
    binding: list = [None] * plan.num_vars
    with TRACER.span("planner.execute", aggregate=True):
        for component in plan.components:
            for _ in _component_solutions(component, binding, bound_values, meter):
                METRICS.inc("plan_existence_shortcircuits")
                break
            else:
                return False
        return True


def kernel_homomorphisms(
    pattern: Sequence[Atom],
    target: Instance,
    *,
    base: Optional[Mapping[Term, Term]] = None,
    frozen: frozenset[Term] = frozenset(),
    deadline: Optional["Deadline"] = None,
    project: Optional[Iterable[Term]] = None,
) -> Iterator[Substitution]:
    """All homomorphisms from ``pattern`` into ``target`` via the plan.

    Yields the same substitution set as the backtracking matcher (each
    defined on the pattern's mappable terms extended with ``base``),
    restricted to ``project`` when given.  The order is deterministic
    (candidates are pre-sorted) but not the matcher's order.
    """
    pattern = list(pattern)
    base_map = dict(base) if base else {}
    project_set = None if project is None else set(project)
    kept_base = (
        base_map
        if project_set is None
        else {k: v for k, v in base_map.items() if k in project_set}
    )
    if not pattern:
        METRICS.inc("homomorphisms_explored")
        yield Substitution(kept_base)
        return
    if deadline is not None:
        # Same Θ(|pattern|) pre-join charge as kernel_has_homomorphism.
        deadline.step(len(pattern), "plan compilation")
    store = target.columnar_store()
    if store is not None:
        METRICS.inc("planner_vectorized")
        yield from vector_homomorphisms(
            pattern,
            target,
            store,
            base=base_map,
            frozen=frozen,
            deadline=deadline,
            project=project,
        )
        return
    if CONFIG.columnar_backend:
        METRICS.inc("planner_vector_fallbacks")
    plan, var_terms, bound_values = _prepare(pattern, target, base_map, frozen)
    if not plan.satisfiable or not _passes_checks(plan, target, bound_values):
        return
    meter = _Meter(deadline)
    binding: list = [None] * plan.num_vars
    # Solve every component up front except the last, which streams so
    # single-component patterns (the common case) stay fully lazy.
    solved: list[tuple[tuple[Term, ...], list[tuple]]] = []
    with TRACER.span("planner.execute", aggregate=True):
        for component in plan.components[:-1]:
            terms, solutions = _solve_component(
                component, binding, bound_values, var_terms, project_set, meter
            )
            if not solutions:
                return
            solved.append((terms, solutions))
    last = plan.components[-1] if plan.components else None
    prefix_lists = [solutions for _, solutions in solved]
    prefix_terms: tuple[Term, ...] = tuple(
        term for terms, _ in solved for term in terms
    )

    def emit(values: tuple) -> Substitution:
        raw = dict(kept_base)
        raw.update(zip(prefix_terms, values))
        METRICS.inc("homomorphisms_explored")
        return Substitution(raw)

    if last is None:
        yield emit(())
        return
    last_terms, last_stream = _stream_component(
        last, binding, bound_values, var_terms, project_set, meter
    )
    full_terms = prefix_terms + last_terms

    def emit_full(values: tuple) -> Substitution:
        raw = dict(kept_base)
        raw.update(zip(full_terms, values))
        METRICS.inc("homomorphisms_explored")
        return Substitution(raw)

    for tail in last_stream:
        for combo in product(*prefix_lists):
            prefix_values = tuple(v for values in combo for v in values)
            yield emit_full(prefix_values + tail)


def _solve_component(
    component, binding, bound_values, var_terms, project_set, meter
) -> tuple[tuple[Term, ...], list[tuple]]:
    """Materialize one component's (projected) solutions, deduplicated."""
    terms, stream = _stream_component(
        component, binding, bound_values, var_terms, project_set, meter
    )
    return terms, list(stream)


def _stream_component(
    component, binding, bound_values, var_terms, project_set, meter
) -> tuple[tuple[Term, ...], Iterator[tuple]]:
    """One component's solutions as (pattern terms, value-tuple iterator).

    Under projection the tuples carry only the projected variables and
    are deduplicated; a component with no projected variable collapses
    to an existence check contributing a single empty tuple.  Full
    enumeration needs no seen-set: the raw solution dictionaries range
    over a fixed domain, on which Substitution construction is
    injective.
    """
    raw = _component_solutions(component, binding, bound_values, meter)
    if project_set is None:
        terms = tuple(var_terms[vid] for vid in component.var_ids)
        return terms, raw
    keep = [
        i
        for i, vid in enumerate(component.var_ids)
        if var_terms[vid] in project_set
    ]
    if not keep:
        def existence() -> Iterator[tuple]:
            for _ in raw:
                METRICS.inc("plan_existence_shortcircuits")
                yield ()
                return

        return (), existence()
    terms = tuple(var_terms[component.var_ids[i]] for i in keep)

    def deduped() -> Iterator[tuple]:
        seen: set[tuple] = set()
        for values in raw:
            projected = tuple(values[i] for i in keep)
            if projected not in seen:
                seen.add(projected)
                yield projected

    return terms, deduped()
