"""Pattern canonicalization and join-plan compilation.

The compiler turns a conjunction of atoms into a reusable
:class:`Plan` in three steps:

1. **Canonicalize** — rename the pattern's mappable terms (variables
   and non-frozen nulls) to dense integer ids, ordering atoms by a
   name-free structural key first, so patterns that differ only in the
   spelling of their variables and nulls produce the same canonical
   form.  Terms pre-bound by the caller's ``base`` mapping get their
   own id space ("bound slots"): their values change per call, so they
   stay out of the cached plan.
2. **Compile** against a concrete target instance — split the pattern
   into connected components over shared variables, prefilter each
   atom's candidate facts through the target's per-position indexes
   (rigid slots, intra-atom repeated variables), prune candidate sets
   to a semi-join fixpoint over per-variable domains, and fix a greedy
   most-selective-first join order with a probe index per atom.
3. **Cache** — compiled plans live in an LRU keyed on
   ``(canonical key, target.epoch)``.  Instances are immutable and
   every construction stamps a fresh epoch, so a cached plan can never
   describe stale indexes, and the key works across workers that
   rebuilt an equal instance from a pickle.

Slot encoding: ``("r", term)`` rigid (constant or frozen null),
``("b", i)`` the ``i``-th bound term, ``("v", i)`` the ``i``-th free
variable.  A canonical key is a tuple of ``(relation, slots)`` pairs;
together with the per-call ``var_terms`` / ``bound_terms`` translation
tables it determines the original pattern up to renaming.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Optional, Sequence

from ..data.atoms import Atom
from ..data.instances import Instance
from ..data.terms import Constant, Term
from ..engine.cache import LRUCache, PartitionedLRUCache
from ..engine.config import CONFIG
from ..observability.metrics import METRICS
from ..observability.spans import TRACER

#: Semi-join pruning stops after this many passes even short of fixpoint.
_ARC_PASSES = 4

#: Selectivity discount for atoms constrained by a bound or joined slot:
#: the probe index will narrow their candidates at evaluation time.
_PROBE_DISCOUNT = 0.25

_PLAN_CACHE = PartitionedLRUCache("plan", maxsize=512)


def _mappable(term: Term, frozen: frozenset[Term]) -> bool:
    if isinstance(term, Constant):
        return False
    return term not in frozen


def _atom_sort_key(atom: Atom, frozen: frozenset[Term], base_keys: frozenset[Term]):
    """A name-free structural sort key for canonical atom ordering.

    Mappable terms are tagged by class (free / bound) and by the
    position of their first occurrence *within the atom*, never by
    name, so renaming the pattern cannot reorder atoms.
    """
    first: dict[Term, int] = {}
    tags = []
    for i, term in enumerate(atom.args):
        if not _mappable(term, frozen):
            tags.append((2, term))
        else:
            pos = first.setdefault(term, i)
            tags.append(((1 if term in base_keys else 0), pos))
    return (atom.relation, atom.arity, tuple(tags))


#: Memo for :func:`canonicalize`.  Canonicalization depends only on
#: the pattern, the frozen set, and the *keys* of the base binding —
#: never on the bound values — and the engine re-canonicalizes the
#: same few patterns (tgd bodies and heads, instance fact lists) for
#: every trigger and every justification oracle call.
_CANON_CACHE = LRUCache("canon", maxsize=4096)


def canonicalize(
    pattern: Sequence[Atom],
    frozen: frozenset[Term],
    base: Optional[Mapping[Term, Term]] = None,
) -> tuple[tuple, list[Term], list[Term]]:
    """Rename a pattern modulo its mappable-term names.

    Returns ``(key, var_terms, bound_terms)``: the hashable canonical
    key, and the translation tables mapping each variable / bound id
    back to the concrete term of *this* pattern.  Two patterns equal up
    to renaming of their mappable terms yield the same key whenever the
    structural sort fully determines the atom order.
    """
    base_keys = frozenset(base) if base else frozenset()
    memo_key = (tuple(pattern), frozen, base_keys)
    return _CANON_CACHE.get_or_compute(
        memo_key, lambda: _canonicalize(pattern, frozen, base_keys)
    )


def _canonicalize(
    pattern: Sequence[Atom],
    frozen: frozenset[Term],
    base_keys: frozenset[Term],
) -> tuple[tuple, list[Term], list[Term]]:
    ordered = sorted(pattern, key=lambda a: _atom_sort_key(a, frozen, base_keys))
    var_terms: list[Term] = []
    var_ids: dict[Term, int] = {}
    bound_terms: list[Term] = []
    bound_ids: dict[Term, int] = {}
    key_atoms = []
    for atom in ordered:
        slots = []
        for term in atom.args:
            if not _mappable(term, frozen):
                slots.append(("r", term))
            elif term in base_keys:
                bid = bound_ids.setdefault(term, len(bound_terms))
                if bid == len(bound_terms):
                    bound_terms.append(term)
                slots.append(("b", bid))
            else:
                vid = var_ids.setdefault(term, len(var_terms))
                if vid == len(var_terms):
                    var_terms.append(term)
                slots.append(("v", vid))
        key_atoms.append((atom.relation, tuple(slots)))
    return tuple(key_atoms), var_terms, bound_terms


class PlanAtom:
    """One pattern atom with its prefiltered candidates and probe index."""

    __slots__ = ("relation", "slots", "var_slots", "has_bound", "candidates", "probe", "groups")

    def __init__(self, relation: str, slots: tuple):
        self.relation = relation
        self.slots = slots
        #: ``[(position, var id)]`` with repeated variables listed once.
        seen: dict[int, int] = {}
        self.var_slots = [
            (i, s[1])
            for i, s in enumerate(slots)
            if s[0] == "v" and seen.setdefault(s[1], i) == i
        ]
        self.has_bound = any(s[0] == "b" for s in slots)
        self.candidates: tuple[Atom, ...] = ()
        #: ``None`` (scan) or ``(kind, position, id)`` with kind "v"/"b".
        self.probe = None
        self.groups: Optional[dict[Term, tuple[Atom, ...]]] = None

    @property
    def var_ids(self) -> set[int]:
        return {vid for _, vid in self.var_slots}

    def match(self, fact, binding, bound_values):
        """Extend ``binding`` so this atom maps onto ``fact``.

        Returns the var ids newly bound (for backtracking) or ``None``.
        Rigid slots and intra-atom repetitions are prefiltered into
        :attr:`candidates`, so only variable and bound slots are
        checked here.
        """
        undo: list[int] = []
        args = fact.args
        for i, slot in enumerate(self.slots):
            kind = slot[0]
            if kind == "v":
                vid = slot[1]
                current = binding[vid]
                if current is None:
                    binding[vid] = args[i]
                    undo.append(vid)
                elif current != args[i]:
                    for v in undo:
                        binding[v] = None
                    return None
            elif kind == "b" and args[i] != bound_values[slot[1]]:
                for v in undo:
                    binding[v] = None
                return None
        return undo

    def candidate_iter(self, binding, bound_values):
        """Candidates narrowed through the probe index, as an iterator."""
        probe = self.probe
        if probe is None:
            return iter(self.candidates)
        kind, _, idx = probe
        value = binding[idx] if kind == "v" else bound_values[idx]
        return iter(self.groups.get(value, ()))


class Component:
    """A connected component: atoms in join order plus its variable ids."""

    __slots__ = ("atoms", "var_ids")

    def __init__(self, atoms: list[PlanAtom], var_ids: tuple[int, ...]):
        self.atoms = atoms
        self.var_ids = var_ids


class Plan:
    """A compiled pattern, valid for one target instance epoch."""

    __slots__ = ("key", "components", "bound_checks", "num_vars", "satisfiable")

    def __init__(self, key, components, bound_checks, num_vars, satisfiable):
        self.key = key
        self.components = components
        #: ``(relation, slots)`` atoms with no free variables but at
        #: least one bound slot: membership checks instantiated per
        #: call (their values are not part of the cached plan).
        self.bound_checks = bound_checks
        self.num_vars = num_vars
        self.satisfiable = satisfiable


def _prefilter(relation: str, slots: tuple, target: Instance) -> list[Atom]:
    """Candidate facts passing rigid slots and intra-atom repetitions.

    Starts from the most selective per-position index entry among the
    rigid slots (falling back to the relation index) so the scan never
    touches more facts than the narrowest applicable index bucket.
    """
    pool = None
    for i, slot in enumerate(slots):
        if slot[0] == "r":
            found = target.facts_matching(relation, i, slot[1])
            if pool is None or len(found) < len(pool):
                pool = found
                if not pool:
                    return []
    if pool is None:
        pool = target.facts_for(relation)
    arity = len(slots)
    rigid = [(i, s[1]) for i, s in enumerate(slots) if s[0] == "r"]
    first_of: dict[tuple[str, int], int] = {}
    repeats: list[tuple[int, int]] = []
    for i, slot in enumerate(slots):
        if slot[0] == "r":
            continue
        j = first_of.setdefault(slot, i)
        if j != i:
            repeats.append((j, i))
    kept = []
    for fact in pool:
        args = fact.args
        if len(args) != arity:
            continue
        if any(args[i] != term for i, term in rigid):
            continue
        if any(args[j] != args[i] for j, i in repeats):
            continue
        kept.append(fact)
    # Key-based sort: Atom.__lt__ re-stringifies terms on every pairwise
    # comparison, which is pathological when the pattern is itself an
    # instance (instance_homomorphisms) and pools hold hundreds of facts.
    kept.sort(key=_pool_order)
    return kept


def _pool_order(fact: Atom) -> tuple[tuple[int, str], ...]:
    """Same order as ``Atom.__lt__`` within one relation's pool."""
    return tuple(t.sort_key for t in fact.args)


def _prune_domains(atoms: list[PlanAtom]) -> int:
    """Semi-join (arc-consistency) pruning to a bounded fixpoint.

    Each variable's domain is the intersection, over the atoms it
    occurs in, of the values seen at its positions; candidates whose
    values fall outside any domain are dropped.  Returns the number of
    candidates pruned.
    """
    pruned = 0
    for _ in range(_ARC_PASSES):
        domains: dict[int, set[Term]] = {}
        for atom in atoms:
            for i, vid in atom.var_slots:
                values = {fact.args[i] for fact in atom.candidates}
                narrowed = domains.get(vid)
                domains[vid] = values if narrowed is None else narrowed & values
        changed = False
        for atom in atoms:
            kept = tuple(
                fact
                for fact in atom.candidates
                if all(fact.args[i] in domains[vid] for i, vid in atom.var_slots)
            )
            if len(kept) < len(atom.candidates):
                pruned += len(atom.candidates) - len(kept)
                atom.candidates = kept
                changed = True
        if not changed:
            break
    return pruned


def _connected_components(atoms: list[PlanAtom]) -> list[list[PlanAtom]]:
    """Group atoms by the variables they share (union-find over var ids)."""
    parent: dict[int, int] = {}

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    for atom in atoms:
        vids = sorted(atom.var_ids)
        for vid in vids:
            parent.setdefault(vid, vid)
        for other in vids[1:]:
            parent[find(vids[0])] = find(other)
    grouped: dict[int, list[PlanAtom]] = {}
    for atom in atoms:
        grouped.setdefault(find(min(atom.var_ids)), []).append(atom)
    return [grouped[root] for root in sorted(grouped)]


def _join_order(atoms: list[PlanAtom]) -> list[PlanAtom]:
    """Greedy most-selective-first ordering within one component.

    The estimate is the prefiltered candidate count, discounted when a
    probe (a bound slot, or a join with an already-ordered atom) will
    narrow the scan at evaluation time.  After the first atom only
    connected atoms are eligible, so every atom beyond the first has a
    join probe.
    """
    remaining = list(enumerate(atoms))
    ordered: list[PlanAtom] = []
    bound_vars: set[int] = set()
    while remaining:
        eligible = [
            (idx, atom)
            for idx, atom in remaining
            if not ordered or atom.var_ids & bound_vars
        ]

        def estimate(entry):
            idx, atom = entry
            score = float(len(atom.candidates))
            if atom.has_bound or atom.var_ids & bound_vars:
                score *= _PROBE_DISCOUNT
            return (score, idx)

        idx, atom = min(eligible, key=estimate)
        remaining.remove((idx, atom))
        ordered.append(atom)
        bound_vars |= atom.var_ids
    return ordered


def _attach_probe(atom: PlanAtom, bound_vars: set[int]) -> None:
    """Pick the probe slot and build its value → facts index."""
    probe = None
    for i, slot in enumerate(atom.slots):
        if slot[0] == "v" and slot[1] in bound_vars:
            probe = ("v", i, slot[1])
            break
    if probe is None:
        for i, slot in enumerate(atom.slots):
            if slot[0] == "b":
                probe = ("b", i, slot[1])
                break
    if probe is None:
        return
    position = probe[1]
    groups: dict[Term, list[Atom]] = {}
    for fact in atom.candidates:
        groups.setdefault(fact.args[position], []).append(fact)
    atom.probe = probe
    atom.groups = {value: tuple(facts) for value, facts in groups.items()}


def compile_plan(key: tuple, target: Instance) -> Plan:
    """Compile a canonical pattern key against a concrete target."""
    with TRACER.span("planner.compile", aggregate=True):
        return _compile_plan(key, target)


def _compile_plan(key: tuple, target: Instance) -> Plan:
    METRICS.inc("plans_compiled")
    satisfiable = True
    bound_checks = []
    var_atoms: list[PlanAtom] = []
    num_vars = 0
    for relation, slots in key:
        for slot in slots:
            if slot[0] == "v":
                num_vars = max(num_vars, slot[1] + 1)
        if not any(slot[0] == "v" for slot in slots):
            if any(slot[0] == "b" for slot in slots):
                bound_checks.append((relation, slots))
            else:
                fact = Atom._of_terms(relation, tuple(s[1] for s in slots))
                if fact not in target:
                    satisfiable = False
            continue
        atom = PlanAtom(relation, slots)
        atom.candidates = tuple(_prefilter(relation, slots, target))
        if not atom.candidates:
            satisfiable = False
        var_atoms.append(atom)
    if satisfiable:
        METRICS.inc("plan_domains_pruned", _prune_domains(var_atoms))
        if any(not atom.candidates for atom in var_atoms):
            satisfiable = False
    components = []
    if satisfiable:
        for group in _connected_components(var_atoms):
            ordered = _join_order(group)
            bound_vars: set[int] = set()
            for atom in ordered:
                _attach_probe(atom, bound_vars)
                bound_vars |= atom.var_ids
            var_ids = tuple(sorted(bound_vars))
            components.append(Component(ordered, var_ids))
    return Plan(key, tuple(components), tuple(bound_checks), num_vars, satisfiable)


def plan_for(
    pattern: Sequence[Atom],
    target: Instance,
    *,
    frozen: frozenset[Term] = frozenset(),
    base: Optional[Mapping[Term, Term]] = None,
) -> tuple[Plan, list[Term], list[Term]]:
    """The cached plan for ``pattern`` over ``target``, compiling on a miss.

    Also returns the ``var_terms`` / ``bound_terms`` translation tables
    for this concrete pattern (they vary per call even on a cache hit).
    """
    key, var_terms, bound_terms = canonicalize(pattern, frozen, base)
    if _PLAN_CACHE.maxsize != CONFIG.plan_cache_size:
        _PLAN_CACHE.resize(CONFIG.plan_cache_size)
    plan = _PLAN_CACHE.get_or_compute(
        (key, target.epoch), lambda: compile_plan(key, target)
    )
    return plan, var_terms, bound_terms
