"""The join-plan homomorphism kernel.

The backtracking matcher of :mod:`repro.logic.homomorphisms` re-derives
atom order and candidate sets from scratch on every call.  This package
compiles a pattern once into a :class:`~repro.planner.plan.Plan` — a
join plan with a static atom order, per-atom candidate lists pruned by
semi-join (arc-consistency) passes, and a decomposition into connected
components — caches the plan in an LRU keyed on the pattern's canonical
form and the target's epoch, and evaluates it with early projection and
an existence-only mode.

Dispatch lives in :func:`repro.logic.homomorphisms.homomorphisms`
behind ``CONFIG.join_kernel``; the old matcher remains both the
fallback and the differential-testing oracle.
"""

from .plan import Plan, canonicalize, compile_plan, plan_for
from .evaluate import kernel_has_homomorphism, kernel_homomorphisms
from .vectorized import (
    VectorPlan,
    compile_vector_plan,
    vector_has_homomorphism,
    vector_homomorphisms,
    vector_query_tuples,
)
from .warm import collect_warm_keys, warm_plan_caches

__all__ = [
    "Plan",
    "VectorPlan",
    "canonicalize",
    "collect_warm_keys",
    "compile_plan",
    "compile_vector_plan",
    "plan_for",
    "kernel_has_homomorphism",
    "kernel_homomorphisms",
    "vector_has_homomorphism",
    "vector_homomorphisms",
    "vector_query_tuples",
    "warm_plan_caches",
]
