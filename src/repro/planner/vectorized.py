"""Vectorized join-plan execution over the columnar backend.

This module is the int-space twin of :mod:`repro.planner.evaluate`.
The canonical pattern keys, semi-join pruning, connected-component
decomposition and greedy join order are shared with the object plan
compiler (:mod:`repro.planner.plan`); what changes is the execution
substrate:

* candidates are **row numbers** into a
  :class:`~repro.data.columnar.ColumnarRelation`, prefiltered through
  the store's per-position hash indexes;
* semi-join pruning intersects **sets of ints** instead of sets of
  terms;
* enumeration is a level-wise **hash join** on int columns, with
  projection pushdown: positions no later atom or projection needs are
  dropped (and the partial deduplicated) as soon as they die, so a
  projected query never materializes the full cross-product of its
  intermediate bindings;
* the existence mode backtracks over int rows and never allocates a
  binding tuple.

Ids cross back into :class:`~repro.data.terms.Term` space exactly once,
when a solution is emitted as a :class:`Substitution` — the result
boundary.  The substitutions yielded are equal (as values) to the ones
the object kernel yields for the same call, though not necessarily in
the same order.

Compiled vector plans live in their own LRU, keyed like object plans
on ``(canonical key, target epoch)``.
"""

from __future__ import annotations

from itertools import product
from typing import TYPE_CHECKING, Iterable, Iterator, Mapping, Optional, Sequence

from ..data.atoms import Atom
from ..data.columnar import ColumnarRelation, ColumnarStore
from ..data.substitutions import Substitution
from ..data.terms import Term
from ..engine.cache import PartitionedLRUCache
from ..engine.config import CONFIG
from ..observability.metrics import METRICS
from ..observability.spans import TRACER
from .plan import _ARC_PASSES, _connected_components, _join_order, canonicalize

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from ..data.instances import Instance
    from ..resilience import Deadline

_VECTOR_PLAN_CACHE = PartitionedLRUCache("vector_plan", maxsize=512)

#: Sentinel id for a bound value that was never interned: no column can
#: hold it, so every comparison against it fails (bound ids are only
#: ever compared to column values, never to each other).
_UNKNOWN = -1


class _Meter:
    """Batched deadline accounting, one tick per candidate row visited.

    Ticks accumulate and are charged in batches of 32 to keep the
    per-row overhead negligible; :meth:`flush` charges the remainder at
    component boundaries so small components (under one batch of rows)
    still count against the step budget.  :meth:`charge_rows` feeds the
    deadline's *memory* estimate from the materialized intermediate
    sizes — the only allocations in this kernel that can grow beyond
    the input.
    """

    __slots__ = ("deadline", "pending")

    def __init__(self, deadline: Optional["Deadline"]):
        self.deadline = deadline
        self.pending = 0

    def tick(self, amount: int = 1) -> None:
        if self.deadline is None:
            return
        self.pending += amount
        if self.pending >= 32:
            self.deadline.step(self.pending, "join kernel")
            self.pending = 0

    def flush(self) -> None:
        if self.deadline is not None and self.pending:
            self.deadline.step(self.pending, "join kernel")
            self.pending = 0

    def charge_rows(self, count: int, width: int) -> None:
        """Charge ``count`` materialized int tuples of ``width`` slots."""
        if self.deadline is not None and count:
            # CPython small-tuple overhead is ~56 bytes + 8 per slot.
            self.deadline.charge_memory(count * (56 + 8 * width), "join kernel")


class VectorAtom:
    """One pattern atom bound to a columnar relation and its row pool."""

    __slots__ = ("relation", "slots", "rel", "rows", "var_slots", "bound_slots", "probe", "groups")

    def __init__(self, relation: str, slots: tuple, rel: Optional[ColumnarRelation]):
        self.relation = relation
        self.slots = slots
        self.rel = rel
        seen: dict[int, int] = {}
        #: ``[(position, var id)]`` with repeated variables listed once.
        self.var_slots = [
            (i, s[1])
            for i, s in enumerate(slots)
            if s[0] == "v" and seen.setdefault(s[1], i) == i
        ]
        self.bound_slots = [(i, s[1]) for i, s in enumerate(slots) if s[0] == "b"]
        self.rows: tuple[int, ...] = ()
        #: ``None`` (scan) or ``(kind, position, id)`` with kind "v"/"b".
        self.probe = None
        self.groups: Optional[dict[int, tuple[int, ...]]] = None

    # ``candidates``/``var_ids``/``has_bound`` give this class the same
    # shape the shared ordering helpers of :mod:`repro.planner.plan`
    # expect from a PlanAtom.
    @property
    def candidates(self) -> tuple[int, ...]:
        return self.rows

    @property
    def var_ids(self) -> set[int]:
        return {vid for _, vid in self.var_slots}

    @property
    def has_bound(self) -> bool:
        return bool(self.bound_slots)


class VectorComponent:
    """A connected component: atoms in join order plus its variable ids."""

    __slots__ = ("atoms", "var_ids")

    def __init__(self, atoms: list[VectorAtom], var_ids: tuple[int, ...]):
        self.atoms = atoms
        self.var_ids = var_ids


class VectorPlan:
    """A compiled pattern over one columnar store, per target epoch."""

    __slots__ = ("key", "components", "bound_checks", "num_vars", "satisfiable")

    def __init__(self, key, components, bound_checks, num_vars, satisfiable):
        self.key = key
        self.components = components
        self.bound_checks = bound_checks
        self.num_vars = num_vars
        self.satisfiable = satisfiable


def _prefilter_rows(
    rel: ColumnarRelation, slots: tuple, store: ColumnarStore
) -> tuple[int, ...]:
    """Rows passing rigid slots and intra-atom repetitions.

    The int-space twin of the object compiler's ``_prefilter``: start
    from the most selective rigid index bucket, then check the
    remaining rigid positions and repeated mappable slots.
    """
    table = store.table
    pool = None
    rigid: list[tuple[int, int]] = []
    for i, slot in enumerate(slots):
        if slot[0] == "r":
            tid = table.id_of(slot[1])
            if tid is None:
                return ()
            rigid.append((i, tid))
            found = rel.rows_matching(i, tid)
            if pool is None or len(found) < len(pool):
                pool = found
                if not pool:
                    return ()
    if pool is None:
        pool = range(rel.size)
    first_of: dict[tuple, int] = {}
    repeats: list[tuple[int, int]] = []
    for i, slot in enumerate(slots):
        if slot[0] == "r":
            continue
        j = first_of.setdefault(slot, i)
        if j != i:
            repeats.append((j, i))
    METRICS.inc("columnar_rows_scanned", len(pool))
    cols = rel.columns
    if not rigid and not repeats:
        return tuple(pool)
    kept = []
    for r in pool:
        if any(cols[i][r] != tid for i, tid in rigid):
            continue
        if any(cols[j][r] != cols[i][r] for j, i in repeats):
            continue
        kept.append(r)
    return tuple(kept)


def _prune_row_domains(atoms: list[VectorAtom]) -> int:
    """Semi-join pruning over int value sets, to a bounded fixpoint."""
    pruned = 0
    for _ in range(_ARC_PASSES):
        domains: dict[int, set[int]] = {}
        for atom in atoms:
            cols = atom.rel.columns
            for i, vid in atom.var_slots:
                col = cols[i]
                values = {col[r] for r in atom.rows}
                narrowed = domains.get(vid)
                domains[vid] = values if narrowed is None else narrowed & values
        changed = False
        for atom in atoms:
            cols = atom.rel.columns
            kept = tuple(
                r
                for r in atom.rows
                if all(cols[i][r] in domains[vid] for i, vid in atom.var_slots)
            )
            if len(kept) < len(atom.rows):
                pruned += len(atom.rows) - len(kept)
                atom.rows = kept
                changed = True
        if not changed:
            break
    return pruned


def _attach_row_probe(atom: VectorAtom, bound_vars: set[int]) -> None:
    """Pick the probe slot and group the rows by its column value."""
    probe = None
    for i, slot in enumerate(atom.slots):
        if slot[0] == "v" and slot[1] in bound_vars:
            probe = ("v", i, slot[1])
            break
    if probe is None:
        for i, slot in enumerate(atom.slots):
            if slot[0] == "b":
                probe = ("b", i, slot[1])
                break
    if probe is None:
        return
    col = atom.rel.columns[probe[1]]
    groups: dict[int, list[int]] = {}
    for r in atom.rows:
        groups.setdefault(col[r], []).append(r)
    atom.probe = probe
    atom.groups = {value: tuple(rs) for value, rs in groups.items()}


def _row_exists(rel: ColumnarRelation, ids: list[int]) -> bool:
    """Whether the fully-determined row ``ids`` occurs in the relation."""
    rows = rel.rows_matching(0, ids[0])
    if not rows:
        return False
    cols = rel.columns
    for r in rows:
        if all(cols[i][r] == ids[i] for i in range(1, len(ids))):
            return True
    return False


def _rigid_check(store: ColumnarStore, relation: str, slots: tuple) -> bool:
    """Membership of a variable-free, bound-free atom, in int space."""
    rel = store.get(relation, len(slots))
    if rel is None:
        return False
    ids = []
    for _, term in slots:
        tid = store.table.id_of(term)
        if tid is None:
            return False
        ids.append(tid)
    return _row_exists(rel, ids)


def compile_vector_plan(key: tuple, store: ColumnarStore) -> VectorPlan:
    """Compile a canonical pattern key against a columnar store."""
    with TRACER.span("planner.vector_compile", aggregate=True):
        return _compile_vector_plan(key, store)


def _compile_vector_plan(key: tuple, store: ColumnarStore) -> VectorPlan:
    METRICS.inc("vector_plans_compiled")
    satisfiable = True
    bound_checks = []
    var_atoms: list[VectorAtom] = []
    num_vars = 0
    for relation, slots in key:
        for slot in slots:
            if slot[0] == "v":
                num_vars = max(num_vars, slot[1] + 1)
        if not any(slot[0] == "v" for slot in slots):
            if any(slot[0] == "b" for slot in slots):
                bound_checks.append((relation, slots))
            elif not _rigid_check(store, relation, slots):
                satisfiable = False
            continue
        rel = store.get(relation, len(slots))
        atom = VectorAtom(relation, slots, rel)
        if rel is not None:
            atom.rows = _prefilter_rows(rel, slots, store)
        if not atom.rows:
            satisfiable = False
        var_atoms.append(atom)
    if satisfiable:
        METRICS.inc("plan_domains_pruned", _prune_row_domains(var_atoms))
        if any(not atom.rows for atom in var_atoms):
            satisfiable = False
    components = []
    if satisfiable:
        for group in _connected_components(var_atoms):
            ordered = _join_order(group)
            bound_vars: set[int] = set()
            for atom in ordered:
                _attach_row_probe(atom, bound_vars)
                bound_vars |= atom.var_ids
            components.append(VectorComponent(ordered, tuple(sorted(bound_vars))))
    return VectorPlan(key, tuple(components), tuple(bound_checks), num_vars, satisfiable)


def _passes_bound_checks(
    plan: VectorPlan, store: ColumnarStore, bound_ids: list[int]
) -> bool:
    """Instantiate and test the plan's variable-free membership checks."""
    table = store.table
    for relation, slots in plan.bound_checks:
        rel = store.get(relation, len(slots))
        if rel is None:
            return False
        ids = []
        for slot in slots:
            if slot[0] == "r":
                tid = table.id_of(slot[1])
                if tid is None:
                    return False
                ids.append(tid)
            else:
                ids.append(bound_ids[slot[1]])
        if not _row_exists(rel, ids):
            return False
    return True


def _vector_prepare(pattern, target, store, base, frozen):
    key, var_terms, bound_terms = canonicalize(pattern, frozen, base)
    if _VECTOR_PLAN_CACHE.maxsize != CONFIG.plan_cache_size:
        _VECTOR_PLAN_CACHE.resize(CONFIG.plan_cache_size)
    plan = _VECTOR_PLAN_CACHE.get_or_compute(
        (key, target.epoch), lambda: compile_vector_plan(key, store)
    )
    id_of = store.table.id_of
    bound_ids = []
    for term in bound_terms:
        tid = id_of(base[term])
        bound_ids.append(_UNKNOWN if tid is None else tid)
    return plan, var_terms, bound_ids


def _component_rows(
    component: VectorComponent,
    bound_ids: list[int],
    meter: _Meter,
    target_vids: Sequence[int],
) -> list[tuple[int, ...]]:
    """Distinct solutions over ``target_vids``, via level-wise hash joins.

    Projection pushdown: after each atom, partial-tuple positions whose
    variable is neither in ``target_vids`` nor used by a later atom are
    dropped and the partial deduplicated, so projected queries stay
    linear in the output instead of the intermediate join size.
    """
    METRICS.inc("plan_components_evaluated")
    atoms = component.atoms
    target_set = set(target_vids)
    # Variables needed strictly after each atom (for pushdown).
    needed_after: list[set[int]] = [set(target_set) for _ in atoms]
    future: set[int] = set(target_set)
    for idx in range(len(atoms) - 1, -1, -1):
        needed_after[idx] = set(future)
        future |= atoms[idx].var_ids
    pos_of: dict[int, int] = {}
    order: list[int] = []  # vid held at each partial-tuple position
    partial: list[tuple[int, ...]] = [()]
    for idx, atom in enumerate(atoms):
        cols = atom.rel.columns
        join: list[tuple[int, int]] = []  # (partial position, column)
        new_slots: list[tuple[int, int]] = []  # (column, vid)
        for i, vid in atom.var_slots:
            at = pos_of.get(vid)
            if at is None:
                new_slots.append((i, vid))
            else:
                join.append((at, i))
        checks = list(atom.bound_slots)
        probe = atom.probe
        rows: Iterable[int]
        if probe is not None and probe[0] == "b":
            rows = atom.groups.get(bound_ids[probe[2]], ())
            checks = [(i, bid) for i, bid in checks if i != probe[1]]
        else:
            rows = atom.rows
        # Existence join: when none of the atom's fresh variables are
        # needed later (nor projected), any one matching row justifies
        # the partial — probe for the first match instead of fanning
        # out ``degree`` continuations that the pushdown would merge
        # right back together.
        live = needed_after[idx]
        semi = all(vid not in live for _, vid in new_slots)
        next_partial: list[tuple[int, ...]] = []
        if probe is not None and probe[0] == "v":
            # Join through the probe's value → rows index.
            groups = atom.groups
            ppos = pos_of[probe[2]]
            other_join = [(at, i) for at, i in join if i != probe[1]]
            for t in partial:
                for r in groups.get(t[ppos], ()):
                    meter.tick()
                    if any(cols[i][r] != t[at] for at, i in other_join):
                        continue
                    if any(cols[i][r] != bound_ids[bid] for i, bid in checks):
                        continue
                    if semi:
                        next_partial.append(t)
                        break
                    next_partial.append(
                        t + tuple(cols[i][r] for i, _ in new_slots)
                    )
        elif join and semi:
            # Semi-join: membership of the partial's join key suffices.
            keys: set[tuple[int, ...]] = set()
            for r in rows:
                meter.tick()
                if any(cols[i][r] != bound_ids[bid] for i, bid in checks):
                    continue
                keys.add(tuple(cols[i][r] for _, i in join))
            next_partial = [
                t for t in partial if tuple(t[at] for at, _ in join) in keys
            ]
        elif join:
            # Hash the rows on the joined columns, probe with partials.
            rindex: dict[tuple[int, ...], list[tuple[int, ...]]] = {}
            for r in rows:
                meter.tick()
                if any(cols[i][r] != bound_ids[bid] for i, bid in checks):
                    continue
                rindex.setdefault(
                    tuple(cols[i][r] for _, i in join), []
                ).append(tuple(cols[i][r] for i, _ in new_slots))
            for t in partial:
                got = rindex.get(tuple(t[at] for at, _ in join))
                if got:
                    for nv in got:
                        next_partial.append(t + nv)
        else:
            # First atom of the component: no shared variables yet.
            fresh = []
            for r in rows:
                meter.tick()
                if all(cols[i][r] == bound_ids[bid] for i, bid in checks):
                    fresh.append(tuple(cols[i][r] for i, _ in new_slots))
            next_partial = [t + nv for t in partial for nv in fresh]
        if not next_partial:
            return []
        for i, vid in new_slots:
            pos_of[vid] = len(order)
            order.append(vid)
        # Projection pushdown: drop dead positions, dedup survivors.
        live = needed_after[idx]
        keep = [p for p, vid in enumerate(order) if vid in live]
        if len(keep) < len(order):
            order = [order[p] for p in keep]
            pos_of = {vid: p for p, vid in enumerate(order)}
            next_partial = list({tuple(t[p] for p in keep) for t in next_partial})
        partial = next_partial
        meter.charge_rows(len(partial), len(order))
    meter.flush()
    out = [pos_of[vid] for vid in target_vids]
    if out == list(range(len(order))) and len(order) == len(target_vids):
        return partial
    return [tuple(t[p] for p in out) for t in partial]


def _candidate_rows(atom: VectorAtom, binding: dict[int, int], bound_ids):
    probe = atom.probe
    if probe is None:
        return iter(atom.rows)
    kind, _, idx = probe
    value = binding[idx] if kind == "v" else bound_ids[idx]
    return iter(atom.groups.get(value, ()))


def _component_exists(
    component: VectorComponent, bound_ids: list[int], meter: _Meter
) -> bool:
    """First-solution existence check: int backtracking, no tuples built."""
    METRICS.inc("plan_components_evaluated")
    atoms = component.atoms
    binding: dict[int, int] = {}
    depth = 0
    iters = [_candidate_rows(atoms[0], binding, bound_ids)] + [None] * (
        len(atoms) - 1
    )
    undos: list[list[int]] = [[] for _ in atoms]
    while True:
        atom = atoms[depth]
        for vid in undos[depth]:
            del binding[vid]
        undos[depth] = []
        cols = atom.rel.columns
        matched = False
        for r in iters[depth]:
            meter.tick()
            undo: list[int] = []
            ok = True
            for i, vid in atom.var_slots:
                value = cols[i][r]
                current = binding.get(vid)
                if current is None:
                    binding[vid] = value
                    undo.append(vid)
                elif current != value:
                    ok = False
                    break
            if ok:
                for i, bid in atom.bound_slots:
                    if cols[i][r] != bound_ids[bid]:
                        ok = False
                        break
            if not ok:
                for vid in undo:
                    del binding[vid]
                continue
            undos[depth] = undo
            matched = True
            break
        if not matched:
            depth -= 1
            if depth < 0:
                return False
            continue
        if depth + 1 == len(atoms):
            return True
        depth += 1
        iters[depth] = _candidate_rows(atoms[depth], binding, bound_ids)


def _stream_component(component, bound_ids, var_terms, project_set, meter):
    """One component's solutions as (pattern terms, int-tuple iterable)."""
    if project_set is None:
        terms = tuple(var_terms[vid] for vid in component.var_ids)
        return terms, _component_rows(
            component, bound_ids, meter, component.var_ids
        )
    keep = [
        i
        for i, vid in enumerate(component.var_ids)
        if var_terms[vid] in project_set
    ]
    if not keep:
        if _component_exists(component, bound_ids, meter):
            METRICS.inc("plan_existence_shortcircuits")
            return (), [()]
        return (), []
    target_vids = [component.var_ids[i] for i in keep]
    terms = tuple(var_terms[vid] for vid in target_vids)
    return terms, _component_rows(component, bound_ids, meter, target_vids)


def vector_has_homomorphism(
    pattern: Sequence[Atom],
    target: "Instance",
    store: ColumnarStore,
    *,
    base: Optional[Mapping[Term, Term]] = None,
    frozen: frozenset[Term] = frozenset(),
    deadline: Optional["Deadline"] = None,
) -> bool:
    """Existence-only vectorized evaluation (first solution per component)."""
    plan, _, bound_ids = _vector_prepare(pattern, target, store, base or {}, frozen)
    if not plan.satisfiable or not _passes_bound_checks(plan, store, bound_ids):
        return False
    meter = _Meter(deadline)
    with TRACER.span("planner.vector_execute", aggregate=True):
        try:
            for component in plan.components:
                if not _component_exists(component, bound_ids, meter):
                    return False
                METRICS.inc("plan_existence_shortcircuits")
            return True
        finally:
            meter.flush()


def vector_query_tuples(
    pattern: Sequence[Atom],
    target: "Instance",
    store: ColumnarStore,
    head_vars: Sequence[Term],
    deadline: Optional["Deadline"] = None,
) -> Optional[set[tuple[Term, ...]]]:
    """``Q(I)`` as a set of head-variable tuples, fully in int space.

    The per-answer :class:`Substitution` of the homomorphism interface
    is pure overhead for conjunctive-query evaluation — the caller
    immediately re-projects it onto the head variables.  This entry
    point joins, projects and deduplicates in int space and decodes
    straight into answer tuples, so a query with 10⁶ answers allocates
    one tuple per answer and nothing else.  Returns ``None`` when a
    head variable is not covered by the plan's components (the caller
    falls back to the general path).
    """
    pattern = list(pattern)
    plan, var_terms, bound_ids = _vector_prepare(
        pattern, target, store, {}, frozenset()
    )
    if not plan.satisfiable or not _passes_bound_checks(plan, store, bound_ids):
        return set()
    project_set = set(head_vars)
    meter = _Meter(deadline)
    decode = store.table.term
    solved: list[tuple[tuple[Term, ...], list[tuple[int, ...]]]] = []
    with TRACER.span("planner.vector_execute", aggregate=True):
        for component in plan.components:
            terms, tuples = _stream_component(
                component, bound_ids, var_terms, project_set, meter
            )
            if not tuples:
                meter.flush()
                return set()
            solved.append((terms, tuples))
    position: dict[Term, int] = {}
    for terms, _ in solved:
        for term in terms:
            position.setdefault(term, len(position))
    if any(v not in position for v in head_vars):
        meter.flush()
        return None
    order = [position[v] for v in head_vars]
    lists = [tuples for _, tuples in solved]
    answers: set[tuple[Term, ...]] = set()
    explored = 0
    if len(lists) == 1:
        explored = len(lists[0])
        meter.tick(explored)
        for values in lists[0]:
            answers.add(tuple(decode(values[i]) for i in order))
    else:
        # The cross product of component solutions can dwarf any single
        # component: meter every combination and its materialization.
        for combo in product(*lists):
            explored += 1
            meter.tick()
            values = tuple(v for vs in combo for v in vs)
            answers.add(tuple(decode(values[i]) for i in order))
    meter.flush()
    meter.charge_rows(len(answers), len(order))
    METRICS.inc("homomorphisms_explored", explored)
    return answers


def vector_homomorphisms(
    pattern: Sequence[Atom],
    target: "Instance",
    store: ColumnarStore,
    *,
    base: Optional[Mapping[Term, Term]] = None,
    frozen: frozenset[Term] = frozenset(),
    deadline: Optional["Deadline"] = None,
    project: Optional[Iterable[Term]] = None,
) -> Iterator[Substitution]:
    """All homomorphisms from ``pattern`` into ``target``, vectorized.

    Yields the same substitution set as the object kernel and the
    backtracking matcher (restricted to ``project`` when given); only
    the enumeration order may differ.
    """
    base_map = dict(base) if base else {}
    project_set = None if project is None else set(project)
    kept_base = (
        base_map
        if project_set is None
        else {k: v for k, v in base_map.items() if k in project_set}
    )
    plan, var_terms, bound_ids = _vector_prepare(
        pattern, target, store, base_map, frozen
    )
    if not plan.satisfiable or not _passes_bound_checks(plan, store, bound_ids):
        return
    meter = _Meter(deadline)
    decode = store.table.term
    solved: list[tuple[tuple[Term, ...], list[tuple[int, ...]]]] = []
    with TRACER.span("planner.vector_execute", aggregate=True):
        for component in plan.components:
            terms, tuples = _stream_component(
                component, bound_ids, var_terms, project_set, meter
            )
            if not tuples:
                meter.flush()
                return
            solved.append((terms, tuples))
    if not solved:
        meter.flush()
        METRICS.inc("homomorphisms_explored")
        yield Substitution(kept_base)
        return
    all_terms = tuple(term for terms, _ in solved for term in terms)
    lists = [tuples for _, tuples in solved]
    for combo in product(*lists):
        meter.tick()
        raw = dict(kept_base)
        raw.update(
            zip(all_terms, (decode(v) for values in combo for v in values))
        )
        METRICS.inc("homomorphisms_explored")
        yield Substitution(raw)
    meter.flush()
