"""Human-readable diagnostics for recovery decisions.

The library's predicates answer *whether* (`is_recovery`,
`is_valid_for_recovery`); this module answers *why not*, which is what
an operator debugging a failed restore actually needs:

* :func:`explain_recovery` — why a candidate source instance is or is
  not a recovery of a target: the violated triggers (model failures),
  the uncovered target facts (justification failures), or the minimal
  solution witnessing success.
* :func:`explain_validity` — why a target is or is not valid for
  recovery: the uncoverable facts, the subsumption constraints that
  refute every covering, or a witness recovery.

Both return small result objects whose ``str()`` is a report; the CLI's
``validate`` command uses the same building blocks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from .chase.standard import violated_triggers
from .core.covers import coverage_index, is_coverable
from .core.hom_sets import hom_set
from .core.inverse_chase import inverse_chase_candidates
from .core.semantics import is_justified
from .core.subsumption import minimal_subsumers, models_all
from .data.atoms import Atom
from .data.instances import Instance
from .data.substitutions import Substitution
from .logic.tgds import TGD, Mapping


@dataclass(frozen=True)
class RecoveryExplanation:
    """The verdict on one candidate source instance."""

    is_recovery: bool
    #: Triggers of the source whose head has no witness in the target.
    violations: list[tuple[TGD, Substitution]] = field(default_factory=list)
    #: Whether the target failed the justification condition
    #: (Definition 2's homomorphism into a minimal solution).
    unjustified: bool = False

    def __str__(self) -> str:
        if self.is_recovery:
            return "the candidate is a recovery: it is a model with the target and justifies every target fact"
        lines = ["the candidate is NOT a recovery:"]
        for tgd, binding in self.violations:
            lines.append(
                f"  - firing {tgd.name or tgd!r} with {binding} requires target "
                "facts that are absent"
            )
        if self.unjustified:
            lines.append(
                "  - the target does not map into any minimal solution of the "
                "candidate: some target fact is unexplained or witnesses conflict"
            )
        return "\n".join(lines)


def explain_recovery(
    mapping: Mapping, source: Instance, target: Instance
) -> RecoveryExplanation:
    """Diagnose Definition 3 membership for a candidate source instance."""
    violations = violated_triggers(source, target, mapping)
    if violations:
        return RecoveryExplanation(False, violations=violations)
    if is_justified(mapping, source, target):
        return RecoveryExplanation(True)
    return RecoveryExplanation(False, unjustified=True)


@dataclass(frozen=True)
class ValidityExplanation:
    """The verdict on a target instance."""

    is_valid: bool
    witness: Optional[Instance] = None
    #: Facts no homomorphism of HOM(Sigma, J) covers.
    uncoverable: list[Atom] = field(default_factory=list)
    #: Whether coverings exist but every one is refuted by SUB(Sigma)
    #: or by the justification gate.
    coverings_refuted: bool = False

    def __str__(self) -> str:
        if self.is_valid:
            return f"valid for recovery; witness source: {self.witness!r}"
        lines = ["NOT valid for recovery:"]
        for fact in self.uncoverable:
            lines.append(
                f"  - {fact} cannot be produced by any rule application "
                "(wrong relation, or the rule's other effects are absent)"
            )
        if self.coverings_refuted:
            lines.append(
                "  - every covering of the target is refuted: recovering its "
                "facts would force forward consequences the target lacks"
            )
        return "\n".join(lines)


def explain_validity(
    mapping: Mapping,
    target: Instance,
    *,
    max_covers: Optional[int] = 2000,
) -> ValidityExplanation:
    """Diagnose the J-validity decision (Theorem 3)."""
    if target.is_empty:
        return ValidityExplanation(True, witness=Instance.empty())
    homs = hom_set(mapping, target)
    index = coverage_index(homs, target)
    uncoverable = sorted(
        fact for fact, coverers in index.items() if not coverers
    )
    if uncoverable:
        return ValidityExplanation(False, uncoverable=uncoverable)
    for candidate in inverse_chase_candidates(
        mapping, target, max_covers=max_covers
    ):
        return ValidityExplanation(True, witness=candidate.recovery)
    return ValidityExplanation(False, coverings_refuted=True)
