"""Tuple-generating dependencies and schema mappings.

A source-to-target tgd (s-t tgd) is a first-order sentence

    forall x,y ( alpha(x, y)  ->  exists z  beta(x, z) )

where ``alpha`` (the *body*) is a conjunction of source atoms and
``beta`` (the *head*) a conjunction of target atoms.  We represent the
quantifier structure implicitly through variable occurrence:

* *frontier* variables ``x`` occur in both body and head,
* *body-only* variables ``y`` occur only in the body, and
* *existential* variables ``z`` occur only in the head.

A tgd is **full** when it has no existential variables and
**quasi-guarded** when it has no body-only variables (paper, §2).  The
*reverse* of a tgd swaps body and head, so body-only variables become
existential — reversing a quasi-guarded tgd yields a full tgd.

A :class:`Mapping` bundles the source schema, the target schema and a
set of s-t tgds, enforcing the paper's standing assumptions: disjoint
schemas, and no two tgds sharing a variable (tgds are renamed apart on
construction when necessary).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional, Sequence

from ..data.atoms import Atom, atoms_variables
from ..data.schema import Schema, ensure_disjoint
from ..data.substitutions import Substitution
from ..data.terms import Term, Variable
from ..errors import DependencyError


class TGD:
    """An immutable tuple-generating dependency ``body -> head``."""

    __slots__ = ("_body", "_head", "_name", "_hash")

    def __init__(
        self,
        body: Sequence[Atom],
        head: Sequence[Atom],
        name: Optional[str] = None,
    ):
        body = tuple(body)
        head = tuple(head)
        if not body:
            raise DependencyError("a tgd must have a non-empty body")
        if not head:
            raise DependencyError("a tgd must have a non-empty head")
        for atom_ in body + head:
            if atom_.nulls:
                raise DependencyError(
                    f"tgds may not contain nulls, found {atom_}"
                )
        object.__setattr__(self, "_body", body)
        object.__setattr__(self, "_head", head)
        object.__setattr__(self, "_name", name)
        object.__setattr__(self, "_hash", hash((body, head)))

    # -- structure ------------------------------------------------------------

    @property
    def body(self) -> tuple[Atom, ...]:
        """The body conjunction ``alpha`` (paper: ``body(xi)``)."""
        return self._body

    @property
    def head(self) -> tuple[Atom, ...]:
        """The head conjunction ``beta`` (paper: ``head(xi)``)."""
        return self._head

    @property
    def name(self) -> Optional[str]:
        """Optional identifier used in printed output (e.g. ``xi1``)."""
        return self._name

    @property
    def body_variables(self) -> set[Variable]:
        return atoms_variables(self._body)

    @property
    def head_variables(self) -> set[Variable]:
        return atoms_variables(self._head)

    @property
    def variables(self) -> set[Variable]:
        """``vars(xi)``: all variables of the dependency."""
        return self.body_variables | self.head_variables

    @property
    def frontier_variables(self) -> set[Variable]:
        """Variables shared by body and head (the ``x`` of the paper)."""
        return self.body_variables & self.head_variables

    @property
    def existential_variables(self) -> set[Variable]:
        """Head-only variables (the ``z`` of the paper)."""
        return self.head_variables - self.body_variables

    @property
    def body_only_variables(self) -> set[Variable]:
        """Body-only variables (the ``y`` of the paper)."""
        return self.body_variables - self.head_variables

    @property
    def is_full(self) -> bool:
        """True when the tgd has no existential variables."""
        return not self.existential_variables

    @property
    def is_quasi_guarded(self) -> bool:
        """True when the tgd has no body-only variables."""
        return not self.body_only_variables

    @property
    def body_relations(self) -> frozenset[str]:
        return frozenset(a.relation for a in self._body)

    @property
    def head_relations(self) -> frozenset[str]:
        return frozenset(a.relation for a in self._head)

    # -- transformation ---------------------------------------------------------

    def reverse(self) -> "TGD":
        """The reverse tgd ``xi^{-1}`` (head becomes body and vice versa)."""
        name = f"{self._name}^-1" if self._name else None
        return TGD(self._head, self._body, name=name)

    def rename_variables(self, renaming: Substitution) -> "TGD":
        """Apply a variable renaming to body and head."""
        if not renaming.is_variable_renaming:
            raise DependencyError("tgd renaming must be an injective variable map")
        return TGD(
            renaming.apply_atoms(self._body),
            renaming.apply_atoms(self._head),
            name=self._name,
        )

    def rename_apart(self, taken: set[Variable], suffix: str) -> "TGD":
        """Rename variables clashing with ``taken`` by appending ``suffix``."""
        clashes = self.variables & taken
        if not clashes:
            return self
        mapping: dict[Term, Term] = {}
        existing = self.variables | taken
        for var in sorted(clashes):
            candidate = Variable(f"{var.name}{suffix}")
            bump = 0
            while candidate in existing:
                bump += 1
                candidate = Variable(f"{var.name}{suffix}_{bump}")
            mapping[var] = candidate
            existing.add(candidate)
        return self.rename_variables(Substitution(mapping))

    def with_name(self, name: str) -> "TGD":
        return TGD(self._body, self._head, name=name)

    # -- dunder ----------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TGD):
            return NotImplemented
        return self._body == other._body and self._head == other._head

    def __reduce__(self):
        return (TGD, (self._body, self._head, self._name))

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        label = f"{self._name}: " if self._name else ""
        body = ", ".join(str(a) for a in self._body)
        head = ", ".join(str(a) for a in self._head)
        return f"{label}{body} -> {head}"

    def __setattr__(self, name, value):  # pragma: no cover - guard
        raise AttributeError("TGD is immutable")


class Mapping:
    """A data-exchange mapping ``M = (S, T, Sigma)``.

    ``Sigma`` is a finite set of s-t tgds.  The constructor renames
    tgds apart (no shared variables, paper's standing assumption) and
    assigns default names ``xi1, xi2, ...`` to unnamed dependencies.
    Schemas may be supplied explicitly; otherwise they are inferred
    from the dependencies.
    """

    __slots__ = ("_tgds", "_source_schema", "_target_schema")

    def __init__(
        self,
        tgds: Iterable[TGD],
        source_schema: Optional[Schema] = None,
        target_schema: Optional[Schema] = None,
    ):
        renamed: list[TGD] = []
        taken: set[Variable] = set()
        for i, tgd in enumerate(tgds, start=1):
            tgd = tgd.rename_apart(taken, suffix=f"#{i}")
            if tgd.name is None:
                tgd = tgd.with_name(f"xi{i}")
            taken |= tgd.variables
            renamed.append(tgd)
        if not renamed:
            raise DependencyError("a mapping needs at least one tgd")
        names = [t.name for t in renamed]
        if len(set(names)) != len(names):
            raise DependencyError(f"duplicate tgd names in mapping: {names}")

        body_atoms = [a for t in renamed for a in t.body]
        head_atoms = [a for t in renamed for a in t.head]
        if source_schema is None:
            source_schema = Schema.inferred_from_atoms(body_atoms)
        if target_schema is None:
            target_schema = Schema.inferred_from_atoms(head_atoms)
        ensure_disjoint(source_schema, target_schema)
        source_schema.validate_atoms(body_atoms)
        target_schema.validate_atoms(head_atoms)

        object.__setattr__(self, "_tgds", tuple(renamed))
        object.__setattr__(self, "_source_schema", source_schema)
        object.__setattr__(self, "_target_schema", target_schema)

    # -- access --------------------------------------------------------------------

    @property
    def tgds(self) -> tuple[TGD, ...]:
        return self._tgds

    @property
    def source_schema(self) -> Schema:
        return self._source_schema

    @property
    def target_schema(self) -> Schema:
        return self._target_schema

    def tgd_named(self, name: str) -> TGD:
        for tgd in self._tgds:
            if tgd.name == name:
                return tgd
        raise KeyError(f"no tgd named {name} in mapping")

    def __iter__(self) -> Iterator[TGD]:
        return iter(self._tgds)

    def __len__(self) -> int:
        return len(self._tgds)

    # -- properties of the dependency set --------------------------------------------

    @property
    def is_full(self) -> bool:
        """True when every tgd is full."""
        return all(t.is_full for t in self._tgds)

    @property
    def is_quasi_guarded(self) -> bool:
        """True when every tgd is quasi-guarded."""
        return all(t.is_quasi_guarded for t in self._tgds)

    @property
    def max_head_variables(self) -> int:
        """``k`` in the paper's complexity bounds."""
        return max(len(t.head_variables) for t in self._tgds)

    @property
    def max_body_variables(self) -> int:
        """``j`` in the paper's complexity bounds."""
        return max(len(t.body_variables) for t in self._tgds)

    # -- transformation -----------------------------------------------------------------

    def reversed_tgds(self) -> tuple[TGD, ...]:
        """``Sigma^{-1}``: every tgd with its arrow inverted."""
        return tuple(t.reverse() for t in self._tgds)

    @classmethod
    def parse(
        cls,
        text: str,
        source_schema: Optional[Schema] = None,
        target_schema: Optional[Schema] = None,
    ) -> "Mapping":
        """Parse a mapping from the textual DSL (see :mod:`repro.logic.parser`)."""
        from .parser import parse_tgds

        return cls(parse_tgds(text), source_schema, target_schema)

    def __repr__(self) -> str:
        inner = "; ".join(repr(t) for t in self._tgds)
        return f"Mapping[{inner}]"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Mapping):
            return NotImplemented
        return set(self._tgds) == set(other._tgds)

    def __hash__(self) -> int:
        return hash(frozenset(self._tgds))

    def __reduce__(self):
        # Reconstruction re-runs rename-apart, which is the identity on
        # an already renamed-apart tgd list, so the round trip is exact.
        return (Mapping, (self._tgds, self._source_schema, self._target_schema))

    def __setattr__(self, name, value):  # pragma: no cover - guard
        raise AttributeError("Mapping is immutable")
