"""Conjunctive-query containment and minimization.

Classic Chandra-Merlin machinery, used by the library to compare
queries across recovery methods and to present minimized queries:

* ``Q1 subseteq Q2`` iff there is a containment mapping from ``Q2``
  into the *canonical instance* of ``Q1`` (body frozen, head variables
  as distinguished constants);
* a CQ is minimized by computing the core of its body relative to the
  head variables.

For UCQs, ``U1 subseteq U2`` iff every disjunct of ``U1`` is contained
in some disjunct of ``U2`` (Sagiv-Yannakakis).
"""

from __future__ import annotations

from typing import Optional

from ..data.atoms import Atom
from ..data.instances import Instance
from ..data.terms import Constant, Null, Term, Variable
from ..logic.homomorphisms import has_homomorphism
from .queries import (
    ConjunctiveQuery,
    Query,
    UnionOfConjunctiveQueries,
    as_ucq,
)


def canonical_instance(query: ConjunctiveQuery) -> tuple[Instance, list[Constant]]:
    """The frozen body of ``query``.

    Head variables freeze to distinguished constants ``@h0, @h1, ...``
    (returned alongside), other variables to labeled nulls — the
    canonical database of the Chandra-Merlin test.
    """
    head_constants = [
        Constant(f"@h{i}") for i in range(len(query.head_vars))
    ]
    mapping: dict[Term, Term] = dict(zip(query.head_vars, head_constants))
    for var in sorted(query.variables):
        if var not in mapping:
            mapping[var] = Null(f"q_{var.name}")
    facts = [atom.apply(mapping) for atom in query.body]
    return Instance(facts), head_constants


def cq_contained_in(left: ConjunctiveQuery, right: ConjunctiveQuery) -> bool:
    """Whether ``left subseteq right`` (every answer of left is one of right)."""
    if left.arity != right.arity:
        return False
    frozen, head_constants = canonical_instance(left)
    base = dict(zip(right.head_vars, head_constants))
    try:
        # Existence-only: the kernel stops at the first solution per
        # plan component without materializing containment mappings.
        return has_homomorphism(right.body, frozen, base=base)
    except ValueError:
        return False


def cq_equivalent(left: ConjunctiveQuery, right: ConjunctiveQuery) -> bool:
    """Chandra-Merlin equivalence of two CQs."""
    return cq_contained_in(left, right) and cq_contained_in(right, left)


def ucq_contained_in(left: Query, right: Query) -> bool:
    """Sagiv-Yannakakis: every left disjunct below some right disjunct."""
    left_u, right_u = as_ucq(left), as_ucq(right)
    if left_u.arity != right_u.arity:
        return False
    return all(
        any(cq_contained_in(l, r) for r in right_u.disjuncts)
        for l in left_u.disjuncts
    )


def ucq_equivalent(left: Query, right: Query) -> bool:
    return ucq_contained_in(left, right) and ucq_contained_in(right, left)


def minimize_cq(query: ConjunctiveQuery) -> ConjunctiveQuery:
    """The minimal equivalent CQ (the core of the body).

    Repeatedly tries to drop a body atom while an equivalence-
    preserving folding of the remaining body exists; the result is
    unique up to variable renaming.
    """
    body = list(query.body)
    changed = True
    while changed:
        changed = False
        for i, dropped in enumerate(body):
            candidate = body[:i] + body[i + 1 :]
            if not candidate:
                continue
            remaining_vars = set()
            for atom in candidate:
                remaining_vars |= atom.variables
            if not set(query.head_vars) <= remaining_vars:
                continue  # dropping would orphan a head variable
            reduced = ConjunctiveQuery(query.head_vars, candidate)
            if cq_equivalent(query, reduced):
                body = candidate
                changed = True
                break
    return ConjunctiveQuery(query.head_vars, body, name=query.name)


def minimize_ucq(query: Query) -> UnionOfConjunctiveQueries:
    """Minimize each disjunct and drop disjuncts subsumed by others."""
    minimized = [minimize_cq(cq) for cq in as_ucq(query).disjuncts]
    kept: list[ConjunctiveQuery] = []
    for i, candidate in enumerate(minimized):
        redundant = False
        for j, other in enumerate(minimized):
            if i == j or not cq_contained_in(candidate, other):
                continue
            # Strictly larger disjunct, or an equivalent earlier one.
            if not cq_contained_in(other, candidate) or j < i:
                redundant = True
                break
        if not redundant:
            kept.append(candidate)
    return UnionOfConjunctiveQueries(kept, name=as_ucq(query).name)
