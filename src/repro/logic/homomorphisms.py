"""The homomorphism engine.

Almost every algorithm in the paper reduces to finding homomorphisms:
evaluating conjunctive queries, computing HOM(Sigma, J), checking
(I, J) |= Sigma, the final step of the inverse chase (homomorphisms
identity on dom(J)), and the glb soundness proofs.  This module
implements one backtracking matcher used for all of them.

A *pattern* is a conjunction of atoms whose arguments are constants,
nulls and variables.  The matcher maps every *mappable* term of the
pattern into the target instance; by default variables and nulls are
mappable and constants are rigid, matching the paper's definition of a
homomorphism ("identity on Cons").  Callers can freeze selected nulls
(treat them as rigid) to obtain homomorphisms that are the identity on
a chosen subdomain, which Definition 9 needs.

Two engines implement the search behind one interface.  The default
(``CONFIG.join_kernel``) compiles the pattern into a cached join plan
(see :mod:`repro.planner`) with static atom ordering, candidate-domain
pruning and early projection; the original backtracking matcher below
remains the fallback and the differential-testing oracle.  The
backtracking search uses dynamic most-constrained-atom-first ordering
backed by the per-position indexes of
:class:`~repro.data.instances.Instance`, so patterns with constants or
shared variables prune aggressively.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Iterator, Mapping, Optional, Sequence

from ..data.atoms import Atom
from ..data.instances import Instance
from ..data.substitutions import Substitution
from ..data.terms import Constant, Null, Term, Variable
from ..engine.config import CONFIG
from ..observability.metrics import METRICS
from ..planner.evaluate import kernel_has_homomorphism, kernel_homomorphisms

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from ..resilience import Deadline


def _mappable(term: Term, frozen: frozenset[Term]) -> bool:
    """Whether ``term`` may be remapped by the homomorphism being built."""
    if isinstance(term, Constant):
        return False
    return term not in frozen


def _match_atom(
    pattern: Atom,
    fact: Atom,
    binding: dict[Term, Term],
    frozen: frozenset[Term],
) -> Optional[list[Term]]:
    """Try to extend ``binding`` so the pattern atom maps onto ``fact``.

    Returns the list of newly-bound pattern terms (for backtracking), or
    ``None`` when the atoms cannot be matched under the binding.
    """
    if pattern.relation != fact.relation or pattern.arity != fact.arity:
        return None
    newly_bound: list[Term] = []
    for p_arg, f_arg in zip(pattern.args, fact.args):
        if _mappable(p_arg, frozen):
            bound = binding.get(p_arg)
            if bound is None:
                binding[p_arg] = f_arg
                newly_bound.append(p_arg)
            elif bound != f_arg:
                for term in newly_bound:
                    del binding[term]
                return None
        elif p_arg != f_arg:
            for term in newly_bound:
                del binding[term]
            return None
    return newly_bound


def _pick_next(
    remaining: list[Atom],
    target: Instance,
    binding: dict[Term, Term],
    frozen: frozenset[Term],
) -> tuple[int, frozenset[Atom]]:
    """Choose the remaining pattern atom with the fewest candidate facts."""
    best_index = 0
    best_candidates: Optional[frozenset[Atom]] = None
    for i, pattern in enumerate(remaining):
        candidates = target.candidates(
            pattern, binding, mappable=lambda term: _mappable(term, frozen)
        )
        if best_candidates is None or len(candidates) < len(best_candidates):
            best_index, best_candidates = i, candidates
            if not candidates:
                break
    assert best_candidates is not None
    return best_index, best_candidates


def _search(
    remaining: list[Atom],
    target: Instance,
    binding: dict[Term, Term],
    frozen: frozenset[Term],
    deadline: Optional["Deadline"] = None,
) -> Iterator[dict[Term, Term]]:
    """Iterative backtracking over the pattern atoms.

    An explicit stack replaces recursion so patterns with thousands of
    atoms (e.g. instance-level homomorphism checks) do not hit the
    interpreter's recursion limit.  Each frame holds the atoms still to
    match, an iterator over the candidate facts for the chosen atom,
    and the bindings to undo on backtrack.
    """
    if not remaining:
        METRICS.inc("homomorphisms_explored")
        yield dict(binding)
        return

    # The deterministic candidate order is a sort of the index's frozen
    # sets.  Backtracking recreates frames over the same candidate sets
    # many times, so the sort is memoized per search: frozensets cache
    # their hash, making them cheap dictionary keys.
    sort_cache: Optional[dict[frozenset[Atom], tuple[Atom, ...]]] = (
        {} if CONFIG.sort_cache else None
    )

    def ordered(candidates: frozenset[Atom]) -> tuple[Atom, ...]:
        if sort_cache is None:
            return tuple(sorted(candidates))
        presorted = sort_cache.get(candidates)
        if presorted is None:
            presorted = tuple(sorted(candidates))
            sort_cache[candidates] = presorted
        return presorted

    def make_frame(atoms: list[Atom]) -> list:
        index, candidates = _pick_next(atoms, target, binding, frozen)
        pattern = atoms[index]
        rest = atoms[:index] + atoms[index + 1 :]
        # frame = [pattern, rest, candidate iterator, undo list]
        return [pattern, rest, iter(ordered(candidates)), []]

    stack = [make_frame(remaining)]
    pending_steps = 0
    while stack:
        if deadline is not None:
            # The matcher is the innermost loop of every NP-hard path,
            # so this is where cooperative cancellation gains its
            # responsiveness — but a Python call per frame visit costs
            # more than the visit itself.  Batch: charge 32 steps every
            # 32 frames, keeping the overhead of a never-tripping
            # deadline to a local integer increment per node.
            pending_steps += 1
            if pending_steps >= 32:
                deadline.step(pending_steps, "homomorphism search")
                pending_steps = 0
        frame = stack[-1]
        pattern, rest, candidates, undo = frame
        for term in undo:
            del binding[term]
        frame[3] = []
        descended = False
        for fact in candidates:
            newly_bound = _match_atom(pattern, fact, binding, frozen)
            if newly_bound is None:
                continue
            frame[3] = newly_bound
            if rest:
                stack.append(make_frame(rest))
                descended = True
            else:
                METRICS.inc("homomorphisms_explored")
                yield dict(binding)
            break
        else:
            stack.pop()
            continue
        if not descended and not rest:
            # Solution yielded; the next loop pass undoes the bindings
            # and advances this frame's candidate iterator.
            continue


def homomorphisms(
    pattern: Sequence[Atom],
    target: Instance,
    *,
    base: Optional[Mapping[Term, Term]] = None,
    frozen: Iterable[Term] = (),
    deadline: Optional["Deadline"] = None,
    project: Optional[Iterable[Term]] = None,
) -> Iterator[Substitution]:
    """All homomorphisms from ``pattern`` into ``target``.

    Each yielded :class:`Substitution` is defined exactly on the
    mappable terms of the pattern (variables and non-frozen nulls),
    extended with the entries of ``base``.

    :param base: a pre-established partial mapping the homomorphism
        must extend (e.g. the frontier bindings during a chase step).
    :param frozen: nulls to treat as rigid, i.e. the homomorphism is
        the identity on them.
    :param deadline: a cooperative :class:`~repro.resilience.Deadline`
        checked once per backtracking frame; expiry raises
        :class:`~repro.errors.DeadlineExceededError` out of the
        iteration.
    :param project: when given, restrict every result to these terms
        and deduplicate; the join kernel then never materializes the
        unprojected bindings, and distinct homomorphisms agreeing on
        ``project`` collapse to one result.
    """
    frozen_set = frozenset(frozen)
    if CONFIG.join_kernel:
        yield from kernel_homomorphisms(
            pattern,
            target,
            base=base,
            frozen=frozen_set,
            deadline=deadline,
            project=project,
        )
        return
    binding: dict[Term, Term] = dict(base) if base else {}
    seen: set[Substitution] = set()
    for raw in _search(list(pattern), target, binding, frozen_set, deadline):
        sub = Substitution(raw)
        if project is not None:
            sub = sub.restrict(project)
        if sub not in seen:
            seen.add(sub)
            yield sub


def find_homomorphism(
    pattern: Sequence[Atom],
    target: Instance,
    *,
    base: Optional[Mapping[Term, Term]] = None,
    frozen: Iterable[Term] = (),
    deadline: Optional["Deadline"] = None,
) -> Optional[Substitution]:
    """The first homomorphism from ``pattern`` into ``target``, or ``None``."""
    for sub in homomorphisms(
        pattern, target, base=base, frozen=frozen, deadline=deadline
    ):
        return sub
    return None


def has_homomorphism(
    pattern: Sequence[Atom],
    target: Instance,
    *,
    base: Optional[Mapping[Term, Term]] = None,
    frozen: Iterable[Term] = (),
    deadline: Optional["Deadline"] = None,
) -> bool:
    """Whether any homomorphism from ``pattern`` into ``target`` exists.

    With the join kernel enabled this runs in existence-only mode:
    each plan component stops at its first solution and no bindings
    are ever materialized.
    """
    if CONFIG.join_kernel:
        return kernel_has_homomorphism(
            pattern, target, base=base, frozen=frozenset(frozen), deadline=deadline
        )
    return (
        find_homomorphism(
            pattern, target, base=base, frozen=frozen, deadline=deadline
        )
        is not None
    )


# -- instance-level helpers -------------------------------------------------------


def instance_homomorphisms(
    source: Instance,
    target: Instance,
    *,
    identity_on: Iterable[Term] = (),
    project: Optional[Iterable[Term]] = None,
    deadline: Optional["Deadline"] = None,
) -> Iterator[Substitution]:
    """All homomorphisms ``source -> target``.

    Constants are always rigid; nulls listed in ``identity_on`` are
    rigid as well (the paper writes "identity on dom(J)").  The yielded
    substitutions are defined on the remaining nulls of ``source``,
    restricted to ``project`` (with duplicates collapsed) when that is
    given.  ``deadline`` bounds the search cooperatively (see
    :func:`homomorphisms`).
    """
    yield from homomorphisms(
        list(source.facts),
        target,
        frozen=identity_on,
        project=project,
        deadline=deadline,
    )


def maps_into(
    source: Instance, target: Instance, deadline: Optional["Deadline"] = None
) -> bool:
    """``source -> target`` in the paper's notation (some hom exists)."""
    return has_homomorphism(list(source.facts), target, deadline=deadline)


def homomorphically_equivalent(left: Instance, right: Instance) -> bool:
    """``left <-> right``: homomorphisms exist in both directions."""
    return maps_into(left, right) and maps_into(right, left)


def is_isomorphic(left: Instance, right: Instance) -> bool:
    """Whether the instances differ only by a renaming of nulls."""
    if len(left) != len(right):
        return False
    if left.constants() != right.constants():
        return False
    left_nulls = left.nulls()
    right_nulls = right.nulls()
    if len(left_nulls) != len(right_nulls):
        return False
    for sub in instance_homomorphisms(left, right):
        if not sub.is_injective:
            continue
        if any(not isinstance(v, Null) for v in sub.values()):
            continue
        if left.apply(sub) == right:
            return True
    return False


def sets_map_into(covering: Iterable[Instance], covered: Iterable[Instance]) -> bool:
    """``K -> L`` for sets of instances (proof of Theorem 2).

    ``K -> L`` holds iff for every ``J`` in ``L`` there is an ``I`` in
    ``K`` with ``I -> J``.
    """
    covering = list(covering)
    return all(any(maps_into(i, j) for i in covering) for j in covered)


def sets_homomorphically_equivalent(
    left: Iterable[Instance], right: Iterable[Instance]
) -> bool:
    """``K <-> L`` for sets of instances."""
    left = list(left)
    right = list(right)
    return sets_map_into(left, right) and sets_map_into(right, left)
