"""A small text DSL for dependencies, instances and queries.

The notation follows the paper as closely as plain text allows::

    # a mapping (one tgd per line or separated by ';')
    R(x, x, y) -> S(x, z)           # head-only variables are existential
    R(u, v, w) -> T(v)
    D(k, p)    -> T(p)

    # an instance (facts separated by ',', ';' or newlines)
    S(a, b), T(c), T(d)             # bare identifiers are constants
    R(a, a, ?X1)                    # ?label (or _label) is a labeled null

    # a query; several rules with the same head form a UCQ
    q(x) :- R(x, y)
    q(x) :- D(x, p)

Conventions:

* In **dependencies and queries** bare identifiers denote *variables*;
  constants are written quoted (``'a'`` / ``"a"``) or as numbers.
* In **instances** bare identifiers denote *constants*; nulls are
  written ``?label`` or ``_label``.
* Comments run from ``#`` or ``--`` to the end of the line.
"""

from __future__ import annotations

import re
from typing import Iterator, Optional

from ..data.atoms import Atom
from ..data.instances import Instance
from ..data.terms import Constant, Null, Term, Variable
from ..errors import ParseError
from .queries import ConjunctiveQuery, UnionOfConjunctiveQueries
from .tgds import TGD

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<comment>\#[^\n]*|--[^\n]*)
  | (?P<arrow>->)
  | (?P<implies>:-)
  | (?P<string>'[^']*'|"[^"]*")
  | (?P<number>-?\d+)
  | (?P<null>[?_][A-Za-z0-9_]+)
  | (?P<ident>[A-Za-z][A-Za-z0-9_]*)
  | (?P<punct>[(),;|])
    """,
    re.VERBOSE,
)


class _Token:
    __slots__ = ("kind", "text", "position")

    def __init__(self, kind: str, text: str, position: int):
        self.kind = kind
        self.text = text
        self.position = position

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind}, {self.text!r})"


def _tokenize(text: str) -> list[_Token]:
    tokens: list[_Token] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise ParseError("unexpected character", text, pos)
        kind = match.lastgroup or ""
        if kind not in ("ws", "comment"):
            tokens.append(_Token(kind, match.group(), pos))
        pos = match.end()
    return tokens


class _TokenStream:
    """A cursor over the token list with one-token lookahead."""

    def __init__(self, text: str):
        self._text = text
        self._tokens = _tokenize(text)
        self._index = 0

    @property
    def exhausted(self) -> bool:
        return self._index >= len(self._tokens)

    def peek(self) -> Optional[_Token]:
        if self.exhausted:
            return None
        return self._tokens[self._index]

    def next(self) -> _Token:
        token = self.peek()
        if token is None:
            raise ParseError("unexpected end of input", self._text, len(self._text))
        self._index += 1
        return token

    def expect(self, kind: str, text: Optional[str] = None) -> _Token:
        token = self.next()
        if token.kind != kind or (text is not None and token.text != text):
            wanted = text or kind
            raise ParseError(
                f"expected {wanted!r}, found {token.text!r}", self._text, token.position
            )
        return token

    def accept(self, kind: str, text: Optional[str] = None) -> Optional[_Token]:
        token = self.peek()
        if token is not None and token.kind == kind and (
            text is None or token.text == text
        ):
            self._index += 1
            return token
        return None

    def error(self, message: str) -> ParseError:
        token = self.peek()
        position = token.position if token else len(self._text)
        return ParseError(message, self._text, position)


def _parse_term(stream: _TokenStream, *, rule_context: bool) -> Term:
    token = stream.next()
    if token.kind == "string":
        return Constant(token.text[1:-1])
    if token.kind == "number":
        return Constant(int(token.text))
    if token.kind == "null":
        return Null(token.text[1:])
    if token.kind == "ident":
        if rule_context:
            return Variable(token.text)
        return Constant(token.text)
    raise ParseError(
        f"expected a term, found {token.text!r}", stream._text, token.position
    )


def _parse_atom(stream: _TokenStream, *, rule_context: bool) -> Atom:
    name = stream.expect("ident")
    stream.expect("punct", "(")
    args: list[Term] = []
    if not stream.accept("punct", ")"):
        args.append(_parse_term(stream, rule_context=rule_context))
        while stream.accept("punct", ","):
            args.append(_parse_term(stream, rule_context=rule_context))
        stream.expect("punct", ")")
    return Atom(name.text, args)


def _parse_atom_list(stream: _TokenStream, *, rule_context: bool) -> list[Atom]:
    atoms = [_parse_atom(stream, rule_context=rule_context)]
    while True:
        checkpoint = stream._index
        if not stream.accept("punct", ","):
            break
        token = stream.peek()
        if token is None or token.kind != "ident":
            stream._index = checkpoint
            break
        atoms.append(_parse_atom(stream, rule_context=rule_context))
    return atoms


def _skip_separators(stream: _TokenStream) -> None:
    while stream.accept("punct", ";") or stream.accept("punct", ","):
        pass


def parse_tgd(text: str) -> TGD:
    """Parse a single tgd, e.g. ``"R(x, y) -> S(x), T(y)"``."""
    stream = _TokenStream(text)
    tgd = _parse_one_tgd(stream)
    _skip_separators(stream)
    if not stream.exhausted:
        raise stream.error("trailing input after tgd")
    return tgd


def _parse_one_tgd(stream: _TokenStream) -> TGD:
    body = _parse_atom_list(stream, rule_context=True)
    stream.expect("arrow")
    head = _parse_atom_list(stream, rule_context=True)
    return TGD(body, head)


def parse_tgds(text: str) -> list[TGD]:
    """Parse a sequence of tgds separated by ``;`` or newlines."""
    stream = _TokenStream(text)
    tgds: list[TGD] = []
    _skip_separators(stream)
    while not stream.exhausted:
        tgds.append(_parse_one_tgd(stream))
        _skip_separators(stream)
    if not tgds:
        raise ParseError("no tgds found", text, 0)
    return tgds


def parse_instance(text: str) -> Instance:
    """Parse an instance, e.g. ``"S(a, b), T(c), R(a, ?X)"``."""
    stream = _TokenStream(text)
    facts: list[Atom] = []
    _skip_separators(stream)
    while not stream.exhausted:
        facts.append(_parse_atom(stream, rule_context=False))
        _skip_separators(stream)
    return Instance(facts)


def parse_query(text: str) -> ConjunctiveQuery | UnionOfConjunctiveQueries:
    """Parse a query; several rules with one head name form a UCQ.

    Returns a :class:`ConjunctiveQuery` when the text contains a single
    rule and a :class:`UnionOfConjunctiveQueries` otherwise.
    """
    stream = _TokenStream(text)
    rules: list[tuple[str, ConjunctiveQuery]] = []
    _skip_separators(stream)
    while not stream.exhausted:
        head = _parse_atom(stream, rule_context=True)
        stream.expect("implies")
        body = _parse_atom_list(stream, rule_context=True)
        head_vars: list[Variable] = []
        for term in head.args:
            if not isinstance(term, Variable):
                raise stream.error(
                    f"query head arguments must be variables, got {term}"
                )
            head_vars.append(term)
        rules.append(
            (head.relation, ConjunctiveQuery(head_vars, body, name=head.relation))
        )
        _skip_separators(stream)
    if not rules:
        raise ParseError("no query rules found", text, 0)
    names = {name for name, _ in rules}
    if len(names) > 1:
        raise ParseError(
            f"all query rules must share one head predicate, got {sorted(names)}",
            text,
            0,
        )
    if len(rules) == 1:
        return rules[0][1]
    return UnionOfConjunctiveQueries(
        [query for _, query in rules], name=rules[0][0]
    )


def format_instance(instance: Instance) -> str:
    """Render an instance in the DSL's syntax (inverse of parse_instance)."""
    return ", ".join(str(fact) for fact in instance)
