"""Logic substrate: tgds, queries, the homomorphism engine and the parser."""

from .containment import (
    canonical_instance,
    cq_contained_in,
    cq_equivalent,
    minimize_cq,
    minimize_ucq,
    ucq_contained_in,
    ucq_equivalent,
)
from .homomorphisms import (
    find_homomorphism,
    has_homomorphism,
    homomorphically_equivalent,
    homomorphisms,
    instance_homomorphisms,
    is_isomorphic,
    maps_into,
    sets_homomorphically_equivalent,
    sets_map_into,
)
from .parser import (
    format_instance,
    parse_instance,
    parse_query,
    parse_tgd,
    parse_tgds,
)
from .queries import (
    ConjunctiveQuery,
    Query,
    UnionOfConjunctiveQueries,
    as_ucq,
    cq,
)
from .tgds import TGD, Mapping

__all__ = [
    "ConjunctiveQuery",
    "Mapping",
    "Query",
    "TGD",
    "UnionOfConjunctiveQueries",
    "as_ucq",
    "canonical_instance",
    "cq_contained_in",
    "cq_equivalent",
    "cq",
    "find_homomorphism",
    "format_instance",
    "has_homomorphism",
    "homomorphically_equivalent",
    "homomorphisms",
    "instance_homomorphisms",
    "is_isomorphic",
    "maps_into",
    "minimize_cq",
    "minimize_ucq",
    "parse_instance",
    "parse_query",
    "parse_tgd",
    "parse_tgds",
    "sets_homomorphically_equivalent",
    "sets_map_into",
    "ucq_contained_in",
    "ucq_equivalent",
]
