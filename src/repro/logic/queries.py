"""Conjunctive queries and unions of conjunctive queries.

A conjunctive query (CQ) over a schema ``R`` is an expression
``(x) : exists y . alpha(x, y)`` — represented here by a tuple of
*head variables* ``x`` and a conjunction of atoms.  A union of
conjunctive queries (UCQ) is a finite set of CQs with identical head
arity.

Evaluation follows the paper exactly:

* ``Q(I)`` — all head-variable images under homomorphisms of the body
  into ``I`` (tuples may contain nulls);
* ``Q(I)↓`` (:meth:`certain_evaluate`) — the tuples of ``Q(I)`` that
  contain no nulls, which is what certain answers range over.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional, Sequence

from typing import TYPE_CHECKING

from ..data.atoms import Atom, atoms_variables
from ..data.instances import Instance
from ..data.terms import Constant, Null, Term, Variable
from ..engine.config import CONFIG
from ..observability.metrics import METRICS
from ..errors import DependencyError
from ..planner.vectorized import vector_query_tuples
from .homomorphisms import has_homomorphism, homomorphisms

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from ..resilience import Deadline


class ConjunctiveQuery:
    """An immutable conjunctive query ``head_vars : body``."""

    __slots__ = ("_head_vars", "_body", "_name")

    def __init__(
        self,
        head_vars: Sequence[Variable],
        body: Sequence[Atom],
        name: Optional[str] = None,
    ):
        head_vars = tuple(head_vars)
        body = tuple(body)
        if not body:
            raise DependencyError("a conjunctive query needs a non-empty body")
        body_vars = atoms_variables(body)
        for var in head_vars:
            if not isinstance(var, Variable):
                raise DependencyError(f"query head entries must be variables: {var}")
            if var not in body_vars:
                raise DependencyError(
                    f"head variable {var} does not occur in the query body"
                )
        object.__setattr__(self, "_head_vars", head_vars)
        object.__setattr__(self, "_body", body)
        object.__setattr__(self, "_name", name)

    @property
    def head_vars(self) -> tuple[Variable, ...]:
        return self._head_vars

    @property
    def body(self) -> tuple[Atom, ...]:
        return self._body

    @property
    def name(self) -> Optional[str]:
        return self._name

    @property
    def arity(self) -> int:
        return len(self._head_vars)

    @property
    def is_boolean(self) -> bool:
        """True for queries with no free variables."""
        return not self._head_vars

    @property
    def variables(self) -> set[Variable]:
        return atoms_variables(self._body)

    @property
    def relations(self) -> frozenset[str]:
        return frozenset(a.relation for a in self._body)

    # -- evaluation -----------------------------------------------------------------

    def evaluate(
        self, instance: Instance, deadline: Optional["Deadline"] = None
    ) -> set[tuple[Term, ...]]:
        """``Q(I)``: all answers, possibly containing nulls.

        The body homomorphisms are projected onto the head variables,
        so the join kernel deduplicates per plan component and never
        materializes bindings for purely existential variables.
        """
        if CONFIG.value_fastpaths and len(self._body) == 1:
            return self._evaluate_single_atom(instance)
        store = instance.columnar_store()
        if store is not None:
            vectorized = vector_query_tuples(
                self._body, instance, store, self._head_vars, deadline
            )
            if vectorized is not None:
                METRICS.inc("planner_vectorized")
                return vectorized
        answers: set[tuple[Term, ...]] = set()
        for hom in homomorphisms(
            self._body, instance, deadline=deadline, project=self._head_vars
        ):
            answers.add(tuple(hom.image(v) for v in self._head_vars))
        return answers

    def _evaluate_single_atom(self, instance: Instance) -> set[tuple[Term, ...]]:
        """Single-atom bodies: match facts directly, skipping the search
        engine's frames and Substitution objects.  Semantics match the
        general path: constants are rigid, variables and nulls mappable,
        answers are head-variable images (identity off the binding).
        """
        pattern = self._body[0]
        p_args = pattern.args
        answers: set[tuple[Term, ...]] = set()
        for fact in instance.facts_for(pattern.relation):
            if fact.arity != pattern.arity:
                continue
            binding: dict[Term, Term] = {}
            for p, t in zip(p_args, fact.args):
                if isinstance(p, Constant):
                    if p != t:
                        break
                else:
                    bound = binding.get(p)
                    if bound is None:
                        binding[p] = t
                    elif bound != t:
                        break
            else:
                METRICS.inc("homomorphisms_explored")
                answers.add(tuple(binding.get(v, v) for v in self._head_vars))
        return answers

    def certain_evaluate(
        self, instance: Instance, deadline: Optional["Deadline"] = None
    ) -> set[tuple[Term, ...]]:
        """``Q(I)↓``: the null-free answers (paper's down-arrow operator)."""
        return {
            t
            for t in self.evaluate(instance, deadline)
            if not any(isinstance(x, Null) for x in t)
        }

    def holds_in(
        self, instance: Instance, deadline: Optional["Deadline"] = None
    ) -> bool:
        """For Boolean queries: whether the body maps into the instance."""
        return has_homomorphism(self._body, instance, deadline=deadline)

    # -- dunder ----------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ConjunctiveQuery):
            return NotImplemented
        return self._head_vars == other._head_vars and set(self._body) == set(
            other._body
        )

    def __hash__(self) -> int:
        return hash((self._head_vars, frozenset(self._body)))

    def __reduce__(self):
        return (ConjunctiveQuery, (self._head_vars, self._body, self._name))

    def __repr__(self) -> str:
        head = ", ".join(str(v) for v in self._head_vars)
        body = ", ".join(str(a) for a in self._body)
        label = self._name or "q"
        return f"{label}({head}) :- {body}"

    def __setattr__(self, name, value):  # pragma: no cover - guard
        raise AttributeError("ConjunctiveQuery is immutable")


class UnionOfConjunctiveQueries:
    """A UCQ: a non-empty set of CQs sharing one head arity."""

    __slots__ = ("_disjuncts", "_name")

    def __init__(
        self, disjuncts: Iterable[ConjunctiveQuery], name: Optional[str] = None
    ):
        disjuncts = tuple(disjuncts)
        if not disjuncts:
            raise DependencyError("a UCQ needs at least one disjunct")
        arities = {q.arity for q in disjuncts}
        if len(arities) != 1:
            raise DependencyError(
                f"all disjuncts of a UCQ must share an arity, got {sorted(arities)}"
            )
        object.__setattr__(self, "_disjuncts", disjuncts)
        object.__setattr__(self, "_name", name)

    @property
    def disjuncts(self) -> tuple[ConjunctiveQuery, ...]:
        return self._disjuncts

    @property
    def name(self) -> Optional[str]:
        return self._name

    @property
    def arity(self) -> int:
        return self._disjuncts[0].arity

    @property
    def is_boolean(self) -> bool:
        return self.arity == 0

    def __iter__(self) -> Iterator[ConjunctiveQuery]:
        return iter(self._disjuncts)

    def __len__(self) -> int:
        return len(self._disjuncts)

    # -- evaluation ----------------------------------------------------------------

    def evaluate(
        self, instance: Instance, deadline: Optional["Deadline"] = None
    ) -> set[tuple[Term, ...]]:
        """``Q(I)``: union of the disjuncts' answers."""
        answers: set[tuple[Term, ...]] = set()
        for cq in self._disjuncts:
            answers |= cq.evaluate(instance, deadline)
        return answers

    def certain_evaluate(
        self, instance: Instance, deadline: Optional["Deadline"] = None
    ) -> set[tuple[Term, ...]]:
        """``Q(I)↓``: union of the disjuncts' null-free answers."""
        answers: set[tuple[Term, ...]] = set()
        for cq in self._disjuncts:
            answers |= cq.certain_evaluate(instance, deadline)
        return answers

    def holds_in(
        self, instance: Instance, deadline: Optional["Deadline"] = None
    ) -> bool:
        return any(cq.holds_in(instance, deadline) for cq in self._disjuncts)

    # -- dunder ------------------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, UnionOfConjunctiveQueries):
            return NotImplemented
        return set(self._disjuncts) == set(other._disjuncts)

    def __hash__(self) -> int:
        return hash(frozenset(self._disjuncts))

    def __reduce__(self):
        return (UnionOfConjunctiveQueries, (self._disjuncts, self._name))

    def __repr__(self) -> str:
        return " | ".join(repr(q) for q in self._disjuncts)

    def __setattr__(self, name, value):  # pragma: no cover - guard
        raise AttributeError("UnionOfConjunctiveQueries is immutable")


Query = ConjunctiveQuery | UnionOfConjunctiveQueries


def as_ucq(query: Query) -> UnionOfConjunctiveQueries:
    """View any query uniformly as a UCQ."""
    if isinstance(query, UnionOfConjunctiveQueries):
        return query
    return UnionOfConjunctiveQueries([query], name=query.name)


def cq(head_vars: Sequence[Variable], body: Sequence[Atom]) -> ConjunctiveQuery:
    """Shorthand constructor for a conjunctive query."""
    return ConjunctiveQuery(head_vars, body)
