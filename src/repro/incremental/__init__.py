"""Semi-naive delta maintenance of recovery under fact churn."""

from .state import RecoveryState

__all__ = ["RecoveryState"]
