"""Semi-naive delta maintenance of the recovery pipeline.

The paper's pipeline — ``HOM(Σ, J)`` → coverings → inverse chase →
certain answers — is a pure function of the target instance ``J``, and
every layer built so far recomputes it per epoch.  A
:class:`RecoveryState` instead *maintains* the pipeline across
:meth:`~repro.data.instances.Instance.evolve` deltas, spending work
proportional to ``|ΔJ|`` (times the delta's join fan-out) rather than
``|J|``, while staying **bit-identical** to a cold recompute at every
step.  The identities the maintenance leans on:

* **HOM is local.**  A homomorphism of ``HOM(Σ, J′)`` absent from
  ``HOM(Σ, J)`` must cover an added fact (its head image lies in
  ``J′``; were it disjoint from the delta it would lie in ``J``), and
  a homomorphism dies exactly when it covers a removed fact.  Retired
  entries come off the per-fact coverage index; admitted ones come
  from :func:`~repro.planner.delta.delta_restricted_homomorphisms`
  anchored on the added facts.  Keeping the list sorted by the cold
  order's key — ``(tgd name, repr(substitution))``, tie-broken by tgd
  position, which reproduces ``sorted``'s stability — makes the
  maintained list *equal* to ``hom_set(Σ, J′)``, so it also seeds the
  hom-set LRU for any cold consumer of the same epoch.
* **Unique covers are checkable in O(Δ).**  Theorem 6's test (every
  fact covered, every homomorphism covering some fact privately) is
  maintained by support counting on the coverage index: ``n`` facts
  covered exactly once, per-hom private counts, a set of uncovered
  facts.  While the test holds the covering enumeration — minimal or
  "all" mode — emits exactly one covering, ``tuple(HOM(Σ, J))``.
* **Full tgds chase by counting.**  When no tgd has body-only or
  existential variables (the *fast mapping* case — the regime the
  scaled benchmarks and the paper's tractable fragments live in), the
  backward chase mints no nulls: the backward instance is the multiset
  union of each covering homomorphism's instantiated body, maintained
  by support counts; the forward chase's firings are keyed by full
  body images, so a firing dies exactly when its body image meets the
  backward delta and new firings are again a delta-anchored search.
  The finishing homomorphism search degenerates to the membership
  check ``forward ⊆ J′`` (all forward terms are target terms, frozen
  under ``identity_on``), tracked as a ``missing`` set; when it is
  empty the single candidate's recovery *is* the backward instance.
* **Certain answers are per-disjunct sets.**  Cached query answers
  over the (single) recovery are maintained delete-and-rederive
  (DRed): additions are delta-anchored evaluations; deletions
  re-derive each touched answer tuple with the head binding as the
  seed, discarding tuples with no surviving derivation.

Whenever a delta leaves the fast regime — the cover becomes ambiguous,
a fact goes uncovered, the mapping is not full — the state falls back
to the cold enumeration (`inverse_chase_candidates`) for that epoch,
seeded with the maintained hom set, and resumes incremental
maintenance as soon as the invariants hold again.  Either way the
observable results (``recoveries``, ``candidates``, ``certain``)
match the cold pipeline exactly, which the differential suites assert
fact-for-fact under randomized churn.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Iterable, Optional, Sequence

from ..data.atoms import Atom
from ..data.instances import Instance, InstanceBuilder
from ..data.substitutions import Substitution
from ..data.terms import Null, Term
from ..errors import NotRecoverableError
from ..logic.homomorphisms import homomorphisms
from ..logic.queries import Query, UnionOfConjunctiveQueries, as_ucq
from ..logic.tgds import Mapping
from ..observability.metrics import METRICS
from ..observability.spans import TRACER
from ..planner.delta import (
    carry_forward_plans,
    delta_restricted_homomorphisms,
    seeded_has_homomorphism,
)
from ..resilience import Deadline
from ..core.hom_sets import TargetHomomorphism, hom_set, seed_hom_set
from ..core.inverse_chase import RecoveryCandidate, inverse_chase_candidates
from ..core.semantics import is_justified
from ..core.subsumption import (
    SubsumptionConstraint,
    minimal_subsumers,
    models_all,
)

#: The finishing homomorphism of the fast path: with every forward
#: term frozen by ``identity_on`` the cold search yields exactly the
#: empty substitution, under which ``backward.apply(g) is backward``.
_IDENTITY = Substitution({})


class _CoveringPipeline:
    """One covering's backward → forward → finish pipeline, maintained.

    ``fast`` pipelines carry the support-counting state described in
    the module docstring; generic ones only hold the cold-computed
    candidates for the current epoch and are rebuilt on every delta.
    """

    __slots__ = (
        "fast",
        "covering",
        "backward",
        "forward",
        "candidates",
        "_produced",
        "_bsupport",
        "_firings",
        "_fact_firings",
        "_fsupport",
        "_missing",
        "_answers",
    )

    def __init__(
        self,
        covering: tuple[TargetHomomorphism, ...],
        backward: Optional[Instance],
        forward: Optional[Instance],
        fast: bool,
    ):
        self.fast = fast
        self.covering = covering
        self.backward = backward
        self.forward = forward
        self.candidates: list[RecoveryCandidate] = []
        # hom -> its instantiated body (the reverse trigger's output)
        self._produced: dict[TargetHomomorphism, frozenset[Atom]] = {}
        # backward fact -> number of covering homs producing it
        self._bsupport: dict[Atom, int] = {}
        # (tgd index, body-variable image) -> (head facts, body facts)
        self._firings: dict[
            tuple[int, tuple[Term, ...]], tuple[frozenset[Atom], frozenset[Atom]]
        ] = {}
        # backward fact -> firing keys whose body image uses it
        self._fact_firings: dict[Atom, set[tuple[int, tuple[Term, ...]]]] = {}
        # forward fact -> number of firings producing it
        self._fsupport: dict[Atom, int] = {}
        # forward facts not present in the target (blocks the finish)
        self._missing: set[Atom] = set()
        # ucq -> per-disjunct certain answer sets over the recovery
        self._answers: dict[UnionOfConjunctiveQueries, list[set]] = {}

    # -- construction --------------------------------------------------------------------

    @classmethod
    def generic(
        cls,
        covering: tuple[TargetHomomorphism, ...],
        backward: Instance,
        forward: Instance,
    ) -> "_CoveringPipeline":
        return cls(covering, backward, forward, False)

    @classmethod
    def fast_bootstrap(
        cls,
        state: "RecoveryState",
        covering: tuple[TargetHomomorphism, ...],
        target: Instance,
        deadline: Optional[Deadline] = None,
    ) -> "_CoveringPipeline":
        """Build the support-counted pipeline from scratch (O(|J|))."""
        pipe = cls(covering, None, None, True)
        for hom in covering:
            facts = frozenset(hom.substitution.apply_atoms(hom.tgd.body))
            pipe._produced[hom] = facts
            for fact in facts:
                pipe._bsupport[fact] = pipe._bsupport.get(fact, 0) + 1
        backward = InstanceBuilder().add_validated(pipe._bsupport).build()
        pipe.backward = backward
        # Replicates chase(Σ, backward) with dedup="homomorphism": one
        # firing per body homomorphism, keyed on the full body image —
        # full tgds mint no nulls, so firings are order-independent.
        for ti, tgd in enumerate(state._tgds):
            key_vars = state._body_vars[ti]
            frontier = state._frontier[ti]
            for hom in homomorphisms(tgd.body, backward):
                fk = (ti, tuple(hom.image(v) for v in key_vars))
                if fk in pipe._firings:
                    continue
                produced = frozenset(
                    hom.restrict(frontier).apply_atoms(tgd.head)
                )
                body_image = frozenset(hom.apply_atoms(tgd.body))
                pipe._firings[fk] = (produced, body_image)
                for fact in body_image:
                    pipe._fact_firings.setdefault(fact, set()).add(fk)
                for fact in produced:
                    pipe._fsupport[fact] = pipe._fsupport.get(fact, 0) + 1
        pipe.forward = InstanceBuilder().add_validated(pipe._fsupport).build()
        pipe._missing = {f for f in pipe._fsupport if f not in target}
        pipe._finish(state, target, deadline)
        METRICS.inc("incremental_fast_bootstraps")
        return pipe

    # -- maintenance ---------------------------------------------------------------------

    def refresh(
        self,
        state: "RecoveryState",
        covering: tuple[TargetHomomorphism, ...],
        target: Instance,
        t_added: frozenset[Atom],
        t_removed: frozenset[Atom],
        new_homs: Sequence[TargetHomomorphism],
        dead_homs: Iterable[TargetHomomorphism],
        deadline: Optional[Deadline],
    ) -> None:
        """Advance the pipeline across one target delta (O(Δ·fan-out))."""
        self.covering = covering
        old_backward = self.backward
        badd: list[Atom] = []
        brem: list[Atom] = []
        for hom in dead_homs:
            for fact in self._produced.pop(hom):
                count = self._bsupport[fact] - 1
                if count:
                    self._bsupport[fact] = count
                else:
                    del self._bsupport[fact]
                    brem.append(fact)
        for hom in new_homs:
            facts = frozenset(hom.substitution.apply_atoms(hom.tgd.body))
            self._produced[hom] = facts
            for fact in facts:
                count = self._bsupport.get(fact, 0)
                self._bsupport[fact] = count + 1
                if not count:
                    badd.append(fact)
        backward = old_backward.evolve(add=badd, remove=brem)
        self.backward = backward
        if backward is old_backward:
            b_added: frozenset[Atom] = frozenset()
            b_removed: frozenset[Atom] = frozenset()
        else:
            carry_forward_plans(backward)
            b_added = backward.lineage.added
            b_removed = backward.lineage.removed

        fadd: list[Atom] = []
        frem: list[Atom] = []
        if b_removed:
            dead_keys: set[tuple[int, tuple[Term, ...]]] = set()
            for fact in b_removed:
                dead_keys.update(self._fact_firings.pop(fact, ()))
            for fk in dead_keys:
                produced, body_image = self._firings.pop(fk)
                for fact in body_image:
                    entry = self._fact_firings.get(fact)
                    if entry is not None:
                        entry.discard(fk)
                        if not entry:
                            del self._fact_firings[fact]
                for fact in produced:
                    count = self._fsupport[fact] - 1
                    if count:
                        self._fsupport[fact] = count
                    else:
                        del self._fsupport[fact]
                        frem.append(fact)
        if b_added:
            for ti, tgd in enumerate(state._tgds):
                key_vars = state._body_vars[ti]
                frontier = state._frontier[ti]
                for sub in delta_restricted_homomorphisms(
                    tgd.body, backward, b_added, deadline=deadline
                ):
                    fk = (ti, tuple(sub.image(v) for v in key_vars))
                    if fk in self._firings:
                        continue
                    produced = frozenset(
                        sub.restrict(frontier).apply_atoms(tgd.head)
                    )
                    body_image = frozenset(sub.apply_atoms(tgd.body))
                    self._firings[fk] = (produced, body_image)
                    for fact in body_image:
                        self._fact_firings.setdefault(fact, set()).add(fk)
                    for fact in produced:
                        count = self._fsupport.get(fact, 0)
                        self._fsupport[fact] = count + 1
                        if not count:
                            fadd.append(fact)
        old_forward = self.forward
        forward = old_forward.evolve(add=fadd, remove=frem)
        self.forward = forward
        if forward is old_forward:
            f_added: frozenset[Atom] = frozenset()
            f_removed: frozenset[Atom] = frozenset()
        else:
            f_added = forward.lineage.added
            f_removed = forward.lineage.removed

        # ``missing`` tracks {f ∈ forward : f ∉ J′} under both deltas.
        for fact in f_removed:
            self._missing.discard(fact)
        for fact in f_added:
            if fact not in target:
                self._missing.add(fact)
        for fact in t_removed:
            if fact in self._fsupport:
                self._missing.add(fact)
        for fact in t_added:
            self._missing.discard(fact)

        self._finish(state, target, deadline)
        self._refresh_answers(old_backward, b_added, b_removed, deadline)

    def _finish(
        self,
        state: "RecoveryState",
        target: Instance,
        deadline: Optional[Deadline] = None,
    ) -> None:
        """Recompute the (at most one) candidate from the finish check."""
        self.candidates = []
        if self._missing:
            return
        recovery = self.backward
        if state._verify and not is_justified(
            state._mapping, recovery, target, deadline=deadline
        ):
            # The dangling-completion rescue is vacuous here: every
            # term of a fast-mapping recovery lies in the target
            # domain, so there is no free null to ground.
            return
        self.candidates = [
            RecoveryCandidate(
                self.covering, self.backward, self.forward, _IDENTITY, recovery
            )
        ]

    # -- certain answers -----------------------------------------------------------------

    def _refresh_answers(
        self,
        old_backward: Instance,
        b_added: frozenset[Atom],
        b_removed: frozenset[Atom],
        deadline: Optional[Deadline],
    ) -> None:
        """DRed maintenance of cached per-disjunct answer sets."""
        if not self._answers or (not b_added and not b_removed):
            return
        for ucq, cache in self._answers.items():
            for cq, answers in zip(ucq.disjuncts, cache):
                head_vars = cq.head_vars
                if b_removed:
                    rechecked: set[tuple[Term, ...]] = set()
                    for sub in delta_restricted_homomorphisms(
                        cq.body,
                        old_backward,
                        b_removed,
                        project=head_vars,
                        deadline=deadline,
                    ):
                        answer = tuple(sub.image(v) for v in head_vars)
                        if answer not in answers or answer in rechecked:
                            continue
                        rechecked.add(answer)
                        seed = dict(zip(head_vars, answer))
                        if not seeded_has_homomorphism(
                            cq.body, self.backward, base=seed, deadline=deadline
                        ):
                            answers.discard(answer)
                if b_added:
                    for sub in delta_restricted_homomorphisms(
                        cq.body,
                        self.backward,
                        b_added,
                        project=head_vars,
                        deadline=deadline,
                    ):
                        answer = tuple(sub.image(v) for v in head_vars)
                        if any(isinstance(term, Null) for term in answer):
                            continue
                        answers.add(answer)
        METRICS.inc("incremental_answer_refreshes")

    def answer_set(
        self,
        ucq: UnionOfConjunctiveQueries,
        deadline: Optional[Deadline],
    ) -> set[tuple[Term, ...]]:
        """Certain answers of ``ucq`` over this pipeline's recovery.

        Only valid on fast pipelines, whose single recovery *is* the
        backward instance the cached sets are maintained against.
        """
        cache = self._answers.get(ucq)
        if cache is None:
            cache = [
                set(cq.certain_evaluate(self.backward, deadline))
                for cq in ucq.disjuncts
            ]
            self._answers[ucq] = cache
        out: set[tuple[Term, ...]] = set()
        for answers in cache:
            out |= answers
        return out


class RecoveryState:
    """A maintained recovery pipeline with delta entry points.

    Construction runs the pipeline cold once; :meth:`apply_delta`
    advances it across an ``(added, removed)`` fact delta.  The
    observable surface — :attr:`recoveries`, :attr:`candidates`,
    :meth:`certain` — is bit-identical to recomputing
    :func:`~repro.core.inverse_chase.inverse_chase` /
    :func:`~repro.core.certain.certain_answer` on the current target.

    Enumeration *budgets* (``max_covers`` / ``max_recoveries``) are a
    one-shot-call concern and deliberately not part of the maintained
    surface; pass a :class:`~repro.resilience.Deadline` to bound
    individual deltas instead.
    """

    def __init__(
        self,
        mapping: Mapping,
        target: Instance,
        *,
        cover_mode: str = "minimal",
        subsumption_mode: str = "auto",
        subsumption: Optional[Sequence[SubsumptionConstraint]] = None,
        verify_justification: bool = True,
        deadline: Optional[Deadline] = None,
    ):
        if cover_mode not in ("minimal", "all"):
            raise ValueError(f"unknown cover mode {cover_mode!r}")
        resolved = subsumption_mode
        if resolved == "auto":
            resolved = "refute" if cover_mode == "minimal" else "strict"
        if resolved not in ("strict", "refute", "off"):
            raise ValueError(f"unknown subsumption mode {subsumption_mode!r}")
        with TRACER.span("incremental.bootstrap"):
            self._lock = threading.RLock()
            self._mapping = mapping
            self._target = target
            self._cover_mode = cover_mode
            self._sub_mode_raw = subsumption_mode
            self._sub_mode = resolved
            self._sub_arg = subsumption
            self._constraints: tuple[SubsumptionConstraint, ...] = (
                ()
                if resolved == "off"
                else tuple(
                    subsumption
                    if subsumption is not None
                    else minimal_subsumers(mapping)
                )
            )
            self._verify = verify_justification
            self._tgds = list(mapping)
            self._tgd_index = {tgd: i for i, tgd in enumerate(self._tgds)}
            self._fast_mapping = all(
                not tgd.body_only_variables and not tgd.existential_variables
                for tgd in self._tgds
            )
            self._head_vars = [
                tuple(sorted(tgd.head_variables)) for tgd in self._tgds
            ]
            self._body_vars = [
                tuple(sorted(tgd.body_variables)) for tgd in self._tgds
            ]
            self._frontier = [
                tuple(sorted(tgd.frontier_variables)) for tgd in self._tgds
            ]
            self._hv_by_tgd = dict(zip(self._tgds, self._head_vars))
            # HOM(Σ, J), kept equal to hom_set's output (order included).
            self._homs: list[TargetHomomorphism] = list(
                hom_set(mapping, target, deadline)
            )
            self._hom_sort = [self._sort_key(h) for h in self._homs]
            self._hom_keys = {self._hom_key(h) for h in self._homs}
            # Theorem 6 support counts over the coverage index.
            self._fact_covers: dict[Atom, set[TargetHomomorphism]] = {}
            self._private: dict[TargetHomomorphism, int] = {}
            self._nprivate = 0
            self._uncovered: set[Atom] = set()
            for fact in target.facts:
                self._fact_covers[fact] = set()
                self._uncovered.add(fact)
            for hom in self._homs:
                for fact in hom.covered:
                    self._cover_add(fact, hom)
            self._pipelines: list[_CoveringPipeline] = []
            self._refresh_pipelines(target, deadline, full=True)

    # -- public surface ------------------------------------------------------------------

    @property
    def target(self) -> Instance:
        """The current target instance the state is maintained for."""
        return self._target

    @property
    def mapping(self) -> Mapping:
        return self._mapping

    @property
    def hom_count(self) -> int:
        return len(self._homs)

    @property
    def candidates(self) -> list[RecoveryCandidate]:
        """All recovery candidates, in the cold enumeration order."""
        with self._lock:
            return [c for p in self._pipelines for c in p.candidates]

    @property
    def recoveries(self) -> list[Instance]:
        """The Definition 9 result: deduplicated recovery instances."""
        with self._lock:
            return self._recoveries_locked()

    def _recoveries_locked(self) -> list[Instance]:
        out: list[Instance] = []
        seen: set[Instance] = set()
        for pipe in self._pipelines:
            for cand in pipe.candidates:
                recovery = cand.recovery
                if recovery not in seen:
                    seen.add(recovery)
                    out.append(recovery)
        return out

    def apply_delta(
        self,
        *,
        add: Iterable[Atom] = (),
        remove: Iterable[Atom] = (),
        deadline: Optional[Deadline] = None,
    ) -> Instance:
        """Evolve the target and advance the pipeline; returns the child.

        A delta that nets out to nothing returns the current target
        unchanged and costs nothing.
        """
        with self._lock, TRACER.span("incremental.apply_delta", aggregate=True):
            child = self._target.evolve(add=add, remove=remove)
            if child is self._target:
                return child
            lineage = child.lineage
            added, removed = lineage.added, lineage.removed
            METRICS.inc("incremental_deltas")
            carry_forward_plans(child)
            self._target = child
            with TRACER.span("incremental.hom_maintenance", aggregate=True):
                dead: set[TargetHomomorphism] = set()
                for fact in removed:
                    dead.update(self._fact_covers.get(fact, ()))
                for fact in removed:
                    self._cover_drop_fact(fact)
                for hom in dead:
                    self._retire_hom(hom)
                for fact in added:
                    self._fact_covers[fact] = set()
                    self._uncovered.add(fact)
                new_homs: list[TargetHomomorphism] = []
                for ti, tgd in enumerate(self._tgds):
                    head_vars = self._head_vars[ti]
                    for sub in delta_restricted_homomorphisms(
                        tgd.head,
                        child,
                        added,
                        project=tgd.head_variables,
                        deadline=deadline,
                    ):
                        key = (tgd, tuple(sub.image(v) for v in head_vars))
                        if key in self._hom_keys:
                            continue
                        hom = TargetHomomorphism(tgd, sub)
                        self._admit_hom(hom, key)
                        new_homs.append(hom)
                if dead:
                    METRICS.inc("incremental_homs_retired", len(dead))
                if new_homs:
                    METRICS.inc("incremental_homs_admitted", len(new_homs))
            # Cold consumers of the same epoch get the maintained set.
            seed_hom_set(self._mapping, child, list(self._homs))
            self._refresh_pipelines(
                child,
                deadline,
                added=added,
                removed=removed,
                new_homs=new_homs,
                dead_homs=dead,
            )
            return child

    def certain(
        self, query: Query, deadline: Optional[Deadline] = None
    ) -> set[tuple[Term, ...]]:
        """Certain answers over the maintained recoveries.

        Matches :func:`~repro.core.certain.certain_answer` on the
        current target: the intersection of the query's null-free
        answers across the deduplicated recoveries, raising
        :class:`~repro.errors.NotRecoverableError` when there are none.
        """
        with self._lock, TRACER.span("incremental.certain", aggregate=True):
            ucq = as_ucq(query)
            answers: Optional[set[tuple[Term, ...]]] = None
            seen: set[Instance] = set()
            for pipe in self._pipelines:
                for cand in pipe.candidates:
                    recovery = cand.recovery
                    if recovery in seen:
                        continue
                    seen.add(recovery)
                    if pipe.fast and recovery is pipe.backward:
                        current = pipe.answer_set(ucq, deadline)
                    else:
                        current = ucq.certain_evaluate(recovery, deadline)
                    if answers is None:
                        answers = set(current)
                    else:
                        answers &= current
                    if not answers:
                        return answers
            if answers is None:
                raise NotRecoverableError(
                    "target instance is not valid for recovery under the mapping"
                )
            return answers

    # -- HOM maintenance -----------------------------------------------------------------

    def _sort_key(self, hom: TargetHomomorphism):
        # hom_set sorts by (name, repr) with Python's stable sort, so
        # equal keys keep tgd enumeration order; the explicit index
        # tiebreak reproduces that total order under bisect insertion.
        return (
            hom.tgd.name or "",
            repr(hom.substitution),
            self._tgd_index[hom.tgd],
        )

    def _hom_key(self, hom: TargetHomomorphism):
        return (
            hom.tgd,
            tuple(hom.substitution.image(v) for v in self._hv_by_tgd[hom.tgd]),
        )

    def _admit_hom(self, hom: TargetHomomorphism, key) -> None:
        sort_key = self._sort_key(hom)
        i = bisect_left(self._hom_sort, sort_key)
        self._hom_sort.insert(i, sort_key)
        self._homs.insert(i, hom)
        self._hom_keys.add(key)
        for fact in hom.covered:
            self._cover_add(fact, hom)

    def _retire_hom(self, hom: TargetHomomorphism) -> None:
        self._hom_keys.discard(self._hom_key(hom))
        sort_key = self._sort_key(hom)
        i = bisect_left(self._hom_sort, sort_key)
        while self._homs[i] != hom:
            i += 1
        del self._homs[i]
        del self._hom_sort[i]
        for fact in hom.covered:
            if fact in self._fact_covers:
                self._cover_remove(fact, hom)
        if self._private.pop(hom, 0):
            self._nprivate -= 1

    # -- Theorem 6 support counting ------------------------------------------------------

    def _priv_inc(self, hom: TargetHomomorphism) -> None:
        count = self._private.get(hom, 0)
        self._private[hom] = count + 1
        if not count:
            self._nprivate += 1

    def _priv_dec(self, hom: TargetHomomorphism) -> None:
        count = self._private.get(hom, 0)
        if count > 1:
            self._private[hom] = count - 1
        elif count == 1:
            del self._private[hom]
            self._nprivate -= 1

    def _cover_add(self, fact: Atom, hom: TargetHomomorphism) -> None:
        entry = self._fact_covers[fact]
        entry.add(hom)
        n = len(entry)
        if n == 1:
            self._uncovered.discard(fact)
            self._priv_inc(hom)
        elif n == 2:
            other = next(iter(entry - {hom}))
            self._priv_dec(other)

    def _cover_remove(self, fact: Atom, hom: TargetHomomorphism) -> None:
        entry = self._fact_covers[fact]
        entry.discard(hom)
        if not entry:
            self._uncovered.add(fact)
        elif len(entry) == 1:
            self._priv_inc(next(iter(entry)))

    def _cover_drop_fact(self, fact: Atom) -> None:
        entry = self._fact_covers.pop(fact, None)
        if entry is None:
            return
        if not entry:
            self._uncovered.discard(fact)
        elif len(entry) == 1:
            self._priv_dec(next(iter(entry)))

    # -- pipeline refresh ----------------------------------------------------------------

    def _fast_state(self) -> bool:
        """Whether the one-unique-covering incremental regime applies."""
        if not self._fast_mapping:
            return False
        if self._uncovered or self._nprivate != len(self._homs):
            return False
        if self._constraints:
            pool = self._homs if self._sub_mode == "refute" else None
            return models_all(tuple(self._homs), self._constraints, pool)
        return True

    def _refresh_pipelines(
        self,
        target: Instance,
        deadline: Optional[Deadline],
        *,
        full: bool = False,
        added: frozenset[Atom] = frozenset(),
        removed: frozenset[Atom] = frozenset(),
        new_homs: Sequence[TargetHomomorphism] = (),
        dead_homs: Iterable[TargetHomomorphism] = (),
    ) -> None:
        with TRACER.span("incremental.pipeline", aggregate=True):
            if self._uncovered:
                # Some fact is uncoverable: no covering exists, the
                # target is not valid for recovery (Theorem 2's easy
                # direction), and the cold enumeration yields nothing.
                self._pipelines = []
                METRICS.inc("incremental_uncoverable")
                return
            if self._fast_state():
                covering = tuple(self._homs)
                pipe = (
                    self._pipelines[0]
                    if len(self._pipelines) == 1 and self._pipelines[0].fast
                    else None
                )
                if pipe is None or full:
                    self._pipelines = [
                        _CoveringPipeline.fast_bootstrap(
                            self, covering, target, deadline
                        )
                    ]
                else:
                    pipe.refresh(
                        self,
                        covering,
                        target,
                        added,
                        removed,
                        new_homs,
                        dead_homs,
                        deadline,
                    )
                if not full:
                    METRICS.inc("incremental_fast_deltas")
                return
            self._rebuild_cold(target, deadline)
            if not full:
                METRICS.inc("incremental_cold_rebuilds")

    def _rebuild_cold(
        self, target: Instance, deadline: Optional[Deadline]
    ) -> None:
        """Recompute this epoch's pipelines via the cold enumeration."""
        pipelines: list[_CoveringPipeline] = []
        current: Optional[_CoveringPipeline] = None
        for cand in inverse_chase_candidates(
            self._mapping,
            target,
            cover_mode=self._cover_mode,
            subsumption_mode=self._sub_mode_raw,
            subsumption=self._sub_arg,
            verify_justification=self._verify,
            deadline=deadline,
        ):
            if current is None or current.covering != cand.covering:
                current = _CoveringPipeline.generic(
                    cand.covering, cand.backward_instance, cand.forward_instance
                )
                pipelines.append(current)
            current.candidates.append(cand)
        self._pipelines = pipelines
