"""Named scenarios: every worked example of the paper, plus scaled variants.

Each scenario bundles a mapping and a target instance (and optionally
queries) exactly as printed in the paper, so tests and benchmarks can
refer to them by name.  The ``xr_*`` scenarios are not from the paper:
they are deliberately *invalid-for-recovery* targets exercising the
``exchange_repairs`` semantics mode (see :mod:`repro.semantics`).
Transcription notes:

* In the running example (Example 2) the dependency ``rho`` must read
  ``R(u, v, w) -> T(w)``: only that arity-position makes Examples 3-7
  (the homomorphism list, the coverings, the recoveries ``g(I_i)``)
  and Example 4's remark about ``u`` and ``v`` mutually consistent.
* In equation (6) the first dependency must read
  ``R(x, x, y) -> T(x)``: the surrounding text derives the naive chase
  result ``{R(a, a, X), R(Y, Z, b)}`` from it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from ..data.instances import Instance
from ..logic.parser import parse_instance, parse_query, parse_tgds
from ..logic.queries import Query
from ..logic.tgds import Mapping


@dataclass(frozen=True)
class Scenario:
    """A named (mapping, target) pair with optional queries of interest."""

    name: str
    description: str
    mapping: Mapping
    target: Instance
    queries: dict[str, Query] = field(default_factory=dict)


def intro_split() -> Scenario:
    """Equations (1)-(3): the maximum recovery misses sound information."""
    return Scenario(
        name="intro_split",
        description=(
            "Sigma = {R(x,y) -> S(x), P(y)}; the instance-based recovery "
            "joins every P-value to the unique S-value, the mapping-based "
            "inverse does not"
        ),
        mapping=Mapping(parse_tgds("R(x, y) -> S(x), P(y)")),
        target=parse_instance("S(a), P(b1), P(b2), P(b3), P(b4)"),
        queries={"q_b2": parse_query("q(x) :- R(x, 'b2')")},
    )


def intro_split_scaled(n: int) -> Scenario:
    """Equation (1) with ``n`` P-facts (benchmark E1's size parameter)."""
    facts = ", ".join([f"P(b{i})" for i in range(1, n + 1)] + ["S(a)"])
    return Scenario(
        name=f"intro_split_{n}",
        description=f"equation (1) with {n} P-facts",
        mapping=Mapping(parse_tgds("R(x, y) -> S(x), P(y)")),
        target=parse_instance(facts),
        queries={"q_b2": parse_query("q(x) :- R(x, 'b2')")},
    )


def intro_full() -> Scenario:
    """Equation (4): the maximum recovery can be data-exchange unsound."""
    return Scenario(
        name="intro_full",
        description=(
            "Sigma = {R(x)->T(x); R(x)->S(x); M(x)->S(x)}; for J = {S(a)} "
            "only {M(a)} is a sound recovery"
        ),
        mapping=Mapping(parse_tgds("R(x) -> T(x); R(x2) -> S(x2); M(x3) -> S(x3)")),
        target=parse_instance("S(a)"),
        queries={
            "q_r": parse_query("q(x) :- R(x)"),
            "q_m": parse_query("q(x) :- M(x)"),
        },
    )


def intro_two_rules() -> Scenario:
    """Equation (5): chase case one — not all triggers must fire."""
    return Scenario(
        name="intro_two_rules",
        description="Sigma = {R(x)->S(x); M(y)->S(y)}, J = {S(a)}",
        mapping=Mapping(parse_tgds("R(x) -> S(x); M(y) -> S(y)")),
        target=parse_instance("S(a)"),
    )


def intro_triangle() -> Scenario:
    """Equation (6): chase case three — nulls must be equated smartly."""
    return Scenario(
        name="intro_triangle",
        description=(
            "Sigma = {R(x,x,y)->T(x); R(v,w,z)->S(z)}, J = {T(a), S(b)}; "
            "recoveries have the form {R(a,a,b)} plus optional generic rows"
        ),
        mapping=Mapping(parse_tgds("R(x, x, y) -> T(x); R(v, w, z) -> S(z)")),
        target=parse_instance("T(a), S(b)"),
    )


def running_example() -> Scenario:
    """Examples 2-7: the paper's running example."""
    return Scenario(
        name="running_example",
        description=(
            "Sigma = {xi: R(x,x,y)->ES(x,z); rho: R(u,v,w)->T(w); "
            "sigma: D(k,p)->T(p)}, J = {S(a,b), T(c), T(d)}"
        ),
        mapping=Mapping(
            parse_tgds("R(x, x, y) -> S(x, z); R(u, v, w) -> T(w); D(k, p) -> T(p)")
        ),
        target=parse_instance("S(a, b), T(c), T(d)"),
    )


def employee_benefits() -> Scenario:
    """Example 8: the schema-evolution case study (the paper's one table)."""
    return Scenario(
        name="employee_benefits",
        description=(
            "Emp(n,d), Bnf(d,b) -> EmpDept(n,d), EmpBnf(n,b); recovering "
            "the pre-evolution schema from the exchanged company data"
        ),
        mapping=Mapping(
            parse_tgds("Emp(n, d), Bnf(d, b) -> EmpDept(n, d), EmpBnf(n, b)")
        ),
        target=parse_instance(
            """
            EmpDept(Joe, HR), EmpDept(Bill, Sales), EmpDept(Sue, HR),
            EmpBnf(Joe, medical), EmpBnf(Joe, pension),
            EmpBnf(Sue, medical), EmpBnf(Sue, pension),
            EmpBnf(Bill, medical), EmpBnf(Bill, profit)
            """
        ),
        queries={"hr_benefits": parse_query("q(x) :- Bnf('HR', x)")},
    )


def employee_benefits_scaled(
    employees: int, departments: int, benefits: int
) -> Scenario:
    """Example 8 scaled: ``employees`` spread over ``departments``, each
    department offering ``benefits`` distinct benefits."""
    facts: list[str] = []
    for e in range(employees):
        dept = e % departments
        facts.append(f"EmpDept(emp{e}, dept{dept})")
        for b in range(benefits):
            facts.append(f"EmpBnf(emp{e}, bnf_{dept}_{b})")
    return Scenario(
        name=f"employee_benefits_{employees}x{departments}x{benefits}",
        description="Example 8 scaled",
        mapping=Mapping(
            parse_tgds("Emp(n, d), Bnf(d, b) -> EmpDept(n, d), EmpBnf(n, b)")
        ),
        target=parse_instance(", ".join(facts)),
        queries={"dept0_benefits": parse_query("q(x) :- Bnf('dept0', x)")},
    )


def example9() -> Scenario:
    """Example 9: the maximal uniquely-covered subset."""
    return Scenario(
        name="example9",
        description=(
            "Sigma = {R(x,y)->S(x),S(y); D(z)->T(z)}, J = {S(a),S(b),T(c),T(d)}; "
            "J' = {T(c), T(d)} and the sound instance is {D(c), D(d)}"
        ),
        mapping=Mapping(parse_tgds("R(x, y) -> S(x), S(y); D(z) -> T(z)")),
        target=parse_instance("S(a), S(b), T(c), T(d)"),
        queries={"q_d": parse_query("q(x) :- D(x)")},
    )


def example10(n: int = 4) -> Scenario:
    """Example 10: per-homomorphism coverings, with ``n`` T-facts."""
    facts = ", ".join(["S(a)"] + [f"T(b{i})" for i in range(1, n + 1)])
    return Scenario(
        name=f"example10_{n}",
        description="Sigma = {R(x,y)->S(x); R(z,v)->S(z),T(v)}",
        mapping=Mapping(parse_tgds("R(x, y) -> S(x); R(z, v) -> S(z), T(v)")),
        target=parse_instance(facts),
    )


def example12() -> Scenario:
    """Example 12: the CQ sub-universal instance I_{Sigma,J}."""
    return Scenario(
        name="example12",
        description=(
            "Sigma = {R(x,y)->T(x); U(z)->S(z); R(v,v)->T(v),S(v)}, "
            "J = {T(a), S(a), S(b)}; I_{Sigma,J} ~ {R(a,Y1), U(b), R(a,Y2)}"
        ),
        mapping=Mapping(
            parse_tgds("R(x, y) -> T(x); U(z) -> S(z); R(v, v) -> T(v), S(v)")
        ),
        target=parse_instance("T(a), S(a), S(b)"),
        queries={
            "q_u": parse_query("q(x) :- U(x)"),
            "q_rr": parse_query("q(x) :- R(x, x)"),
        },
    )


def example13() -> Scenario:
    """Example 13: I_{Sigma,J} beats the CQ-maximum recovery chase."""
    scenario = example12()
    return Scenario(
        name="example13",
        description=(
            "same setting as Example 12; the CQ-maximum recovery mapping is "
            "{T(x) -> exists z R(x,z)} and misses U(b)"
        ),
        mapping=scenario.mapping,
        target=scenario.target,
        queries={"q_u": parse_query("q(x) :- U(x)")},
    )


def lemma1_remark(k: int = 2) -> Scenario:
    """The remark after Lemma 1: |COV| = 1 yet exponentially many recoveries.

    ``Sigma = {R(x,y)->S(x); R(u,v)->T(v)}`` with ``k`` S-facts and
    ``k`` T-facts; the paper's instance is ``k = 2`` with
    ``|Chase^{-1}(Sigma, J)| = 7``.
    """
    facts = ", ".join(
        [f"S(a{i})" for i in range(1, k + 1)] + [f"T(b{i})" for i in range(1, k + 1)]
    )
    return Scenario(
        name=f"lemma1_remark_{k}",
        description="unique covering with exponentially many recoveries",
        mapping=Mapping(parse_tgds("R(x, y) -> S(x); R(u, v) -> T(v)")),
        target=parse_instance(facts),
    )


def xr_conflicting_witnesses() -> Scenario:
    """Two T-facts fight over one frontier binding: no valid subset keeps both.

    ``Sigma = {S(x) -> T(x, y)}`` with ``J = {T(a, b), T(a, c)}`` is the
    invalidity example from the inverse-chase module docs: both target
    facts force the same backward fact ``S(a)``, whose forward chase
    witnesses only one of them.  The exchange-repairs are ``{T(a, b)}``
    and ``{T(a, c)}``; both recover to ``{S(a)}``, so ``q(x) :- S(x)``
    is XR-certain at ``{(a)}`` even though the paper semantics rejects
    ``J`` outright.
    """
    return Scenario(
        name="xr_conflicting_witnesses",
        description=(
            "Sigma = {S(x)->T(x,y)}, J = {T(a,b), T(a,c)}: invalid for "
            "the paper semantics; XR repairs drop one T-fact each"
        ),
        mapping=Mapping(parse_tgds("S(x) -> T(x, y)")),
        target=parse_instance("T(a, b), T(a, c)"),
        queries={"q_s": parse_query("q(x) :- S(x)")},
    )


def xr_ambiguous_producer() -> Scenario:
    """Repairs disagree on the producer, so the XR intersection is empty.

    ``Sigma = {S(x) -> T(x, y); D(u) -> T(u, u)}`` with
    ``J = {T(a, a), T(a, b)}``.  The repairs are ``{T(a, b)}`` (only
    ``S(a)`` recovers it — the diagonal rule cannot emit ``T(a, b)``)
    and ``{T(a, a)}`` (recovered by ``S(a)`` *or* ``D(a)``).  Under the
    second repair ``q(x) :- S(x)`` is not certain, so XR-certainty
    genuinely intersects to the empty set.
    """
    return Scenario(
        name="xr_ambiguous_producer",
        description=(
            "Sigma = {S(x)->T(x,y); D(u)->T(u,u)}, J = {T(a,a), T(a,b)}: "
            "repairs disagree on whether S produced the data"
        ),
        mapping=Mapping(parse_tgds("S(x) -> T(x, y); D(u) -> T(u, u)")),
        target=parse_instance("T(a, a), T(a, b)"),
        queries={
            "q_s": parse_query("q(x) :- S(x)"),
            "q_d": parse_query("q(x) :- D(x)"),
        },
    )


def xr_orphan_fact() -> Scenario:
    """One fact is uncoverable; the single repair simply drops it.

    ``Sigma = {P(x) -> A(x); Q(x) -> A(x), B(x)}`` with
    ``J = {A(a), B(a), B(b)}``: ``B(b)`` has no producing rule firing
    (``Q(b)`` would also need ``A(b)``), so the unique repair is
    ``{A(a), B(a)}``, recovered only by ``{Q(a)}`` — ``q(x) :- Q(x)``
    is XR-certain at ``{(a)}``.
    """
    return Scenario(
        name="xr_orphan_fact",
        description=(
            "Sigma = {P(x)->A(x); Q(x)->A(x),B(x)}, J = {A(a), B(a), "
            "B(b)}: B(b) is uncoverable, one repair drops it"
        ),
        mapping=Mapping(parse_tgds("P(x) -> A(x); Q(x) -> A(x), B(x)")),
        target=parse_instance("A(a), B(a), B(b)"),
        queries={
            "q_q": parse_query("q(x) :- Q(x)"),
            "q_p": parse_query("q(x) :- P(x)"),
        },
    )


#: Registry of the parameter-free paper scenarios by name.
PAPER_SCENARIOS: dict[str, Callable[[], Scenario]] = {
    "intro_split": intro_split,
    "intro_full": intro_full,
    "intro_two_rules": intro_two_rules,
    "intro_triangle": intro_triangle,
    "running_example": running_example,
    "employee_benefits": employee_benefits,
    "example9": example9,
    "example12": example12,
    "example13": example13,
    "xr_conflicting_witnesses": xr_conflicting_witnesses,
    "xr_ambiguous_producer": xr_ambiguous_producer,
    "xr_orphan_fact": xr_orphan_fact,
}

#: The inconsistent-source scenarios (invalid for the paper semantics,
#: repairable under exchange_repairs); the XR suites iterate these.
XR_SCENARIOS: tuple[str, ...] = (
    "xr_conflicting_witnesses",
    "xr_ambiguous_producer",
    "xr_orphan_fact",
)


def scenario(name: str) -> Scenario:
    """Look up a parameter-free paper scenario by name."""
    try:
        return PAPER_SCENARIOS[name]()
    except KeyError:
        known = ", ".join(sorted(PAPER_SCENARIOS))
        raise KeyError(f"unknown scenario {name!r}; known: {known}") from None
