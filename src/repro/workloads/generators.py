"""Seeded synthetic workload generators.

The paper has no published workloads; the benchmarks generate
ChaseBench-style synthetic exchanges instead: draw a random mapping,
draw a random ground source instance, chase it forward, and hand the
resulting target to the recovery algorithms.  A target produced this
way is always valid for recovery (the canonical universal solution is
justified by its source), while :func:`corrupted_target` manufactures
likely-invalid targets for the J-validity benchmarks.

All generators take an explicit :class:`random.Random` or seed so every
experiment is reproducible.
"""

from __future__ import annotations

import random
from typing import Optional, Sequence, Union

from ..data.atoms import Atom
from ..data.instances import Instance
from ..data.schema import Schema
from ..data.terms import Constant, Null, Variable
from ..logic.queries import ConjunctiveQuery
from ..logic.tgds import TGD, Mapping
from ..chase.standard import chase

RandomLike = Union[random.Random, int, None]


def _rng(seed: RandomLike) -> random.Random:
    if isinstance(seed, random.Random):
        return seed
    return random.Random(seed)


def random_mapping(
    seed: RandomLike = None,
    *,
    source_relations: int = 3,
    target_relations: int = 3,
    tgds: int = 3,
    max_arity: int = 3,
    max_body_atoms: int = 2,
    max_head_atoms: int = 2,
    existential_probability: float = 0.3,
) -> Mapping:
    """A random s-t mapping.

    Source relations are named ``S0, S1, ...`` and target relations
    ``T0, T1, ...``.  Bodies draw variables from a shared pool so atoms
    join; each head variable is a body (frontier) variable or, with
    ``existential_probability``, a fresh existential one.
    """
    rng = _rng(seed)
    source_arity = {
        f"S{i}": rng.randint(1, max_arity) for i in range(source_relations)
    }
    target_arity = {
        f"T{i}": rng.randint(1, max_arity) for i in range(target_relations)
    }
    dependencies: list[TGD] = []
    for t in range(tgds):
        pool = [Variable(f"v{t}_{i}") for i in range(max_arity * max_body_atoms)]
        body: list[Atom] = []
        for _ in range(rng.randint(1, max_body_atoms)):
            name = rng.choice(sorted(source_arity))
            body.append(
                Atom(name, [rng.choice(pool) for _ in range(source_arity[name])])
            )
        body_vars = sorted({v for a in body for v in a.variables})
        head: list[Atom] = []
        existential_count = 0
        for _ in range(rng.randint(1, max_head_atoms)):
            name = rng.choice(sorted(target_arity))
            args: list[Variable] = []
            for _ in range(target_arity[name]):
                if rng.random() < existential_probability:
                    existential_count += 1
                    args.append(Variable(f"z{t}_{existential_count}"))
                else:
                    args.append(rng.choice(body_vars))
            head.append(Atom(name, args))
        dependencies.append(TGD(body, head))
    return Mapping(
        dependencies,
        source_schema=Schema.from_arities(source_arity),
        target_schema=Schema.from_arities(target_arity),
    )


def random_ground_instance(
    seed: RandomLike,
    schema: Schema,
    *,
    facts: int = 10,
    domain_size: int = 5,
) -> Instance:
    """A random ground instance over ``schema`` with ``facts`` tuples."""
    rng = _rng(seed)
    domain = [Constant(f"c{i}") for i in range(domain_size)]
    relations = sorted(schema, key=lambda r: r.name)
    atoms: set[Atom] = set()
    attempts = 0
    while len(atoms) < facts and attempts < facts * 20:
        attempts += 1
        relation = rng.choice(relations)
        atoms.add(
            Atom(relation.name, [rng.choice(domain) for _ in range(relation.arity)])
        )
    return Instance(atoms)


def exchange_workload(
    seed: RandomLike = None,
    *,
    source_facts: int = 10,
    domain_size: int = 5,
    **mapping_options,
) -> tuple[Mapping, Instance, Instance]:
    """A full synthetic exchange: ``(Sigma, I, J = Chase(Sigma, I))``.

    The returned target is always valid for recovery under the mapping
    (it is the canonical universal solution for ``I``).  Sources whose
    chase produces an empty target are re-drawn, so the target is
    never trivially empty.
    """
    rng = _rng(seed)
    mapping = random_mapping(rng, **mapping_options)
    for _ in range(50):
        source = random_ground_instance(
            rng, mapping.source_schema, facts=source_facts, domain_size=domain_size
        )
        target = chase(mapping, source).result
        if not target.is_empty:
            return mapping, source, target
    raise RuntimeError(
        "could not generate a non-empty exchange; mapping bodies may be "
        "unsatisfiable at this source size"
    )


def corrupted_target(
    seed: RandomLike,
    mapping: Mapping,
    target: Instance,
    *,
    extra_facts: int = 2,
) -> Instance:
    """Add random target facts, likely breaking validity for recovery.

    Used by the J-validity benchmarks: honestly exchanged targets are
    valid, targets with arbitrary extra facts usually are not (the
    extra facts tend to be uncoverable or to violate subsumption).
    """
    rng = _rng(seed)
    domain = sorted(target.constants()) or [Constant("c0")]
    relations = sorted(mapping.target_schema, key=lambda r: r.name)
    atoms = set(target.facts)
    for _ in range(extra_facts):
        relation = rng.choice(relations)
        atoms.add(
            Atom(
                relation.name,
                [rng.choice(domain) for _ in range(relation.arity)],
            )
        )
    return Instance(atoms)


def unique_cover_workload(
    seed: RandomLike = None, *, facts: int = 50, domain_size: Optional[int] = None
) -> tuple[Mapping, Instance]:
    """A workload satisfying Theorem 5's preconditions at any size.

    ``Sigma = {E(x,y) -> F(x,y); G(x) -> K(x), L(x)}`` is quasi-guarded
    safe and every homomorphism into a target over distinct constants
    covers a private fact, so ``|COV(Sigma, J)| = 1``.
    """
    rng = _rng(seed)
    domain_size = domain_size or max(4, facts)
    mapping = Mapping(
        [
            TGD(
                [Atom("E", [Variable("x"), Variable("y")])],
                [Atom("F", [Variable("x"), Variable("y")])],
            ),
            TGD(
                [Atom("G", [Variable("u")])],
                [Atom("K", [Variable("u")]), Atom("L", [Variable("u")])],
            ),
        ]
    )
    atoms: set[Atom] = set()
    while len(atoms) < facts:
        if rng.random() < 0.5:
            atoms.add(
                Atom(
                    "F",
                    [
                        Constant(f"a{rng.randrange(domain_size)}"),
                        Constant(f"b{rng.randrange(domain_size)}"),
                    ],
                )
            )
        else:
            value = Constant(f"g{rng.randrange(domain_size)}")
            atoms.add(Atom("K", [value]))
            atoms.add(Atom("L", [value]))
    return mapping, Instance(atoms)


def scaled_recovery_workload(
    seed: RandomLike = None,
    *,
    facts: int = 1000,
    arity: int = 2,
    head_width: int = 1,
    null_density: float = 0.0,
    ambiguous_facts: int = 0,
    domain_size: Optional[int] = None,
) -> tuple[Mapping, Instance]:
    """A parameterized large-instance recovery workload.

    The micro-fixtures used by the established benchmarks top out at a
    few facts; scaling curves need targets of 10⁴–10⁶ facts whose
    recovery pipeline stays tractable at every size.  The mapping is a
    quasi-guarded family whose covering is *almost* unique:

    * ``E(x₁..xₐ) -> F(x₁..xₐ)`` — the bulk relation, ``arity`` wide.
      Over a target with one ``F`` fact per argument tuple, every
      homomorphism covers exactly its own fact, so coverage is unique
      and the covering count stays 1 regardless of size.
    * ``G(u) -> K₀(u), .., K_{w-1}(u)`` (when ``head_width > 1``) —
      wide-head firings; about 10% of the fact budget becomes
      ``K``-bundles, each bundle covered by one homomorphism.
    * ``A(x₁..xₐ) -> D(x₁..xₐ)`` and ``B(x₁..xₐ) -> D(x₁..xₐ)`` (when
      ``ambiguous_facts > 0``) — each ``D`` fact is covered by one
      homomorphism of *each* dependency, so the number of minimal
      coverings is ``2^ambiguous_facts``; keep it small (≤ 10) unless
      you mean to benchmark covering explosion.

    ``null_density`` is the probability that an argument position holds
    a labeled null (drawn from a pool scaling with ``domain_size``)
    instead of a constant; nulls shared across facts join under
    homomorphisms and are what Definition 9 freezes, so any null
    handling the engine does is exercised at scale.

    ``domain_size`` controls the join fan-out: with ``facts`` edges over
    ``domain_size`` vertices the expected degree is
    ``facts / domain_size``, which is what makes multi-atom (path)
    queries join-heavy.  Defaults to ``max(16, facts // 8)``.
    """
    rng = _rng(seed)
    if arity < 1:
        raise ValueError("arity must be at least 1")
    domain_size = domain_size or max(16, facts // 8)
    null_pool = max(4, int(domain_size * max(null_density, 0.01)))

    def term(prefix: str = "c"):
        if null_density > 0.0 and rng.random() < null_density:
            return Null(f"n{rng.randrange(null_pool)}")
        return Constant(f"{prefix}{rng.randrange(domain_size)}")

    tgds: list[TGD] = []
    xs = [Variable(f"x{i}") for i in range(arity)]
    tgds.append(TGD([Atom("E", xs)], [Atom("F", xs)]))
    bundle_budget = facts // 10 if head_width > 1 else 0
    if head_width > 1:
        u = Variable("u")
        tgds.append(
            TGD([Atom("G", [u])], [Atom(f"K{j}", [u]) for j in range(head_width)])
        )
    if ambiguous_facts > 0:
        tgds.append(TGD([Atom("A", xs)], [Atom("D", xs)]))
        tgds.append(TGD([Atom("B", xs)], [Atom("D", xs)]))
    mapping = Mapping(tgds)

    atoms: set[Atom] = set()
    while len(atoms) < ambiguous_facts:
        atoms.add(Atom("D", [term("d") for _ in range(arity)]))
    bundles = 0
    while bundles < bundle_budget:
        value = term("g")
        bundle = [Atom(f"K{j}", [value]) for j in range(head_width)]
        if bundle[0] not in atoms:
            atoms.update(bundle)
            bundles += 1
    while len(atoms) < facts:
        atoms.add(Atom("F", [term() for _ in range(arity)]))
    return mapping, Instance(atoms)


def path_query(
    length: int = 2, relation: str = "E", project: str = "endpoints"
) -> ConjunctiveQuery:
    """``q(…) :- R(x₀,x₁), R(x₁,x₂), …`` over a binary relation.

    The canonical join-heavy query for the scaling benchmarks: over a
    random graph of degree ``d`` its intermediate join size is
    ``|R|·d^{length-1}``, which is where set-at-a-time evaluation pays
    off.  ``project`` picks the head:

    * ``"endpoints"`` — ``q(x₀, x_len)``; answer set can approach the
      square of the vertex count, so output construction dominates at
      high degree.
    * ``"source"`` — ``q(x₀)``: every variable past ``x₁`` is
      existential, the answer set is at most the vertex count, and the
      join itself is the entire cost — the configuration that separates
      tuple-at-a-time from set-at-a-time evaluation.

    Only meaningful over binary relations; the default ``E`` is the
    *source* relation of :func:`scaled_recovery_workload` at
    ``arity=2``, which is what recoveries (and hence certain answers)
    range over.
    """
    if length < 1:
        raise ValueError("path length must be at least 1")
    if project not in ("endpoints", "source"):
        raise ValueError(f"unknown projection {project!r}")
    points = [Variable(f"p{i}") for i in range(length + 1)]
    body = [
        Atom(relation, [points[i], points[i + 1]]) for i in range(length)
    ]
    head = [points[0]] if project == "source" else [points[0], points[-1]]
    return ConjunctiveQuery(head, body, name="path")
