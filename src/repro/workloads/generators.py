"""Seeded synthetic workload generators.

The paper has no published workloads; the benchmarks generate
ChaseBench-style synthetic exchanges instead: draw a random mapping,
draw a random ground source instance, chase it forward, and hand the
resulting target to the recovery algorithms.  A target produced this
way is always valid for recovery (the canonical universal solution is
justified by its source), while :func:`corrupted_target` manufactures
likely-invalid targets for the J-validity benchmarks.

All generators take an explicit :class:`random.Random` or seed so every
experiment is reproducible.
"""

from __future__ import annotations

import random
from typing import Optional, Sequence, Union

from ..data.atoms import Atom
from ..data.instances import Instance
from ..data.schema import Schema
from ..data.terms import Constant, Variable
from ..logic.tgds import TGD, Mapping
from ..chase.standard import chase

RandomLike = Union[random.Random, int, None]


def _rng(seed: RandomLike) -> random.Random:
    if isinstance(seed, random.Random):
        return seed
    return random.Random(seed)


def random_mapping(
    seed: RandomLike = None,
    *,
    source_relations: int = 3,
    target_relations: int = 3,
    tgds: int = 3,
    max_arity: int = 3,
    max_body_atoms: int = 2,
    max_head_atoms: int = 2,
    existential_probability: float = 0.3,
) -> Mapping:
    """A random s-t mapping.

    Source relations are named ``S0, S1, ...`` and target relations
    ``T0, T1, ...``.  Bodies draw variables from a shared pool so atoms
    join; each head variable is a body (frontier) variable or, with
    ``existential_probability``, a fresh existential one.
    """
    rng = _rng(seed)
    source_arity = {
        f"S{i}": rng.randint(1, max_arity) for i in range(source_relations)
    }
    target_arity = {
        f"T{i}": rng.randint(1, max_arity) for i in range(target_relations)
    }
    dependencies: list[TGD] = []
    for t in range(tgds):
        pool = [Variable(f"v{t}_{i}") for i in range(max_arity * max_body_atoms)]
        body: list[Atom] = []
        for _ in range(rng.randint(1, max_body_atoms)):
            name = rng.choice(sorted(source_arity))
            body.append(
                Atom(name, [rng.choice(pool) for _ in range(source_arity[name])])
            )
        body_vars = sorted({v for a in body for v in a.variables})
        head: list[Atom] = []
        existential_count = 0
        for _ in range(rng.randint(1, max_head_atoms)):
            name = rng.choice(sorted(target_arity))
            args: list[Variable] = []
            for _ in range(target_arity[name]):
                if rng.random() < existential_probability:
                    existential_count += 1
                    args.append(Variable(f"z{t}_{existential_count}"))
                else:
                    args.append(rng.choice(body_vars))
            head.append(Atom(name, args))
        dependencies.append(TGD(body, head))
    return Mapping(
        dependencies,
        source_schema=Schema.from_arities(source_arity),
        target_schema=Schema.from_arities(target_arity),
    )


def random_ground_instance(
    seed: RandomLike,
    schema: Schema,
    *,
    facts: int = 10,
    domain_size: int = 5,
) -> Instance:
    """A random ground instance over ``schema`` with ``facts`` tuples."""
    rng = _rng(seed)
    domain = [Constant(f"c{i}") for i in range(domain_size)]
    relations = sorted(schema, key=lambda r: r.name)
    atoms: set[Atom] = set()
    attempts = 0
    while len(atoms) < facts and attempts < facts * 20:
        attempts += 1
        relation = rng.choice(relations)
        atoms.add(
            Atom(relation.name, [rng.choice(domain) for _ in range(relation.arity)])
        )
    return Instance(atoms)


def exchange_workload(
    seed: RandomLike = None,
    *,
    source_facts: int = 10,
    domain_size: int = 5,
    **mapping_options,
) -> tuple[Mapping, Instance, Instance]:
    """A full synthetic exchange: ``(Sigma, I, J = Chase(Sigma, I))``.

    The returned target is always valid for recovery under the mapping
    (it is the canonical universal solution for ``I``).  Sources whose
    chase produces an empty target are re-drawn, so the target is
    never trivially empty.
    """
    rng = _rng(seed)
    mapping = random_mapping(rng, **mapping_options)
    for _ in range(50):
        source = random_ground_instance(
            rng, mapping.source_schema, facts=source_facts, domain_size=domain_size
        )
        target = chase(mapping, source).result
        if not target.is_empty:
            return mapping, source, target
    raise RuntimeError(
        "could not generate a non-empty exchange; mapping bodies may be "
        "unsatisfiable at this source size"
    )


def corrupted_target(
    seed: RandomLike,
    mapping: Mapping,
    target: Instance,
    *,
    extra_facts: int = 2,
) -> Instance:
    """Add random target facts, likely breaking validity for recovery.

    Used by the J-validity benchmarks: honestly exchanged targets are
    valid, targets with arbitrary extra facts usually are not (the
    extra facts tend to be uncoverable or to violate subsumption).
    """
    rng = _rng(seed)
    domain = sorted(target.constants()) or [Constant("c0")]
    relations = sorted(mapping.target_schema, key=lambda r: r.name)
    atoms = set(target.facts)
    for _ in range(extra_facts):
        relation = rng.choice(relations)
        atoms.add(
            Atom(
                relation.name,
                [rng.choice(domain) for _ in range(relation.arity)],
            )
        )
    return Instance(atoms)


def unique_cover_workload(
    seed: RandomLike = None, *, facts: int = 50, domain_size: Optional[int] = None
) -> tuple[Mapping, Instance]:
    """A workload satisfying Theorem 5's preconditions at any size.

    ``Sigma = {E(x,y) -> F(x,y); G(x) -> K(x), L(x)}`` is quasi-guarded
    safe and every homomorphism into a target over distinct constants
    covers a private fact, so ``|COV(Sigma, J)| = 1``.
    """
    rng = _rng(seed)
    domain_size = domain_size or max(4, facts)
    mapping = Mapping(
        [
            TGD(
                [Atom("E", [Variable("x"), Variable("y")])],
                [Atom("F", [Variable("x"), Variable("y")])],
            ),
            TGD(
                [Atom("G", [Variable("u")])],
                [Atom("K", [Variable("u")]), Atom("L", [Variable("u")])],
            ),
        ]
    )
    atoms: set[Atom] = set()
    while len(atoms) < facts:
        if rng.random() < 0.5:
            atoms.add(
                Atom(
                    "F",
                    [
                        Constant(f"a{rng.randrange(domain_size)}"),
                        Constant(f"b{rng.randrange(domain_size)}"),
                    ],
                )
            )
        else:
            value = Constant(f"g{rng.randrange(domain_size)}")
            atoms.add(Atom("K", [value]))
            atoms.add(Atom("L", [value]))
    return mapping, Instance(atoms)
