"""Checkpoint-backed asynchronous jobs for long-running requests.

A request with ``"mode": "async"`` is accepted with 202 and executed
on a small dedicated worker pool; ``GET /jobs/<id>`` polls it.  Jobs
exist because the interesting recoveries are the *long* ones — the
worst-case-exponential enumerations a synchronous request would time
out on — and those are exactly the runs that want the PR-7 durability
story: when the service is configured with a spool directory, every
job gets a :class:`~repro.resilience.CheckpointManager` on its own
snapshot file with ``resume=True``, so a crashed-and-restarted service
re-submits the job and continues from the last completed covering
instead of from zero (fingerprint validation on resume makes a changed
input a safe cold start).

Job ids are content-derived (tenant, endpoint, a monotone sequence),
records are tenant-scoped — one tenant cannot read another's job — and
the pending queue is bounded: a full queue is an admission rejection
(429), not an unbounded backlog.
"""

from __future__ import annotations

import itertools
import os
import queue
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from ..observability.metrics import METRICS
from ..resilience import CheckpointManager
from .admission import AdmissionRejected
from .wire import WireError

#: A job executes as ``fn(checkpoint_manager) -> (http_status, payload)``.
JobFn = Callable[[Optional[CheckpointManager]], tuple[int, dict[str, Any]]]

_STATES = ("queued", "running", "done", "failed")


@dataclass
class Job:
    """One asynchronous request and (eventually) its response."""

    job_id: str
    tenant: str
    endpoint: str
    state: str = "queued"
    submitted_at: float = field(default_factory=time.time)
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    http_status: Optional[int] = None
    response: Optional[dict[str, Any]] = None
    error: str = ""
    checkpoint_path: str = ""

    def describe(self, *, include_response: bool = True) -> dict[str, Any]:
        info: dict[str, Any] = {
            "job_id": self.job_id,
            "tenant": self.tenant,
            "endpoint": self.endpoint,
            "state": self.state,
            "submitted_at": round(self.submitted_at, 3),
        }
        if self.checkpoint_path:
            info["checkpoint"] = self.checkpoint_path
        if self.started_at is not None:
            info["started_at"] = round(self.started_at, 3)
        if self.finished_at is not None:
            info["finished_at"] = round(self.finished_at, 3)
        if self.state == "failed":
            info["error"] = self.error
        if include_response and self.state == "done":
            info["http_status"] = self.http_status
            info["response"] = self.response
        return info


class JobManager:
    """A bounded queue of jobs drained by daemon worker threads."""

    def __init__(
        self,
        *,
        workers: int = 2,
        max_pending: int = 32,
        spool_dir: Optional[str] = None,
        retry_after_s: float = 1.0,
    ):
        self._queue: "queue.Queue[Optional[Job]]" = queue.Queue()
        self._jobs: dict[str, Job] = {}
        self._fns: dict[str, JobFn] = {}
        self._lock = threading.Lock()
        self._sequence = itertools.count(1)
        self._max_pending = max_pending
        self._retry_after_s = retry_after_s
        self.spool_dir = spool_dir
        if spool_dir:
            os.makedirs(spool_dir, exist_ok=True)
        self._workers = [
            threading.Thread(
                target=self._drain, name=f"repro-job-{i}", daemon=True
            )
            for i in range(max(1, workers))
        ]
        for worker in self._workers:
            worker.start()

    def submit(self, tenant: str, endpoint: str, fn: JobFn) -> Job:
        with self._lock:
            pending = sum(
                1 for job in self._jobs.values() if job.state in ("queued", "running")
            )
            if pending >= self._max_pending:
                METRICS.inc("service_rejections")
                METRICS.inc("service_rejected_job_backlog")
                raise AdmissionRejected("job-backlog", tenant, self._retry_after_s)
            job_id = f"{tenant}-{endpoint}-{next(self._sequence)}"
            job = Job(job_id=job_id, tenant=tenant, endpoint=endpoint)
            if self.spool_dir:
                job.checkpoint_path = os.path.join(
                    self.spool_dir, f"job-{job_id}.ckpt"
                )
            self._jobs[job_id] = job
            self._fns[job_id] = fn
        METRICS.inc("service_jobs_submitted")
        METRICS.inc(f"tenant[{tenant}].jobs_submitted")
        self._queue.put(job)
        return job

    def get(self, tenant: str, job_id: str) -> Job:
        with self._lock:
            job = self._jobs.get(job_id)
        if job is None or job.tenant != tenant:
            # A foreign tenant's probe gets the same 404 as a missing
            # id: job existence is itself tenant-scoped information.
            raise WireError(f"unknown job {job_id!r}", http_status=404)
        return job

    def stats(self) -> dict[str, int]:
        with self._lock:
            counts = {state: 0 for state in _STATES}
            for job in self._jobs.values():
                counts[job.state] += 1
        return counts

    def _drain(self) -> None:
        while True:
            job = self._queue.get()
            if job is None:
                return
            with self._lock:
                fn = self._fns.pop(job.job_id, None)
            if fn is None:  # pragma: no cover - shutdown race
                continue
            job.state = "running"
            job.started_at = time.time()
            manager = None
            if job.checkpoint_path:
                manager = CheckpointManager(job.checkpoint_path, resume=True)
            try:
                job.http_status, job.response = fn(manager)
                job.state = "done"
                METRICS.inc("service_jobs_completed")
            except Exception as error:  # noqa: BLE001 - job boundary
                job.error = f"{type(error).__name__}: {error}"
                job.state = "failed"
                METRICS.inc("service_jobs_failed")
            finally:
                job.finished_at = time.time()

    def shutdown(self, *, timeout_s: float = 5.0) -> None:
        for _ in self._workers:
            self._queue.put(None)
        for worker in self._workers:
            worker.join(timeout=timeout_s)
