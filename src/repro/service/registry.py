"""The mapping registry: named, fingerprinted, precompiled mappings.

Registration is where the service earns its keep.  Parsing Σ, deriving
``SUB(Σ)`` (:func:`repro.core.subsumption.minimal_subsumers`) and
enumerating ``HOM(Σ, J)`` for declared warm targets all happen once,
at ``POST /mappings`` time, inside the tenant's cache partition — so
the first ``/recover`` request hits warm caches instead of paying the
compile cost on the latency path.

Identity is content-based: a mapping's fingerprint is the SHA-256 of
its dependencies (the same :func:`repro.resilience.mapping_fingerprint`
that scopes checkpoint snapshots), so re-registering identical text is
idempotent and registering *different* text under a taken name is a
409 conflict rather than a silent overwrite.

The registry also owns the per-tenant **parsed-target cache**: request
bodies address instances by content (SHA-256 of the DSL text), and a
repeat request gets back the *same* :class:`Instance` object.  That
object identity is what keeps ``Instance.epoch`` stable across
requests, which is what lets the epoch-keyed plan caches
(:mod:`repro.planner`) hit instead of recompiling — re-parsing equal
text would produce an equal instance with a fresh epoch and cold
plans.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Optional

from ..core.hom_sets import hom_set
from ..core.subsumption import minimal_subsumers
from ..data.instances import Instance
from ..engine.cache import PartitionedLRUCache, cache_partition
from ..incremental import RecoveryState
from ..logic.parser import parse_instance, parse_tgds
from ..logic.tgds import Mapping
from ..observability.metrics import METRICS
from ..resilience.checkpoint import instance_fingerprint, mapping_fingerprint
from .wire import WireError, content_key


def tenant_partition(tenant: str) -> str:
    """The cache-partition name backing ``tenant``'s warm state."""
    return f"tenant:{tenant}"


@dataclass
class MaterializedView:
    """A maintained recovery pipeline for one mapping's live target.

    The delta endpoint mutates the view's target through
    :meth:`repro.incremental.RecoveryState.apply_delta`; compute
    requests that omit an explicit target serve from the maintained
    state at near-cache-hit cost.  ``state.target.epoch`` doubles as
    the view's version: it changes on every effective delta, and the
    service keys view-mode result-cache entries on it, so a mutation
    can never serve a stale cached answer.
    """

    state: RecoveryState
    verify: bool
    deltas: int = 0
    created_at: float = field(default_factory=time.time)

    def describe(self) -> dict:
        target = self.state.target
        return {
            "epoch": target.epoch,
            "facts": len(target.facts),
            "deltas": self.deltas,
            "verify_justification": self.verify,
        }


@dataclass
class RegisteredMapping:
    """One tenant's registered mapping plus its precompiled artifacts."""

    mapping_id: str
    tenant: str
    mapping: Mapping
    fingerprint: str
    source_text: str
    subsumer_count: int = 0
    warmed_targets: int = 0
    registered_at: float = field(default_factory=time.time)
    view: Optional[MaterializedView] = None

    def describe(self) -> dict:
        described = {
            "mapping_id": self.mapping_id,
            "tenant": self.tenant,
            "fingerprint": self.fingerprint,
            "tgds": len(list(self.mapping)),
            "subsumers": self.subsumer_count,
            "warmed_targets": self.warmed_targets,
        }
        if self.view is not None:
            described["view"] = self.view.describe()
        return described


class MappingRegistry:
    """Thread-safe, tenant-namespaced store of registered mappings."""

    def __init__(self, *, instance_cache_size: int = 32):
        self._lock = threading.Lock()
        self._by_tenant: dict[str, dict[str, RegisteredMapping]] = {}
        #: Content-addressed parsed targets, partitioned per tenant so
        #: one tenant's distinct-target churn cannot evict another's.
        self._instances = PartitionedLRUCache(
            "service_instance", maxsize=instance_cache_size
        )

    def register(
        self,
        tenant: str,
        text: str,
        *,
        name: Optional[str] = None,
        precompile: bool = True,
        warm_targets: tuple[str, ...] = (),
    ) -> tuple[RegisteredMapping, bool]:
        """Parse, fingerprint and precompile a mapping for ``tenant``.

        Returns ``(entry, created)``; re-registering identical content
        under the same id is idempotent (``created=False``), identical
        content under a *new* name makes a fresh entry, and different
        content under a taken name is a 409 :class:`WireError`.
        """
        mapping = Mapping(parse_tgds(text))
        fingerprint = mapping_fingerprint(mapping)
        mapping_id = name if name is not None else fingerprint[:12]
        with self._lock:
            entries = self._by_tenant.setdefault(tenant, {})
            existing = entries.get(mapping_id)
            if existing is not None:
                if existing.fingerprint != fingerprint:
                    raise WireError(
                        f"mapping {mapping_id!r} is already registered for "
                        f"tenant {tenant!r} with different content "
                        f"(fingerprint {existing.fingerprint[:12]})",
                        http_status=409,
                    )
                return existing, False
            entry = RegisteredMapping(
                mapping_id=mapping_id,
                tenant=tenant,
                mapping=mapping,
                fingerprint=fingerprint,
                source_text=text,
            )
            entries[mapping_id] = entry
        # Precompilation happens outside the registry lock (it can be
        # expensive) but inside the tenant's partition, so every cache
        # it warms is the one this tenant's requests will read.
        if precompile or warm_targets:
            with cache_partition(tenant_partition(tenant)):
                if precompile:
                    entry.subsumer_count = len(minimal_subsumers(mapping))
                for target_text in warm_targets:
                    target = self.target_for(tenant, target_text)
                    hom_set(mapping, target)
                    instance_fingerprint(target)
                    entry.warmed_targets += 1
        METRICS.inc("service_mappings_registered")
        return entry, True

    def get(self, tenant: str, mapping_id: str) -> RegisteredMapping:
        with self._lock:
            entry = self._by_tenant.get(tenant, {}).get(mapping_id)
        if entry is None:
            raise WireError(
                f"unknown mapping {mapping_id!r} for tenant {tenant!r}",
                http_status=404,
            )
        return entry

    def describe(self, tenant: str) -> list[dict]:
        with self._lock:
            entries = list(self._by_tenant.get(tenant, {}).values())
        return [entry.describe() for entry in sorted(entries, key=lambda e: e.mapping_id)]

    def tenants(self) -> list[str]:
        with self._lock:
            return sorted(self._by_tenant)

    def materialize(
        self,
        tenant: str,
        mapping_id: str,
        target: Instance,
        *,
        verify: bool = True,
    ) -> MaterializedView:
        """(Re)build the mapping's materialized recovery view on ``target``.

        Must be called inside the tenant's cache partition: the
        bootstrap warms the same hom-set/plan caches the tenant's
        requests read.  Replaces any previous view wholesale.
        """
        entry = self.get(tenant, mapping_id)
        state = RecoveryState(
            entry.mapping, target, verify_justification=verify
        )
        view = MaterializedView(state=state, verify=verify)
        with self._lock:
            entry.view = view
        METRICS.inc("service_views_materialized")
        return view

    def view_of(
        self, tenant: str, mapping_id: str
    ) -> Optional[MaterializedView]:
        entry = self.get(tenant, mapping_id)
        with self._lock:
            return entry.view

    def target_for(self, tenant: str, text: str) -> Instance:
        """The parsed instance for ``text``, content-addressed per tenant.

        Must be called inside the tenant's cache partition (the service
        layer and :meth:`register` both arrange this); the single-flight
        LRU guarantees concurrent requests for the same content share
        one parse and one Instance object.
        """
        return self._instances.get_or_compute(
            content_key(text), lambda: parse_instance(text)
        )
