"""Recovery-as-a-service: the HTTP application and its transport.

The service exists to amortize compilation.  A one-shot CLI run pays
for parsing Σ, deriving ``SUB(Σ)``, enumerating hom-sets and compiling
join plans on every invocation; a long-running process pays once at
``POST /mappings`` time and serves every later request out of warm,
per-tenant cache partitions.  The moving parts:

* :class:`RecoveryService` — a framework-free request core.  Its
  :meth:`~RecoveryService.dispatch` method maps ``(method, path,
  body, headers)`` to ``(status, payload, extra_headers)`` with no
  socket in sight, so tests and benchmarks can drive the full handler
  stack in-process.
* :class:`_RequestHandler`/:func:`create_server` — a thin
  ``http.server`` transport (stdlib only, threaded) that feeds the
  dispatcher and writes JSON back.
* :func:`running_server` — a context manager that boots the server on
  a background thread and tears it down, for tests and quick_bench.

Request flow for the compute endpoints (``/recover``, ``/certain``,
``/repair``): resolve tenant → admission control (429 + Retry-After
when over the caps) → enter the tenant's cache partition → resolve the
registered mapping and the content-addressed target → build the QoS
deadline (after admission, so queueing does not eat the budget) → run
the core algorithm → attach rung provenance and a
:class:`repro.reporting.RunReport` envelope.  Exact results land in a
per-tenant result cache; degraded ones never do.
"""

from __future__ import annotations

import json
import math
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Iterator, Optional, Tuple

from ..core.cores import core_recoveries
from ..engine.cache import (
    PartitionedLRUCache,
    cache_partition,
    configure_partition,
    partitioned_cache_stats,
)
from ..engine.counters import COUNTERS
from ..errors import (
    BudgetExceededError,
    DeadlineExceededError,
    NotRecoverableError,
    ParseError,
    ReproError,
)
from ..logic.parser import parse_instance, parse_query
from ..observability import TRACER
from ..observability.export import metrics_document
from ..observability.metrics import METRICS
from ..reporting import RunReport
from ..resilience import CheckpointManager
from ..semantics import UnknownSemanticsError, get_semantics
from .admission import AdmissionController, AdmissionRejected
from .jobs import JobManager
from .qos import QoS, provenance, qos_from
from .registry import MappingRegistry, RegisteredMapping, tenant_partition
from .wire import (
    WireError,
    content_key,
    error_payload,
    get_bool,
    get_int,
    get_str,
    instance_text,
    parse_json_body,
    render_answers,
    render_instance,
    render_instances,
    tenant_of,
    valid_name,
)

#: ``dispatch``'s return shape: status code, JSON payload, extra headers.
Response = Tuple[int, dict, dict]


@dataclass(frozen=True)
class ServiceConfig:
    """Tunables for one service process (all enforced, none advisory)."""

    host: str = "127.0.0.1"
    port: int = 8765
    #: Admission control (see :class:`.admission.AdmissionController`).
    max_inflight: int = 8
    max_queue: int = 16
    max_inflight_per_tenant: int = 2
    queue_timeout_s: float = 5.0
    retry_after_s: float = 1.0
    #: Per-tenant budget for every partitioned engine cache (entries).
    tenant_cache_budget: int = 64
    #: Content-addressed parsed targets kept per tenant.
    instance_cache_size: int = 32
    #: Exact responses kept per tenant (0 disables the result cache).
    result_cache_size: int = 256
    #: Spool directory for job checkpoints (None → jobs run without
    #: durability; crash-restart re-runs them from scratch).
    spool_dir: Optional[str] = None
    job_workers: int = 2
    max_pending_jobs: int = 32
    #: Server-side ceiling a request's ``max_recoveries`` cannot exceed.
    max_recoveries: int = 1000
    #: Deadline applied when a request names none (None → unbounded).
    default_deadline_ms: Optional[float] = None


class _Uncacheable(Exception):
    """Escape hatch: a computed response that must not enter the
    result cache (degraded rung, error status) rides this exception
    out of the cache's single-flight compute slot."""

    def __init__(self, status: int, payload: dict):
        self.status = status
        self.payload = payload


class RecoveryService:
    """The request core: routing, tenancy, admission, QoS, caching."""

    def __init__(self, config: Optional[ServiceConfig] = None):
        self.config = config or ServiceConfig()
        cfg = self.config
        self.registry = MappingRegistry(
            instance_cache_size=cfg.instance_cache_size
        )
        self.admission = AdmissionController(
            max_inflight=cfg.max_inflight,
            max_queue=cfg.max_queue,
            max_inflight_per_tenant=cfg.max_inflight_per_tenant,
            queue_timeout_s=cfg.queue_timeout_s,
            retry_after_s=cfg.retry_after_s,
        )
        self.jobs = JobManager(
            workers=cfg.job_workers,
            max_pending=cfg.max_pending_jobs,
            spool_dir=cfg.spool_dir,
            retry_after_s=cfg.retry_after_s,
        )
        self._results: Optional[PartitionedLRUCache] = (
            PartitionedLRUCache("service_result", maxsize=cfg.result_cache_size)
            if cfg.result_cache_size > 0
            else None
        )
        self._known_tenants: set[str] = set()
        self._tenant_lock = threading.Lock()
        # Monotonic, not wall-clock: the chaos harness injects clock
        # skew, and a stepped wall clock must never make /healthz or
        # /metrics report negative uptime.
        self.started_at = time.monotonic()

    # -- tenancy ------------------------------------------------------------

    def _enter_tenant(self, tenant: str) -> str:
        """Pin the tenant's cache budget on first contact; return the
        partition name.  The pin makes the budget immune to global
        ``CONFIG``-driven resizes — a tenant's warm-state footprint is
        a service-level contract, not an engine tunable."""
        partition = tenant_partition(tenant)
        with self._tenant_lock:
            if tenant not in self._known_tenants:
                configure_partition(partition, self.config.tenant_cache_budget)
                self._known_tenants.add(tenant)
        return partition

    # -- dispatch -----------------------------------------------------------

    def dispatch(
        self,
        method: str,
        path: str,
        raw_body: bytes = b"",
        headers: Optional[dict[str, str]] = None,
    ) -> Response:
        """Route one request; never raises (errors become payloads)."""
        headers = headers or {}
        try:
            return self._route(method, path, raw_body, headers)
        except AdmissionRejected as error:
            return (
                429,
                error_payload(
                    "rejected",
                    str(error),
                    reason=error.reason,
                    retry_after_s=error.retry_after_s,
                ),
                # RFC 7231 Retry-After is integer delta-seconds; round
                # sub-second hints up so the header stays parseable.
                {"Retry-After": str(max(1, math.ceil(error.retry_after_s)))},
            )
        except WireError as error:
            kind = {
                404: "not-found",
                409: "conflict",
                422: "unprocessable",
            }.get(error.http_status, "bad-request")
            return error.http_status, error_payload(kind, str(error)), {}
        except UnknownSemanticsError as error:
            return 422, error_payload("unknown-semantics", str(error)), {}
        except DeadlineExceededError as error:
            return (
                504,
                error_payload(
                    "deadline",
                    str(error),
                    progress=dict(error.progress),
                    partial_results=len(error.partial),
                ),
                {},
            )
        except NotRecoverableError as error:
            return 422, error_payload("not-recoverable", str(error)), {}
        except BudgetExceededError as error:
            return (
                422,
                error_payload(
                    "budget", str(error), partial_results=len(error.partial)
                ),
                {},
            )
        except ParseError as error:
            return 400, error_payload("parse-error", str(error)), {}
        except ReproError as error:
            return 500, error_payload("engine-error", str(error)), {}
        except Exception as error:  # noqa: BLE001 - service boundary
            METRICS.inc("service_internal_errors")
            return (
                500,
                error_payload(
                    "internal", f"{type(error).__name__}: {error}"
                ),
                {},
            )

    def _route(
        self, method: str, path: str, raw_body: bytes, headers: dict[str, str]
    ) -> Response:
        path = path.split("?", 1)[0].rstrip("/") or "/"
        if method == "GET":
            if path == "/healthz":
                return self._healthz()
            if path == "/metrics":
                return self._metrics()
            if path == "/mappings":
                tenant = tenant_of({}, headers)
                return 200, {"ok": True, "mappings": self.registry.describe(tenant)}, {}
            if path.startswith("/jobs/"):
                tenant = tenant_of({}, headers)
                job = self.jobs.get(tenant, path[len("/jobs/"):])
                return 200, {"ok": True, "job": job.describe()}, {}
            raise WireError(f"no such resource {path!r}", http_status=404)
        if method == "POST":
            body = parse_json_body(raw_body)
            if path == "/mappings":
                return self._register(body, headers)
            if path.startswith("/mappings/") and path.endswith("/facts"):
                name = path[len("/mappings/") : -len("/facts")]
                return self._facts(
                    valid_name(name, "mapping name"), body, headers
                )
            if path in ("/recover", "/certain", "/repair"):
                return self._compute_endpoint(path[1:], body, headers)
            raise WireError(f"no such resource {path!r}", http_status=404)
        raise WireError(f"method {method} not allowed", http_status=405)

    # -- endpoint: POST /mappings -------------------------------------------

    def _register(self, body: dict, headers: dict[str, str]) -> Response:
        tenant = tenant_of(body, headers)
        self._count_request(tenant, "mappings")
        self._enter_tenant(tenant)
        text = get_str(body, "tgds")
        name = body.get("name")
        if name is not None:
            name = valid_name(name, "mapping name")
        warm = body.get("warm_targets", [])
        if not isinstance(warm, list):
            raise WireError("field 'warm_targets' must be a list")
        warm_texts = tuple(
            instance_text({"target": entry}) for entry in warm
        )
        started = time.perf_counter()
        with self.admission.admit(tenant):
            with TRACER.span("service.mappings"):
                entry, created = self.registry.register(
                    tenant,
                    text,
                    name=name,
                    precompile=get_bool(body, "precompile", True),
                    warm_targets=warm_texts,
                )
        report = RunReport(
            command="service.mappings",
            elapsed_ms=(time.perf_counter() - started) * 1000.0,
            result_size=entry.subsumer_count,
        )
        payload = {
            "ok": True,
            "tenant": tenant,
            "created": created,
            "mapping": entry.describe(),
            "report": report.to_dict(),
        }
        return (201 if created else 200), payload, {}

    # -- endpoint: POST /mappings/<name>/facts ------------------------------

    def _facts(
        self, mapping_id: str, body: dict, headers: dict[str, str]
    ) -> Response:
        """Apply a fact delta to the mapping's materialized recovery view.

        ``target`` (DSL text or a fact list) initializes or replaces
        the view's base instance; ``add``/``remove`` are fact deltas
        maintained semi-naively through
        :class:`repro.incremental.RecoveryState`.  Every effective
        delta advances the view's epoch, which versions the result
        cache: entries computed against the old target can no longer
        be addressed, so no stale exact result survives a mutation.
        """
        tenant = tenant_of(body, headers)
        self._count_request(tenant, "facts")
        self._enter_tenant(tenant)
        entry = self.registry.get(tenant, mapping_id)
        add_text = instance_text(body, "add") if "add" in body else ""
        remove_text = instance_text(body, "remove") if "remove" in body else ""
        verify = get_bool(body, "verify_justification", True)
        qos = qos_from(body, self.config.default_deadline_ms)
        started = time.perf_counter()
        with self.admission.admit(tenant):
            with cache_partition(tenant_partition(tenant)):
                with TRACER.span("service.facts"):
                    add = (
                        parse_instance(add_text).facts if add_text else frozenset()
                    )
                    remove = (
                        parse_instance(remove_text).facts
                        if remove_text
                        else frozenset()
                    )
                    view = self.registry.view_of(tenant, mapping_id)
                    if "target" in body:
                        base = self.registry.target_for(
                            tenant, instance_text(body)
                        )
                        view = self.registry.materialize(
                            tenant, mapping_id, base, verify=verify
                        )
                    elif view is None:
                        raise WireError(
                            f"mapping {mapping_id!r} has no materialized "
                            "target; supply 'target' to initialize the view",
                            http_status=409,
                        )
                    elif view.verify != verify:
                        raise WireError(
                            "materialized view was built with "
                            f"verify_justification={view.verify}; "
                            "re-send 'target' to rebuild it differently"
                        )
                    before = view.state.target
                    child = view.state.apply_delta(
                        add=add, remove=remove, deadline=qos.deadline()
                    )
                    if child is not before:
                        view.deltas += 1
                    valid = bool(view.state.recoveries)
        report = RunReport(
            command="service.facts",
            elapsed_ms=(time.perf_counter() - started) * 1000.0,
            result_size=len(child.facts),
        )
        payload = {
            "ok": True,
            "tenant": tenant,
            "mapping": entry.mapping_id,
            "fingerprint": entry.fingerprint,
            "applied": {"added": len(add), "removed": len(remove)},
            "view": {**view.describe(), "valid": valid},
            "report": report.to_dict(),
        }
        return 200, payload, {}

    # -- endpoints: POST /recover | /certain | /repair ----------------------

    def _strategy_of(self, body: dict):
        """Resolve the request's semantics mode (default: config's).

        An unknown name raises
        :class:`~repro.semantics.UnknownSemanticsError`, which
        :meth:`dispatch` maps to a 422 listing the registered modes.
        """
        name = body.get("semantics")
        if name is not None and not isinstance(name, str):
            raise WireError("field 'semantics' must be a string")
        strategy = get_semantics(name)
        METRICS.inc(f"service_semantics[{strategy.name}]")
        return strategy

    def _compute_endpoint(
        self, endpoint: str, body: dict, headers: dict[str, str]
    ) -> Response:
        tenant = tenant_of(body, headers)
        self._count_request(tenant, endpoint)
        self._enter_tenant(tenant)
        entry = self.registry.get(tenant, get_str(body, "mapping"))
        qos = qos_from(body, self.config.default_deadline_ms)
        if body.get("mode", "sync") == "async":
            job = self.jobs.submit(
                tenant,
                endpoint,
                lambda manager: self._admitted_execute(
                    endpoint, tenant, entry, body, qos, manager
                )[:2],
            )
            return (
                202,
                {
                    "ok": True,
                    "tenant": tenant,
                    "job": job.describe(include_response=False),
                    "poll": f"/jobs/{job.job_id}",
                },
                {},
            )
        return self._admitted_execute(endpoint, tenant, entry, body, qos, None)

    def _admitted_execute(
        self,
        endpoint: str,
        tenant: str,
        entry: RegisteredMapping,
        body: dict,
        qos: QoS,
        manager: Optional[CheckpointManager],
    ) -> Response:
        with self.admission.admit(tenant):
            status, payload = self._execute(
                endpoint, tenant, entry, body, qos, manager
            )
        return status, payload, {}

    def _execute(
        self,
        endpoint: str,
        tenant: str,
        entry: RegisteredMapping,
        body: dict,
        qos: QoS,
        manager: Optional[CheckpointManager],
    ) -> tuple[int, dict]:
        if endpoint in ("recover", "certain") and "target" not in body:
            return self._execute_view(endpoint, tenant, entry, body, qos)
        target_text = instance_text(body)
        runner, options = self._plan_run(endpoint, entry, body, qos, manager)
        cache_key = (
            endpoint,
            entry.fingerprint,
            content_key(target_text),
            options,
        )
        with cache_partition(tenant_partition(tenant)):
            target = self.registry.target_for(tenant, target_text)
            return self._cached_response(
                cache_key, body, lambda: runner(tenant, target)
            )

    def _cached_response(
        self,
        cache_key: tuple,
        body: dict,
        compute: Callable[[], tuple[int, dict]],
    ) -> tuple[int, dict]:
        """Serve from the per-tenant result cache, computing on miss.

        Must run inside the tenant's cache partition.  Only exact 200
        responses enter the cache; degraded and error responses depend
        on the deadline that produced them and ride out uncached.
        """
        if self._results is None or get_bool(body, "no_cache", False):
            status, payload = compute()
            return status, {**payload, "cached": False}
        fresh: list[tuple[int, dict]] = []

        def guarded() -> tuple[int, dict]:
            status, payload = compute()
            fresh.append((status, payload))
            if status != 200 or payload.get("status") != "exact":
                raise _Uncacheable(status, payload)
            return status, payload

        try:
            status, payload = self._results.get_or_compute(cache_key, guarded)
        except _Uncacheable as partial:
            return partial.status, {**partial.payload, "cached": False}
        return status, {**payload, "cached": not fresh}

    def _execute_view(
        self,
        endpoint: str,
        tenant: str,
        entry: RegisteredMapping,
        body: dict,
        qos: QoS,
    ) -> tuple[int, dict]:
        """Serve ``/recover`` or ``/certain`` from the materialized view.

        The result-cache key carries the view's current epoch instead
        of a target content hash: a delta gives the target a fresh
        epoch, so entries cached before the mutation are unreachable
        and warm requests after a small delta are near-cache-hit speed
        without ever serving a stale answer.
        """
        strategy = self._strategy_of(body)
        if strategy.name != "paper":
            raise WireError(
                "materialized views are maintained under the 'paper' "
                f"semantics; supply 'target' explicitly to use mode "
                f"{strategy.name!r}"
            )
        view = self.registry.view_of(tenant, entry.mapping_id)
        if view is None:
            raise WireError(
                "missing required field 'target' and mapping "
                f"{entry.mapping_id!r} has no materialized view "
                f"(POST /mappings/{entry.mapping_id}/facts to create one)"
            )
        verify = get_bool(body, "verify_justification", True)
        if verify != view.verify:
            raise WireError(
                "materialized view was built with "
                f"verify_justification={view.verify}"
            )
        state = view.state
        METRICS.inc("service_view_requests")
        deadline = qos.deadline()
        if endpoint == "recover":
            cores = get_bool(body, "cores", False)
            options: tuple = (verify, cores)

            def compute() -> tuple[int, dict]:
                started = time.perf_counter()
                with TRACER.span("service.recover"):
                    recoveries = state.recoveries
                return self._recovery_payload(
                    "recover",
                    tenant,
                    entry,
                    recoveries,
                    cores,
                    None,
                    started,
                    rung_override="incremental",
                    detail_override="materialized view",
                )

        else:
            query_text = get_str(body, "query")
            query = parse_query(query_text)
            options = (verify, content_key(query_text))

            def compute() -> tuple[int, dict]:
                started = time.perf_counter()
                with TRACER.span("service.certain"):
                    answers = state.certain(query, deadline)
                rendered = render_answers(answers)
                payload = self._envelope(
                    "certain",
                    tenant,
                    entry,
                    "exact",
                    "incremental",
                    "materialized view",
                    started,
                    result_size=len(rendered),
                    manager=None,
                    result={"answers": rendered, "count": len(rendered)},
                )
                return 200, payload

        cache_key = (
            endpoint,
            entry.fingerprint,
            ("view", entry.mapping_id, state.target.epoch),
            options,
        )
        with cache_partition(tenant_partition(tenant)):
            return self._cached_response(cache_key, body, compute)

    def _plan_run(
        self,
        endpoint: str,
        entry: RegisteredMapping,
        body: dict,
        qos: QoS,
        manager: Optional[CheckpointManager],
    ) -> tuple[Callable[[str, Any], tuple[int, dict]], tuple]:
        """Validate the endpoint-specific fields *before* admission and
        return ``(runner, options_key)``; the runner does the actual
        core-layer call once a slot and the tenant partition are held."""
        cfg = self.config
        strategy = self._strategy_of(body)
        max_recoveries = get_int(
            body, "max_recoveries", cfg.max_recoveries, maximum=cfg.max_recoveries
        )
        jobs = get_int(body, "jobs", None, maximum=64)
        verify = get_bool(body, "verify_justification", True)
        if endpoint == "recover":
            cores = get_bool(body, "cores", False)
            options = (strategy.name, max_recoveries, verify, cores)

            def run(tenant: str, target: Any) -> tuple[int, dict]:
                started = time.perf_counter()
                with TRACER.span("service.recover"):
                    outcome = strategy.recoveries(
                        entry.mapping,
                        target,
                        max_recoveries=max_recoveries,
                        verify_justification=verify,
                        jobs=jobs,
                        deadline=qos.deadline(),
                        mode=qos.mode,
                        checkpoint=manager,
                    )
                return self._recovery_payload(
                    "recover",
                    tenant,
                    entry,
                    outcome,
                    cores,
                    manager,
                    started,
                    semantics=strategy.name,
                )

            return run, options
        if endpoint == "certain":
            query_text = get_str(body, "query")
            query = parse_query(query_text)
            options = (strategy.name, max_recoveries, verify, content_key(query_text))

            def run(tenant: str, target: Any) -> tuple[int, dict]:
                started = time.perf_counter()
                with TRACER.span("service.certain"):
                    outcome = strategy.certain(
                        query,
                        entry.mapping,
                        target,
                        max_recoveries=max_recoveries,
                        verify_justification=verify,
                        jobs=jobs,
                        deadline=qos.deadline(),
                        mode=qos.mode,
                        checkpoint=manager,
                    )
                answers, status, rung, detail = provenance(outcome)
                rendered = render_answers(answers)
                payload = self._envelope(
                    "certain",
                    tenant,
                    entry,
                    status,
                    rung,
                    detail,
                    started,
                    result_size=len(rendered),
                    manager=manager,
                    result={"answers": rendered, "count": len(rendered)},
                    semantics=strategy.name,
                )
                return 200, payload

            return run, options
        # endpoint == "repair"
        max_removals = get_int(body, "max_removals", 4, minimum=0, maximum=16)
        options = (strategy.name, max_recoveries, max_removals)

        def run(tenant: str, target: Any) -> tuple[int, dict]:
            started = time.perf_counter()
            with TRACER.span("service.repair"):
                repaired_list, outcome = strategy.repair_and_recover(
                    entry.mapping,
                    target,
                    max_recoveries=max_recoveries,
                    max_removals=max_removals,
                    deadline=qos.deadline(),
                    mode=qos.mode,
                )
            recoveries, status, rung, detail = provenance(outcome)
            recoveries = list(recoveries)
            result: dict[str, Any] = {"repaired": bool(repaired_list)}
            if repaired_list:
                # "repair"/"removed" keep the historical single-repair
                # shape (first repair wins); "repairs" carries the full
                # set for modes that quantify over several.
                result["repair"] = render_instance(repaired_list[0])
                result["removed"] = sorted(
                    str(fact)
                    for fact in set(target.facts) - set(repaired_list[0].facts)
                )
                result["repairs"] = render_instances(repaired_list)
            result["count"] = len(recoveries)
            result["recoveries"] = render_instances(recoveries)
            payload = self._envelope(
                "repair",
                tenant,
                entry,
                status,
                rung,
                detail,
                started,
                result_size=len(recoveries),
                manager=None,
                result=result,
                semantics=strategy.name,
            )
            return 200, payload

        return run, options

    def _recovery_payload(
        self,
        endpoint: str,
        tenant: str,
        entry: RegisteredMapping,
        outcome: Any,
        cores: bool,
        manager: Optional[CheckpointManager],
        started: float,
        rung_override: Optional[str] = None,
        detail_override: str = "",
        semantics: str = "paper",
    ) -> tuple[int, dict]:
        recoveries, status, rung, detail = provenance(outcome)
        if rung_override is not None and status == "exact":
            rung, detail = rung_override, detail_override
        recoveries = list(recoveries)
        if cores and recoveries:
            recoveries = core_recoveries(recoveries)
        # Theorem 3: an *exact* empty enumeration means J is not valid
        # for recovery; a degraded empty one is inconclusive.
        valid: Optional[bool] = bool(recoveries)
        if not recoveries and status != "exact":
            valid = None
        result = {
            "valid": valid,
            "count": len(recoveries),
            "recoveries": render_instances(recoveries),
        }
        payload = self._envelope(
            endpoint,
            tenant,
            entry,
            status,
            rung,
            detail,
            started,
            result_size=len(recoveries),
            manager=manager,
            result=result,
            semantics=semantics,
        )
        return 200, payload

    def _envelope(
        self,
        endpoint: str,
        tenant: str,
        entry: RegisteredMapping,
        status: str,
        rung: str,
        detail: str,
        started: float,
        *,
        result_size: int,
        manager: Optional[CheckpointManager],
        result: dict,
        semantics: str = "paper",
    ) -> dict:
        # Per-request counter deltas are not attributable under
        # concurrency (METRICS is process-global), so the per-request
        # report carries none; process-wide truth lives at /metrics.
        report = RunReport(
            command=f"service.{endpoint}",
            status=status,
            rung=rung,
            semantics=semantics,
            detail=detail,
            elapsed_ms=(time.perf_counter() - started) * 1000.0,
            result_size=result_size,
            checkpoint=getattr(manager, "path", "") if manager else "",
        )
        return {
            "ok": True,
            "tenant": tenant,
            "mapping": entry.mapping_id,
            "fingerprint": entry.fingerprint,
            "status": status,
            "rung": rung,
            "semantics": semantics,
            "result": result,
            "report": report.to_dict(),
        }

    # -- endpoints: GET /metrics | /healthz ---------------------------------

    def _metrics(self) -> Response:
        doc = metrics_document(
            counters=COUNTERS.snapshot(),
            service={
                "uptime_s": round(time.monotonic() - self.started_at, 3),
                "tenants": self.registry.tenants(),
                "admission": self.admission.stats(),
                "jobs": self.jobs.stats(),
                "cache_partitions": partitioned_cache_stats(),
            },
        )
        return 200, doc, {}

    def _healthz(self) -> Response:
        stats = self.admission.stats()
        return (
            200,
            {
                "ok": True,
                "uptime_s": round(time.monotonic() - self.started_at, 3),
                "tenants": len(self.registry.tenants()),
                "executing": stats["executing"],
                "queued": stats["queued"],
                "jobs": self.jobs.stats(),
            },
            {},
        )

    def _count_request(self, tenant: str, endpoint: str) -> None:
        METRICS.inc("service_requests")
        METRICS.inc(f"tenant[{tenant}].requests")
        METRICS.inc(f"tenant[{tenant}].{endpoint}_requests")

    def shutdown(self) -> None:
        self.jobs.shutdown()


# -- transport ---------------------------------------------------------------


class _RequestHandler(BaseHTTPRequestHandler):
    """Feeds the stdlib HTTP server into :meth:`RecoveryService.dispatch`."""

    protocol_version = "HTTP/1.1"
    server_version = "repro-service/1.0"

    def _respond(self) -> None:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        service: RecoveryService = self.server.service  # type: ignore[attr-defined]
        status, payload, extra = service.dispatch(
            self.command, self.path, raw, dict(self.headers.items())
        )
        body = json.dumps(payload, sort_keys=False).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in extra.items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    do_GET = _respond
    do_POST = _respond

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        pass  # the service's telemetry lives in /metrics, not stderr


class _Server(ThreadingHTTPServer):
    daemon_threads = True
    #: Listen backlog beyond which the kernel refuses connections —
    #: admission control proper happens in AdmissionController.
    request_queue_size = 32


def create_server(
    config: Optional[ServiceConfig] = None,
    service: Optional[RecoveryService] = None,
) -> _Server:
    """A ready-to-serve HTTP server wrapping a :class:`RecoveryService`."""
    config = config or ServiceConfig()
    server = _Server((config.host, config.port), _RequestHandler)
    server.service = service or RecoveryService(config)  # type: ignore[attr-defined]
    return server


@contextmanager
def running_server(
    config: Optional[ServiceConfig] = None,
) -> Iterator[tuple[RecoveryService, str]]:
    """Boot a server on a daemon thread; yield ``(service, base_url)``.

    Binding to port 0 (the tests' default) lets the OS pick a free
    port; the yielded URL reflects the actual binding.
    """
    server = create_server(config)
    host, port = server.server_address[:2]
    thread = threading.Thread(
        target=server.serve_forever, name="repro-service", daemon=True
    )
    thread.start()
    service: RecoveryService = server.service  # type: ignore[attr-defined]
    try:
        yield service, f"http://{host}:{port}"
    finally:
        server.shutdown()
        server.server_close()
        service.shutdown()
        thread.join(timeout=5.0)
