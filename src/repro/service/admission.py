"""Admission control: bounded queueing and per-tenant in-flight caps.

The enumeration engine's worst case is exponential, so an unbounded
request intake is an unbounded memory/CPU commitment.  The controller
enforces three limits, checked in order:

1. **per-tenant cap** — a tenant may hold at most
   ``max_inflight_per_tenant`` admitted slots (queued *or* executing).
   Over the cap the request is rejected immediately: waiting cannot
   help, because only that tenant's own completions free its slots,
   and counting queued requests against the cap is what stops one
   tenant from filling the shared queue.
2. **bounded queue** — when all ``max_inflight`` execution slots are
   busy, up to ``max_queue`` requests wait; a full queue rejects
   immediately.
3. **queue timeout** — a queued request that does not get a slot
   within ``queue_timeout_s`` is rejected, so clients see bounded
   worst-case latency instead of an unbounded stall.

Every rejection carries ``retry_after_s``, surfaced as the HTTP
``Retry-After`` header with a 429 status.  Admission order among
waiters follows the condition variable's FIFO wakeup; fairness beyond
that is deliberately out of scope.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Iterator

from ..errors import ReproError
from ..observability.metrics import METRICS


class AdmissionRejected(ReproError):
    """Raised when a request is refused at the door (HTTP 429)."""

    def __init__(self, reason: str, tenant: str, retry_after_s: float):
        super().__init__(
            f"request rejected ({reason}) for tenant {tenant!r}; "
            f"retry after {retry_after_s:g}s"
        )
        self.reason = reason
        self.tenant = tenant
        self.retry_after_s = retry_after_s


class AdmissionController:
    """Counting-semaphore admission with per-tenant bookkeeping."""

    def __init__(
        self,
        *,
        max_inflight: int = 8,
        max_queue: int = 16,
        max_inflight_per_tenant: int = 2,
        queue_timeout_s: float = 5.0,
        retry_after_s: float = 1.0,
    ):
        if min(max_inflight, max_queue, max_inflight_per_tenant) < 1:
            raise ValueError("admission limits must be positive")
        self.max_inflight = max_inflight
        self.max_queue = max_queue
        self.max_inflight_per_tenant = max_inflight_per_tenant
        self.queue_timeout_s = queue_timeout_s
        self.retry_after_s = retry_after_s
        self._cond = threading.Condition()
        self._executing = 0
        self._queued = 0
        self._per_tenant: dict[str, int] = {}

    def _reject(self, reason: str, tenant: str) -> AdmissionRejected:
        METRICS.inc("service_rejections")
        METRICS.inc(f"service_rejected_{reason}")
        METRICS.inc(f"tenant[{tenant}].rejections")
        return AdmissionRejected(
            reason.replace("_", "-"), tenant, self.retry_after_s
        )

    @contextmanager
    def admit(self, tenant: str) -> Iterator[None]:
        """Hold one execution slot for the duration of the block."""
        deadline = time.monotonic() + self.queue_timeout_s
        with self._cond:
            held = self._per_tenant.get(tenant, 0)
            if held >= self.max_inflight_per_tenant:
                raise self._reject("tenant_limit", tenant)
            if self._executing >= self.max_inflight:
                if self._queued >= self.max_queue:
                    raise self._reject("queue_full", tenant)
                # Queue: the tenant slot is claimed while waiting, so a
                # single tenant cannot occupy the whole shared queue.
                self._queued += 1
                self._per_tenant[tenant] = held + 1
                try:
                    while self._executing >= self.max_inflight:
                        remaining = deadline - time.monotonic()
                        if remaining <= 0 or not self._cond.wait(remaining):
                            raise self._reject("queue_timeout", tenant)
                except AdmissionRejected:
                    self._release_tenant_locked(tenant)
                    raise
                finally:
                    self._queued -= 1
            else:
                self._per_tenant[tenant] = held + 1
            self._executing += 1
        METRICS.inc("service_admitted")
        try:
            yield
        finally:
            with self._cond:
                self._executing -= 1
                self._release_tenant_locked(tenant)
                self._cond.notify()

    def _release_tenant_locked(self, tenant: str) -> None:
        remaining = self._per_tenant.get(tenant, 1) - 1
        if remaining <= 0:
            self._per_tenant.pop(tenant, None)
        else:
            self._per_tenant[tenant] = remaining

    def stats(self) -> dict:
        with self._cond:
            return {
                "executing": self._executing,
                "queued": self._queued,
                "per_tenant": dict(sorted(self._per_tenant.items())),
                "max_inflight": self.max_inflight,
                "max_queue": self.max_queue,
                "max_inflight_per_tenant": self.max_inflight_per_tenant,
            }
