"""Per-request QoS: deadlines mapped onto the resilience ladder.

A request's quality-of-service contract is two fields:

* ``deadline_ms`` — a wall-clock budget for the whole computation,
  turned into a fresh :class:`repro.resilience.Deadline` at execution
  time (deadlines start ticking at construction, so the object is
  built *after* admission — queueing time does not eat the budget);
* ``qos`` — ``"exact"`` (the default: expiry is a 504 with progress
  attached) or ``"degrade"`` (expiry walks the PR-2 degradation
  ladder and returns a sound-but-possibly-incomplete answer).

Either way the response carries rung provenance: ``status`` is
``"exact"`` or ``"sound-incomplete"`` and ``rung`` names the ladder
rung that produced the value, exactly as
:class:`~repro.resilience.AnytimeResult` reports them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from ..resilience import AnytimeResult, Deadline
from .wire import WireError, get_number

QOS_MODES = ("exact", "degrade")


@dataclass(frozen=True)
class QoS:
    """One request's deadline/degradation contract."""

    deadline_ms: Optional[float] = None
    degrade: bool = False

    @property
    def mode(self) -> str:
        """The resilience ``mode=`` argument for the core entry points."""
        return "degrade" if self.degrade else "raise"

    def deadline(self) -> Optional[Deadline]:
        """A fresh deadline, started now (call after admission)."""
        if self.deadline_ms is None:
            return None
        return Deadline(wall_ms=self.deadline_ms)


def qos_from(body: dict[str, Any], default_deadline_ms: Optional[float]) -> QoS:
    """Validate and extract the QoS fields of a request body."""
    deadline_ms = get_number(body, "deadline_ms", default_deadline_ms)
    mode = body.get("qos", "exact")
    if mode not in QOS_MODES:
        raise WireError(f"field 'qos' must be one of {QOS_MODES}, got {mode!r}")
    return QoS(deadline_ms=deadline_ms, degrade=(mode == "degrade"))


def provenance(result: Any) -> tuple[Any, str, str, str]:
    """``(value, status, rung, detail)`` for any core-layer result.

    Unwraps :class:`AnytimeResult` (degraded runs); plain values are
    exact answers produced by full enumeration.
    """
    if isinstance(result, AnytimeResult):
        return result.value, result.status, result.rung, result.detail
    return result, "exact", "enumeration", ""
