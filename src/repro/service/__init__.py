"""Recovery-as-a-service: a long-running multi-tenant HTTP front end.

The service turns the library's one-shot entry points into a process
that *keeps its caches*: mappings are registered once (parsed,
``SUB(Σ)`` derived, hom-sets warmed), and every later ``/recover``,
``/certain`` or ``/repair`` request runs against warm per-tenant cache
partitions.  Admission control bounds concurrency and queueing (429 +
``Retry-After``), per-request QoS maps deadlines onto the resilience
ladder with rung provenance in every response, and ``mode: "async"``
requests become checkpoint-backed jobs that survive a service restart.

Transport is the stdlib's threaded ``http.server`` — the service has
no dependency the library itself does not have.  See ``docs/API.md``
for the endpoint reference and ``repro serve`` for the CLI entry.
"""

from .admission import AdmissionController, AdmissionRejected
from .app import RecoveryService, ServiceConfig, create_server, running_server
from .jobs import Job, JobManager
from .qos import QoS, provenance, qos_from
from .registry import MappingRegistry, RegisteredMapping, tenant_partition
from .wire import WireError, content_key, error_payload, parse_json_body

__all__ = [
    "AdmissionController",
    "AdmissionRejected",
    "Job",
    "JobManager",
    "MappingRegistry",
    "QoS",
    "RecoveryService",
    "RegisteredMapping",
    "ServiceConfig",
    "WireError",
    "content_key",
    "create_server",
    "error_payload",
    "parse_json_body",
    "provenance",
    "qos_from",
    "running_server",
    "tenant_partition",
]
