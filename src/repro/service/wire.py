"""Wire schemas: request validation and response serialization.

Everything the service reads off the wire funnels through this module,
so a malformed request dies here with a :class:`WireError` (HTTP 400)
and a well-formed one arrives at the handlers as plain typed values.
On the way out, instances, answers and run summaries are rendered the
same way everywhere: facts as their sorted DSL strings (exactly what
``save_instance`` writes), answers as sorted term-string tuples
(matching ``format_answers``' ordering), and the run summary through
:meth:`repro.reporting.RunReport.to_dict` — the same serializer the
CLI's ``--metrics-json`` path uses, so a service response and a CLI
metrics document never disagree on shape.
"""

from __future__ import annotations

import hashlib
import json
import re
from typing import Any, Iterable, Optional

from ..data.instances import Instance
from ..data.terms import Term
from ..errors import ReproError

#: Tenants are path-safe identifiers: they become cache-partition names
#: and checkpoint-spool path components.
_TENANT_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9_.-]{0,63}$")

#: Mapping ids follow the same grammar (registration may also derive
#: one from the mapping fingerprint's hex prefix, which matches).
_NAME_RE = _TENANT_RE

DEFAULT_TENANT = "public"


class WireError(ReproError):
    """A request the service refuses before doing any work.

    ``http_status`` is the response code the transport layer should
    use; the default 400 covers malformed bodies, 404/409 are raised
    by lookups and registration conflicts.
    """

    def __init__(self, message: str, http_status: int = 400):
        super().__init__(message)
        self.http_status = http_status


def parse_json_body(raw: bytes) -> dict[str, Any]:
    """Decode a request body as a JSON object (``{}`` for empty)."""
    if not raw:
        return {}
    try:
        body = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise WireError(f"request body is not valid JSON: {error}") from None
    if not isinstance(body, dict):
        raise WireError("request body must be a JSON object")
    return body


def tenant_of(body: dict[str, Any], headers: dict[str, str]) -> str:
    """The request's tenant: ``X-Tenant`` header, body field, or default."""
    tenant = headers.get("X-Tenant") or headers.get("x-tenant")
    if tenant is None:
        tenant = body.get("tenant", DEFAULT_TENANT)
    if not isinstance(tenant, str) or not _TENANT_RE.match(tenant):
        raise WireError(f"invalid tenant name {tenant!r}")
    return tenant


def valid_name(name: Any, what: str) -> str:
    if not isinstance(name, str) or not _NAME_RE.match(name):
        raise WireError(f"invalid {what} {name!r}")
    return name


def get_str(body: dict[str, Any], field: str, *, required: bool = True) -> Optional[str]:
    value = body.get(field)
    if value is None:
        if required:
            raise WireError(f"missing required field {field!r}")
        return None
    if not isinstance(value, str) or not value.strip():
        raise WireError(f"field {field!r} must be a non-empty string")
    return value


def get_int(
    body: dict[str, Any],
    field: str,
    default: Optional[int] = None,
    *,
    minimum: int = 1,
    maximum: Optional[int] = None,
) -> Optional[int]:
    value = body.get(field, default)
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, int):
        raise WireError(f"field {field!r} must be an integer")
    if value < minimum or (maximum is not None and value > maximum):
        bound = f">= {minimum}" + (f" and <= {maximum}" if maximum else "")
        raise WireError(f"field {field!r} must be {bound}, got {value}")
    return value


def get_number(
    body: dict[str, Any], field: str, default: Optional[float] = None
) -> Optional[float]:
    value = body.get(field, default)
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise WireError(f"field {field!r} must be a number")
    if value <= 0:
        raise WireError(f"field {field!r} must be positive, got {value}")
    return float(value)


def get_bool(body: dict[str, Any], field: str, default: bool = False) -> bool:
    value = body.get(field, default)
    if not isinstance(value, bool):
        raise WireError(f"field {field!r} must be a boolean")
    return value


def instance_text(body: dict[str, Any], field: str = "target") -> str:
    """The DSL text of an instance field: a string or a list of facts.

    The two accepted spellings normalize to the same text (facts joined
    by newlines), so the content hash — and therefore the parsed-target
    and result caches — treat them identically.
    """
    value = body.get(field)
    if value is None:
        raise WireError(f"missing required field {field!r}")
    if isinstance(value, str):
        return value
    if isinstance(value, list) and all(isinstance(fact, str) for fact in value):
        return "\n".join(value)
    raise WireError(f"field {field!r} must be DSL text or a list of fact strings")


def content_key(text: str) -> str:
    """A SHA-256 content address for wire text (cache key material)."""
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


# -- response rendering ------------------------------------------------------


def render_instance(instance: Instance) -> list[str]:
    """An instance as its sorted fact strings (``save_instance`` order)."""
    return [str(fact) for fact in instance]


def render_instances(instances: Iterable[Instance]) -> list[list[str]]:
    return sorted(render_instance(instance) for instance in instances)


def render_answers(answers: Iterable[tuple[Term, ...]]) -> list[list[str]]:
    """Query answers as sorted lists of term strings."""
    return sorted([str(term) for term in answer] for answer in answers)


def error_payload(kind: str, message: str, **detail: Any) -> dict[str, Any]:
    payload: dict[str, Any] = {
        "ok": False,
        "error": {"kind": kind, "message": message},
    }
    if detail:
        payload["error"].update(detail)
    return payload
