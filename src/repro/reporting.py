"""Plain-text tables for the benchmark harness.

Every benchmark prints a table comparing the paper's stated artifact
(an instance, an answer set, a count) with the measured one, using the
helpers below, so ``pytest benchmarks/ --benchmark-only -s`` doubles as
the reproduction report.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from .data.instances import Instance
from .data.terms import Term


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]], title: str = ""
) -> str:
    """Render rows as an aligned ASCII table."""
    rendered = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    line = "+".join("-" * (w + 2) for w in widths)
    line = f"+{line}+"

    def fmt_row(cells: Sequence[str]) -> str:
        inner = " | ".join(c.ljust(w) for c, w in zip(cells, widths))
        return f"| {inner} |"

    parts = []
    if title:
        parts.append(title)
    parts.append(line)
    parts.append(fmt_row(list(headers)))
    parts.append(line)
    for row in rendered:
        parts.append(fmt_row(row))
    parts.append(line)
    return "\n".join(parts)


def format_answers(answers: Iterable[tuple[Term, ...]]) -> str:
    """Render a set of query answers deterministically."""
    rendered = sorted(
        "(" + ", ".join(str(t) for t in answer) + ")" for answer in answers
    )
    return "{" + ", ".join(rendered) + "}"


def format_instances(instances: Iterable[Instance], limit: int = 10) -> str:
    """Render a set of instances, eliding after ``limit`` entries."""
    listed = list(instances)
    lines = [f"  {instance!r}" for instance in listed[:limit]]
    if len(listed) > limit:
        lines.append(f"  ... and {len(listed) - limit} more")
    return "\n".join(lines)


def format_counters(snapshot: dict) -> str:
    """Render an engine-counter snapshot as an aligned table.

    ``snapshot`` is what :meth:`repro.engine.counters.EngineCounters.snapshot`
    returns: raw counters plus the hit/miss totals of every registered
    LRU cache.  Keys are sorted so the output is deterministic; the
    table backs the CLI's ``--stats`` flag and the benchmark reports.
    """
    rows = [(name, snapshot[name]) for name in sorted(snapshot)]
    return format_table(("counter", "value"), rows, title="engine counters")
