"""Plain-text tables and run reports for the CLI and benchmarks.

Every benchmark prints a table comparing the paper's stated artifact
(an instance, an answer set, a count) with the measured one, using the
helpers below, so ``pytest benchmarks/ --benchmark-only -s`` doubles as
the reproduction report.  :class:`RunReport` is the structured summary
the CLI emits under ``--stats``: what ran, whether the answer is exact
or degraded, how long it took, and the engine counters accumulated on
the way.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from .data.instances import Instance
from .data.terms import Term


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]], title: str = ""
) -> str:
    """Render rows as an aligned ASCII table."""
    rendered = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    line = "+".join("-" * (w + 2) for w in widths)
    line = f"+{line}+"

    def fmt_row(cells: Sequence[str]) -> str:
        inner = " | ".join(c.ljust(w) for c, w in zip(cells, widths))
        return f"| {inner} |"

    parts = []
    if title:
        parts.append(title)
    parts.append(line)
    parts.append(fmt_row(list(headers)))
    parts.append(line)
    for row in rendered:
        parts.append(fmt_row(row))
    parts.append(line)
    return "\n".join(parts)


def format_answers(answers: Iterable[tuple[Term, ...]]) -> str:
    """Render a set of query answers deterministically."""
    rendered = sorted(
        "(" + ", ".join(str(t) for t in answer) + ")" for answer in answers
    )
    return "{" + ", ".join(rendered) + "}"


def format_instances(instances: Iterable[Instance], limit: int = 10) -> str:
    """Render a set of instances, eliding after ``limit`` entries."""
    listed = list(instances)
    lines = [f"  {instance!r}" for instance in listed[:limit]]
    if len(listed) > limit:
        lines.append(f"  ... and {len(listed) - limit} more")
    return "\n".join(lines)


def format_counters(snapshot: dict) -> str:
    """Render an engine-counter snapshot as an aligned table.

    ``snapshot`` is what :meth:`repro.engine.counters.EngineCounters.snapshot`
    returns: raw counters plus the hit/miss totals of every registered
    LRU cache.  Keys are sorted so the output is deterministic; the
    table backs the CLI's ``--stats`` flag and the benchmark reports.
    """
    rows = [(name, snapshot[name]) for name in sorted(snapshot)]
    return format_table(("counter", "value"), rows, title="engine counters")


@dataclass(frozen=True)
class RunReport:
    """Structured summary of one CLI invocation (or library run).

    ``status``/``rung`` mirror :class:`repro.resilience.AnytimeResult`
    when resilience was in play: ``exact`` for a complete answer,
    ``sound-incomplete`` for a degraded one, and the ladder rung that
    produced it.  For a plain run without a deadline they are
    ``"exact"`` / ``"enumeration"``.  ``counters`` is a metrics
    snapshot (see :data:`repro.observability.METRICS`), so deadline
    hits, chunk retries and degradations taken during the run are all
    recorded.  ``trace`` — when the run recorded spans (CLI ``--trace``
    / ``--metrics-json``) — is the span forest as
    ``repro.observability.TRACER.to_dict()`` produced it.
    """

    command: str
    status: str = "exact"
    rung: str = "enumeration"
    #: Recovery-semantics mode the run answered under ("" when the
    #: command predates modes or the default applied implicitly).
    semantics: str = ""
    detail: str = ""
    elapsed_ms: float = 0.0
    result_size: int = 0
    counters: dict = field(default_factory=dict)
    trace: Optional[list] = None
    #: Snapshot file the run checkpointed to ("" when checkpointing was
    #: off) and what happened on resume: "cold" (no resume requested),
    #: "no-snapshot", "resumed", "complete", "rejected-corrupt" or
    #: "rejected-mismatch" (see repro.resilience.checkpoint).
    checkpoint: str = ""
    resume_outcome: str = ""

    def to_dict(self) -> dict:
        """A JSON-serialisable view (counters copied, not shared)."""
        result = {
            "command": self.command,
            "status": self.status,
            "rung": self.rung,
            "detail": self.detail,
            "elapsed_ms": round(self.elapsed_ms, 3),
            "result_size": self.result_size,
            "counters": dict(self.counters),
        }
        if self.semantics:
            result["semantics"] = self.semantics
        if self.checkpoint:
            result["checkpoint"] = self.checkpoint
            result["resume_outcome"] = self.resume_outcome
        if self.trace is not None:
            result["trace"] = self.trace
        return result


def format_run_report(report: RunReport) -> str:
    """Render a :class:`RunReport` as an aligned two-column table."""
    rows: list[tuple[str, object]] = [
        ("command", report.command),
        *((("semantics", report.semantics),) if report.semantics else ()),
        ("status", report.status),
        ("rung", report.rung),
        ("elapsed_ms", f"{report.elapsed_ms:.1f}"),
        ("result_size", report.result_size),
    ]
    if report.detail:
        rows.append(("detail", report.detail))
    if report.checkpoint:
        rows.append(("checkpoint", report.checkpoint))
        rows.append(("resume_outcome", report.resume_outcome))
    for name in sorted(report.counters):
        value = report.counters[name]
        if value:  # only counters that moved; zeros are noise here
            rows.append((name, value))
    return format_table(("field", "value"), rows, title="run report")
