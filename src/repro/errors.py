"""Exception hierarchy for the :mod:`repro` library.

All errors raised by the library derive from :class:`ReproError`, so a
caller can catch everything produced by this package with one clause
while still distinguishing the individual failure modes.
"""

from __future__ import annotations

from typing import Optional, Sequence


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` library."""


class SchemaError(ReproError):
    """An atom, instance or dependency violates a schema declaration.

    Raised for arity mismatches, unknown relation symbols, and
    source/target schemas that are not disjoint.
    """


class ParseError(ReproError):
    """The textual dependency / instance / query DSL could not be parsed."""

    def __init__(self, message: str, text: str = "", position: int = -1):
        self.text = text
        self.position = position
        self._message = message
        if position >= 0:
            message = f"{message} (at offset {position} in {text!r})"
        super().__init__(message)

    def __reduce__(self):
        # Rebuild from the original constructor arguments: the default
        # exception reduction re-invokes __init__ with the *formatted*
        # message, which would re-append the offset suffix and drop
        # ``text``/``position`` on the far side of a pickle boundary.
        return (ParseError, (self._message, self.text, self.position))


class DependencyError(ReproError):
    """A tuple-generating dependency is malformed.

    Examples: a head that mentions no body variable where one is
    required, an s-t tgd whose body uses target relations, or two
    dependencies of one mapping sharing variables.
    """


class NotRecoverableError(ReproError):
    """The target instance is not valid for recovery under the mapping.

    Per Definition 3 of the paper, a target instance ``J`` is *valid for
    recovery* under ``Sigma`` only if some source instance justifies it.
    Operations that require a recoverable target raise this error
    otherwise.
    """


class ChaseError(ReproError):
    """The chase could not be executed (internal invariant violation)."""


class BudgetExceededError(ReproError):
    """An enumeration exceeded its configured budget.

    The inverse chase and covering enumeration are worst-case
    exponential; callers can bound them, and this error signals the
    bound was hit rather than silently truncating the result.

    ``partial`` carries the items enumerated before the budget tripped
    (covers, recoveries, ...), so a caller that chose ``"raise"``
    semantics can still inspect — or salvage — the work already done.
    """

    def __init__(self, what: str, limit: int, partial: Optional[Sequence] = None):
        self.what = what
        self.limit = limit
        self.partial: list = list(partial) if partial is not None else []
        self.progress: dict = {}
        super().__init__(f"{what} exceeded configured limit of {limit}")

    def __reduce__(self):
        # ``partial``/``progress`` are enriched after construction (the
        # inverse chase stamps running totals onto an escaping error);
        # the default reduction would rebuild from ``args`` — the
        # formatted message — losing all of it across a process pool.
        return (
            _rebuild_budget_error,
            (self.what, self.limit, self.partial, self.progress),
        )


class DeadlineExceededError(ReproError):
    """A cooperative resource deadline expired mid-computation.

    Raised by :class:`repro.resilience.Deadline` checks threaded
    through the NP-hard paths (covering enumeration, homomorphism
    search, the inverse chase, certainty, repair).  Unlike
    :class:`BudgetExceededError` — which counts *results* — a deadline
    bounds *resources*: wall-clock time, cooperative steps, or an
    estimate of retained memory.

    Attributes:

    * ``what``    — the computation that was interrupted;
    * ``limit``   — a human-readable description of the tripped limit;
    * ``progress``— counters accumulated before expiry (e.g.
      ``covers_seen``, ``recoveries_emitted``), enriched by each layer
      the error propagates through;
    * ``partial`` — the items produced before expiry, when the raising
      layer had them at hand (e.g. the recoveries already emitted and
      verified by :func:`~repro.core.inverse_chase.inverse_chase`).
    """

    def __init__(
        self,
        what: str,
        limit: str = "",
        progress: Optional[dict] = None,
        partial: Optional[Sequence] = None,
    ):
        self.what = what
        self.limit = limit
        self.progress: dict = dict(progress) if progress else {}
        self.partial: list = list(partial) if partial is not None else []
        message = f"{what} exceeded deadline"
        if limit:
            message = f"{message} ({limit})"
        super().__init__(message)

    def __reduce__(self):
        return (
            _rebuild_deadline_error,
            (self.what, self.limit, self.progress, self.partial),
        )


def _rebuild_budget_error(what, limit, partial, progress) -> BudgetExceededError:
    error = BudgetExceededError(what, limit, partial=partial)
    error.progress = dict(progress)
    return error


def _rebuild_deadline_error(what, limit, progress, partial) -> DeadlineExceededError:
    return DeadlineExceededError(what, limit, progress=progress, partial=partial)


class CheckpointError(ReproError):
    """Base class for checkpoint/resume failures (see
    :mod:`repro.resilience.checkpoint`)."""


class CheckpointCorruptError(CheckpointError):
    """A snapshot file failed structural or checksum validation.

    Raised by the snapshot reader when the file is truncated, a record's
    CRC does not match its payload, the footer record count disagrees
    with the records present, or the header is not a recognizable
    snapshot at all.  The resume path treats this as "no usable
    checkpoint" and falls back to a cold start.
    """

    def __init__(self, path: str, reason: str):
        self.path = str(path)
        self.reason = reason
        super().__init__(f"corrupt checkpoint {self.path}: {reason}")

    def __reduce__(self):
        return (CheckpointCorruptError, (self.path, self.reason))


class CheckpointMismatchError(CheckpointError):
    """A structurally-valid snapshot does not match the live computation.

    Raised when the snapshot's version, kind, mapping fingerprint,
    target fingerprint or options fingerprint disagree with the run
    being resumed.  Resuming from it could silently splice state from a
    different computation, so the resume path discards it and falls
    back to a cold start instead.
    """

    def __init__(self, path: str, field: str, expected: str, found: str):
        self.path = str(path)
        self.field = field
        self.expected = expected
        self.found = found
        super().__init__(
            f"checkpoint {self.path} does not match this run: "
            f"{field} is {found!r}, expected {expected!r}"
        )

    def __reduce__(self):
        return (
            CheckpointMismatchError,
            (self.path, self.field, self.expected, self.found),
        )
