"""Exception hierarchy for the :mod:`repro` library.

All errors raised by the library derive from :class:`ReproError`, so a
caller can catch everything produced by this package with one clause
while still distinguishing the individual failure modes.
"""

from __future__ import annotations

from typing import Optional, Sequence


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` library."""


class SchemaError(ReproError):
    """An atom, instance or dependency violates a schema declaration.

    Raised for arity mismatches, unknown relation symbols, and
    source/target schemas that are not disjoint.
    """


class ParseError(ReproError):
    """The textual dependency / instance / query DSL could not be parsed."""

    def __init__(self, message: str, text: str = "", position: int = -1):
        self.text = text
        self.position = position
        if position >= 0:
            message = f"{message} (at offset {position} in {text!r})"
        super().__init__(message)


class DependencyError(ReproError):
    """A tuple-generating dependency is malformed.

    Examples: a head that mentions no body variable where one is
    required, an s-t tgd whose body uses target relations, or two
    dependencies of one mapping sharing variables.
    """


class NotRecoverableError(ReproError):
    """The target instance is not valid for recovery under the mapping.

    Per Definition 3 of the paper, a target instance ``J`` is *valid for
    recovery* under ``Sigma`` only if some source instance justifies it.
    Operations that require a recoverable target raise this error
    otherwise.
    """


class ChaseError(ReproError):
    """The chase could not be executed (internal invariant violation)."""


class BudgetExceededError(ReproError):
    """An enumeration exceeded its configured budget.

    The inverse chase and covering enumeration are worst-case
    exponential; callers can bound them, and this error signals the
    bound was hit rather than silently truncating the result.

    ``partial`` carries the items enumerated before the budget tripped
    (covers, recoveries, ...), so a caller that chose ``"raise"``
    semantics can still inspect — or salvage — the work already done.
    """

    def __init__(self, what: str, limit: int, partial: Optional[Sequence] = None):
        self.what = what
        self.limit = limit
        self.partial: list = list(partial) if partial is not None else []
        self.progress: dict = {}
        super().__init__(f"{what} exceeded configured limit of {limit}")


class DeadlineExceededError(ReproError):
    """A cooperative resource deadline expired mid-computation.

    Raised by :class:`repro.resilience.Deadline` checks threaded
    through the NP-hard paths (covering enumeration, homomorphism
    search, the inverse chase, certainty, repair).  Unlike
    :class:`BudgetExceededError` — which counts *results* — a deadline
    bounds *resources*: wall-clock time, cooperative steps, or an
    estimate of retained memory.

    Attributes:

    * ``what``    — the computation that was interrupted;
    * ``limit``   — a human-readable description of the tripped limit;
    * ``progress``— counters accumulated before expiry (e.g.
      ``covers_seen``, ``recoveries_emitted``), enriched by each layer
      the error propagates through;
    * ``partial`` — the items produced before expiry, when the raising
      layer had them at hand (e.g. the recoveries already emitted and
      verified by :func:`~repro.core.inverse_chase.inverse_chase`).
    """

    def __init__(
        self,
        what: str,
        limit: str = "",
        progress: Optional[dict] = None,
        partial: Optional[Sequence] = None,
    ):
        self.what = what
        self.limit = limit
        self.progress: dict = dict(progress) if progress else {}
        self.partial: list = list(partial) if partial is not None else []
        message = f"{what} exceeded deadline"
        if limit:
            message = f"{message} ({limit})"
        super().__init__(message)
