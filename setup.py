"""Setuptools shim for editable installs in environments without the
``wheel`` package (PEP 517 builds need bdist_wheel; ``setup.py develop``
does not)."""

from setuptools import setup

setup()
