"""Experiment E15 (ablation): the SUB(Sigma) pre-filter.

DESIGN.md's second called-out choice.  The justification gate already
guarantees that every emitted instance is a recovery; SUB(Sigma)
prunes doomed coverings *before* the two chases and the gate run.  The
ablation measures, on equation (4)'s family — where most coverings are
doomed — how many coverings each mode processes and the resulting
wall-clock difference, and asserts UCQ answers are unchanged.
"""

from __future__ import annotations

import time

import pytest

from repro import Mapping, certain_answers, inverse_chase, parse_instance, parse_query, parse_tgds
from repro.reporting import format_table


def _doomed_family(k: int):
    """Equation (4) widened: k S-facts, recoverable only through M."""
    mapping = Mapping(
        parse_tgds("R(x) -> T(x); R(x2) -> S(x2); M(x3) -> S(x3)")
    )
    target = parse_instance(", ".join(f"S(a{i})" for i in range(k)))
    return mapping, target


@pytest.mark.parametrize("k", [2, 4, 6])
def test_e15_subsumption_ablation(benchmark, report, k):
    mapping, target = _doomed_family(k)
    query = parse_query("q(x) :- M(x)")

    def run(mode):
        start = time.perf_counter()
        recoveries = inverse_chase(
            mapping, target, subsumption_mode=mode, max_recoveries=5000
        )
        return recoveries, time.perf_counter() - start

    def all_modes():
        return {mode: run(mode) for mode in ("refute", "strict", "off")}

    results = benchmark.pedantic(all_modes, rounds=1, iterations=1)
    rows = []
    answers = {}
    for mode, (recoveries, seconds) in results.items():
        answers[mode] = certain_answers(query, recoveries)
        rows.append((mode, len(recoveries), f"{seconds:.4f}", len(answers[mode])))
    report(
        format_table(
            ["subsumption mode", "recoveries", "seconds", "|answers|"],
            rows,
            title=f"E15 ablation (k = {k} ambiguous S-facts)",
        )
    )
    assert answers["refute"] == answers["strict"] == answers["off"]
    # With the pre-filter off, the gate does all the rejection work, so
    # the recovery sets still contain only genuine recoveries.
    assert len(results["off"][0]) >= len(results["strict"][0])
