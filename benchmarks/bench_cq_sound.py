"""Experiments E11-E12: the ``I_{Sigma,J}`` construction (Theorems 8-9).

* E11 measures the polynomial computation of Definition 12 over
  growing targets on the Example 10 family, whose per-homomorphism
  covering count grows linearly with ``|J|`` but collapses to one
  equivalence class — the tractability mechanism of §6.2.
* E12 regenerates Example 12's artifacts exactly and verifies
  Theorem 9 (the instance maps into every recovery).
"""

from __future__ import annotations

import pytest

from repro import cq_sound_instance, inverse_chase, maps_into, parse_query
from repro.reporting import format_table
from repro.workloads import example10, example12


@pytest.mark.parametrize("n", [4, 16, 64, 256])
def test_e11_polynomial_scaling(benchmark, report, n):
    scenario = example10(n)

    def run():
        return cq_sound_instance(scenario.mapping, scenario.target)

    instance = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        format_table(
            ["n (T-facts)", "|J|", "|I_{Sigma,J}|"],
            [(n, len(scenario.target), len(instance))],
            title="E11: Definition 12 stays polynomial (Theorem 8)",
        )
    )
    assert not instance.is_empty


def test_e12_example12_artifacts(benchmark, report):
    scenario = example12()
    instance = benchmark(cq_sound_instance, scenario.mapping, scenario.target)
    q_u = scenario.queries["q_u"]
    q_rr = scenario.queries["q_rr"]
    report(
        format_table(
            ["artifact", "measured", "paper"],
            [
                ("I_{Sigma,J}", repr(instance), "{R(a,Y1), U(b), R(a,Y2)}"),
                (
                    "Q1(x) = U(x)",
                    sorted(str(t[0]) for t in q_u.certain_evaluate(instance)),
                    "{b}",
                ),
                (
                    "Q2(x) = R(x,x)",
                    sorted(str(t[0]) for t in q_rr.certain_evaluate(instance)),
                    "{} (sound, incomplete)",
                ),
            ],
            title="E12: Example 12",
        )
    )
    assert {f.relation for f in instance} == {"R", "U"}


def test_e12_theorem9_maps_into_every_recovery(benchmark, report):
    scenario = example12()
    instance = cq_sound_instance(scenario.mapping, scenario.target)

    def run():
        recoveries = inverse_chase(scenario.mapping, scenario.target)
        return [maps_into(instance, recovery) for recovery in recoveries]

    verdicts = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        format_table(
            ["recoveries checked", "I_{Sigma,J} maps into all"],
            [(len(verdicts), all(verdicts))],
            title="E12: Theorem 9",
        )
    )
    assert verdicts and all(verdicts)
