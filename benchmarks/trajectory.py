"""Aggregate per-PR benchmark reports into one perf-trajectory document.

Every PR that touches performance leaves a ``BENCH_PR<n>.json`` at the
repo root (written by ``benchmarks/quick_bench.py``).  Each file is a
snapshot of *that* PR's machine and fixture set, so absolute seconds
are not comparable across files — but the *ratios* inside one file
(speedup vs the seed path, kernel on/off ablation, incremental vs cold
recompute, warm vs cold service) are, and lining them up over PRs is
the honest trajectory: it shows whether each optimisation's claimed
win survived later refactors.

Usage::

    python benchmarks/trajectory.py [--dir .] [--out TRAJECTORY.json]

The output document has one entry per report (sorted by PR number)
with the comparable ratios extracted, plus ``series`` — per-metric
time series over PRs — and is printed as a table on stdout.  CI runs
this after ``quick_bench`` and uploads the JSON as an artifact, so the
trajectory regenerates from scratch on every push; nothing is
hand-maintained.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path
from typing import Any, Optional

_REPORT_RE = re.compile(r"^BENCH_PR(\d+)\.json$")


def _speedup(section: Optional[dict], *path: str) -> Optional[float]:
    """Dig ``section[path...]`` defensively; reports grew fields over time."""
    node: Any = section
    for key in path:
        if not isinstance(node, dict) or key not in node:
            return None
        node = node[key]
    return node if isinstance(node, (int, float)) else None


def _scaling_summary(scaling: Optional[dict]) -> Optional[dict]:
    """Largest-size point per backend: the scale the curve was pushed to."""
    points = (scaling or {}).get("points") or []
    if not points:
        return None
    top = max(points, key=lambda point: point.get("facts", 0))
    summary: dict[str, Any] = {"max_facts": top.get("facts")}
    for backend in ("columnar", "object"):
        timings = top.get(backend) or {}
        if "inverse_best_s" in timings:
            summary[f"{backend}_inverse_best_s"] = timings["inverse_best_s"]
        if "certain_best_s" in timings:
            summary[f"{backend}_certain_best_s"] = timings["certain_best_s"]
    return summary


def _churn_summary(churn: Optional[dict]) -> Optional[dict]:
    """Steady-state delta speedup at the largest churned size."""
    points = (churn or {}).get("points") or []
    if not points:
        return None
    top = max(points, key=lambda point: point.get("facts", 0))
    speedups = [
        delta["speedup"]
        for delta in top.get("per_delta") or []
        if isinstance(delta.get("speedup"), (int, float))
    ]
    if not speedups:
        return None
    # The first delta pays answer-set bootstrap; the tail is steady state.
    steady = speedups[1:] or speedups
    return {
        "max_facts": top.get("facts"),
        "first_delta_speedup": speedups[0],
        "steady_state_median_speedup": sorted(steady)[len(steady) // 2],
    }


def summarize_report(path: Path) -> dict:
    report = json.loads(path.read_text())
    pr = int(_REPORT_RE.match(path.name).group(1))
    benchmarks = report.get("benchmarks") or {}
    entry: dict[str, Any] = {
        "pr": pr,
        "file": path.name,
        "fixture": report.get("fixture", ""),
        "python": report.get("python", ""),
        "speedups": {},
    }
    for name, section in benchmarks.items():
        for mode in ("serial", "parallel"):
            value = _speedup(section, "speedups", f"{mode}_vs_seed")
            if value is not None:
                entry["speedups"][f"{name}.{mode}_vs_seed"] = value
    for name, section in (report.get("kernel_ablation") or {}).items():
        value = _speedup(section, "speedup")
        if value is not None:
            entry["speedups"][f"kernel.{name}"] = value
    value = _speedup(report.get("service"), "speedups", "warm_repeat_vs_cold")
    if value is not None:
        entry["speedups"]["service.warm_repeat_vs_cold"] = value
    overhead = _speedup(report.get("resilience"), "deadline_overhead", "overhead_pct")
    if overhead is not None:
        entry["deadline_overhead_pct"] = overhead
    scaling = _scaling_summary(report.get("scaling"))
    if scaling is not None:
        entry["scaling"] = scaling
    churn = _churn_summary(report.get("churn"))
    if churn is not None:
        entry["churn"] = churn
    return entry


def build_trajectory(reports: list[Path]) -> dict:
    entries = sorted((summarize_report(path) for path in reports), key=lambda e: e["pr"])
    series: dict[str, list] = {}
    for entry in entries:
        for metric, value in entry["speedups"].items():
            series.setdefault(metric, []).append({"pr": entry["pr"], "value": value})
    return {
        "reports": entries,
        "series": series,
        "note": (
            "absolute seconds are machine-local per report; only the "
            "within-report ratios collected here are comparable across PRs"
        ),
    }


def format_table(trajectory: dict) -> str:
    lines = ["perf trajectory (speedup ratios per PR):"]
    prs = [entry["pr"] for entry in trajectory["reports"]]
    header = f"  {'metric':<34}" + "".join(f"PR{pr:>2}".rjust(9) for pr in prs)
    lines.append(header)
    for metric in sorted(trajectory["series"]):
        by_pr = {point["pr"]: point["value"] for point in trajectory["series"][metric]}
        cells = "".join(
            (f"{by_pr[pr]:.2f}x" if pr in by_pr else "-").rjust(9) for pr in prs
        )
        lines.append(f"  {metric:<34}{cells}")
    return "\n".join(lines)


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--dir", default=".", help="directory holding BENCH_PR*.json reports"
    )
    parser.add_argument(
        "--out", default="TRAJECTORY.json", help="where to write the aggregate"
    )
    args = parser.parse_args(argv)
    root = Path(args.dir)
    reports = sorted(
        path for path in root.iterdir() if _REPORT_RE.match(path.name)
    )
    if not reports:
        print(f"no BENCH_PR*.json reports under {root}", file=sys.stderr)
        return 1
    trajectory = build_trajectory(reports)
    Path(args.out).write_text(json.dumps(trajectory, indent=2) + "\n")
    print(format_table(trajectory))
    print(f"wrote {args.out} ({len(reports)} report(s))")
    return 0


if __name__ == "__main__":
    sys.exit(main())
