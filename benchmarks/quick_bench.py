#!/usr/bin/env python
"""Quick-bench harness for the engine layer (PR regression gate).

Times the inverse-chase and certainty benchmarks on small fixtures in
three engine modes and writes a JSON report:

* ``seed``     — every engine optimisation off, serial: the pre-engine
  code path (eager indexes, no incremental index maintenance, no sort
  cache, no memoization, no value fast paths);
* ``serial``   — all optimisations on, serial executor;
* ``parallel`` — all optimisations on, 4 worker threads.

Each measurement rebuilds its fixture *inside* the mode's
configuration context, so seed-mode timings never benefit from hashes
or caches populated while the optimisations were enabled.  Result sets
are verified identical across modes before any timing is reported.

Usage::

    PYTHONPATH=src python benchmarks/quick_bench.py --out BENCH_PR1.json
"""

from __future__ import annotations

import argparse
import json
import platform
import statistics
import sys
import time

from repro.core.certain import certain_answer
from repro.core.inverse_chase import inverse_chase
from repro.engine import CONFIG, Executor, engine_options
from repro.engine.cache import clear_registered_caches
from repro.logic.parser import parse_instance, parse_query, parse_tgds
from repro.logic.tgds import Mapping

#: The engine configuration emulating the pre-engine code path.
SEED_OPTIONS = dict(
    lazy_indexes=False,
    incremental_ops=False,
    sort_cache=False,
    memoize_hom_sets=False,
    memoize_subsumers=False,
    value_fastpaths=False,
)

#: Fixture size: the Lemma-1-remark family, asymmetric (3 S-facts,
#: 4 T-facts -> |Chase^-1| = 1398).  Big enough that a run takes a
#: few hundred milliseconds -- timer noise stays well below the gate
#: margin -- while the full three-mode sweep finishes in about a
#: minute.
N_S, N_T = 3, 4


def fixture():
    """The recovery-set blow-up workload (E6/E7's family, scaled)."""
    mapping = Mapping(parse_tgds("R(x, y) -> S(x); R(u, v) -> T(v)"))
    facts = ", ".join(
        [f"S(a{i})" for i in range(N_S)] + [f"T(b{i})" for i in range(N_T)]
    )
    return mapping, parse_instance(facts)


def bench_inverse_chase(executor):
    """E6's fixture: the recovery-set blow-up workload."""
    mapping, target = fixture()
    return inverse_chase(
        mapping,
        target,
        verify_justification=False,
        max_recoveries=100000,
        executor=executor,
    )


def bench_certainty(executor):
    """E7's fixture: exact certainty through the recovery set."""
    mapping, target = fixture()
    # First components are certain (every recovery covers every S-fact),
    # so the answer set is nonempty and the intersection never
    # early-exits: all modes evaluate the full recovery set.
    query = parse_query("q(x) :- R(x, y)")
    return certain_answer(
        query,
        mapping,
        target,
        max_recoveries=100000,
        verify_justification=False,
        executor=executor,
    )


BENCHMARKS = {
    "inverse_chase": bench_inverse_chase,
    "certainty": bench_certainty,
}

MODES = {
    "seed": (SEED_OPTIONS, None),
    "serial": ({}, None),
    "parallel": ({}, lambda jobs: Executor(jobs=jobs, backend="thread")),
}


def measure(fn, executor, options, repeats):
    """Best-of / mean-of timings, with the fixture built per mode."""
    timings = []
    result = None
    with engine_options(**options) if options else engine_options():
        clear_registered_caches()
        result = fn(executor)  # warmup + the result to verify
        for _ in range(repeats):
            start = time.perf_counter()
            fn(executor)
            timings.append(time.perf_counter() - start)
    return {
        "best_s": min(timings),
        "mean_s": statistics.fmean(timings),
        "repeats": repeats,
    }, result


def canonical(result):
    """A mode-independent fingerprint of a benchmark's result."""
    if isinstance(result, set):
        return sorted(str(answer) for answer in result)
    return [str(recovery) for recovery in result]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_PR1.json", help="report path")
    parser.add_argument("--jobs", type=int, default=4, help="parallel workers")
    parser.add_argument("--repeats", type=int, default=5, help="timed repeats")
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=1.5,
        help="fail unless parallel beats seed by this factor on every benchmark",
    )
    args = parser.parse_args(argv)

    report = {
        "fixture": (
            f"lemma1_remark family, {N_S} S-facts x {N_T} T-facts,"
            " verify_justification=False"
        ),
        "python": platform.python_version(),
        "jobs": args.jobs,
        "config": {k: v for k, v in CONFIG.as_dict().items()},
        "benchmarks": {},
    }
    failures = []
    for name, fn in BENCHMARKS.items():
        results = {}
        fingerprints = {}
        for mode, (options, make_executor) in MODES.items():
            executor = make_executor(args.jobs) if make_executor else None
            timing, result = measure(fn, executor, options, args.repeats)
            results[mode] = timing
            fingerprints[mode] = canonical(result)
        if not (fingerprints["seed"] == fingerprints["serial"] == fingerprints["parallel"]):
            print(f"FAIL {name}: modes disagree on the result set", file=sys.stderr)
            return 1
        seed = results["seed"]["best_s"]
        speedups = {
            "serial_vs_seed": round(seed / results["serial"]["best_s"], 2),
            "parallel_vs_seed": round(seed / results["parallel"]["best_s"], 2),
        }
        results["speedups"] = speedups
        results["result_size"] = len(fingerprints["seed"])
        results["results_identical_across_modes"] = True
        report["benchmarks"][name] = results
        line = (
            f"{name}: seed={seed:.3f}s"
            f" serial={results['serial']['best_s']:.3f}s ({speedups['serial_vs_seed']}x)"
            f" parallel{args.jobs}={results['parallel']['best_s']:.3f}s"
            f" ({speedups['parallel_vs_seed']}x)"
        )
        print(line)
        if speedups["parallel_vs_seed"] < args.min_speedup:
            failures.append(name)

    with open(args.out, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(f"wrote {args.out}")
    if failures:
        print(
            f"FAIL: below {args.min_speedup}x parallel-vs-seed: {', '.join(failures)}",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
