#!/usr/bin/env python
"""Quick-bench harness for the engine layer (PR regression gate).

Times the inverse-chase and certainty benchmarks on small fixtures in
three engine modes and writes a JSON report:

* ``seed``     — every engine optimisation off, serial: the pre-engine
  code path (eager indexes, no incremental index maintenance, no sort
  cache, no memoization, no value fast paths, no join kernel);
* ``serial``   — all optimisations on, serial executor;
* ``parallel`` — all optimisations on, 4 worker threads.

A separate ablation isolates the compiled join-plan kernel: the same
workloads (plus J-validity) run with everything on except the kernel,
against everything on including it, and the report records the
speedup and verifies the result sets are identical.

The report's per-phase timings come from the observability layer's
span tree (one traced run, see ``measure_traced_phases``) rather than
ad-hoc stopwatches, and a counter-parity section verifies that a
thread-parallel run records exactly the same work counters as a
serial one — any nonzero delta fails the harness.  ``--metrics-json``
additionally writes the counters + trace as the same JSON document
the CLI's flag of that name produces, for CI artifact upload.

Each measurement rebuilds its fixture *inside* the mode's
configuration context, so seed-mode timings never benefit from hashes
or caches populated while the optimisations were enabled.  Result sets
are verified identical across modes before any timing is reported.

A scaling-curve section (``--scale-sizes``, skip with ``--no-scaling``)
compares the interned columnar storage backend against the object
backend on generated workloads of 10³–10⁵ facts: inverse-chase and
certainty wall times per size, per-phase breakdowns from spans, and a
regression gate requiring the columnar backend to win by
``--min-columnar-speedup`` at the largest size with bit-identical
results at every size.

A churn section (skip with ``--no-churn``) is the incremental-recovery
gate: at each scaling size it bootstraps a maintained
``repro.incremental.RecoveryState`` and drives it through single-fact
deltas (alternating fresh-fact inserts with deletions of existing
facts), timing delta maintenance — ``apply_delta`` plus refreshed
recoveries plus certain answers — against a cold recompute on the very
same evolved target.  Results must be bit-identical at every step, and
at the largest size the maintained path must beat cold recompute by
``--min-churn-speedup``.

A service section (skip with ``--no-service``) measures what the
long-running service exists to amortize: repeat ``/recover`` requests
against a warm in-process server (mapping registered once, per-tenant
caches and the result cache hot) versus cold one-shot CLI invocations
in a fresh process per request, on a ``scaled_recovery_workload``
fixture.  The gate requires warm repeat requests to beat cold runs by
``--min-service-speedup`` with service responses bit-identical to
direct library calls.

Usage::

    PYTHONPATH=src python benchmarks/quick_bench.py --out BENCH_PR8.json
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import random
import statistics
import sys
import tempfile
import time

from conftest import lemma1_fixture

from repro.core.certain import certain_answer
from repro.core.inverse_chase import inverse_chase
from repro.core.validity import is_valid_for_recovery
from repro.data.atoms import Atom
from repro.data.terms import Constant
from repro.engine import CONFIG, COUNTERS, Executor, engine_options
from repro.engine.cache import clear_registered_caches
from repro.incremental import RecoveryState
from repro.logic.parser import parse_instance, parse_query, parse_tgds
from repro.logic.tgds import Mapping
from repro.observability import (
    METRICS,
    TRACER,
    parity_diff,
    phase_wall_times,
    write_metrics_json,
)
from repro.resilience import CheckpointManager, Deadline
from repro.workloads import path_query, scaled_recovery_workload

#: The engine configuration emulating the pre-engine code path.
SEED_OPTIONS = dict(
    lazy_indexes=False,
    incremental_ops=False,
    sort_cache=False,
    memoize_hom_sets=False,
    memoize_subsumers=False,
    value_fastpaths=False,
    join_kernel=False,
)

#: Fixture size: the Lemma-1-remark family, asymmetric (3 S-facts,
#: 4 T-facts -> |Chase^-1| = 1398).  Big enough that a run takes a
#: few hundred milliseconds -- timer noise stays well below the gate
#: margin -- while the full three-mode sweep finishes in about a
#: minute.
N_S, N_T = 3, 4


def fixture():
    """The recovery-set blow-up workload (E6/E7's family, scaled)."""
    return lemma1_fixture(N_S, N_T)


def bench_inverse_chase(executor):
    """E6's fixture: the recovery-set blow-up workload."""
    mapping, target = fixture()
    return inverse_chase(
        mapping,
        target,
        verify_justification=False,
        max_recoveries=100000,
        executor=executor,
    )


def bench_certainty(executor):
    """E7's fixture: exact certainty through the recovery set."""
    mapping, target = fixture()
    # First components are certain (every recovery covers every S-fact),
    # so the answer set is nonempty and the intersection never
    # early-exits: all modes evaluate the full recovery set.
    query = parse_query("q(x) :- R(x, y)")
    return certain_answer(
        query,
        mapping,
        target,
        max_recoveries=100000,
        verify_justification=False,
        executor=executor,
    )


BENCHMARKS = {
    "inverse_chase": bench_inverse_chase,
    "certainty": bench_certainty,
}

MODES = {
    "seed": (SEED_OPTIONS, None),
    "serial": ({}, None),
    "parallel": ({}, lambda jobs: Executor(jobs=jobs, backend="thread")),
}


def measure(fn, executor, options, repeats):
    """Best-of / mean-of timings, with the fixture built per mode."""
    timings = []
    result = None
    with engine_options(**options) if options else engine_options():
        clear_registered_caches()
        result = fn(executor)  # warmup + the result to verify
        for _ in range(repeats):
            start = time.perf_counter()
            fn(executor)
            timings.append(time.perf_counter() - start)
    return {
        "best_s": min(timings),
        "mean_s": statistics.fmean(timings),
        "repeats": repeats,
    }, result


def canonical(result):
    """A mode-independent fingerprint of a benchmark's result.

    Sorted in every branch: the join kernel enumerates in a different
    (deterministic) order than the backtracking matcher, so sequences
    are compared as sets of fingerprints.
    """
    if isinstance(result, (set, frozenset)):
        return sorted(str(answer) for answer in result)
    if isinstance(result, (list, tuple)):
        return sorted(str(recovery) for recovery in result)
    return [str(result)]


# --------------------------------------------------------------------
# Join-kernel ablation: everything on, with and without the kernel.
# The workloads lean on the homomorphism engine harder than the mode
# sweep above: a recovery computation whose finishing-homomorphism
# step is a pure projection (the kernel short-circuits each plan
# component; the matcher enumerates the full cross product before the
# collapsed bindings dedup away), a path query evaluated through the
# certainty pipeline (early projection dedups before materializing),
# and a J-validity refutation whose cost is the hom-set join itself.
# --------------------------------------------------------------------

def _random_edges(nodes: int, edges: int, seed: int) -> list[tuple[int, int]]:
    rng = random.Random(seed)
    found: set[tuple[int, int]] = set()
    while len(found) < edges:
        found.add((rng.randrange(nodes), rng.randrange(nodes)))
    return sorted(found)


def ablation_inverse_chase(executor):
    """Recovery of a shared-existential mapping over midpoint bundles.

    The target is ``k`` bundles ``u_i -> mid_ixj -> v_i`` with ``d``
    parallel midpoints each; every 2-path hom is forced into the one
    minimal cover, and the backward instance is ground, so
    Definition 9's finishing step is a pure existence question asked
    of a ``d^k``-homomorphism forward instance.  The kernel's
    projection short-circuits each midpoint component; the matcher
    enumerates the full cross product before the collapsed bindings
    dedup to the single finishing substitution.  Justification
    verification is off so the finishing search, not the Definition-2
    oracle, is what's timed.
    """
    mapping = Mapping(parse_tgds("R(x, y) -> S(x, z), S(z, y)"))
    facts = []
    for i in range(5):
        for j in range(6):
            facts += [f"S(u{i}, mid{i}x{j})", f"S(mid{i}x{j}, v{i})"]
    target = parse_instance(", ".join(facts))
    return inverse_chase(
        mapping,
        target,
        verify_justification=False,
        executor=executor,
    )


def ablation_certainty(executor):
    """A path join query answered through the certainty pipeline."""
    mapping = Mapping(parse_tgds("R(x, y) -> S(x, y)"))
    target = parse_instance(
        ", ".join(f"S(n{a}, n{b})" for a, b in _random_edges(22, 250, 9))
    )
    query = parse_query("q(x, w) :- R(x, y), R(y, z), R(z, w)")
    return certain_answer(
        query,
        mapping,
        target,
        max_recoveries=100000,
        verify_justification=False,
        executor=executor,
    )


def ablation_validity(executor):
    """Refuting J-validity where the cost is the hom-set join.

    The tgd head is a 3-path, so ``HOM(Sigma, J)`` enumerates every
    path of the graph; an isolated extra edge is uncoverable, making
    the answer False right after that enumeration.
    """
    mapping = Mapping(parse_tgds("P(x, w) -> S(x, y), S(y, z), S(z, w)"))
    edges = _random_edges(20, 150, 17)
    facts = [f"S(n{a}, n{b})" for a, b in edges] + ["S(iso1, iso2)"]
    target = parse_instance(", ".join(facts))
    return is_valid_for_recovery(mapping, target, max_covers=10000)


KERNEL_ABLATION = {
    "inverse_chase": ablation_inverse_chase,
    "certainty": ablation_certainty,
    "validity": ablation_validity,
}


def measure_ablation(fn, options, repeats):
    """Like :func:`measure`, but cold-cache on every timed repeat.

    The ablation workloads can be dominated by a single memoized
    computation (e.g. the hom-set); clearing the registered caches
    before each repeat times the computation itself, identically for
    both kernel modes, instead of a cache hit.
    """
    timings = []
    with engine_options(**options):
        clear_registered_caches()
        result = fn(None)  # warmup + the result to verify
        for _ in range(repeats):
            clear_registered_caches()
            start = time.perf_counter()
            fn(None)
            timings.append(time.perf_counter() - start)
    return {
        "best_s": min(timings),
        "mean_s": statistics.fmean(timings),
        "repeats": repeats,
    }, result


def run_kernel_ablation(repeats: int, min_speedup: float):
    """Time each ablation workload with the kernel on and off."""
    section = {}
    wins = 0
    identical = True
    for name, fn in KERNEL_ABLATION.items():
        on_timing, on_result = measure_ablation(
            fn, {"join_kernel": True}, repeats
        )
        off_timing, off_result = measure_ablation(
            fn, {"join_kernel": False}, repeats
        )
        same = canonical(on_result) == canonical(off_result)
        identical = identical and same
        speedup = round(off_timing["best_s"] / on_timing["best_s"], 2)
        wins += speedup >= min_speedup
        section[name] = {
            "kernel_on": on_timing,
            "kernel_off": off_timing,
            "speedup": speedup,
            "results_identical_across_modes": same,
        }
        print(
            f"kernel ablation {name}:"
            f" on={on_timing['best_s']:.3f}s"
            f" off={off_timing['best_s']:.3f}s ({speedup}x)"
            + ("" if same else "  RESULTS DIFFER")
        )
    section["results_identical_across_modes"] = identical
    return section, wins, identical


# --------------------------------------------------------------------
# Scaling curves: the interned columnar backend against the object
# backend on generated large-instance workloads.  The micro-fixtures
# above never cross CONFIG.columnar_min_facts, so this is the only
# section where the columnar path is actually engaged; it is also the
# PR gate: at the largest size the columnar backend must beat the
# object backend by --min-columnar-speedup on inverse-chase or
# certainty, with bit-identical results at every size.
# --------------------------------------------------------------------

#: Path length of the scaling query; ``project="source"`` makes every
#: variable past the first existential, so the answer set stays at most
#: the vertex count while the join explores |E|·degree^(length-1)
#: bindings — the configuration that separates tuple-at-a-time from
#: set-at-a-time evaluation.
SCALE_QUERY_LENGTH = 3

#: Edges per vertex in the generated graph (facts / domain_size).
SCALE_DEGREE = 16


def scale_workload(facts: int):
    """One scaling point: workload, query, and its graph parameters."""
    domain = max(64, facts // SCALE_DEGREE)
    mapping, target = scaled_recovery_workload(
        11, facts=facts, domain_size=domain
    )
    query = path_query(SCALE_QUERY_LENGTH, project="source")
    return mapping, target, query, domain


def measure_scaling_point(facts: int, columnar: bool, repeats: int):
    """Timings for one (size, backend) cell, results kept for parity.

    Spans stay enabled during the timed runs — the overhead is per
    span, identical for both backends, and buys the per-phase
    breakdown without a second (minutes-long) traced pass.
    """
    mapping, target, query, _ = scale_workload(facts)
    inverse_timings, certain_timings = [], []
    recoveries = answers = None
    phases = {}
    with engine_options(columnar_backend=columnar):
        for _ in range(repeats):
            clear_registered_caches()
            TRACER.reset()
            TRACER.enable()
            try:
                with TRACER.span("bench.scaling"):
                    start = time.perf_counter()
                    recoveries = inverse_chase(
                        mapping, target, verify_justification=False
                    )
                    mid = time.perf_counter()
                    answers = certain_answer(
                        query, mapping, target, verify_justification=False
                    )
                    end = time.perf_counter()
            finally:
                TRACER.disable()
            inverse_timings.append(mid - start)
            certain_timings.append(end - mid)
            phases = phase_wall_times(TRACER.to_dict())
    timing = {
        "inverse_best_s": min(inverse_timings),
        "certain_best_s": min(certain_timings),
        "repeats": repeats,
        "phases_ms": {name: round(ms, 3) for name, ms in sorted(phases.items())},
    }
    return timing, recoveries, answers


def run_scaling(sizes, repeats: int, min_speedup: float):
    """Columnar vs object across ``sizes``; gate at the largest size."""
    section = {
        "query": f"path length {SCALE_QUERY_LENGTH}, project=source",
        "degree": SCALE_DEGREE,
        "columnar_min_facts": CONFIG.columnar_min_facts,
        "points": [],
    }
    failures = []
    identical = True
    gate_speedup = 0.0
    for facts in sizes:
        col_timing, col_recs, col_answers = measure_scaling_point(
            facts, True, repeats
        )
        obj_timing, obj_recs, obj_answers = measure_scaling_point(
            facts, False, repeats
        )
        same = (
            canonical(col_recs) == canonical(obj_recs)
            and col_answers == obj_answers
        )
        identical = identical and same
        speedups = {
            "inverse": round(
                obj_timing["inverse_best_s"] / col_timing["inverse_best_s"], 2
            ),
            "certainty": round(
                obj_timing["certain_best_s"] / col_timing["certain_best_s"], 2
            ),
        }
        if facts == max(sizes):
            gate_speedup = max(speedups.values())
        section["points"].append(
            {
                "facts": facts,
                "domain_size": max(64, facts // SCALE_DEGREE),
                "recoveries": len(col_recs),
                "answers": len(col_answers),
                "columnar": col_timing,
                "object": obj_timing,
                "speedups": speedups,
                "results_identical_across_backends": same,
            }
        )
        print(
            f"scaling {facts} facts:"
            f" inverse col={col_timing['inverse_best_s']:.2f}s"
            f" obj={obj_timing['inverse_best_s']:.2f}s"
            f" ({speedups['inverse']}x) |"
            f" certainty col={col_timing['certain_best_s']:.2f}s"
            f" obj={obj_timing['certain_best_s']:.2f}s"
            f" ({speedups['certainty']}x)"
            + ("" if same else "  RESULTS DIFFER")
        )
    section["results_identical_across_backends"] = identical
    section["gate"] = {
        "largest_facts": max(sizes),
        "best_speedup": gate_speedup,
        "min_required": min_speedup,
        "passed": identical and gate_speedup >= min_speedup,
    }
    if not identical:
        failures.append("columnar_results")
    if gate_speedup < min_speedup:
        failures.append("columnar_speedup")
    return section, failures


# --------------------------------------------------------------------
# Churn: semi-naive delta maintenance against cold recompute.  The
# maintained state and the from-scratch pipeline answer for the *same*
# evolved target object at every step, so the comparison is pure
# algorithm (O(Δ) maintenance vs O(|J|) recompute), not fixture drift.
# --------------------------------------------------------------------

def measure_churn_point(facts: int, deltas: int):
    """One churn cell: bootstrap, then ``deltas`` single-fact deltas.

    Odd steps delete a random fact of the original exchange (retiring
    the covering hom it supports), even steps insert a fresh fact over
    unseen constants (admitting a new hom).  The incremental pass is
    traced as a whole; the cold pass re-times ``inverse_chase`` +
    ``certain_answer`` on each evolved child with cleared caches (the
    maintained state seeds the hom-set cache for its epoch, which a
    cold consumer must not inherit).
    """
    mapping, target, query, _ = scale_workload(facts)
    rng = random.Random(23)
    original = sorted(target.facts)

    clear_registered_caches()
    TRACER.reset()
    TRACER.enable()
    steps = []
    try:
        start = time.perf_counter()
        with TRACER.span("bench.churn_bootstrap"):
            state = RecoveryState(mapping, target, verify_justification=False)
        bootstrap_s = time.perf_counter() - start
        for i in range(deltas):
            if i % 2 == 0:
                add = [Atom("F", [Constant(f"churn{i}x"), Constant(f"churn{i}y")])]
                remove = []
            else:
                add = []
                remove = [original.pop(rng.randrange(len(original)))]
            start = time.perf_counter()
            with TRACER.span("bench.churn_delta"):
                state.apply_delta(add=add, remove=remove)
                recoveries = state.recoveries
                answers = state.certain(query)
            elapsed = time.perf_counter() - start
            steps.append(
                {
                    "target": state.target,
                    "recoveries": canonical(recoveries),
                    "answers": answers,
                    "incremental_s": elapsed,
                }
            )
    finally:
        TRACER.disable()
    incremental_phases = phase_wall_times(TRACER.to_dict())

    TRACER.reset()
    TRACER.enable()
    identical = True
    try:
        for step in steps:
            clear_registered_caches()
            start = time.perf_counter()
            with TRACER.span("bench.churn_cold"):
                cold_recoveries = inverse_chase(
                    mapping, step["target"], verify_justification=False
                )
                cold_answers = certain_answer(
                    query, mapping, step["target"], verify_justification=False
                )
            step["cold_s"] = time.perf_counter() - start
            identical = (
                identical
                and canonical(cold_recoveries) == step["recoveries"]
                and cold_answers == step["answers"]
            )
    finally:
        TRACER.disable()
    cold_phases = phase_wall_times(TRACER.to_dict())

    incremental_total = sum(s["incremental_s"] for s in steps)
    cold_total = sum(s["cold_s"] for s in steps)
    return {
        "facts": facts,
        "deltas": deltas,
        "bootstrap_s": round(bootstrap_s, 4),
        "incremental_total_s": round(incremental_total, 4),
        "cold_total_s": round(cold_total, 4),
        "per_delta": [
            {
                "incremental_s": round(s["incremental_s"], 4),
                "cold_s": round(s["cold_s"], 4),
                "speedup": round(s["cold_s"] / s["incremental_s"], 2),
            }
            for s in steps
        ],
        "speedup": round(cold_total / incremental_total, 2),
        "incremental_phases_ms": {
            name: round(ms, 3) for name, ms in sorted(incremental_phases.items())
        },
        "cold_phases_ms": {
            name: round(ms, 3) for name, ms in sorted(cold_phases.items())
        },
        "results_identical_with_cold": identical,
    }


def run_churn(sizes, deltas: int, min_speedup: float):
    """Delta maintenance vs cold recompute across ``sizes``."""
    section = {
        "query": f"path length {SCALE_QUERY_LENGTH}, project=source",
        "deltas_per_size": deltas,
        "points": [],
    }
    failures = []
    identical = True
    gate_speedup = 0.0
    for facts in sizes:
        point = measure_churn_point(facts, deltas)
        identical = identical and point["results_identical_with_cold"]
        if facts == max(sizes):
            gate_speedup = point["speedup"]
        section["points"].append(point)
        print(
            f"churn {facts} facts ({deltas} deltas):"
            f" bootstrap={point['bootstrap_s']:.2f}s"
            f" incremental={point['incremental_total_s']:.3f}s"
            f" cold={point['cold_total_s']:.2f}s"
            f" ({point['speedup']}x)"
            + ("" if point["results_identical_with_cold"] else "  RESULTS DIFFER")
        )
    section["results_identical_with_cold"] = identical
    section["gate"] = {
        "largest_facts": max(sizes),
        "speedup": gate_speedup,
        "min_required": min_speedup,
        "passed": identical and gate_speedup >= min_speedup,
    }
    if not identical:
        failures.append("churn_results")
    if gate_speedup < min_speedup:
        failures.append("churn_speedup")
    return section, failures


def measure_deadline_overhead(repeats: int) -> dict:
    """Cost of the cooperative checks: generous deadline vs none.

    The deadline never trips (10-minute wall budget, astronomically
    large step budget), so the measured delta is pure bookkeeping:
    step increments in the search loops plus the periodic wall-clock
    read.  Runs are interleaved so drift hits both sides equally.
    """
    mapping, target = fixture()

    def run(deadline):
        return inverse_chase(
            mapping,
            target,
            verify_justification=False,
            max_recoveries=100000,
            deadline=deadline,
        )

    run(None)  # warmup
    without, with_deadline = [], []
    for _ in range(repeats):
        start = time.perf_counter()
        bare = run(None)
        without.append(time.perf_counter() - start)
        deadline = Deadline(wall_ms=600_000, max_steps=10**15)
        start = time.perf_counter()
        guarded = run(deadline)
        with_deadline.append(time.perf_counter() - start)
        assert bare == guarded, "a generous deadline changed the result"
    best_without, best_with = min(without), min(with_deadline)
    return {
        "no_deadline_best_s": best_without,
        "generous_deadline_best_s": best_with,
        "overhead_pct": round((best_with / best_without - 1.0) * 100.0, 2),
        "repeats": repeats,
    }


#: The scaling point the checkpoint-overhead gate runs at: large enough
#: that the run spans many covering boundaries and (at the default 1s
#: cadence) several actual snapshot writes.
CHECKPOINT_FACTS = 20_000


def measure_checkpoint_overhead(repeats: int, facts: int = CHECKPOINT_FACTS) -> dict:
    """Cost of cadenced checkpointing: snapshots on vs none.

    Runs the inverse chase on the ``facts``-sized scaling workload with
    a :class:`CheckpointManager` at the default 1-second cadence and
    without one, interleaved so clock drift hits both sides equally.
    The measured delta is the boundary bookkeeping (one ``due()`` probe
    and state capture per covering) plus however many cadenced saves
    actually fired — i.e. exactly what a user enabling ``--checkpoint``
    pays.  Results must be identical with and without.
    """
    mapping, target, _query, _domain = scale_workload(facts)

    def run(manager):
        return inverse_chase(
            mapping, target, verify_justification=False, checkpoint=manager
        )

    run(None)  # warmup
    without, with_ckpt = [], []
    saves = bytes_written = 0
    with tempfile.TemporaryDirectory(prefix="bench-ckpt-") as tmpdir:
        for i in range(repeats):
            clear_registered_caches()
            start = time.perf_counter()
            bare = run(None)
            without.append(time.perf_counter() - start)
            clear_registered_caches()
            manager = CheckpointManager(os.path.join(tmpdir, f"snap-{i}"))
            base = METRICS.snapshot()
            start = time.perf_counter()
            checkpointed = run(manager)
            with_ckpt.append(time.perf_counter() - start)
            delta = METRICS.delta_since(base)
            saves = delta.get("checkpoint_saves", 0)
            bytes_written = delta.get("checkpoint_bytes_written", 0)
            assert bare == checkpointed, "checkpointing changed the result"
    best_without, best_with = min(without), min(with_ckpt)
    return {
        "facts": facts,
        "no_checkpoint_best_s": best_without,
        "checkpoint_best_s": best_with,
        "overhead_pct": round((best_with / best_without - 1.0) * 100.0, 2),
        "saves_per_run": saves,
        "bytes_per_run": bytes_written,
        "repeats": repeats,
    }


def measure_degradation() -> dict:
    """Counters of an actually-tripping run: the ladder in action."""
    mapping, target = fixture()
    COUNTERS.reset()
    result = inverse_chase(
        mapping,
        target,
        deadline=Deadline(max_steps=200),
        mode="degrade",
    )
    snapshot = COUNTERS.snapshot()
    return {
        "status": result.status,
        "rung": result.rung,
        "result_size": len(result),
        "deadline_hits": snapshot["deadline_hits"],
        "degradations": snapshot["degradations"],
    }


def measure_traced_phases():
    """One traced E6 run: per-phase wall times out of the span tree.

    Replaces the stopwatch-per-phase approach — the engine's own spans
    are the timing source, so the report's phase breakdown and the
    CLI's ``--trace`` output can never disagree.
    """
    clear_registered_caches()
    TRACER.reset()
    TRACER.enable()
    try:
        with TRACER.span("bench.inverse_chase"):
            bench_inverse_chase(None)
    finally:
        TRACER.disable()
    trace = TRACER.to_dict()
    return trace, phase_wall_times(trace)


def measure_counter_parity(jobs: int):
    """Serial vs thread-parallel counter totals on the E6 fixture.

    Counters measure *what was computed*, so (scheduling bookkeeping
    aside) a parallel run must record exactly the serial totals; any
    delta means increments were lost or work was duplicated.
    """

    def counters(executor):
        clear_registered_caches()
        METRICS.reset()
        with engine_options(min_parallel_items=1):
            bench_inverse_chase(executor)
        return METRICS.snapshot()

    serial = counters(None)
    parallel = counters(Executor(jobs=jobs, backend="thread"))
    return serial, parallel, parity_diff(serial, parallel, backend="thread")


#: Fact count for the service warm-vs-cold fixture: big enough that the
#: cold run is dominated by real recovery work (not just interpreter
#: startup), small enough that a handful of repeats stays under a
#: minute.
SERVICE_FACTS = 2_000


def measure_service_warm_vs_cold(
    repeats: int, min_speedup: float, facts: int = SERVICE_FACTS
):
    """Repeat-request latency against a warm server vs cold one-shots.

    Cold: ``python -m repro recover`` in a fresh subprocess per request
    — every invocation re-parses Σ, re-derives ``SUB(Σ)`` and
    recompiles every plan.  Warm: the same mapping and target served by
    an in-process :func:`repro.service.running_server` over real HTTP,
    registered (and precompiled) once; ``warm_repeat`` is the service's
    actual repeat-request latency (result cache eligible), and
    ``warm_compute`` forces recomputation with ``no_cache`` to isolate
    what the warm engine caches alone buy.  Every service response is
    checked bit-identical to a direct library call.
    """
    import subprocess
    import urllib.request

    from repro.data.io import save_instance, save_mapping
    from repro.service import ServiceConfig, running_server
    from repro.service.wire import render_instances

    mapping, target = scaled_recovery_workload(7, facts=facts)
    direct = render_instances(inverse_chase(mapping, target))
    src_dir = os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"
    )
    failures = []
    with tempfile.TemporaryDirectory(prefix="bench-service-") as tmpdir:
        mapping_path = os.path.join(tmpdir, "bench.mapping")
        target_path = os.path.join(tmpdir, "bench.instance")
        save_mapping(mapping, mapping_path)
        save_instance(target, target_path)
        with open(target_path, encoding="utf-8") as handle:
            target_text = handle.read()
        with open(mapping_path, encoding="utf-8") as handle:
            mapping_text = handle.read()

        cold = []
        command = [
            sys.executable, "-m", "repro", "recover",
            "--mapping", mapping_path, "--target", target_path,
        ]
        env = {**os.environ, "PYTHONPATH": src_dir}
        for _ in range(repeats):
            start = time.perf_counter()
            proc = subprocess.run(
                command, env=env, capture_output=True, text=True
            )
            cold.append(time.perf_counter() - start)
            assert proc.returncode == 0, proc.stderr

        def post(base, path, body):
            request = urllib.request.Request(
                base + path, data=json.dumps(body).encode(), method="POST"
            )
            start = time.perf_counter()
            with urllib.request.urlopen(request, timeout=600) as response:
                payload = json.loads(response.read())
            return time.perf_counter() - start, payload

        warm_compute, warm_repeat = [], []
        identical = True
        with running_server(ServiceConfig(port=0)) as (_service, base):
            register_s, _ = post(
                base, "/mappings",
                {
                    "tgds": mapping_text,
                    "name": "bench",
                    "warm_targets": [target_text],
                },
            )
            body = {"mapping": "bench", "target": target_text}
            for _ in range(repeats):
                elapsed, payload = post(
                    base, "/recover", {**body, "no_cache": True}
                )
                warm_compute.append(elapsed)
                identical &= payload["result"]["recoveries"] == direct
            post(base, "/recover", body)  # populate the result cache
            for _ in range(repeats):
                elapsed, payload = post(base, "/recover", body)
                warm_repeat.append(elapsed)
                identical &= payload["result"]["recoveries"] == direct
                identical &= payload["cached"] is True

    speedups = {
        "warm_repeat_vs_cold": round(min(cold) / min(warm_repeat), 2),
        "warm_compute_vs_cold": round(min(cold) / min(warm_compute), 2),
    }
    section = {
        "facts": facts,
        "recoveries": len(direct),
        "repeats": repeats,
        "register_s": round(register_s, 4),
        "cold_best_s": round(min(cold), 4),
        "warm_compute_best_s": round(min(warm_compute), 4),
        "warm_repeat_best_s": round(min(warm_repeat), 4),
        "speedups": speedups,
        "results_identical_with_library": identical,
        "gate": {
            "min_required": min_speedup,
            "achieved": speedups["warm_repeat_vs_cold"],
            "passed": identical
            and speedups["warm_repeat_vs_cold"] >= min_speedup,
        },
    }
    if not identical:
        failures.append("service_results")
    if speedups["warm_repeat_vs_cold"] < min_speedup:
        failures.append("service_speedup")
    return section, failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="BENCH_PR9.json", help="report path")
    parser.add_argument(
        "--metrics-json",
        metavar="PATH",
        default=None,
        help="also write counters + span trace as a CLI-style metrics document",
    )
    parser.add_argument("--jobs", type=int, default=4, help="parallel workers")
    parser.add_argument("--repeats", type=int, default=5, help="timed repeats")
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=1.5,
        help="fail unless parallel beats seed by this factor on every benchmark",
    )
    parser.add_argument(
        "--min-kernel-speedup",
        type=float,
        default=1.5,
        help=(
            "fail unless the join kernel beats the matcher by this factor "
            "on at least two ablation workloads"
        ),
    )
    parser.add_argument(
        "--max-deadline-overhead",
        type=float,
        default=5.0,
        help="fail if a never-tripping deadline costs more than this %%",
    )
    parser.add_argument(
        "--max-checkpoint-overhead",
        type=float,
        default=5.0,
        help=(
            "fail if cadenced checkpointing costs more than this %% on the "
            f"{CHECKPOINT_FACTS}-fact scaling workload"
        ),
    )
    parser.add_argument(
        "--scale-sizes",
        default="5000,20000,100000",
        help="comma-separated fact counts for the columnar scaling curve",
    )
    parser.add_argument(
        "--scale-repeats",
        type=int,
        default=1,
        help="timed repeats per scaling point (the runs take seconds to minutes)",
    )
    parser.add_argument(
        "--min-columnar-speedup",
        type=float,
        default=3.0,
        help=(
            "fail unless the columnar backend beats the object backend by "
            "this factor on inverse-chase or certainty at the largest size"
        ),
    )
    parser.add_argument(
        "--no-scaling",
        action="store_true",
        help="skip the columnar scaling curve (minutes of runtime)",
    )
    parser.add_argument(
        "--churn-deltas",
        type=int,
        default=6,
        help="single-fact deltas per churn point (alternating insert/delete)",
    )
    parser.add_argument(
        "--min-churn-speedup",
        type=float,
        default=5.0,
        help=(
            "fail unless delta maintenance beats cold recompute by this "
            "factor at the largest churn size"
        ),
    )
    parser.add_argument(
        "--no-churn",
        action="store_true",
        help="skip the incremental churn benchmark (minutes of runtime)",
    )
    parser.add_argument(
        "--min-service-speedup",
        type=float,
        default=2.0,
        help=(
            "fail unless warm repeat requests against the service beat "
            "cold one-shot CLI invocations by this factor"
        ),
    )
    parser.add_argument(
        "--service-facts",
        type=int,
        default=SERVICE_FACTS,
        help="fact count for the service warm-vs-cold fixture",
    )
    parser.add_argument(
        "--no-service",
        action="store_true",
        help="skip the service warm-vs-cold benchmark",
    )
    args = parser.parse_args(argv)

    report = {
        "fixture": (
            f"lemma1_remark family, {N_S} S-facts x {N_T} T-facts,"
            " verify_justification=False"
        ),
        "python": platform.python_version(),
        "jobs": args.jobs,
        "config": {k: v for k, v in CONFIG.as_dict().items()},
        "benchmarks": {},
    }
    failures = []
    for name, fn in BENCHMARKS.items():
        results = {}
        fingerprints = {}
        for mode, (options, make_executor) in MODES.items():
            executor = make_executor(args.jobs) if make_executor else None
            timing, result = measure(fn, executor, options, args.repeats)
            results[mode] = timing
            fingerprints[mode] = canonical(result)
        if not (fingerprints["seed"] == fingerprints["serial"] == fingerprints["parallel"]):
            print(f"FAIL {name}: modes disagree on the result set", file=sys.stderr)
            return 1
        seed = results["seed"]["best_s"]
        speedups = {
            "serial_vs_seed": round(seed / results["serial"]["best_s"], 2),
            "parallel_vs_seed": round(seed / results["parallel"]["best_s"], 2),
        }
        results["speedups"] = speedups
        results["result_size"] = len(fingerprints["seed"])
        results["results_identical_across_modes"] = True
        report["benchmarks"][name] = results
        line = (
            f"{name}: seed={seed:.3f}s"
            f" serial={results['serial']['best_s']:.3f}s ({speedups['serial_vs_seed']}x)"
            f" parallel{args.jobs}={results['parallel']['best_s']:.3f}s"
            f" ({speedups['parallel_vs_seed']}x)"
        )
        print(line)
        if speedups["parallel_vs_seed"] < args.min_speedup:
            failures.append(name)

    ablation, kernel_wins, kernel_identical = run_kernel_ablation(
        args.repeats, args.min_kernel_speedup
    )
    report["kernel_ablation"] = ablation
    if not kernel_identical:
        print(
            "FAIL kernel ablation: kernel and matcher disagree on results",
            file=sys.stderr,
        )
        return 1
    if kernel_wins < 2:
        failures.append("kernel_speedup")

    # The overhead is a small ratio of two ~150ms timings, so it needs
    # more repeats than the throughput benchmarks for a stable minimum.
    overhead = measure_deadline_overhead(max(3 * args.repeats, 12))
    report["resilience"] = {
        "deadline_overhead": overhead,
        "degraded_run": measure_degradation(),
    }
    print(
        f"deadline overhead: {overhead['overhead_pct']}%"
        f" (no deadline {overhead['no_deadline_best_s']:.3f}s,"
        f" generous deadline {overhead['generous_deadline_best_s']:.3f}s)"
    )
    degraded = report["resilience"]["degraded_run"]
    print(
        f"degraded run: status={degraded['status']} rung={degraded['rung']}"
        f" deadline_hits={degraded['deadline_hits']}"
        f" degradations={degraded['degradations']}"
    )
    if overhead["overhead_pct"] > args.max_deadline_overhead:
        failures.append("deadline_overhead")

    # The floor is higher than the other measurements': the delta being
    # resolved (~0.1s of save cost on a ~3s run) is comparable to
    # scheduler noise on shared runners, and best-of only converges on
    # the quiet-window minimum for both sides with enough samples.
    ckpt = measure_checkpoint_overhead(max(args.repeats, 10))
    report["resilience"]["checkpoint_overhead"] = ckpt
    print(
        f"checkpoint overhead ({ckpt['facts']} facts): {ckpt['overhead_pct']}%"
        f" (off {ckpt['no_checkpoint_best_s']:.3f}s,"
        f" on {ckpt['checkpoint_best_s']:.3f}s,"
        f" {ckpt['saves_per_run']} save(s)/run)"
    )
    if ckpt["overhead_pct"] > args.max_checkpoint_overhead:
        failures.append("checkpoint_overhead")

    trace, phases = measure_traced_phases()
    report["phases"] = {name: round(ms, 3) for name, ms in sorted(phases.items())}
    print(
        "phases (from spans): "
        + " ".join(f"{name}={ms:.1f}ms" for name, ms in sorted(phases.items()))
    )

    serial_counters, _parallel_counters, parity = measure_counter_parity(args.jobs)
    report["counter_parity"] = {
        "identical": not parity,
        "diffs": {name: list(pair) for name, pair in sorted(parity.items())},
    }
    if parity:
        print(
            "FAIL counter parity: serial and parallel runs disagree on "
            + ", ".join(
                f"{name} ({a} vs {b})" for name, (a, b) in sorted(parity.items())
            ),
            file=sys.stderr,
        )
        failures.append("counter_parity")
    else:
        print("counter parity: serial and parallel totals identical")

    if not args.no_service:
        service, service_failures = measure_service_warm_vs_cold(
            max(args.repeats, 3), args.min_service_speedup, args.service_facts
        )
        report["service"] = service
        failures.extend(service_failures)
        print(
            f"service ({service['facts']} facts):"
            f" cold={service['cold_best_s']:.3f}s"
            f" warm-compute={service['warm_compute_best_s']:.3f}s"
            f" ({service['speedups']['warm_compute_vs_cold']}x)"
            f" warm-repeat={service['warm_repeat_best_s']:.3f}s"
            f" ({service['speedups']['warm_repeat_vs_cold']}x)"
            + (
                ""
                if service["results_identical_with_library"]
                else "  RESULTS DIFFER"
            )
        )

    sizes = sorted(int(s) for s in args.scale_sizes.split(",") if s.strip())
    if not args.no_churn:
        churn, churn_failures = run_churn(
            sizes, args.churn_deltas, args.min_churn_speedup
        )
        report["churn"] = churn
        failures.extend(churn_failures)

    if not args.no_scaling:
        scaling, scaling_failures = run_scaling(
            sizes, args.scale_repeats, args.min_columnar_speedup
        )
        report["scaling"] = scaling
        failures.extend(scaling_failures)

    if args.metrics_json:
        write_metrics_json(
            args.metrics_json,
            counters=serial_counters,
            trace=trace,
            command="quick_bench",
            counter_parity=report["counter_parity"],
        )
        print(f"wrote {args.metrics_json}")

    with open(args.out, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(f"wrote {args.out}")
    if failures:
        print(f"FAIL: gates missed: {', '.join(failures)}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
