"""Experiment E4: the running example (paper Examples 2-7), end to end.

Regenerates every artifact the paper prints for
``Sigma = {xi, rho, sigma}``, ``J = {S(a,b), T(c), T(d)}``:
HOM(Sigma, J) (5 homomorphisms), COV(Sigma, J) (9 coverings, 4
minimal), SUB(Sigma) (the single constraint "xi subsumes rho"), the
coverings' Definition-8 verdicts, and the 6 recoveries of Example 7.
"""

from __future__ import annotations

import pytest

from repro import inverse_chase, minimal_subsumers, models_all
from repro.core.covers import count_covers, enumerate_covers
from repro.core.hom_sets import hom_set
from repro.reporting import format_table
from repro.workloads import running_example


@pytest.fixture(scope="module")
def scenario():
    return running_example()


def test_e4_hom_set(benchmark, report, scenario):
    homs = benchmark(hom_set, scenario.mapping, scenario.target)
    report(
        format_table(
            ["homomorphism", "covers"],
            [(repr(h), ", ".join(str(f) for f in sorted(h.covered))) for h in homs],
            title="E4: HOM(Sigma, J) — paper lists h1..h5",
        )
    )
    assert len(homs) == 5


def test_e4_coverings(benchmark, report, scenario):
    homs = hom_set(scenario.mapping, scenario.target)

    def run():
        return (
            count_covers(homs, scenario.target, mode="all"),
            count_covers(homs, scenario.target, mode="minimal"),
        )

    all_covers, minimal_covers = benchmark(run)
    report(
        format_table(
            ["covering mode", "measured", "paper"],
            [("all (Example 3)", all_covers, 9), ("minimal (Example 7)", minimal_covers, 4)],
            title="E4: |COV(Sigma, J)|",
        )
    )
    assert (all_covers, minimal_covers) == (9, 4)


def test_e4_subsumption(benchmark, report, scenario):
    constraints = benchmark(minimal_subsumers, scenario.mapping)
    homs = hom_set(scenario.mapping, scenario.target)
    rows = []
    for covering in enumerate_covers(homs, scenario.target, mode="minimal"):
        names = ", ".join(
            f"{h.tgd.name}{h.substitution}" for h in covering
        )
        rows.append((names, models_all(covering, constraints)))
    report(
        format_table(
            ["minimal covering", "models SUB(Sigma)"],
            rows,
            title="E4: SUB(Sigma) filter — paper keeps H1-H3, rejects H4",
        )
    )
    assert len(constraints) == 1
    assert sum(1 for _, ok in rows if ok) == 3


def test_e4_recoveries(benchmark, report, scenario):
    recoveries = benchmark(
        inverse_chase, scenario.mapping, scenario.target, subsumption_mode="strict"
    )
    report(
        format_table(
            ["recovery (Example 7 lists six g_ij(I_i))"],
            [(repr(r),) for r in recoveries],
            title="E4: Chase^{-1}(Sigma, J)",
        )
    )
    assert len(recoveries) == 6
