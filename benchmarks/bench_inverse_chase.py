"""Experiment E6: the exponential blow-up of ``Chase^{-1}`` (Lemma 1 remark).

The paper notes after Lemma 1 that for
``Sigma = {R(x,y) -> S(x); R(u,v) -> T(v)}`` and a target with two
S-facts and two T-facts, ``|COV(Sigma, J)| = 1`` while
``|Chase^{-1}(Sigma, J)| = 7``: each of the final homomorphisms can
ground a backward null independently.  The benchmark reproduces the
(1, 7) pair exactly and sweeps ``k`` to exhibit the exponential growth
of the recovery set against the constant covering count — the blow-up
Theorem 4 says is unavoidable.
"""

from __future__ import annotations

import pytest

from repro import inverse_chase
from repro.core.covers import count_covers
from repro.core.hom_sets import hom_set
from repro.reporting import format_table
from repro.workloads import lemma1_remark


@pytest.mark.parametrize("k", [1, 2, 3])
def test_e6_recovery_blowup(benchmark, report, k):
    scenario = lemma1_remark(k)
    homs = hom_set(scenario.mapping, scenario.target)
    covers = count_covers(homs, scenario.target, mode="all")

    def run():
        return inverse_chase(
            scenario.mapping,
            scenario.target,
            verify_justification=False,
            max_recoveries=100000,
        )

    recoveries = benchmark.pedantic(run, rounds=1, iterations=1)
    expected = (k + 1) ** k * (k + 1) ** k - 1 if k == 2 else None
    report(
        format_table(
            ["k", "|J|", "|COV|", "|Chase^{-1}|", "paper (k=2)"],
            [(k, len(scenario.target), covers, len(recoveries), "1 and 7")],
            title="E6: constant coverings, exponential recoveries",
        )
    )
    assert covers == 1
    if k == 2:
        assert len(recoveries) == 7


def test_e6_growth_is_superlinear(benchmark, report):
    def collect():
        sizes = []
        for k in [1, 2, 3]:
            scenario = lemma1_remark(k)
            recoveries = inverse_chase(
                scenario.mapping,
                scenario.target,
                verify_justification=False,
                max_recoveries=100000,
            )
            sizes.append((k, len(recoveries)))
        return sizes

    sizes = benchmark.pedantic(collect, rounds=1, iterations=1)
    report(
        format_table(
            ["k", "|Chase^{-1}|"],
            sizes,
            title="E6: growth of the recovery set",
        )
    )
    counts = [count for _, count in sizes]
    assert counts[1] / max(counts[0], 1) < counts[2] / counts[1] or counts == sorted(
        counts
    )
    assert counts == sorted(counts)
