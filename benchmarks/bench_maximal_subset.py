"""Experiment E10: Theorem 7 and Example 9 — the maximal uniquely-covered
subset and the sound-UCQ source instance.

Example 9's artifacts are regenerated exactly (``J' = {T(c), T(d)}``
and the sound instance ``{D(c), D(d)}``), then the quadratic algorithm
is swept over targets mixing a controlled fraction of ambiguous facts:
the expected shape is runtime growing polynomially and the sound
instance covering exactly the unambiguous part of the target.
"""

from __future__ import annotations

import pytest

from repro import Mapping, maximal_unique_subset, parse_instance, parse_query, parse_tgds, sound_ucq_instance
from repro.reporting import format_table
from repro.workloads import example9


def test_e10_example9_exact(benchmark, report):
    scenario = example9()

    def run():
        subset, forced = maximal_unique_subset(scenario.mapping, scenario.target)
        return subset, sound_ucq_instance(scenario.mapping, scenario.target)

    subset, sound = benchmark(run)
    report(
        format_table(
            ["artifact", "measured", "paper"],
            [
                ("J'", repr(subset), "{T(c), T(d)}"),
                ("sound instance", repr(sound), "{D(c), D(d)}"),
                (
                    "Q(x) = D(x)",
                    sorted(str(t[0]) for t in scenario.queries["q_d"].certain_evaluate(sound)),
                    "{c, d}",
                ),
            ],
            title="E10: Example 9",
        )
    )
    assert subset == parse_instance("T(c), T(d)")
    assert sound == parse_instance("D(c), D(d)")


def _mixed_target(unambiguous: int, ambiguous: int):
    mapping = Mapping(parse_tgds("R(x, y) -> S(x), S(y); D(z) -> T(z)"))
    facts = [f"T(t{i})" for i in range(unambiguous)]
    facts += [f"S(s{i})" for i in range(ambiguous)]
    return mapping, parse_instance(", ".join(facts))


@pytest.mark.parametrize("size", [20, 80, 320])
@pytest.mark.parametrize("ambiguous_fraction", [0.25, 0.75])
def test_e10_scaling(benchmark, report, size, ambiguous_fraction):
    ambiguous = int(size * ambiguous_fraction)
    mapping, target = _mixed_target(size - ambiguous, ambiguous)

    def run():
        return sound_ucq_instance(mapping, target)

    sound = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        format_table(
            ["|J|", "ambiguous", "|sound instance|"],
            [(len(target), ambiguous, len(sound))],
            title="E10: Theorem 7 on mixed targets",
        )
    )
    assert len(sound) == size - ambiguous
