"""Shared helpers for the benchmark harness.

Run with ``pytest benchmarks/ --benchmark-only -s`` to get both the
timing tables from pytest-benchmark and the reproduction tables
(paper-stated artifact vs. measured artifact) printed by each
experiment.
"""

from __future__ import annotations

import sys

import pytest


def emit(text: str) -> None:
    """Print a reproduction table, visible under ``-s``."""
    print("\n" + text, file=sys.stderr)


@pytest.fixture(scope="session")
def report():
    return emit
