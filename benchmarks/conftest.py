"""Shared helpers for the benchmark harness.

Run with ``pytest benchmarks/ --benchmark-only -s`` to get both the
timing tables from pytest-benchmark and the reproduction tables
(paper-stated artifact vs. measured artifact) printed by each
experiment.

Besides the pytest fixtures this module holds the fixture *builders*
shared across benchmark files (and by ``quick_bench.py``, which runs
as a plain script): the asymmetric Lemma-1-remark family and the
small random-exchange shape.  Benchmark modules import them with
``from conftest import ...`` — the benchmarks directory is on
``sys.path`` both under pytest (no ``__init__.py`` here) and when the
harness runs as a script.
"""

from __future__ import annotations

import sys

import pytest

from repro.logic.parser import parse_instance, parse_tgds
from repro.logic.tgds import Mapping
from repro.workloads import exchange_workload


def emit(text: str) -> None:
    """Print a reproduction table, visible under ``-s``."""
    print("\n" + text, file=sys.stderr)


@pytest.fixture(scope="session")
def report():
    return emit


def lemma1_fixture(n_s: int = 3, n_t: int = 4):
    """The recovery-set blow-up workload (E6/E7's family, scaled).

    Asymmetric by default (3 S-facts, 4 T-facts → |Chase^-1| = 1398):
    big enough that a run takes a few hundred milliseconds — timer
    noise stays well below the gate margins — while a full mode sweep
    finishes in about a minute.
    """
    mapping = Mapping(parse_tgds("R(x, y) -> S(x); R(u, v) -> T(v)"))
    facts = ", ".join(
        [f"S(a{i})" for i in range(n_s)] + [f"T(b{i})" for i in range(n_t)]
    )
    return mapping, parse_instance(facts)


def small_exchange(seed: int, source_facts: int, **overrides):
    """The small random-exchange shape shared by E5 and E17.

    Two tgds, binary relations, single-atom bodies, a domain scaling
    with the source — the common parameters deduplicated from the
    per-file builders; ``overrides`` tweaks any of them per caller.
    """
    options = dict(
        tgds=2,
        source_facts=source_facts,
        domain_size=max(3, source_facts // 2),
        max_arity=2,
        max_body_atoms=1,
    )
    options.update(overrides)
    return exchange_workload(seed, **options)
