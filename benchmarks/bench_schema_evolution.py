"""Experiment E8: the employee/benefits case study (Example 8 — the
paper's one table).

The company exchanged ``Emp, Bnf`` into ``EmpDept, EmpBnf`` and wants
the old schema back.  The mapping is quasi-guarded safe and the target
is uniquely covered, so Theorem 5's polynomial algorithm applies and
the recovered instance answers every UCQ completely.  The headline
query ``Q = Bnf(HR, x)`` answers ``{medical, pension}``; chasing with
the (CQ-)maximum recovery mapping answers nothing — the paper's core
practical argument.  Swept over the number of employees.
"""

from __future__ import annotations

import pytest

from repro import complete_ucq_recovery, cq_max_recovery_chase, parse_query
from repro.reporting import format_answers, format_table
from repro.workloads import employee_benefits, employee_benefits_scaled


def test_e8_paper_instance(benchmark, report):
    scenario = employee_benefits()
    recovered = benchmark(complete_ucq_recovery, scenario.mapping, scenario.target)
    query = scenario.queries["hr_benefits"]
    chased = cq_max_recovery_chase(scenario.mapping, scenario.target)
    report(
        format_table(
            ["approach", "Q = Bnf(HR, x)", "paper says"],
            [
                (
                    "instance-based (Thm 5)",
                    format_answers(query.certain_evaluate(recovered)),
                    "{medical, pension}",
                ),
                (
                    "max-recovery chase",
                    format_answers(query.certain_evaluate(chased)),
                    "{}",
                ),
            ],
            title="E8: Example 8's headline query",
        )
    )
    assert {t[0].value for t in query.certain_evaluate(recovered)} == {
        "medical",
        "pension",
    }
    assert query.certain_evaluate(chased) == set()


@pytest.mark.parametrize("employees", [8, 32, 128, 512])
def test_e8_scaling(benchmark, report, employees):
    departments = max(2, employees // 8)
    scenario = employee_benefits_scaled(
        employees=employees, departments=departments, benefits=3
    )

    def run():
        return complete_ucq_recovery(scenario.mapping, scenario.target)

    recovered = benchmark.pedantic(run, rounds=1, iterations=1)
    query = scenario.queries["dept0_benefits"]
    answers = query.certain_evaluate(recovered)
    report(
        format_table(
            ["employees", "|J|", "|recovered|", "|Bnf(dept0, x)|"],
            [(employees, len(scenario.target), len(recovered), len(answers))],
            title="E8 scaling (Theorem 5 stays polynomial)",
        )
    )
    assert len(answers) == 3
