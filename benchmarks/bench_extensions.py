"""Experiments E16-E17: the library's extensions beyond the paper.

* E16 — core-based presentation of recovery sets.  The inverse chase's
  outputs carry homomorphically-redundant generic rows (Example 7's
  ``R(X2, X3, c)``); folding each recovery to its core and dropping
  hom-dominated members shrinks the set with UCQ answers unchanged.
* E17 — repairing altered targets (the conclusions' open problem):
  runtime of the maximal-subset repair as corruption grows, and the
  end-to-end recover-after-alteration pipeline.
"""

from __future__ import annotations

import pytest

from repro import (
    Mapping,
    certain_answers,
    core_recoveries,
    inverse_chase,
    parse_instance,
    parse_query,
    parse_tgds,
    recover_after_alteration,
)
from conftest import small_exchange

from repro.reporting import format_table
from repro.workloads import corrupted_target, running_example


def test_e16_core_presentation(benchmark, report):
    scenario = running_example()
    recoveries = inverse_chase(scenario.mapping, scenario.target)

    def run():
        return core_recoveries(recoveries)

    minimal = benchmark(run)
    query = parse_query("q(x) :- R(x, x, y); q(x) :- D(x, y)")
    report(
        format_table(
            ["presentation", "instances", "total facts", "|answers|"],
            [
                (
                    "raw Chase^{-1}",
                    len(recoveries),
                    sum(len(r) for r in recoveries),
                    len(certain_answers(query, recoveries)),
                ),
                (
                    "cores, deduplicated",
                    len(minimal),
                    sum(len(r) for r in minimal),
                    len(certain_answers(query, minimal)),
                ),
            ],
            title="E16: minimal presentation of the recovery set",
        )
    )
    assert len(minimal) <= len(recoveries)
    assert certain_answers(query, minimal) == certain_answers(query, recoveries)


@pytest.mark.parametrize("extra", [1, 2, 3])
def test_e17_repair_scaling(benchmark, report, extra):
    mapping = Mapping(
        parse_tgds(
            "Order(c, i) -> Shipment(i), Invoice(c); Gift(c2, i2) -> Shipment(i2)"
        )
    )
    clean = parse_instance(
        "Shipment(laptop), Invoice(ada), Shipment(flowers), Invoice(bob)"
    )
    corrupted = clean
    for k in range(extra):
        corrupted = corrupted.with_facts(parse_instance(f"Refund(x{k})").facts)

    def run():
        return recover_after_alteration(mapping, corrupted, max_removals=extra)

    repaired, recoveries = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        format_table(
            ["injected facts", "repair removes", "recoveries"],
            [
                (
                    extra,
                    len(corrupted) - len(repaired) if repaired else "-",
                    len(recoveries),
                )
            ],
            title="E17: recover-after-alteration",
        )
    )
    assert repaired == clean
    assert recoveries


def test_e17_random_corruption(benchmark, report):
    mapping, _, target = small_exchange(3, 4)
    corrupted = corrupted_target(3, mapping, target, extra_facts=1)

    def run():
        return recover_after_alteration(mapping, corrupted, max_removals=2)

    repaired, recoveries = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        format_table(
            ["|corrupted|", "repaired", "recoveries"],
            [(len(corrupted), repaired is not None, len(recoveries))],
            title="E17: repairing a randomly corrupted exchange",
        )
    )
    assert repaired is not None
