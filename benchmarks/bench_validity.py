"""Experiment E5: the J-validity decision problem (Theorem 3).

Theorem 3 shows J-validity is NP-complete in ``|J|``.  The benchmark
measures the decision procedure on (a) honestly exchanged targets —
where a witness covering is found quickly — and (b) corrupted targets
with random extra facts — where the search must refute every covering.
The expected shape: honest targets stay fast as ``|J|`` grows, refuting
corrupted targets is the expensive direction.
"""

from __future__ import annotations

import pytest

from conftest import small_exchange

from repro import is_valid_for_recovery
from repro.errors import BudgetExceededError
from repro.reporting import format_table
from repro.workloads import corrupted_target


def _workload(seed: int, source_facts: int):
    return small_exchange(seed, source_facts, existential_probability=0.2)


@pytest.mark.parametrize("source_facts", [4, 8, 16, 32])
def test_e5_honest_targets_are_validated_quickly(benchmark, report, source_facts):
    mapping, _, target = _workload(source_facts, source_facts)

    def run():
        return is_valid_for_recovery(mapping, target, max_covers=10000)

    valid = benchmark(run)
    report(
        format_table(
            ["|J|", "valid", "expected"],
            [(len(target), valid, True)],
            title=f"E5 honest exchange (source facts = {source_facts})",
        )
    )
    assert valid


@pytest.mark.parametrize("source_facts", [4, 8])
def test_e5_corrupted_targets(benchmark, report, source_facts):
    mapping, _, target = _workload(source_facts + 100, source_facts)
    corrupted = corrupted_target(source_facts, mapping, target, extra_facts=2)

    def run():
        try:
            return is_valid_for_recovery(mapping, corrupted, max_covers=500)
        except BudgetExceededError:
            return "budget"

    verdict = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        format_table(
            ["|J|", "extra facts", "verdict"],
            [(len(corrupted), len(corrupted) - len(target), verdict)],
            title=f"E5 corrupted target (source facts = {source_facts})",
        )
    )
    assert verdict in (True, False, "budget")
