"""Experiment E13: instance-based recovery vs. the mapping-based inverses
(Theorem 10 and Example 13).

For every paper scenario with a comparable baseline, count the sound
answers each side recovers.  Expected shape: ``I_{Sigma,J}`` (and the
tractable recoveries) dominate the recovery-mapping chase everywhere,
strictly on Example 13 and on the intro example.
"""

from __future__ import annotations

import pytest

from repro import (
    cq_max_recovery_chase,
    cq_sound_instance,
    maps_into,
    parse_query,
)
from repro.reporting import format_table
from repro.workloads import example13, intro_split_scaled, scenario


def test_e13_example13_strict_domination(benchmark, report):
    s = example13()

    def run():
        return (
            cq_sound_instance(s.mapping, s.target),
            cq_max_recovery_chase(s.mapping, s.target),
        )

    ours, theirs = benchmark(run)
    q = s.queries["q_u"]
    report(
        format_table(
            ["method", "Q3(x) = U(x)", "paper"],
            [
                ("I_{Sigma,J}", len(q.certain_evaluate(ours)), "{(b)}"),
                ("CQ-max recovery chase", len(q.certain_evaluate(theirs)), "{}"),
            ],
            title="E13: Example 13 — strictly more sound information",
        )
    )
    assert len(q.certain_evaluate(ours)) == 1
    assert q.certain_evaluate(theirs) == set()


@pytest.mark.parametrize("n", [4, 16, 64])
def test_e13_intro_family_answer_counts(benchmark, report, n):
    s = intro_split_scaled(n)
    join_query = parse_query("q(x, y) :- R(x, y)")

    def run():
        return (
            cq_sound_instance(s.mapping, s.target),
            cq_max_recovery_chase(s.mapping, s.target),
        )

    ours, theirs = benchmark.pedantic(run, rounds=1, iterations=1)
    ours_count = len(join_query.certain_evaluate(ours))
    theirs_count = len(join_query.certain_evaluate(theirs))
    report(
        format_table(
            ["n", "I_{Sigma,J} join answers", "recovery-mapping join answers"],
            [(n, ours_count, theirs_count)],
            title="E13: equation (1) family — who recovers the join",
        )
    )
    assert ours_count == n
    assert theirs_count == 0


def test_e13_theorem10_inclusion_across_scenarios(benchmark, report):
    names = ["intro_split", "example12", "example13", "employee_benefits"]

    def run():
        rows = []
        for name in names:
            s = scenario(name)
            ours = cq_sound_instance(s.mapping, s.target)
            theirs = cq_max_recovery_chase(s.mapping, s.target)
            rows.append((name, maps_into(theirs, ours)))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        format_table(
            ["scenario", "Chase(Sigma', J) -> I_{Sigma,J} (Theorem 10)"],
            rows,
            title="E13: Theorem 10 inclusion",
        )
    )
    assert all(ok for _, ok in rows)
