"""Experiment E9: Theorems 5-6 — unique coverings and the PTIME
complete-UCQ recovery.

The Theorem 6 test (every homomorphism covers a private fact) is
quadratic; the complete recovery is polynomial.  Swept over target
size on a unique-cover workload; the expected shape is near-linear
growth for both, against the exponential Chase^{-1} of E6.
"""

from __future__ import annotations

import pytest

from repro import complete_ucq_recovery, unique_cover
from repro.core.hom_sets import hom_set
from repro.reporting import format_table
from repro.workloads import unique_cover_workload


@pytest.mark.parametrize("facts", [50, 200, 800, 3200])
def test_e9_unique_cover_test_scaling(benchmark, report, facts):
    mapping, target = unique_cover_workload(facts, facts=facts)
    homs = hom_set(mapping, target)

    def run():
        return unique_cover(homs, target)

    covering = benchmark.pedantic(run, rounds=1, iterations=2)
    report(
        format_table(
            ["|J|", "|HOM|", "unique covering"],
            [(len(target), len(homs), covering is not None)],
            title="E9: Theorem 6 private-fact test",
        )
    )
    assert covering is not None


@pytest.mark.parametrize("facts", [50, 200, 800])
def test_e9_complete_recovery_scaling(benchmark, report, facts):
    mapping, target = unique_cover_workload(facts, facts=facts)

    def run():
        return complete_ucq_recovery(mapping, target)

    recovered = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        format_table(
            ["|J|", "|recovered source|"],
            [(len(target), len(recovered))],
            title="E9: Theorem 5 complete UCQ recovery",
        )
    )
    assert recovered
