"""Experiments E1-E3: the introduction's motivating examples.

* E1 (equations 1-3): on ``Sigma = {R(x,y) -> S(x), P(y)}`` the
  instance-based recovery joins every ``P`` value to the unique ``S``
  value, so ``Q(x) = R(x, b_i)`` answers ``{a}``; chasing with the
  maximum-recovery mapping answers nothing.  Swept over the number of
  ``P``-facts.
* E2 (equation 4): of the three source instances proposed by the
  (disjunctive) maximum recovery for ``J = {S(a)}``, only ``{M(a)}``
  is data-exchange sound; the instance-based semantics returns exactly
  that one.
* E3 (equations 5-6): the three chase cases — selective triggering,
  subsumption blocking and null equating.
"""

from __future__ import annotations

import pytest

from repro import (
    Mapping,
    atomwise_reverse_mapping,
    certain_answer,
    full_single_head_max_recovery,
    inverse_chase,
    is_recovery,
    maps_into,
    parse_instance,
    parse_query,
    parse_tgds,
)
from repro.reporting import format_answers, format_table
from repro.workloads import intro_split_scaled


@pytest.mark.parametrize("n", [4, 16, 64, 256])
def test_e1_recovered_join_vs_max_recovery(benchmark, report, n):
    scenario = intro_split_scaled(n)
    query = parse_query("q(x) :- R(x, 'b2')")

    def run():
        return certain_answer(query, scenario.mapping, scenario.target)

    answers = benchmark(run)
    baseline_source = atomwise_reverse_mapping(scenario.mapping).apply_single(
        scenario.target
    )
    baseline_answers = query.certain_evaluate(baseline_source)
    report(
        format_table(
            ["approach", "CERT(R(x, b2))", "paper says"],
            [
                ("instance-based recovery", format_answers(answers), "{(a)}"),
                (
                    "maximum-recovery chase",
                    format_answers(baseline_answers),
                    "{}",
                ),
            ],
            title=f"E1 (n = {n} P-facts)",
        )
    )
    from repro import Constant

    assert answers == {(Constant("a"),)}
    assert baseline_answers == set()


def test_e2_unsound_alternatives(benchmark, report):
    mapping = Mapping(parse_tgds("R(x) -> T(x); R(x2) -> S(x2); M(x3) -> S(x3)"))
    target = parse_instance("S(a)")

    def run():
        return inverse_chase(mapping, target)

    recoveries = benchmark(run)
    alternatives = full_single_head_max_recovery(mapping).apply(target)
    rows = []
    for candidate in alternatives:
        rows.append(
            (
                repr(candidate),
                "max recovery",
                is_recovery(mapping, candidate, target),
            )
        )
    for candidate in recoveries:
        rows.append((repr(candidate), "instance-based", True))
    report(
        format_table(
            ["source instance", "proposed by", "is a recovery"],
            rows,
            title="E2 (equation 4, J = {S(a)})",
        )
    )
    assert [repr(r) for r in recoveries] == ["{M(a)}"]


def test_e3_case_one_selective_triggering(benchmark, report):
    mapping = Mapping(parse_tgds("R(x) -> S(x); M(y) -> S(y)"))
    target = parse_instance("S(a)")
    recoveries = benchmark(inverse_chase, mapping, target)
    report(
        format_table(
            ["recovery"],
            [(repr(r),) for r in recoveries],
            title="E3 case one (equation 5): both single-rule recoveries",
        )
    )
    assert len(recoveries) == 2


def test_e3_case_two_subsumption(benchmark, report):
    mapping = Mapping(parse_tgds("R(x) -> T(x); R(x2) -> S(x2); M(x3) -> S(x3)"))

    def run():
        return (
            inverse_chase(mapping, parse_instance("T(a)")),
            inverse_chase(mapping, parse_instance("T(a), S(a)")),
        )

    invalid, valid = benchmark(run)
    report(
        format_table(
            ["target", "recoveries", "paper says"],
            [
                ("{T(a)}", len(invalid), "not recoverable"),
                ("{T(a), S(a)}", len(valid), "recover through R"),
            ],
            title="E3 case two (equation 4 targets)",
        )
    )
    assert invalid == []
    assert valid


def test_e3_case_three_null_equating(benchmark, report):
    mapping = Mapping(parse_tgds("R(x, x, y) -> T(x); R(v, w, z) -> S(z)"))
    target = parse_instance("T(a), S(b)")
    recoveries = benchmark(inverse_chase, mapping, target)
    expected = parse_instance("R(a, a, b)")
    report(
        format_table(
            ["recovery", "hom-equivalent to paper's I_1 = {R(a,a,b)}"],
            [
                (repr(r), maps_into(r, expected) and maps_into(expected, r))
                for r in recoveries
            ],
            title="E3 case three (equation 6)",
        )
    )
    assert all(
        maps_into(r, expected) and maps_into(expected, r) for r in recoveries
    )
