#!/usr/bin/env python
"""CI smoke test for ``repro serve``: boot, register, exercise, scrape.

Boots the real server as a subprocess (the same entry point a user
runs), registers a mapping, drives every endpoint — synchronous
``/recover``, ``/certain`` and ``/repair``, an async job polled to
completion, ``/metrics`` and ``/healthz`` — and fails on any
unexpected status code or malformed payload.  This is a correctness
smoke, not a benchmark: it exists so CI catches a service that boots
but cannot serve.

Usage::

    PYTHONPATH=src python benchmarks/service_smoke.py
"""

from __future__ import annotations

import json
import os
import re
import subprocess
import sys
import time
import urllib.error
import urllib.request

TGDS = "S(x, y) -> T(x, y)\nR(x) -> T(x, x)"
TARGET = "T(a, b)\nT(c, c)"

_checks = 0


def call(base, method, path, body=None, tenant="smoke"):
    data = json.dumps(body).encode() if body is not None else None
    request = urllib.request.Request(base + path, data=data, method=method)
    request.add_header("X-Tenant", tenant)
    try:
        with urllib.request.urlopen(request, timeout=60) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def expect(condition, label):
    global _checks
    _checks += 1
    if not condition:
        print(f"FAIL: {label}", file=sys.stderr)
        sys.exit(1)
    print(f"ok: {label}")


def main() -> int:
    src_dir = os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"
    )
    env = {**os.environ, "PYTHONPATH": src_dir}
    server = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0"],
        env=env,
        stderr=subprocess.PIPE,
        text=True,
    )
    try:
        line = server.stderr.readline()
        match = re.search(r"(http://[\d.]+:\d+)", line)
        expect(match is not None, f"server announced its address ({line.strip()!r})")
        base = match.group(1)

        status, payload = call(
            base, "POST", "/mappings",
            {"tgds": TGDS, "name": "m", "warm_targets": [TARGET]},
        )
        expect(status == 201, f"register mapping -> 201 (got {status})")
        expect(payload["mapping"]["warmed_targets"] == 1, "warm target precompiled")

        status, payload = call(
            base, "POST", "/recover", {"mapping": "m", "target": TARGET}
        )
        expect(status == 200, f"recover -> 200 (got {status})")
        expect(payload["status"] == "exact", "recover is exact")
        expect(payload["result"]["count"] == 2, "recover found both recoveries")

        status, repeat = call(
            base, "POST", "/recover", {"mapping": "m", "target": TARGET}
        )
        expect(
            status == 200 and repeat["result"] == payload["result"],
            "repeat recover identical",
        )
        expect(repeat["cached"] is True, "repeat recover served from cache")

        status, payload = call(
            base, "POST", "/certain",
            {"mapping": "m", "target": "T(a, b)", "query": "q(x) :- S(x, y)"},
        )
        expect(status == 200, f"certain -> 200 (got {status})")
        expect(payload["result"]["answers"] == [["a"]], "certain answer is {a}")

        status, payload = call(
            base, "POST", "/repair", {"mapping": "m", "target": TARGET}
        )
        expect(status == 200, f"repair -> 200 (got {status})")
        expect(payload["result"]["repaired"] is True, "repair found a repair")

        status, payload = call(
            base, "POST", "/mappings/m/facts", {"target": TARGET}
        )
        expect(status == 200, f"facts: materialize view -> 200 (got {status})")
        expect(payload["view"]["valid"] is True, "materialized view is valid")

        status, payload = call(base, "POST", "/recover", {"mapping": "m"})
        expect(status == 200, f"view recover -> 200 (got {status})")
        expect(payload["rung"] == "incremental", "view recover rung incremental")
        expect(payload["result"]["count"] == 2, "view recover matches explicit")

        status, payload = call(
            base, "POST", "/certain", {"mapping": "m", "query": "q(x) :- S(x, y)"}
        )
        expect(status == 200, f"view certain -> 200 (got {status})")
        before = payload["result"]["answers"]

        status, payload = call(
            base, "POST", "/mappings/m/facts", {"add": "T(z, w)"}
        )
        expect(status == 200, f"facts: delta -> 200 (got {status})")
        expect(payload["applied"]["added"] == 1, "delta applied one fact")
        expect(payload["view"]["deltas"] == 1, "view counted the delta")

        status, payload = call(
            base, "POST", "/certain", {"mapping": "m", "query": "q(x) :- S(x, y)"}
        )
        expect(status == 200, f"post-delta certain -> 200 (got {status})")
        expect(payload["cached"] is False, "delta invalidated the cached answer")
        expect(
            payload["result"]["answers"] == sorted(before + [["z"]]),
            "post-delta certain sees the new fact",
        )

        status, payload = call(
            base, "POST", "/recover",
            {"mapping": "m", "target": "T(x, y)", "mode": "async"},
        )
        expect(status == 202, f"async recover -> 202 (got {status})")
        job_id = payload["job"]["job_id"]
        deadline = time.monotonic() + 30
        state = "queued"
        while time.monotonic() < deadline and state not in ("done", "failed"):
            status, payload = call(base, "GET", f"/jobs/{job_id}")
            state = payload["job"]["state"]
            time.sleep(0.1)
        expect(state == "done", f"async job completed (state={state})")

        status, payload = call(base, "GET", "/metrics")
        expect(status == 200, f"metrics -> 200 (got {status})")
        expect(
            payload["counters"].get("service_requests", 0) >= 6,
            "metrics counted the requests",
        )
        expect(
            "tenant:smoke" in payload["service"]["cache_partitions"].get(
                "service_instance", {}
            ),
            "metrics expose the tenant's cache partition",
        )

        status, payload = call(base, "GET", "/healthz")
        expect(status == 200 and payload["ok"] is True, "healthz ok")

        print(f"service smoke passed ({_checks} checks)")
        return 0
    finally:
        server.terminate()
        try:
            server.wait(timeout=10)
        except subprocess.TimeoutExpired:
            server.kill()


if __name__ == "__main__":
    sys.exit(main())
