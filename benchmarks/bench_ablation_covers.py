"""Experiment E14 (ablation): minimal coverings vs. all coverings.

DESIGN.md's first called-out choice: Definition 9 ranges over *all*
coverings, but UCQs are monotone and every non-minimal covering's
recovery contains a minimal covering's recovery, so minimal coverings
preserve UCQ certain answers.  The ablation measures the covering
counts, recovery counts and runtimes of both modes and asserts the
answers agree.
"""

from __future__ import annotations

import time

import pytest

from repro import certain_answers, inverse_chase, parse_query
from repro.reporting import format_table
from repro.workloads import intro_two_rules, running_example, scenario


CASES = {
    "intro_two_rules": (
        intro_two_rules,
        parse_query("q(x) :- R(x); q(x) :- M(x)"),
    ),
    "running_example": (
        running_example,
        parse_query("q(x, y, z) :- R(x, y, z); q(x, y, z) :- R(x, z, y)"),
    ),
}


@pytest.mark.parametrize("name", sorted(CASES))
def test_e14_cover_mode_ablation(benchmark, report, name):
    build, query = CASES[name]
    s = build()

    def run(mode):
        start = time.perf_counter()
        recoveries = inverse_chase(
            s.mapping, s.target, cover_mode=mode, max_recoveries=5000
        )
        return recoveries, time.perf_counter() - start

    def both():
        return run("minimal"), run("all")

    (minimal, t_min), (full, t_all) = benchmark.pedantic(
        both, rounds=1, iterations=1
    )
    answers_min = certain_answers(query, minimal)
    answers_all = certain_answers(query, full)
    report(
        format_table(
            ["mode", "recoveries", "seconds", "|answers|"],
            [
                ("minimal", len(minimal), f"{t_min:.4f}", len(answers_min)),
                ("all", len(full), f"{t_all:.4f}", len(answers_all)),
            ],
            title=f"E14 ablation on {name}: UCQ answers must agree",
        )
    )
    assert answers_min == answers_all
    assert len(minimal) <= len(full)
