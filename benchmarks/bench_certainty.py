"""Experiment E7: Q-certainty (Theorem 4 / Corollary 1).

Q-certainty is coNP-complete even for CQs: answering through the full
recovery set requires enumerating ``Chase^{-1}(Sigma, J)``, whose size
grows exponentially on ambiguous targets (E6).  The tractable escape
hatches — Theorem 7's forced instance and Definition 12's
``I_{Sigma,J}`` — answer soundly in polynomial time.  The benchmark
measures the widening gap between exact certainty and the sound
approximations on the Lemma-1-remark family, and reports the answer
counts (the approximations stay sound: never a superset).
"""

from __future__ import annotations

import pytest

from repro import certain_answer, cq_sound_instance, parse_query, sound_ucq_instance
from repro.reporting import format_table
from repro.workloads import lemma1_remark

QUERY = parse_query("q(x, y) :- R(x, y)")


@pytest.mark.parametrize("k", [1, 2, 3])
def test_e7_exact_certainty_cost(benchmark, report, k):
    scenario = lemma1_remark(k)

    def run():
        return certain_answer(
            QUERY,
            scenario.mapping,
            scenario.target,
            max_recoveries=100000,
        )

    answers = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        format_table(
            ["k", "|CERT| (exact, via Chase^{-1})"],
            [(k, len(answers))],
            title="E7: exact certainty cost grows with the recovery set",
        )
    )


@pytest.mark.parametrize("k", [1, 2, 3, 4, 6])
def test_e7_sound_polynomial_answers(benchmark, report, k):
    scenario = lemma1_remark(k)

    def run():
        forced = sound_ucq_instance(scenario.mapping, scenario.target)
        sub_universal = cq_sound_instance(scenario.mapping, scenario.target)
        return forced, sub_universal

    forced, sub_universal = benchmark(run)
    rows = [
        ("Theorem 7 forced instance", len(QUERY.certain_evaluate(forced))),
        ("Definition 12 I_{Sigma,J}", len(QUERY.certain_evaluate(sub_universal))),
    ]
    if k <= 3:
        exact = certain_answer(
            QUERY, scenario.mapping, scenario.target, max_recoveries=100000
        )
        rows.append(("exact CERT", len(exact)))
        assert QUERY.certain_evaluate(forced) <= exact
        assert QUERY.certain_evaluate(sub_universal) <= exact
    report(
        format_table(
            ["method", "|answers|"],
            rows,
            title=f"E7 sound approximations (k = {k})",
        )
    )
