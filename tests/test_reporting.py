"""Unit tests for the plain-text reporting helpers."""

from repro.data.terms import Constant, Null
from repro.logic.parser import parse_instance
from repro.reporting import format_answers, format_instances, format_table


class TestFormatTable:
    def test_alignment_and_borders(self):
        table = format_table(["name", "n"], [("short", 1), ("a-much-longer-name", 22)])
        lines = table.splitlines()
        assert lines[0].startswith("+")
        widths = {len(line) for line in lines}
        assert len(widths) == 1  # every row is equally wide

    def test_title_is_prepended(self):
        table = format_table(["x"], [(1,)], title="My Title")
        assert table.splitlines()[0] == "My Title"

    def test_empty_rows(self):
        table = format_table(["a", "b"], [])
        assert "a" in table and "b" in table

    def test_non_string_cells_are_rendered(self):
        table = format_table(["v"], [(None,), (3.5,), (True,)])
        assert "None" in table and "3.5" in table and "True" in table


class TestFormatAnswers:
    def test_sorted_deterministic(self):
        answers = {(Constant("b"),), (Constant("a"),)}
        assert format_answers(answers) == "{(a), (b)}"

    def test_tuples_of_width_two(self):
        answers = {(Constant("a"), Constant("b"))}
        assert format_answers(answers) == "{(a, b)}"

    def test_empty(self):
        assert format_answers(set()) == "{}"

    def test_nulls_render_with_marker(self):
        assert "?N" in format_answers({(Null("N"),)})


class TestFormatInstances:
    def test_each_instance_on_its_own_line(self):
        rendered = format_instances(
            [parse_instance("R(a)"), parse_instance("S(b)")]
        )
        assert len(rendered.splitlines()) == 2

    def test_eliding_after_limit(self):
        instances = [parse_instance(f"R(a{i})") for i in range(15)]
        rendered = format_instances(instances, limit=10)
        assert "5 more" in rendered
