"""Unit tests for the exception hierarchy."""

import pickle
import random

import pytest

from repro.errors import (
    BudgetExceededError,
    ChaseError,
    CheckpointCorruptError,
    CheckpointError,
    CheckpointMismatchError,
    DeadlineExceededError,
    DependencyError,
    NotRecoverableError,
    ParseError,
    ReproError,
    SchemaError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "error_type",
        [
            SchemaError,
            DependencyError,
            NotRecoverableError,
            ChaseError,
        ],
    )
    def test_all_derive_from_repro_error(self, error_type):
        assert issubclass(error_type, ReproError)

    def test_parse_error_carries_position(self):
        error = ParseError("bad token", text="R(a) @@", position=5)
        assert error.position == 5
        assert "offset 5" in str(error)

    def test_parse_error_without_position(self):
        error = ParseError("empty input")
        assert error.position == -1
        assert str(error) == "empty input"

    def test_budget_error_carries_limit(self):
        error = BudgetExceededError("coverings", 100)
        assert error.limit == 100
        assert error.what == "coverings"
        assert "100" in str(error)

    def test_catching_the_base_class(self):
        with pytest.raises(ReproError):
            raise BudgetExceededError("anything", 1)

    def test_checkpoint_errors_derive_from_checkpoint_error(self):
        assert issubclass(CheckpointCorruptError, CheckpointError)
        assert issubclass(CheckpointMismatchError, CheckpointError)
        assert issubclass(CheckpointError, ReproError)


def roundtrip(error):
    return pickle.loads(pickle.dumps(error))


class TestPickleRoundTrips:
    """Every library error must survive a process-pool boundary intact.

    The hardened executor ships exceptions between processes; an error
    that loses attributes (or fails to unpickle outright, the default
    for exceptions with non-trivial constructors) would turn a precise
    failure into a crash or a silently degraded one.
    """

    @pytest.mark.parametrize(
        "error_type",
        [
            ReproError,
            SchemaError,
            DependencyError,
            NotRecoverableError,
            ChaseError,
            CheckpointError,
        ],
    )
    def test_plain_errors_roundtrip(self, error_type):
        clone = roundtrip(error_type("something went wrong"))
        assert type(clone) is error_type
        assert str(clone) == "something went wrong"

    def test_parse_error_roundtrip_preserves_location(self):
        clone = roundtrip(ParseError("bad token", text="R(a) @@", position=5))
        assert type(clone) is ParseError
        assert clone.text == "R(a) @@"
        assert clone.position == 5
        # The formatted message must not double-append the offset.
        assert str(clone).count("offset 5") == 1

    def test_parse_error_roundtrip_without_position(self):
        clone = roundtrip(ParseError("empty input"))
        assert str(clone) == "empty input"
        assert clone.position == -1

    def test_budget_error_roundtrip_keeps_enrichment(self):
        error = BudgetExceededError("coverings", 100, partial=["a", "b"])
        error.progress["covers_seen"] = 41
        clone = roundtrip(error)
        assert clone.what == "coverings"
        assert clone.limit == 100
        assert clone.partial == ["a", "b"]
        assert clone.progress == {"covers_seen": 41}
        assert str(clone) == str(error)

    def test_deadline_error_roundtrip_keeps_enrichment(self):
        error = DeadlineExceededError(
            "inverse chase",
            "wall clock 50ms",
            progress={"recoveries_emitted": 3},
            partial=[1, 2, 3],
        )
        clone = roundtrip(error)
        assert clone.what == "inverse chase"
        assert clone.limit == "wall clock 50ms"
        assert clone.progress == {"recoveries_emitted": 3}
        assert clone.partial == [1, 2, 3]
        assert str(clone) == str(error)

    def test_checkpoint_corrupt_roundtrip(self):
        clone = roundtrip(CheckpointCorruptError("/tmp/snap", "bad crc32"))
        assert clone.path == "/tmp/snap"
        assert clone.reason == "bad crc32"
        assert "bad crc32" in str(clone)

    def test_checkpoint_mismatch_roundtrip(self):
        clone = roundtrip(
            CheckpointMismatchError("/tmp/snap", "mapping_fp", "abc", "def")
        )
        assert clone.path == "/tmp/snap"
        assert clone.field == "mapping_fp"
        assert clone.expected == "abc"
        assert clone.found == "def"

    def test_randomized_roundtrips(self):
        """Property sweep: random payloads, every pickle protocol."""
        rng = random.Random(2026)
        for _ in range(100):
            what = "".join(rng.choices("abcdefgh ", k=rng.randint(1, 20)))
            progress = {
                f"k{i}": rng.randint(0, 10**9)
                for i in range(rng.randint(0, 5))
            }
            partial = [rng.randint(0, 999) for _ in range(rng.randint(0, 8))]
            errors = [
                BudgetExceededError(what, rng.randint(1, 10**6), partial=partial),
                DeadlineExceededError(what, "steps", progress=progress, partial=partial),
                ParseError(what, text=what * 2, position=rng.randint(-1, 30)),
                CheckpointCorruptError(what, "footer missing"),
                CheckpointMismatchError(what, "epoch", "1", "2"),
            ]
            protocol = rng.randint(2, pickle.HIGHEST_PROTOCOL)
            for error in errors:
                clone = pickle.loads(pickle.dumps(error, protocol))
                assert type(clone) is type(error)
                assert str(clone) == str(error)
                assert clone.__dict__ == error.__dict__
