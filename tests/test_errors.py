"""Unit tests for the exception hierarchy."""

import pytest

from repro.errors import (
    BudgetExceededError,
    ChaseError,
    DependencyError,
    NotRecoverableError,
    ParseError,
    ReproError,
    SchemaError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "error_type",
        [
            SchemaError,
            DependencyError,
            NotRecoverableError,
            ChaseError,
        ],
    )
    def test_all_derive_from_repro_error(self, error_type):
        assert issubclass(error_type, ReproError)

    def test_parse_error_carries_position(self):
        error = ParseError("bad token", text="R(a) @@", position=5)
        assert error.position == 5
        assert "offset 5" in str(error)

    def test_parse_error_without_position(self):
        error = ParseError("empty input")
        assert error.position == -1
        assert str(error) == "empty input"

    def test_budget_error_carries_limit(self):
        error = BudgetExceededError("coverings", 100)
        assert error.limit == 100
        assert error.what == "coverings"
        assert "100" in str(error)

    def test_catching_the_base_class(self):
        with pytest.raises(ReproError):
            raise BudgetExceededError("anything", 1)
