"""Unit tests for the standard chase, Chase_H and model checking."""

import pytest

from repro.data.atoms import atom
from repro.data.instances import instance
from repro.data.substitutions import Substitution
from repro.data.terms import Constant, Null, NullFactory, Variable
from repro.logic.parser import parse_instance, parse_tgd, parse_tgds
from repro.logic.tgds import Mapping
from repro.chase.standard import (
    chase,
    chase_restricted,
    oblivious_chase_instance,
    satisfies,
    violated_triggers,
)


class TestChase:
    def test_full_tgd_chase(self):
        mapping = Mapping(parse_tgds("R(x) -> T(x)"))
        result = chase(mapping, parse_instance("R(a), R(b)"))
        assert result.result == parse_instance("T(a), T(b)")

    def test_existential_creates_fresh_nulls(self):
        mapping = Mapping(parse_tgds("S(x) -> T(x, y)"))
        result = chase(mapping, parse_instance("S(a), S(b)")).result
        seconds = {fact.args[1] for fact in result}
        assert all(isinstance(t, Null) for t in seconds)
        assert len(seconds) == 2

    def test_fresh_nulls_avoid_input_nulls(self):
        mapping = Mapping(parse_tgds("S(x) -> T(x, y)"))
        result = chase(mapping, parse_instance("S(?N1)")).result
        fact = next(iter(result))
        assert fact.args[1] != Null("N1")

    def test_one_firing_per_body_homomorphism(self):
        # Two body homomorphisms differing only on the body-only variable
        # both fire (the paper's Chase fires each homomorphism).
        mapping = Mapping(parse_tgds("R(x, y) -> S(x, z)"))
        result = chase(mapping, parse_instance("R(a, b), R(a, c)"))
        assert len(result.applications) == 2
        assert len(result.result) == 2

    def test_join_in_body(self):
        mapping = Mapping(parse_tgds("E(x, y), E(y, z) -> P(x, z)"))
        result = chase(mapping, parse_instance("E(a, b), E(b, c)")).result
        assert result == parse_instance("P(a, c)")

    def test_result_excludes_source_facts(self):
        mapping = Mapping(parse_tgds("R(x) -> T(x)"))
        result = chase(mapping, parse_instance("R(a)")).result
        assert atom("R", "a") not in result

    def test_repeated_body_variable_pattern(self):
        mapping = Mapping(parse_tgds("R(x, x) -> T(x)"))
        result = chase(mapping, parse_instance("R(a, a), R(a, b)")).result
        assert result == parse_instance("T(a)")

    def test_oblivious_wrapper(self):
        mapping = Mapping(parse_tgds("R(x) -> T(x)"))
        assert oblivious_chase_instance(mapping, parse_instance("R(a)")) == (
            parse_instance("T(a)")
        )

    def test_provenance_records(self):
        mapping = Mapping(parse_tgds("R(x) -> T(x)"))
        result = chase(mapping, parse_instance("R(a)"))
        app = result.applications[0]
        assert app.tgd.name == "xi1"
        assert app.produced == (atom("T", "a"),)
        assert result.producers_of(atom("T", "a")) == [app]
        assert list(result.applications_of(mapping.tgds[0])) == [app]
        assert result.combined == parse_instance("R(a), T(a)")


class TestChaseRestricted:
    def test_applies_only_given_triggers(self):
        tgd = parse_tgd("R(x) -> S(x); ")
        trigger = (tgd, Substitution({Variable("x"): Constant("a")}))
        result = chase_restricted([trigger], parse_instance("R(a), R(b)"))
        assert result.result == parse_instance("S(a)")

    def test_existentials_get_fresh_nulls_per_trigger(self):
        tgd = parse_tgd("R(x) -> S(x, z)")
        triggers = [
            (tgd, Substitution({Variable("x"): Constant("a")})),
            (tgd, Substitution({Variable("x"): Constant("a")})),
        ]
        result = chase_restricted(triggers, instance()).result
        assert len(result) == 2  # two distinct fresh z-nulls

    def test_paper_chase_h_example(self):
        # Section 4: Chase_H with H = {{x/a}} applies only the first tgd.
        mapping = Mapping(parse_tgds("R(x) -> T(x, y); R(z) -> V(z, v)"))
        xi1, xi2 = mapping.tgds
        h = Substitution({Variable("x"): Constant("a")})
        result = chase_restricted([(xi1, h)], parse_instance("R(a), R(b)")).result
        assert result.relation_names == {"T"}
        assert len(result) == 1


class TestSatisfies:
    def test_model(self):
        mapping = Mapping(parse_tgds("R(x) -> T(x)"))
        assert satisfies(parse_instance("R(a)"), parse_instance("T(a)"), mapping)

    def test_non_model(self):
        mapping = Mapping(parse_tgds("R(x) -> T(x)"))
        assert not satisfies(parse_instance("R(a)"), parse_instance("T(b)"), mapping)

    def test_existential_witness_can_be_anything(self):
        mapping = Mapping(parse_tgds("S(x) -> T(x, z)"))
        assert satisfies(parse_instance("S(a)"), parse_instance("T(a, q)"), mapping)
        assert satisfies(parse_instance("S(a)"), parse_instance("T(a, ?N)"), mapping)

    def test_chase_result_is_always_a_model(self):
        mapping = Mapping(parse_tgds("R(x, y) -> S(x, z); R(u, v) -> T(v)"))
        source = parse_instance("R(a, b), R(b, b)")
        assert satisfies(source, chase(mapping, source).result, mapping)

    def test_empty_source_models_everything(self):
        mapping = Mapping(parse_tgds("R(x) -> T(x)"))
        assert satisfies(instance(), parse_instance("T(a)"), mapping)

    def test_violated_triggers_reported(self):
        mapping = Mapping(parse_tgds("R(x) -> T(x)"))
        failures = violated_triggers(
            parse_instance("R(a), R(b)"), parse_instance("T(a)"), mapping
        )
        assert len(failures) == 1
        tgd, binding = failures[0]
        assert binding.image(tgd.body[0].args[0]) == Constant("b")

    def test_violated_triggers_empty_for_model(self):
        mapping = Mapping(parse_tgds("R(x) -> T(x)"))
        assert violated_triggers(
            parse_instance("R(a)"), parse_instance("T(a)"), mapping
        ) == []
