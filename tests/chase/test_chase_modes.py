"""Tests for chase firing granularities and provenance depth."""

import pytest

from repro.data.atoms import atom
from repro.data.terms import Null
from repro.logic.parser import parse_instance, parse_tgds
from repro.logic.tgds import Mapping
from repro.chase.standard import chase, satisfies


class TestFrontierDeduplication:
    def setup_method(self):
        # y is body-only: homomorphisms differing on y share a frontier.
        self.mapping = Mapping(parse_tgds("R(x, y) -> S(x, z)"))
        self.source = parse_instance("R(a, b), R(a, c), R(d, b)")

    def test_homomorphism_mode_fires_per_body_hom(self):
        result = chase(self.mapping, self.source, dedup="homomorphism")
        assert len(result.applications) == 3

    def test_frontier_mode_fires_per_frontier_binding(self):
        result = chase(self.mapping, self.source, dedup="frontier")
        assert len(result.applications) == 2  # x = a and x = d

    def test_both_modes_produce_solutions(self):
        for mode in ("homomorphism", "frontier"):
            result = chase(self.mapping, self.source, dedup=mode).result
            assert satisfies(self.source, result, self.mapping)

    def test_modes_are_homomorphically_equivalent(self):
        from repro.logic.homomorphisms import homomorphically_equivalent

        a = chase(self.mapping, self.source, dedup="homomorphism").result
        b = chase(self.mapping, self.source, dedup="frontier").result
        assert homomorphically_equivalent(a, b)

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            chase(self.mapping, self.source, dedup="bogus")


class TestProvenanceDepth:
    def test_shared_existential_across_head_atoms(self):
        """One firing invents one null shared by both head atoms."""
        mapping = Mapping(parse_tgds("R(x) -> S(x, z), T(z)"))
        result = chase(mapping, parse_instance("R(a)"))
        (app,) = result.applications
        s_fact = next(f for f in app.produced if f.relation == "S")
        t_fact = next(f for f in app.produced if f.relation == "T")
        assert s_fact.args[1] == t_fact.args[0]
        assert isinstance(s_fact.args[1], Null)

    def test_full_assignment_combines_hom_and_extension(self):
        mapping = Mapping(parse_tgds("R(x) -> S(x, z)"))
        result = chase(mapping, parse_instance("R(a)"))
        (app,) = result.applications
        assignment = app.full_assignment
        from repro.data.terms import Constant, Variable

        assert assignment.image(Variable("x")) == Constant("a")
        assert isinstance(assignment.image(Variable("z")), Null)

    def test_distinct_firings_get_distinct_nulls(self):
        mapping = Mapping(parse_tgds("R(x) -> S(x, z)"))
        result = chase(mapping, parse_instance("R(a), R(b)"))
        nulls = {app.extension.image(v) for app in result.applications for v in app.extension}
        assert len(nulls) == 2

    def test_producers_of_tracks_multiple_sources(self):
        mapping = Mapping(parse_tgds("R(x) -> T(x); M(y) -> T(y)"))
        result = chase(mapping, parse_instance("R(a), M(a)"))
        producers = result.producers_of(atom("T", "a"))
        assert len(producers) == 2
        assert {p.tgd.name for p in producers} == {"xi1", "xi2"}
