"""Unit tests for the disjunctive chase used by the baselines."""

import pytest

from repro.data.atoms import atom
from repro.data.instances import instance
from repro.data.terms import Null
from repro.errors import BudgetExceededError, DependencyError
from repro.logic.parser import parse_instance
from repro.chase.disjunctive import DisjunctiveTGD, disjunctive_chase


def dep(body, *disjuncts, name=None):
    return DisjunctiveTGD(body, disjuncts, name=name)


class TestConstruction:
    def test_accessors(self):
        d = dep([atom("S", "$x")], [atom("R", "$x")], [atom("M", "$x")], name="inv")
        assert d.name == "inv"
        assert len(d.disjuncts) == 2
        assert not d.is_plain

    def test_plain_dependency(self):
        assert dep([atom("S", "$x")], [atom("R", "$x")]).is_plain

    def test_empty_body_rejected(self):
        with pytest.raises(DependencyError):
            DisjunctiveTGD([], [[atom("R", "$x")]])

    def test_empty_disjunct_rejected(self):
        with pytest.raises(DependencyError):
            DisjunctiveTGD([atom("S", "$x")], [[]])

    def test_no_disjuncts_rejected(self):
        with pytest.raises(DependencyError):
            DisjunctiveTGD([atom("S", "$x")], [])


class TestChase:
    def test_equation_4_maximum_recovery(self):
        # S(x) -> R(x) \/ M(x) applied to J = {S(a)}.
        d = dep([atom("S", "$x")], [atom("R", "$x")], [atom("M", "$x")])
        results = disjunctive_chase([d], parse_instance("S(a)"))
        assert instance(atom("R", "a")) in results
        assert instance(atom("M", "a")) in results
        assert len(results) == 2

    def test_choices_multiply_across_triggers(self):
        d = dep([atom("S", "$x")], [atom("R", "$x")], [atom("M", "$x")])
        results = disjunctive_chase([d], parse_instance("S(a), S(b)"))
        assert len(results) == 4

    def test_plain_dependency_single_result(self):
        d = dep([atom("S", "$x")], [atom("R", "$x")])
        results = disjunctive_chase([d], parse_instance("S(a), S(b)"))
        assert results == [instance(atom("R", "a"), atom("R", "b"))]

    def test_existential_variables_get_fresh_nulls(self):
        d = dep([atom("S", "$x")], [atom("R", "$x", "$y")])
        (result,) = disjunctive_chase([d], parse_instance("S(a)"))
        fact = next(iter(result))
        assert isinstance(fact.args[1], Null)

    def test_no_trigger_yields_empty_instance(self):
        d = dep([atom("S", "$x")], [atom("R", "$x")])
        results = disjunctive_chase([d], parse_instance("T(a)"))
        assert results == [instance()]

    def test_duplicate_results_are_merged(self):
        # Both disjuncts produce the same fact, so only one result remains.
        d = dep([atom("S", "$x")], [atom("R", "$x")], [atom("R", "$x")])
        results = disjunctive_chase([d], parse_instance("S(a)"))
        assert results == [instance(atom("R", "a"))]

    def test_budget_enforced(self):
        d = dep([atom("S", "$x")], [atom("R", "$x")], [atom("M", "$x")])
        target = parse_instance(", ".join(f"S(a{i})" for i in range(12)))
        with pytest.raises(BudgetExceededError):
            disjunctive_chase([d], target, max_results=100)

    def test_triggers_deduplicated_per_body_binding(self):
        d = dep(
            [atom("S", "$x"), atom("S", "$y")],
            [atom("R", "$x", "$y")],
        )
        results = disjunctive_chase([d], parse_instance("S(a)"))
        assert results == [instance(atom("R", "a", "a"))]
