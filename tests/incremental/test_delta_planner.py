"""Differential tests for the delta-seeded planner primitives.

``delta_restricted_homomorphisms`` promises to yield *exactly* the
homomorphisms a full search would yield whose image uses at least one
delta fact; ``seeded_has_homomorphism`` promises to agree with
``has_homomorphism`` under a base binding; ``carry_forward_plans``
promises to re-key only relation-disjoint compiled plans.  Each is
pinned here against the reference search on randomized instances.
"""

from __future__ import annotations

import random

import pytest

from repro import engine_options, parse_instance
from repro.data.atoms import Atom
from repro.data.terms import Constant, Variable
from repro.engine import clear_registered_caches
from repro.logic.homomorphisms import has_homomorphism, homomorphisms
from repro.planner.delta import (
    carry_forward_plans,
    delta_restricted_homomorphisms,
    seeded_has_homomorphism,
)
from repro.planner.plan import _PLAN_CACHE

X, Y, Z = Variable("x"), Variable("y"), Variable("z")

PATTERNS = [
    [Atom("E", [X, Y])],
    [Atom("E", [X, Y]), Atom("E", [Y, Z])],
    [Atom("E", [X, Y]), Atom("G", [X])],
    [Atom("E", [X, X])],
]


def fact(name: str, *args: str) -> Atom:
    return Atom(name, [Constant(a) for a in args])


def random_facts(rng, count):
    names = [f"c{i}" for i in range(4)]
    out = set()
    while len(out) < count:
        if rng.random() < 0.3:
            out.add(fact("G", rng.choice(names)))
        else:
            out.add(fact("E", rng.choice(names), rng.choice(names)))
    return out


def touches(sub, pattern, delta):
    return any(atom in delta for atom in sub.apply_atoms(pattern))


class TestDeltaRestrictedSearch:
    @pytest.mark.parametrize("seed", range(5))
    @pytest.mark.parametrize("pattern", PATTERNS, ids=repr)
    def test_matches_full_search_filtered_to_delta(self, pattern, seed):
        rng = random.Random(seed)
        base_facts = random_facts(rng, 8)
        added = random_facts(rng, 3) - base_facts
        parent = parse_instance(", ".join(str(f) for f in base_facts))
        child = parent.evolve(add=added)
        delta = child.lineage.added
        reference = {
            sub
            for sub in homomorphisms(pattern, child)
            if touches(sub, pattern, delta)
        }
        found = list(delta_restricted_homomorphisms(pattern, child, delta))
        assert len(found) == len(set(found)), "anchors must deduplicate"
        assert set(found) == reference

    def test_delta_facts_absent_from_target_are_skipped(self):
        target = parse_instance("E(a, b)")
        assert (
            list(
                delta_restricted_homomorphisms(
                    [Atom("E", [X, Y])], target, [fact("E", "q", "q")]
                )
            )
            == []
        )

    def test_projection_collapses_agreeing_homomorphisms(self):
        # Both E-atoms can anchor on the delta fact; projected to x the
        # two anchored searches find the same binding, which must come
        # out once — and equal the projected reference search filtered
        # to delta-touching homomorphisms.
        pattern = [Atom("E", [X, Y]), Atom("E", [X, Z])]
        parent = parse_instance("E(a, b), E(a, c)")
        child = parent.evolve(add=[fact("E", "a", "d")])
        delta = child.lineage.added
        reference = {
            sub.apply_tuple([X])
            for sub in homomorphisms(pattern, child)
            if touches(sub, pattern, delta)
        }
        found = list(
            delta_restricted_homomorphisms(pattern, child, delta, project=[X])
        )
        assert len(found) == len(set(found))
        assert {sub.apply_tuple([X]) for sub in found} == reference

    def test_base_binding_is_respected(self):
        pattern = [Atom("E", [X, Y])]
        parent = parse_instance("E(a, b)")
        child = parent.evolve(add=[fact("E", "a", "c"), fact("E", "b", "c")])
        delta = child.lineage.added
        found = list(
            delta_restricted_homomorphisms(
                pattern, child, delta, base={X: Constant("a")}
            )
        )
        assert {sub.image(Y) for sub in found} == {Constant("c")}


class TestSeededExistence:
    @pytest.mark.parametrize("seed", range(5))
    def test_agrees_with_has_homomorphism_under_base(self, seed):
        rng = random.Random(100 + seed)
        target = parse_instance(
            ", ".join(str(f) for f in random_facts(rng, 6))
        )
        pattern = [Atom("E", [X, Y]), Atom("E", [Y, Z])]
        for name in ("c0", "c1", "c2", "c3"):
            base = {X: Constant(name)}
            assert seeded_has_homomorphism(
                pattern, target, base=base
            ) == has_homomorphism(pattern, target, base=base)

    def test_empty_pattern_is_trivially_satisfied(self):
        assert seeded_has_homomorphism([], parse_instance("E(a, b)"))


class TestPlanCarryForward:
    def test_relation_disjoint_plans_are_carried(self):
        with engine_options(columnar_backend=False):
            clear_registered_caches()
            parent = parse_instance("E(a, b), E(b, c), G(a)")
            pattern = [Atom("E", [X, Y]), Atom("E", [Y, Z])]
            list(homomorphisms(pattern, parent))
            compiled = [
                key for key, epoch in _PLAN_CACHE.keys() if epoch == parent.epoch
            ]
            assert compiled, "full search must compile an epoch-keyed plan"

            # A delta touching only G leaves every E-plan valid.
            child = parent.evolve(add=[fact("G", "z")])
            assert carry_forward_plans(child) == len(compiled)
            assert any(
                epoch == child.epoch for _key, epoch in _PLAN_CACHE.keys()
            )

            # A delta touching E invalidates the E-plan's pools.
            touched = parent.evolve(add=[fact("E", "c", "d")])
            assert carry_forward_plans(touched) == 0
            clear_registered_caches()

    def test_instance_without_lineage_carries_nothing(self):
        assert carry_forward_plans(parse_instance("E(a, b)")) == 0

    def test_carry_forward_is_idempotent(self):
        with engine_options(columnar_backend=False):
            clear_registered_caches()
            parent = parse_instance("E(a, b), G(a)")
            list(homomorphisms([Atom("E", [X, Y])], parent))
            child = parent.evolve(add=[fact("G", "z")])
            first = carry_forward_plans(child)
            assert first >= 1
            assert carry_forward_plans(child) == first
            clear_registered_caches()
