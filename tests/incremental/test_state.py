"""Differential tests: ``RecoveryState`` vs cold recompute under churn.

Every test drives a maintained :class:`repro.incremental.RecoveryState`
through a sequence of fact deltas and, after each step, recomputes the
recovery surface from scratch — ``hom_set``, ``inverse_chase`` and
``certain_answer`` on the *current* target — asserting bit-identical
results (same recoveries, same order, same answers).

One subtlety: ``apply_delta`` seeds the hom-set cache for the child
epoch so cold consumers of the same instance get the maintained set
for free.  The cold reference here must NOT see that seed, so each
comparison clears the registered caches first; the maintained state
keeps all of its incremental structures privately and is unaffected.
"""

from __future__ import annotations

import random

import pytest

from repro import (
    Executor,
    Mapping,
    certain_answer,
    engine_options,
    hom_set,
    inverse_chase,
    parse_instance,
    parse_query,
    parse_tgds,
)
from repro.data.atoms import Atom
from repro.data.terms import Constant
from repro.engine import clear_registered_caches
from repro.errors import NotRecoverableError
from repro.incremental import RecoveryState
from repro.observability.metrics import METRICS

BULK = "E(x, y) -> F(x, y)"
AMBIGUOUS = "P(x) -> F(x, x)\nE(x, y) -> F(x, y)"
EXISTENTIAL = "S(x) -> T(x, y)"

BACKENDS = [
    pytest.param({"columnar_backend": False}, id="object"),
    pytest.param(
        {"columnar_backend": True, "columnar_min_facts": 0}, id="columnar"
    ),
]


def mapping_of(text: str) -> Mapping:
    return Mapping(parse_tgds(text))


def fact(name: str, *args: str) -> Atom:
    return Atom(name, [Constant(a) for a in args])


def canon(recovery) -> tuple[str, ...]:
    return tuple(sorted(str(f) for f in recovery.facts))


def assert_matches_cold(state: RecoveryState, queries=(), **cold_options):
    """The maintained surface must be bit-identical to a cold recompute."""
    mapping, target = state.mapping, state.target
    # The state seeded this epoch's hom-set cache; the cached value must
    # equal what a cold enumeration produces, order included.
    seeded = hom_set(mapping, target)
    clear_registered_caches()
    cold_homs = hom_set(mapping, target)
    assert [(h.tgd, h.substitution) for h in seeded] == [
        (h.tgd, h.substitution) for h in cold_homs
    ]
    assert state.hom_count == len(cold_homs)

    clear_registered_caches()
    cold = inverse_chase(mapping, target, **cold_options)
    assert [canon(r) for r in state.recoveries] == [canon(r) for r in cold]

    for query in queries:
        try:
            maintained = state.certain(query)
        except NotRecoverableError:
            maintained = NotRecoverableError
        clear_registered_caches()
        try:
            reference = certain_answer(query, mapping, target, **cold_options)
        except NotRecoverableError:
            reference = NotRecoverableError
        assert maintained == reference


class TestChurnDifferential:
    """Randomized insert / delete / mixed churn on the bulk mapping."""

    QUERIES = (
        parse_query("q(x, y) :- E(x, y)"),
        parse_query("q(x) :- E(x, y), E(y, z)"),
    )

    def pool(self):
        return [fact("F", f"c{i}", f"c{j}") for i in range(5) for j in range(5)]

    @pytest.mark.parametrize("options", BACKENDS)
    def test_insert_churn(self, options):
        with engine_options(**options):
            rng = random.Random(11)
            pool = self.pool()
            state = RecoveryState(mapping_of(BULK), parse_instance("F(c0, c1)"))
            for _ in range(8):
                add = rng.sample(pool, rng.randint(1, 3))
                state.apply_delta(add=add)
                assert_matches_cold(state, self.QUERIES)

    @pytest.mark.parametrize("options", BACKENDS)
    def test_delete_churn(self, options):
        with engine_options(**options):
            rng = random.Random(12)
            pool = self.pool()
            state = RecoveryState(
                mapping_of(BULK), parse_instance(", ".join(str(f) for f in pool))
            )
            live = list(pool)
            for _ in range(8):
                remove = rng.sample(live, rng.randint(1, 3))
                live = [f for f in live if f not in remove]
                state.apply_delta(remove=remove)
                assert_matches_cold(state, self.QUERIES)

    @pytest.mark.parametrize("options", BACKENDS)
    def test_mixed_churn(self, options):
        with engine_options(**options):
            rng = random.Random(13)
            pool = self.pool()
            state = RecoveryState(
                mapping_of(BULK), parse_instance("F(c0, c1), F(c1, c2)")
            )
            for _ in range(12):
                add = rng.sample(pool, rng.randint(0, 2))
                remove = rng.sample(pool, rng.randint(0, 2))
                state.apply_delta(add=add, remove=remove)
                assert_matches_cold(state, self.QUERIES)

    def test_fast_path_is_taken_on_bulk_mapping(self):
        state = RecoveryState(mapping_of(BULK), parse_instance("F(a, b)"))
        before = METRICS.snapshot().get("incremental_fast_deltas", 0)
        state.apply_delta(add=[fact("F", "b", "c")])
        assert METRICS.snapshot()["incremental_fast_deltas"] == before + 1
        assert_matches_cold(state, self.QUERIES)


class TestCoveringSupportDeletion:
    """Deleting a fact that supports an existing covering hom."""

    def test_supporting_fact_deletion_retires_the_hom(self):
        state = RecoveryState(
            mapping_of(BULK), parse_instance("F(a, b), F(b, c)")
        )
        assert state.hom_count == 2
        retired = METRICS.snapshot().get("incremental_homs_retired", 0)
        state.apply_delta(remove=[fact("F", "a", "b")])
        assert METRICS.snapshot()["incremental_homs_retired"] == retired + 1
        assert state.hom_count == 1
        assert_matches_cold(state)
        assert [canon(r) for r in state.recoveries] == [("E(b, c)",)]

    def test_shared_support_under_ambiguous_covers(self):
        # F(a, a) is covered by two homs (via P and via E); deleting it
        # must retire both, and re-adding it must rediscover both.
        mapping = mapping_of(AMBIGUOUS)
        state = RecoveryState(mapping, parse_instance("F(a, a), F(b, c)"))
        assert_matches_cold(state)
        state.apply_delta(remove=[fact("F", "a", "a")])
        assert_matches_cold(state)
        state.apply_delta(add=[fact("F", "a", "a")])
        assert_matches_cold(state)

    def test_ambiguous_churn_exercises_cold_rebuild(self):
        mapping = mapping_of(AMBIGUOUS)
        rng = random.Random(21)
        pool = [fact("F", c, c) for c in "abcd"] + [
            fact("F", "a", "b"),
            fact("F", "c", "d"),
        ]
        state = RecoveryState(mapping, parse_instance("F(a, a)"))
        rebuilds = METRICS.snapshot().get("incremental_cold_rebuilds", 0)
        for _ in range(10):
            add = rng.sample(pool, rng.randint(0, 2))
            remove = rng.sample(pool, rng.randint(0, 2))
            state.apply_delta(add=add, remove=remove)
            assert_matches_cold(state, (parse_query("q(x) :- P(x)"),))
        assert METRICS.snapshot()["incremental_cold_rebuilds"] > rebuilds


class TestNonFastMappings:
    def test_existential_mapping_churn(self):
        # S(x) -> T(x, y) has an existential head variable, so the fast
        # pipeline never applies; every delta goes through the generic
        # rebuild and must still match cold output exactly.
        mapping = mapping_of(EXISTENTIAL)
        state = RecoveryState(mapping, parse_instance("T(a, b)"))
        query = parse_query("q(x) :- S(x)")
        for add, remove in [
            ([fact("T", "c", "d")], []),
            ([], [fact("T", "a", "b")]),
            ([fact("T", "a", "a")], [fact("T", "c", "d")]),
        ]:
            state.apply_delta(add=add, remove=remove)
            assert_matches_cold(state, (query,))


class TestValidityTransitions:
    def test_uncoverable_fact_round_trip(self):
        state = RecoveryState(mapping_of(BULK), parse_instance("F(a, b)"))
        query = parse_query("q(x, y) :- E(x, y)")
        state.apply_delta(add=[fact("G", "9")])
        assert state.recoveries == []
        with pytest.raises(NotRecoverableError):
            state.certain(query)
        assert_matches_cold(state, (query,))
        state.apply_delta(remove=[fact("G", "9")])
        assert [canon(r) for r in state.recoveries] == [("E(a, b)",)]
        assert_matches_cold(state, (query,))

    def test_churn_to_empty_target_and_back(self):
        state = RecoveryState(mapping_of(BULK), parse_instance("F(a, b)"))
        state.apply_delta(remove=[fact("F", "a", "b")])
        assert state.target.is_empty
        assert_matches_cold(state)
        state.apply_delta(add=[fact("F", "x", "y")])
        assert_matches_cold(state)

    def test_noop_delta_returns_same_target(self):
        state = RecoveryState(mapping_of(BULK), parse_instance("F(a, b)"))
        target = state.target
        assert state.apply_delta() is target
        assert state.apply_delta(add=[fact("F", "a", "b")]) is target
        # Adds win over removes on overlap; the net effect is nothing.
        assert (
            state.apply_delta(
                add=[fact("F", "a", "b")], remove=[fact("F", "a", "b")]
            )
            is target
        )


class TestOptionParity:
    def test_cover_mode_all(self):
        state = RecoveryState(
            mapping_of(AMBIGUOUS),
            parse_instance("F(a, a), F(b, b)"),
            cover_mode="all",
        )
        state.apply_delta(add=[fact("F", "c", "d")])
        assert_matches_cold(state, cover_mode="all")

    def test_verify_justification_off(self):
        state = RecoveryState(
            mapping_of(BULK),
            parse_instance("F(a, b)"),
            verify_justification=False,
        )
        state.apply_delta(add=[fact("F", "b", "c")])
        clear_registered_caches()
        cold = inverse_chase(
            state.mapping, state.target, verify_justification=False
        )
        assert [canon(r) for r in state.recoveries] == [canon(r) for r in cold]

    def test_invalid_modes_rejected(self):
        target = parse_instance("F(a, b)")
        with pytest.raises(ValueError):
            RecoveryState(mapping_of(BULK), target, cover_mode="most")
        with pytest.raises(ValueError):
            RecoveryState(mapping_of(BULK), target, subsumption_mode="maybe")


class TestExecutorParity:
    """Cold recompute under every executor matches the maintained state."""

    @pytest.mark.parametrize(
        "executor",
        [
            pytest.param(None, id="serial"),
            pytest.param(Executor(jobs=2, backend="thread"), id="thread"),
            pytest.param(Executor(jobs=2, backend="process"), id="process"),
        ],
    )
    def test_delta_result_matches_every_executor(self, executor):
        mapping = mapping_of(AMBIGUOUS)
        state = RecoveryState(mapping, parse_instance("F(a, a), F(a, b)"))
        state.apply_delta(
            add=[fact("F", "b", "b")], remove=[fact("F", "a", "b")]
        )
        query = parse_query("q(x) :- P(x)")
        maintained = state.certain(query)
        clear_registered_caches()
        cold = inverse_chase(state.mapping, state.target, executor=executor)
        assert [canon(r) for r in state.recoveries] == [canon(r) for r in cold]
        clear_registered_caches()
        assert maintained == certain_answer(
            query, state.mapping, state.target, executor=executor
        )
