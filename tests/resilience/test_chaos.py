"""Chaos property suite: randomized fault schedules must never change results.

The headline property: for ANY seeded schedule of crashes, snapshot
corruption and clock skew, driving the inverse chase through
crash-and-resume lineages yields results bit-identical to an
uninterrupted run, with parity-clean semantic counters — on both the
object and the columnar backend.  200 randomized schedules run here
(100 per backend), in batches to keep each test comfortably under the
suite timeout; the executor-level faults (worker kills, chunk delays,
pickling failures) get dedicated real-process-pool scenarios on top.
"""

import pytest

from repro.core.inverse_chase import inverse_chase
from repro.engine.config import engine_options
from repro.engine.executor import Executor
from repro.errors import DeadlineExceededError
from repro.observability.metrics import METRICS
from repro.resilience import (
    CheckpointManager,
    Deadline,
    Fault,
    FaultSchedule,
    chaos_run,
)
from repro.resilience.chaos import (
    ChaoticCheckpointManager,
    DelayChunkOnce,
    FailPickleOnce,
    InjectedCrash,
    KillWorkerOnce,
)
from repro.workloads.generators import scaled_recovery_workload

SEMANTIC = (
    "coverings_evaluated",
    "recoveries_emitted",
    "justification_hits",
    "justification_misses",
)
WORK = SEMANTIC + ("covers_enumerated",)

BACKENDS = {
    "object": dict(columnar_backend=False),
    "columnar": dict(columnar_backend=True, columnar_min_facts=1),
}

SEEDS_PER_BATCH = 25
BATCHES = range(4)  # 4 batches x 25 seeds x 2 backends = 200 schedules


@pytest.fixture(scope="module")
def workload():
    return scaled_recovery_workload(11, facts=24, ambiguous_facts=4, domain_size=12)


@pytest.fixture(scope="module")
def references(workload):
    """Uninterrupted result + work-counter delta, per backend."""
    mapping, target = workload
    refs = {}
    for name, options in BACKENDS.items():
        with engine_options(**options):
            base = METRICS.snapshot()
            result = inverse_chase(mapping, target)
            delta = METRICS.delta_since(base)
        refs[name] = (result, {k: delta.get(k, 0) for k in WORK})
    # The two backends must agree before chaos even starts.
    assert refs["object"][0] == refs["columnar"][0]
    return refs


def assert_parity(report, ref_delta):
    delta = {k: report.final_delta.get(k, 0) for k in WORK}
    if report.resume_outcomes and report.resume_outcomes[-1] == "complete":
        # A complete snapshot short-circuits enumeration entirely; the
        # semantic counters still carry the full run via the merge.
        for key in SEMANTIC:
            assert delta[key] == ref_delta[key], (key, delta, ref_delta)
    else:
        assert delta == ref_delta


class TestFaultScheduleDeterminism:
    def test_same_seed_same_schedule(self):
        a, b = FaultSchedule(42), FaultSchedule(42)
        assert a.faults == b.faults
        assert a.every_ms == b.every_ms

    def test_different_seeds_vary(self):
        schedules = {FaultSchedule(seed).faults for seed in range(30)}
        assert len(schedules) > 20

    def test_crash_boundaries_strictly_increase(self):
        for seed in range(50):
            crashes = [f.at for f in FaultSchedule(seed).crashes()]
            assert crashes == sorted(set(crashes))

    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            FaultSchedule(1, kinds=("meteor",))


@pytest.mark.parametrize("backend", sorted(BACKENDS))
@pytest.mark.parametrize("batch", BATCHES)
class TestChaosProperty:
    def test_randomized_schedules_bit_identical(
        self, tmp_path, workload, references, backend, batch
    ):
        mapping, target = workload
        ref, ref_delta = references[backend]
        failures = []
        for offset in range(SEEDS_PER_BATCH):
            seed = batch * SEEDS_PER_BATCH + offset
            schedule = FaultSchedule(seed)
            path = tmp_path / f"snap-{seed}"
            with engine_options(**BACKENDS[backend]):
                report = chaos_run(
                    lambda mgr: inverse_chase(mapping, target, checkpoint=mgr),
                    schedule=schedule,
                    checkpoint_path=path,
                )
            try:
                assert report.result == ref, "results differ"
                assert_parity(report, ref_delta)
                # A lineage that resumed past the scheduled boundary
                # finishes before its crash fires, so <= rather than ==.
                assert report.crashes <= len(schedule.crashes())
                assert report.lineages == report.crashes + 1
            except AssertionError as exc:
                failures.append((seed, schedule, str(exc)))
        assert not failures, failures


class TestExecutorChaos:
    """Real process/thread pools under the executor-level fault kinds."""

    def run_parallel(self, workload, mgr, hook=None, **overrides):
        mapping, target = workload
        options = dict(min_parallel_items=1, chunk_retries=3)
        options.update(overrides)
        if hook is not None:
            options["inject_faults"] = hook
        with engine_options(**options):
            return inverse_chase(
                mapping,
                target,
                checkpoint=mgr,
                executor=Executor(jobs=2, backend="process", chunk_size=2),
            )

    def test_kill_worker_with_crash_resume(self, tmp_path, workload, references):
        ref, _ = references["object"]
        lineage = [0]

        def run(mgr):
            lineage[0] += 1
            flag = tmp_path / f"kill-{lineage[0]}"
            return self.run_parallel(workload, mgr, KillWorkerOnce(str(flag)))

        base = METRICS.snapshot()
        schedule = FaultSchedule(3, kinds=("crash",), max_crashes=1, horizon=6)
        report = chaos_run(
            run, schedule=schedule, checkpoint_path=tmp_path / "snap"
        )
        assert report.result == ref
        assert report.crashes == len(schedule.crashes())
        delta = METRICS.delta_since(base)
        assert delta.get("worker_crashes", 0) >= 1
        assert delta.get("orphans_reassigned", 0) >= 1

    def test_delay_chunk_trips_timeout_not_results(
        self, tmp_path, workload, references
    ):
        mapping, target = workload
        ref, _ = references["object"]
        base = METRICS.snapshot()
        hook = DelayChunkOnce(str(tmp_path / "delay"), 0.4)
        with engine_options(
            min_parallel_items=1,
            chunk_retries=3,
            chunk_timeout_s=0.05,
            inject_faults=hook,
        ):
            out = inverse_chase(
                mapping,
                target,
                checkpoint=CheckpointManager(tmp_path / "snap", every_ms=0.0001),
                executor=Executor(jobs=2, backend="thread", chunk_size=2),
            )
        assert out == ref
        assert METRICS.delta_since(base).get("chunk_timeouts", 0) >= 1

    def test_pickle_failure_degrades_in_process(
        self, tmp_path, workload, references
    ):
        ref, _ = references["object"]
        base = METRICS.snapshot()
        mgr = CheckpointManager(tmp_path / "snap", every_ms=0.0001)
        out = self.run_parallel(
            workload, mgr, FailPickleOnce(str(tmp_path / "poison"))
        )
        assert out == ref
        assert METRICS.delta_since(base).get("parallel_fallbacks", 0) >= 1

    def test_parallel_crash_resumes_to_identical_results(
        self, tmp_path, workload, references
    ):
        """A full chaos schedule where every lineage runs on a process pool."""
        ref, _ = references["object"]
        schedule = FaultSchedule(9, kinds=("crash",), max_crashes=2, horizon=8)
        report = chaos_run(
            lambda mgr: self.run_parallel(workload, mgr),
            schedule=schedule,
            checkpoint_path=tmp_path / "snap",
        )
        assert report.result == ref
        assert report.lineages == report.crashes + 1


class TestClockSkew:
    def test_skewed_cadence_clock_stays_correct(
        self, tmp_path, workload, references
    ):
        mapping, target = workload
        ref, ref_delta = references["object"]
        schedule = FaultSchedule(5, kinds=("crash", "clock_skew"), max_crashes=3)
        report = chaos_run(
            lambda mgr: inverse_chase(mapping, target, checkpoint=mgr),
            schedule=schedule,
            checkpoint_path=tmp_path / "snap",
        )
        assert report.result == ref
        assert_parity(report, ref_delta)

    def test_deadline_skewed_backward_saves_and_resumes(
        self, tmp_path, workload, references
    ):
        """Clock skew that expires a deadline mid-run: the error-path
        snapshot still lands and the next lineage finishes the work."""
        mapping, target = workload
        ref, _ = references["object"]
        path = tmp_path / "snap"
        deadline = Deadline(wall_ms=60_000)
        mgr = ChaoticCheckpointManager(path, every_ms=0.0001)
        # Simulate the skew: the deadline's absolute expiry jumps into
        # the past, as a clock_skew fault does to a live deadline.
        deadline._expires_at -= 120.0
        with pytest.raises(DeadlineExceededError):
            inverse_chase(mapping, target, checkpoint=mgr, deadline=deadline)
        out = inverse_chase(
            mapping, target, checkpoint=CheckpointManager(path, resume=True)
        )
        assert out == ref


class TestCrashWithoutAnySave:
    def test_crash_before_first_save_resumes_cold(
        self, tmp_path, workload, references
    ):
        mapping, target = workload
        ref, ref_delta = references["object"]
        path = tmp_path / "snap"
        # A cadence so long the run never saves: the crash loses
        # everything and the resume must silently cold-start.
        mgr = ChaoticCheckpointManager(path, every_ms=3_600_000, crash_after=1)
        with pytest.raises(InjectedCrash):
            inverse_chase(mapping, target, checkpoint=mgr)
        resumed = CheckpointManager(path, resume=True)
        base = METRICS.snapshot()
        out = inverse_chase(mapping, target, checkpoint=resumed)
        assert out == ref
        assert resumed.resume_outcome == "no-snapshot"
        delta = {k: METRICS.delta_since(base).get(k, 0) for k in WORK}
        assert delta == ref_delta


class TestCorruptionEveryLineage:
    def test_always_corrupted_schedule_still_converges(
        self, tmp_path, workload, references
    ):
        """Worst case: every snapshot is corrupted before its resume.
        Every lineage cold-starts, yet the run converges and the final
        lineage is an ordinary uninterrupted computation."""
        mapping, target = workload
        ref, ref_delta = references["object"]

        class AlwaysCorrupt(FaultSchedule):
            def __init__(self):
                super().__init__(17, kinds=("crash",), max_crashes=3)
                # Save at every boundary so there is always a snapshot
                # on disk for the corruption fault to destroy.
                self.every_ms = 0.0001
                self.faults = tuple(
                    list(self.faults)
                    + [
                        Fault("corrupt_checkpoint", lineage, 4)
                        for lineage in range(1, 5)
                    ]
                )

        report = chaos_run(
            lambda mgr: inverse_chase(mapping, target, checkpoint=mgr),
            schedule=AlwaysCorrupt(),
            checkpoint_path=tmp_path / "snap",
        )
        assert report.result == ref
        assert report.corruptions >= 1
        assert_parity(report, ref_delta)
