"""Unit and integration tests for the checkpoint/resume layer."""

import os

import pytest

from repro.core.inverse_chase import inverse_chase, inverse_chase_candidates
from repro.engine.config import engine_options
from repro.errors import (
    CheckpointCorruptError,
    CheckpointMismatchError,
    DeadlineExceededError,
)
from repro.observability.metrics import METRICS
from repro.resilience import (
    CheckpointManager,
    Deadline,
    instance_fingerprint,
    mapping_fingerprint,
    options_fingerprint,
    read_snapshot,
    write_snapshot,
)
from repro.workloads.generators import scaled_recovery_workload

SEMANTIC = (
    "coverings_evaluated",
    "recoveries_emitted",
    "justification_hits",
    "justification_misses",
)
WORK = SEMANTIC + ("covers_enumerated",)


@pytest.fixture(scope="module")
def workload():
    return scaled_recovery_workload(7, facts=40, ambiguous_facts=5, domain_size=16)


@pytest.fixture(scope="module")
def reference(workload):
    mapping, target = workload
    base = METRICS.snapshot()
    result = inverse_chase(mapping, target)
    delta = METRICS.delta_since(base)
    return result, {k: delta.get(k, 0) for k in WORK}


def work_delta(base):
    delta = METRICS.delta_since(base)
    return {k: delta.get(k, 0) for k in WORK}


# -- snapshot format --------------------------------------------------------


class TestSnapshotFormat:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "snap"
        payloads = {"numbers": [1, 2, 3], "mapping": {"a": (1, 2)}}
        write_snapshot(path, kind="t", scope={"mapping_fp": "x"}, payloads=payloads)
        header, loaded = read_snapshot(path)
        assert loaded == payloads
        assert header["kind"] == "t"
        assert header["mapping_fp"] == "x"
        assert header["complete"] is False

    def test_complete_flag(self, tmp_path):
        path = tmp_path / "snap"
        write_snapshot(path, kind="t", scope={}, payloads={}, complete=True)
        header, _ = read_snapshot(path)
        assert header["complete"] is True

    def test_atomic_overwrite_leaves_no_temp_files(self, tmp_path):
        path = tmp_path / "snap"
        for i in range(3):
            write_snapshot(path, kind="t", scope={}, payloads={"i": i})
        assert [p.name for p in tmp_path.iterdir()] == ["snap"]
        _, loaded = read_snapshot(path)
        assert loaded == {"i": 2}

    def test_missing_file_is_corrupt(self, tmp_path):
        with pytest.raises(CheckpointCorruptError):
            read_snapshot(tmp_path / "absent")

    def test_truncated_file_is_corrupt(self, tmp_path):
        path = tmp_path / "snap"
        write_snapshot(path, kind="t", scope={}, payloads={"a": 1, "b": 2})
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:-2]) + "\n")  # drop record + footer
        with pytest.raises(CheckpointCorruptError, match="footer"):
            read_snapshot(path)

    def test_bit_flip_is_corrupt(self, tmp_path):
        path = tmp_path / "snap"
        write_snapshot(path, kind="t", scope={}, payloads={"a": list(range(64))})
        data = bytearray(path.read_bytes())
        data[len(data) // 2] ^= 0xFF
        path.write_bytes(bytes(data))
        with pytest.raises(CheckpointCorruptError):
            read_snapshot(path)

    def test_non_checkpoint_file_is_corrupt(self, tmp_path):
        path = tmp_path / "snap"
        path.write_text('{"some": "json"}\n')
        with pytest.raises(CheckpointCorruptError, match="not a repro checkpoint"):
            read_snapshot(path)


# -- fingerprints -----------------------------------------------------------


class TestFingerprints:
    def test_instance_fingerprint_is_content_based(self, workload):
        _, target = workload
        from repro.data.instances import Instance

        clone = Instance(set(target.facts))
        assert clone.epoch != target.epoch
        assert instance_fingerprint(clone) == instance_fingerprint(target)

    def test_different_instances_differ(self, workload):
        mapping, target = workload
        _, other = scaled_recovery_workload(8, facts=40, domain_size=16)
        assert instance_fingerprint(other) != instance_fingerprint(target)

    def test_mapping_fingerprint(self, workload):
        mapping, _ = workload
        # ambiguous_facts=0 drops the A/B -> D dependencies, so the
        # mapping is structurally different (seeds only vary the facts).
        other, _ = scaled_recovery_workload(8, facts=10, ambiguous_facts=0)
        assert mapping_fingerprint(mapping) == mapping_fingerprint(mapping)
        assert mapping_fingerprint(mapping) != mapping_fingerprint(other)

    def test_options_fingerprint_order_insensitive(self):
        assert options_fingerprint({"a": 1, "b": 2}) == options_fingerprint(
            {"b": 2, "a": 1}
        )
        assert options_fingerprint({"a": 1}) != options_fingerprint({"a": 2})


# -- the manager ------------------------------------------------------------


class TestCheckpointManager:
    def test_rejects_nonpositive_cadence(self, tmp_path):
        with pytest.raises(ValueError):
            CheckpointManager(tmp_path / "snap", every_ms=0)

    def test_due_follows_clock(self, tmp_path):
        now = [0.0]
        mgr = CheckpointManager(
            tmp_path / "snap", every_ms=1000.0, clock=lambda: now[0]
        )
        mgr.begin("t", scope={})
        assert not mgr.due()
        now[0] += 0.5
        assert not mgr.due()
        now[0] += 0.6
        assert mgr.due()
        mgr.save({})
        assert not mgr.due()

    def test_save_before_begin_raises(self, tmp_path):
        with pytest.raises(RuntimeError):
            CheckpointManager(tmp_path / "snap").save({})

    def test_mismatch_detection(self, tmp_path):
        path = tmp_path / "snap"
        mgr = CheckpointManager(path)
        mgr.begin("t", scope={"mapping_fp": "A", "options_fp": "O"})
        mgr.save({"x": 1})
        with pytest.raises(CheckpointMismatchError, match="mapping_fp"):
            CheckpointManager(path).load(
                kind="t", scope={"mapping_fp": "B", "options_fp": "O"}
            )
        with pytest.raises(CheckpointMismatchError, match="kind"):
            CheckpointManager(path).load(kind="u", scope={"mapping_fp": "A"})

    def test_resume_outcomes(self, tmp_path):
        path = tmp_path / "snap"
        fresh = CheckpointManager(path, resume=True)
        assert fresh.begin("t", scope={"options_fp": "O"}) is None
        assert fresh.resume_outcome == "no-snapshot"
        fresh.save({"x": 1})

        good = CheckpointManager(path, resume=True)
        payloads = good.begin("t", scope={"options_fp": "O"})
        assert payloads is not None and payloads["x"] == 1
        assert good.resume_outcome == "resumed"

        wrong = CheckpointManager(path, resume=True)
        assert wrong.begin("t", scope={"options_fp": "Q"}) is None
        assert wrong.resume_outcome == "rejected-mismatch"

        data = bytearray(path.read_bytes())
        data[len(data) // 2] ^= 0xFF
        path.write_bytes(bytes(data))
        corrupt = CheckpointManager(path, resume=True)
        assert corrupt.begin("t", scope={"options_fp": "O"}) is None
        assert corrupt.resume_outcome == "rejected-corrupt"

    def test_counters_roundtrip(self, tmp_path):
        mgr = CheckpointManager(tmp_path / "snap")
        mgr.begin("t", scope={})
        METRICS.inc("recoveries_emitted", 3)
        delta = mgr.counters_delta()
        assert delta["recoveries_emitted"] == 3
        base = METRICS.snapshot()
        mgr.merge_counters(delta)
        assert METRICS.delta_since(base)["recoveries_emitted"] == 3


# -- inverse-chase integration ---------------------------------------------


class TestInverseChaseResume:
    def interrupt(self, mapping, target, path, steps=20, **options):
        mgr = CheckpointManager(path, every_ms=0.0001)
        with pytest.raises(DeadlineExceededError):
            inverse_chase(
                mapping,
                target,
                checkpoint=mgr,
                deadline=Deadline(max_steps=steps),
                **options,
            )
        return mgr

    def test_complete_run_then_instant_resume(self, tmp_path, workload, reference):
        mapping, target = workload
        ref, ref_delta = reference
        path = tmp_path / "snap"
        out = inverse_chase(
            mapping, target, checkpoint=CheckpointManager(path, every_ms=0.0001)
        )
        assert out == ref
        base = METRICS.snapshot()
        mgr = CheckpointManager(path, resume=True)
        out2 = inverse_chase(mapping, target, checkpoint=mgr)
        assert out2 == ref
        assert mgr.resume_outcome == "complete"
        delta = work_delta(base)
        # A complete snapshot replays without re-enumerating; the
        # merged semantic counters still equal the uninterrupted run.
        assert delta["covers_enumerated"] == 0
        for key in SEMANTIC:
            assert delta[key] == ref_delta[key]

    @pytest.mark.parametrize("steps", [5, 15, 40, 70])
    def test_crash_resume_bit_identical_with_parity(
        self, tmp_path, workload, reference, steps
    ):
        mapping, target = workload
        ref, ref_delta = reference
        path = tmp_path / "snap"
        self.interrupt(mapping, target, path, steps=steps)
        base = METRICS.snapshot()
        mgr = CheckpointManager(path, resume=True)
        out = inverse_chase(mapping, target, checkpoint=mgr)
        assert out == ref
        if mgr.resume_outcome != "complete":
            assert work_delta(base) == ref_delta

    def test_candidate_stream_resumes_in_order(self, tmp_path, workload):
        mapping, target = workload
        ref = list(inverse_chase_candidates(mapping, target))
        path = tmp_path / "snap"
        collected = []
        mgr = CheckpointManager(path, every_ms=0.0001)
        with pytest.raises(DeadlineExceededError):
            for cand in inverse_chase_candidates(
                mapping, target, checkpoint=mgr, deadline=Deadline(max_steps=25)
            ):
                collected.append(cand)
        resumed = list(
            inverse_chase_candidates(
                mapping, target, checkpoint=CheckpointManager(path, resume=True)
            )
        )
        assert [c.recovery for c in resumed] == [c.recovery for c in ref]
        assert [c.covering for c in resumed] == [c.covering for c in ref]

    def test_option_change_falls_back_cold(self, tmp_path, workload, reference):
        mapping, target = workload
        ref, _ = reference
        path = tmp_path / "snap"
        self.interrupt(mapping, target, path)
        mgr = CheckpointManager(path, resume=True)
        out = inverse_chase(
            mapping, target, checkpoint=mgr, max_recoveries=10_000
        )
        assert mgr.resume_outcome == "rejected-mismatch"
        assert out == ref

    def test_corruption_falls_back_cold(self, tmp_path, workload, reference):
        mapping, target = workload
        ref, _ = reference
        path = tmp_path / "snap"
        self.interrupt(mapping, target, path)
        data = bytearray(path.read_bytes())
        data[len(data) // 3] ^= 0xFF
        path.write_bytes(bytes(data))
        mgr = CheckpointManager(path, resume=True)
        out = inverse_chase(mapping, target, checkpoint=mgr)
        assert mgr.resume_outcome == "rejected-corrupt"
        assert out == ref

    def test_cross_executor_resume(self, tmp_path, workload, reference):
        mapping, target = workload
        ref, _ = reference
        path = tmp_path / "snap"
        # Serial lineage writes; parallel lineage resumes — the
        # snapshot deliberately excludes executor configuration.
        self.interrupt(mapping, target, path)
        mgr = CheckpointManager(path, resume=True)
        out = inverse_chase(mapping, target, checkpoint=mgr, jobs=2)
        assert out == ref
        assert mgr.resume_outcome in ("resumed", "complete")

    def test_parallel_lineage_writes_serial_resumes(
        self, tmp_path, workload, reference
    ):
        mapping, target = workload
        ref, _ = reference
        path = tmp_path / "snap"
        mgr = CheckpointManager(path, every_ms=0.0001)
        out = inverse_chase(mapping, target, checkpoint=mgr, jobs=2)
        assert out == ref
        mgr2 = CheckpointManager(path, resume=True)
        out2 = inverse_chase(mapping, target, checkpoint=mgr2)
        assert out2 == ref
        assert mgr2.resume_outcome == "complete"

    def test_checkpoint_counters_and_file_exist(self, tmp_path, workload):
        mapping, target = workload
        path = tmp_path / "snap"
        base = METRICS.snapshot()
        inverse_chase(
            mapping, target, checkpoint=CheckpointManager(path, every_ms=0.0001)
        )
        delta = METRICS.delta_since(base)
        assert delta.get("checkpoint_saves", 0) >= 1
        assert delta.get("checkpoint_bytes_written", 0) > 0
        assert os.path.exists(path)
        mgr = CheckpointManager(path, resume=True)
        base = METRICS.snapshot()
        inverse_chase(mapping, target, checkpoint=mgr)
        assert METRICS.delta_since(base).get("checkpoint_restores", 0) == 1

    def test_columnar_backend_resume(self, tmp_path, workload, reference):
        mapping, target = workload
        ref, _ = reference
        path = tmp_path / "snap"
        with engine_options(columnar_backend=True, columnar_min_facts=1):
            self.interrupt(mapping, target, path)
            mgr = CheckpointManager(path, resume=True)
            out = inverse_chase(mapping, target, checkpoint=mgr)
        assert out == ref

    def test_degrade_mode_checkpoints_first_rung(self, tmp_path, workload):
        mapping, target = workload
        path = tmp_path / "snap"
        base = METRICS.snapshot()
        result = inverse_chase(
            mapping,
            target,
            mode="degrade",
            checkpoint=CheckpointManager(path, every_ms=0.0001),
        )
        assert METRICS.delta_since(base).get("checkpoint_saves", 0) >= 1
        assert result.status == "exact"


class TestWarmStarts:
    def test_hom_set_and_plans_travel(self, tmp_path, workload, reference):
        mapping, target = workload
        ref, _ = reference
        path = tmp_path / "snap"
        mgr = CheckpointManager(path, every_ms=0.0001)
        with pytest.raises(DeadlineExceededError):
            inverse_chase(
                mapping,
                target,
                checkpoint=mgr,
                deadline=Deadline(max_steps=30),
            )
        _, payloads = read_snapshot(path)
        hom_state = payloads["homs"]
        assert hom_state["hom_set"], "snapshot should carry the hom-set"
        assert "plan_keys" in hom_state
        base = METRICS.snapshot()
        out = inverse_chase(
            mapping, target, checkpoint=CheckpointManager(path, resume=True)
        )
        assert out == ref
        delta = METRICS.delta_since(base)
        if hom_state["plan_keys"].get("object") or hom_state["plan_keys"].get(
            "vector"
        ):
            assert delta.get("plans_prewarmed", 0) >= 1
