"""The degradation ladder: deadlines threaded through the core paths.

The acceptance scenario for the resilience layer: on a fixture whose
enumeration exceeds the deadline, ``mode="degrade"`` returns a
non-empty sound answer with rung provenance, while ``mode="raise"``
surfaces a :class:`DeadlineExceededError` carrying partial progress.
"""

import pytest

from repro import (
    AnytimeResult,
    Deadline,
    DeadlineExceededError,
    BudgetExceededError,
    Mapping,
    certain_answer,
    enumerate_covers,
    hom_set,
    inverse_chase,
    inverse_chase_candidates,
    is_justified,
    is_valid_for_recovery,
    parse_instance,
    parse_query,
    parse_tgds,
    repairs,
)


@pytest.fixture
def branching_scenario():
    """A mapping/target pair with many coverings and recoveries.

    ``S(x), S(y)`` heads give every target fact several covering
    homomorphisms, so both the covering enumeration and the recovery
    stream are long enough to interrupt mid-way.
    """
    mapping = Mapping(parse_tgds("R(x, y) -> S(x), S(y)"))
    target = parse_instance("S(a), S(b), S(c)")
    return mapping, target


def _steps_to_emit(mapping, target, wanted, **options):
    """The smallest step budget that lets ``wanted`` recoveries out.

    Found by probing increasing budgets, so the tests stay correct if
    the per-step accounting of the search loops ever changes.
    """
    for budget in range(1, 200_000):
        try:
            result = inverse_chase(
                mapping, target, deadline=Deadline(max_steps=budget), **options
            )
            return budget, len(result)  # whole enumeration fit
        except DeadlineExceededError as error:
            if len(error.partial) >= wanted:
                return budget, len(error.partial)
    raise AssertionError("no budget produced the wanted partial")


class TestRaiseMode:
    def test_expiry_carries_partial_progress(self, branching_scenario):
        mapping, target = branching_scenario
        full = inverse_chase(mapping, target)
        assert len(full) >= 2
        budget, emitted = _steps_to_emit(mapping, target, wanted=1)
        with pytest.raises(DeadlineExceededError) as excinfo:
            inverse_chase(
                mapping, target, deadline=Deadline(max_steps=budget)
            )
        error = excinfo.value
        assert len(error.partial) == emitted >= 1
        assert error.progress.get("recoveries_emitted") is not None
        # The salvage is sound: every partial entry is a genuine recovery.
        for recovery in error.partial:
            assert is_justified(mapping, recovery, target)
        # And a strict subset of the full answer.
        assert set(error.partial) < set(full)

    def test_generous_deadline_changes_nothing(self, branching_scenario):
        mapping, target = branching_scenario
        plain = inverse_chase(mapping, target)
        bounded = inverse_chase(
            mapping, target, deadline=Deadline(wall_ms=120_000, max_steps=10**9)
        )
        assert bounded == plain
        assert not isinstance(bounded, AnytimeResult)

    def test_invalid_mode_rejected(self, branching_scenario):
        mapping, target = branching_scenario
        with pytest.raises(ValueError):
            inverse_chase(mapping, target, mode="panic")


class TestDegradeLadder:
    def test_exact_when_in_budget(self, branching_scenario):
        mapping, target = branching_scenario
        result = inverse_chase(
            mapping, target, deadline=Deadline(wall_ms=120_000), mode="degrade"
        )
        assert isinstance(result, AnytimeResult)
        assert result.status == "exact"
        assert result.rung == "enumeration"
        assert list(result) == inverse_chase(mapping, target)

    def test_partial_enumeration_rung(self, branching_scenario):
        """Acceptance: expiry mid-enumeration degrades to the verified
        partial set, tagged sound-incomplete."""
        mapping, target = branching_scenario
        budget, emitted = _steps_to_emit(mapping, target, wanted=1)
        result = inverse_chase(
            mapping,
            target,
            deadline=Deadline(max_steps=budget),
            mode="degrade",
        )
        assert isinstance(result, AnytimeResult)
        assert result.status == "sound-incomplete"
        assert result.rung == "partial-enumeration"
        assert len(result) == emitted >= 1
        for recovery in result:
            assert is_justified(mapping, recovery, target)
        assert "degraded_because" in result.progress

    def test_minimal_covers_rung(self, branching_scenario):
        mapping, target = branching_scenario
        # Find a budget the minimal enumeration fits in...
        for budget in range(1, 200_000):
            try:
                minimal = inverse_chase(
                    mapping,
                    target,
                    cover_mode="minimal",
                    deadline=Deadline(max_steps=budget),
                )
                break
            except DeadlineExceededError:
                continue
        # ... and check the full enumeration does NOT fit in it, so the
        # ladder's second rung is what answers.
        with pytest.raises(DeadlineExceededError):
            inverse_chase(
                mapping,
                target,
                cover_mode="all",
                max_covers=None,
                deadline=Deadline(max_steps=budget),
            )
        result = inverse_chase(
            mapping,
            target,
            cover_mode="all",
            deadline=Deadline(max_steps=budget),
            mode="degrade",
        )
        assert isinstance(result, AnytimeResult)
        assert result.rung in ("minimal-covers", "partial-enumeration")
        if result.rung == "minimal-covers":
            assert result.status == "exact"
            # Rung 2 keeps whatever rung 1 already emitted and then
            # completes the minimal enumeration, so the result covers
            # the plain minimal run (possibly plus salvaged extras —
            # all of which passed the justification gate).
            assert set(minimal) <= set(result)
            for recovery in result:
                assert is_justified(mapping, recovery, target)

    def test_tractable_rung_when_nothing_emitted(self):
        mapping = Mapping(parse_tgds("R(x, y) -> S(x); R(u, v) -> T(v)"))
        target = parse_instance("S(a1), S(a2), T(b1), T(b2)")
        result = inverse_chase(
            mapping, target, deadline=Deadline(max_steps=1), mode="degrade"
        )
        assert isinstance(result, AnytimeResult)
        assert result.rung == "tractable"
        assert len(result) >= 1
        # Whatever the tractable rung returned is sound: a justified
        # source whenever it claims to be a recovery.
        if result.status == "exact":
            for recovery in result:
                assert is_justified(mapping, recovery, target)

    def test_degrade_without_deadline_is_exact(self, branching_scenario):
        mapping, target = branching_scenario
        result = inverse_chase(mapping, target, mode="degrade")
        assert result.status == "exact"
        assert list(result) == inverse_chase(mapping, target)


class TestCertainDegrade:
    def test_degraded_answers_are_sound(self, branching_scenario):
        mapping, target = branching_scenario
        query = parse_query("q(x) :- R(x, y)")
        exact = certain_answer(query, mapping, target)
        degraded = certain_answer(
            query,
            mapping,
            target,
            deadline=Deadline(max_steps=2),
            mode="degrade",
        )
        assert isinstance(degraded, AnytimeResult)
        assert degraded.status == "sound-incomplete"
        assert degraded.rung == "tractable"
        assert set(degraded) <= exact

    def test_certain_raise_mode_surfaces_deadline(self, branching_scenario):
        mapping, target = branching_scenario
        query = parse_query("q(x) :- R(x, y)")
        with pytest.raises(DeadlineExceededError):
            certain_answer(
                query, mapping, target, deadline=Deadline(max_steps=2)
            )


class TestThreadedEntryPoints:
    def test_enumerate_covers_respects_deadline(self, branching_scenario):
        mapping, target = branching_scenario
        homs = hom_set(mapping, target)
        with pytest.raises(DeadlineExceededError):
            list(
                enumerate_covers(
                    homs, target, mode="all", deadline=Deadline(max_steps=2)
                )
            )

    def test_validity_respects_deadline(self, branching_scenario):
        mapping, target = branching_scenario
        with pytest.raises(DeadlineExceededError):
            is_valid_for_recovery(
                mapping, target, deadline=Deadline(max_steps=1)
            )
        assert is_valid_for_recovery(
            mapping, target, deadline=Deadline(wall_ms=120_000)
        )

    def test_repairs_respect_deadline(self):
        mapping = Mapping(parse_tgds("Order(c, i) -> Shipment(i), Invoice(c)"))
        altered = parse_instance("Shipment(laptop), Invoice(ada), Refund(ada)")
        with pytest.raises(DeadlineExceededError) as excinfo:
            list(repairs(mapping, altered, deadline=Deadline(max_steps=1)))
        assert "candidates_tried" in excinfo.value.progress

    def test_deadline_in_worker_processes(self, branching_scenario):
        """A pickled deadline expires inside process workers too, and
        the resulting error propagates as an application error."""
        mapping, target = branching_scenario
        budget, _ = _steps_to_emit(mapping, target, wanted=1)
        with pytest.raises(DeadlineExceededError):
            inverse_chase(
                mapping,
                target,
                deadline=Deadline(max_steps=budget),
                jobs=2,
            )


class TestBudgetPartial:
    def test_budget_error_carries_partial(self, branching_scenario):
        mapping, target = branching_scenario
        full = inverse_chase(mapping, target)
        with pytest.raises(BudgetExceededError) as excinfo:
            inverse_chase(mapping, target, max_recoveries=1)
        error = excinfo.value
        assert len(error.partial) == 1
        assert error.partial[0] in full

    def test_on_budget_truncate_returns_quietly(self, branching_scenario):
        mapping, target = branching_scenario
        truncated = inverse_chase(
            mapping, target, max_recoveries=1, on_budget="truncate"
        )
        assert len(truncated) == 1
        full = inverse_chase(mapping, target)
        assert truncated[0] in full

    def test_truncate_covers_budget(self, branching_scenario):
        mapping, target = branching_scenario
        truncated = list(
            inverse_chase_candidates(
                mapping, target, max_covers=1, on_budget="truncate"
            )
        )
        with pytest.raises(BudgetExceededError):
            list(inverse_chase_candidates(mapping, target, max_covers=1))
        assert len(truncated) >= 0  # quietly short, never raising
