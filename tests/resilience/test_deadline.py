"""Unit tests for the cooperative Deadline budget."""

import pickle
import time

import pytest

from repro.errors import DeadlineExceededError
from repro.resilience import AnytimeResult, Deadline


class TestLimits:
    def test_unbounded_deadline_never_expires(self):
        deadline = Deadline()
        assert deadline.expired() is None
        assert deadline.remaining_ms() is None
        deadline.step(10_000)
        deadline.check()

    def test_step_budget_is_exact(self):
        deadline = Deadline(max_steps=5)
        for _ in range(4):
            deadline.step()
        with pytest.raises(DeadlineExceededError) as excinfo:
            deadline.step()
        assert "step budget 5" in str(excinfo.value)
        assert deadline.steps == 5

    def test_bulk_steps_count(self):
        deadline = Deadline(max_steps=10)
        deadline.step(9)
        with pytest.raises(DeadlineExceededError):
            deadline.step(3)

    def test_wall_clock_expiry(self):
        deadline = Deadline(wall_ms=1)
        time.sleep(0.01)
        assert deadline.expired() is not None
        with pytest.raises(DeadlineExceededError) as excinfo:
            deadline.check("the test")
        assert "the test" in str(excinfo.value)

    def test_generous_wall_clock_stays_alive(self):
        deadline = Deadline(wall_ms=60_000)
        deadline.check()
        remaining = deadline.remaining_ms()
        assert remaining is not None and remaining > 30_000

    def test_memory_estimate(self):
        deadline = Deadline(max_memory_mb=1)
        deadline.charge_memory(512 * 1024)
        with pytest.raises(DeadlineExceededError) as excinfo:
            deadline.charge_memory(600 * 1024)
        assert "memory estimate" in str(excinfo.value)

    def test_negative_limits_rejected(self):
        with pytest.raises(ValueError):
            Deadline(wall_ms=-1)
        with pytest.raises(ValueError):
            Deadline(max_steps=-1)
        with pytest.raises(ValueError):
            Deadline(max_memory_mb=-1)

    def test_progress_travels_on_the_error(self):
        deadline = Deadline(max_steps=1)
        with pytest.raises(DeadlineExceededError) as excinfo:
            deadline.step(1, "enumeration", {"covers_seen": 7})
        assert excinfo.value.progress == {"covers_seen": 7}
        assert excinfo.value.partial == []


class TestComposition:
    def test_combined_trips_on_either(self):
        outer = Deadline(max_steps=100)
        inner = Deadline(max_steps=3)
        combined = outer & inner
        with pytest.raises(DeadlineExceededError) as excinfo:
            for _ in range(10):
                combined.step()
        assert "step budget 3" in str(excinfo.value)

    def test_work_accrues_to_parents(self):
        outer = Deadline(max_steps=100)
        combined = outer.combined_with(Deadline())
        combined.step(40)
        assert outer.steps == 40
        # A second combination over the same outer deadline keeps
        # charging it: the global budget sees all the work.
        second = outer.combined_with(Deadline())
        with pytest.raises(DeadlineExceededError):
            second.step(70)

    def test_remaining_ms_is_tightest_parent(self):
        loose = Deadline(wall_ms=60_000)
        tight = Deadline(wall_ms=1_000)
        combined = loose & tight
        remaining = combined.remaining_ms()
        assert remaining is not None and remaining <= 1_000


class TestLifecycle:
    def test_restarted_gets_a_fresh_budget(self):
        deadline = Deadline(max_steps=2)
        with pytest.raises(DeadlineExceededError):
            deadline.step(5)
        fresh = deadline.restarted()
        assert fresh.max_steps == 2
        assert fresh.steps == 0
        fresh.step()  # alive again

    def test_pickle_preserves_absolute_expiry(self):
        deadline = Deadline(wall_ms=60_000, max_steps=50)
        deadline.step(10)
        clone = pickle.loads(pickle.dumps(deadline))
        assert clone.max_steps == 50
        assert clone.steps == 10
        # The wall anchor is absolute: the clone's remaining time is the
        # parent's, not a fresh 60 s window.
        original = deadline.remaining_ms()
        assert abs(clone.remaining_ms() - original) < 1_000

    def test_pickled_expired_deadline_stays_expired(self):
        deadline = Deadline(wall_ms=1)
        time.sleep(0.01)
        clone = pickle.loads(pickle.dumps(deadline))
        assert clone.expired() is not None

    def test_repr_names_the_limits(self):
        assert "max_steps=7" in repr(Deadline(max_steps=7))
        assert "unbounded" in repr(Deadline())


class TestAnytimeResult:
    def test_behaves_like_its_value(self):
        result = AnytimeResult([1, 2, 3], "exact", "enumeration")
        assert list(result) == [1, 2, 3]
        assert len(result) == 3
        assert 2 in result
        assert result
        assert result.is_exact

    def test_rejects_unknown_status(self):
        with pytest.raises(ValueError):
            AnytimeResult([], "approximate", "enumeration")

    def test_immutable(self):
        result = AnytimeResult([], "exact", "enumeration")
        with pytest.raises(AttributeError):
            result.status = "sound-incomplete"

    def test_pickle_round_trip(self):
        result = AnytimeResult(
            [1], "sound-incomplete", "tractable", detail="d", progress={"a": 1}
        )
        clone = pickle.loads(pickle.dumps(result))
        assert clone == result
        assert clone.detail == "d"
        assert clone.progress == {"a": 1}
