"""Unit tests for schemas and schema validation."""

import pytest

from repro.data.atoms import atom
from repro.data.schema import RelationSymbol, Schema, ensure_disjoint
from repro.errors import SchemaError


class TestRelationSymbol:
    def test_accessors(self):
        r = RelationSymbol("R", 2)
        assert r.name == "R"
        assert r.arity == 2

    def test_invalid_names_and_arities(self):
        with pytest.raises(SchemaError):
            RelationSymbol("", 1)
        with pytest.raises(SchemaError):
            RelationSymbol("R", -1)

    def test_equality_and_hash(self):
        assert RelationSymbol("R", 2) == RelationSymbol("R", 2)
        assert RelationSymbol("R", 2) != RelationSymbol("R", 3)
        assert len({RelationSymbol("R", 2), RelationSymbol("R", 2)}) == 1

    def test_immutable(self):
        with pytest.raises(AttributeError):
            RelationSymbol("R", 2).arity = 3


class TestSchema:
    def test_from_arities(self):
        s = Schema.from_arities({"R": 2, "S": 1})
        assert "R" in s
        assert s.arity("R") == 2
        assert len(s) == 2

    def test_conflicting_declaration_rejected(self):
        with pytest.raises(SchemaError):
            Schema([RelationSymbol("R", 1), RelationSymbol("R", 2)])

    def test_inferred_from_atoms(self):
        s = Schema.inferred_from_atoms([atom("R", "a", "b"), atom("S", "c")])
        assert s.arity("R") == 2
        assert s.arity("S") == 1

    def test_inferred_rejects_inconsistent_arities(self):
        with pytest.raises(SchemaError):
            Schema.inferred_from_atoms([atom("R", "a"), atom("R", "a", "b")])

    def test_unknown_relation_lookup(self):
        with pytest.raises(SchemaError):
            Schema().arity("R")

    def test_iteration_is_sorted(self):
        s = Schema.from_arities({"Z": 1, "A": 1})
        assert [r.name for r in s] == ["A", "Z"]

    def test_equality_and_hash(self):
        assert Schema.from_arities({"R": 1}) == Schema.from_arities({"R": 1})
        assert hash(Schema.from_arities({"R": 1})) == hash(
            Schema.from_arities({"R": 1})
        )


class TestValidation:
    def test_validate_atom_accepts_conforming(self):
        Schema.from_arities({"R": 2}).validate_atom(atom("R", "a", "b"))

    def test_validate_atom_rejects_unknown_relation(self):
        with pytest.raises(SchemaError):
            Schema.from_arities({"R": 2}).validate_atom(atom("S", "a"))

    def test_validate_atom_rejects_wrong_arity(self):
        with pytest.raises(SchemaError):
            Schema.from_arities({"R": 2}).validate_atom(atom("R", "a"))

    def test_validate_atoms_bulk(self):
        schema = Schema.from_arities({"R": 1})
        schema.validate_atoms([atom("R", "a"), atom("R", "b")])
        with pytest.raises(SchemaError):
            schema.validate_atoms([atom("R", "a"), atom("R", "a", "b")])


class TestDisjointness:
    def test_disjoint_schemas(self):
        s = Schema.from_arities({"R": 1})
        t = Schema.from_arities({"T": 1})
        assert s.is_disjoint_from(t)
        ensure_disjoint(s, t)

    def test_overlapping_schemas_raise(self):
        s = Schema.from_arities({"R": 1})
        t = Schema.from_arities({"R": 1, "T": 1})
        assert not s.is_disjoint_from(t)
        with pytest.raises(SchemaError, match="R"):
            ensure_disjoint(s, t)

    def test_union(self):
        u = Schema.from_arities({"R": 1}).union(Schema.from_arities({"S": 2}))
        assert u.arity("R") == 1 and u.arity("S") == 2

    def test_union_conflict(self):
        with pytest.raises(SchemaError):
            Schema.from_arities({"R": 1}).union(Schema.from_arities({"R": 2}))
