"""Unit tests for substitutions (the paper's finite mappings)."""

import pytest

from repro.data.atoms import atom
from repro.data.substitutions import IDENTITY, Substitution, merge
from repro.data.terms import Constant, Null, Variable

X, Y, Z = Variable("x"), Variable("y"), Variable("z")
A, B, C = Constant("a"), Constant("b"), Constant("c")
N1, N2 = Null("N1"), Null("N2")


class TestBasics:
    def test_mapping_protocol(self):
        s = Substitution({X: A, Y: B})
        assert s[X] == A
        assert len(s) == 2
        assert set(s) == {X, Y}

    def test_identity_entries_are_dropped(self):
        s = Substitution({X: X, Y: B})
        assert len(s) == 1
        assert X not in s

    def test_image_is_total(self):
        s = Substitution({X: A})
        assert s.image(X) == A
        assert s.image(Y) == Y
        assert s.image(A) == A

    def test_non_term_entries_rejected(self):
        with pytest.raises(TypeError):
            Substitution({"x": A})

    def test_identity_constant(self):
        assert len(IDENTITY) == 0
        assert IDENTITY.image(X) == X


class TestApplication:
    def test_apply_atom(self):
        s = Substitution({X: A, N1: B})
        assert s.apply_atom(atom("R", "$x", "?N1", "c")) == atom("R", "a", "b", "c")

    def test_apply_atoms(self):
        s = Substitution({X: A})
        assert s.apply_atoms([atom("R", "$x"), atom("S", "$x")]) == [
            atom("R", "a"),
            atom("S", "a"),
        ]

    def test_apply_tuple(self):
        s = Substitution({X: A})
        assert s.apply_tuple((X, Y, B)) == (A, Y, B)


class TestAlgebra:
    def test_compose_applies_inner_first(self):
        f = Substitution({Y: C})
        g = Substitution({X: Y})
        composed = f.compose(g)
        # (f o g)(x) = f(g(x)) = f(y) = c
        assert composed.image(X) == C

    def test_compose_keeps_outer_entries(self):
        f = Substitution({Y: C})
        g = Substitution({X: A})
        assert (f @ g).image(Y) == C

    def test_restrict(self):
        s = Substitution({X: A, Y: B})
        restricted = s.restrict([X, Z])
        assert X in restricted
        assert Y not in restricted

    def test_extend_disjoint(self):
        s = Substitution({X: A}).extend({Y: B})
        assert s.image(Y) == B

    def test_extend_conflict_raises(self):
        with pytest.raises(ValueError):
            Substitution({X: A}).extend({X: B})

    def test_extend_agreeing_is_fine(self):
        assert Substitution({X: A}).extend({X: A}).image(X) == A

    def test_without(self):
        s = Substitution({X: A, Y: B}).without([X])
        assert X not in s
        assert Y in s


class TestPredicates:
    def test_is_homomorphism(self):
        assert Substitution({X: A, N1: B}).is_homomorphism
        assert not Substitution({A: B}).is_homomorphism

    def test_is_injective(self):
        assert Substitution({X: A, Y: B}).is_injective
        assert not Substitution({X: A, Y: A}).is_injective

    def test_is_variable_renaming(self):
        assert Substitution({X: Y}).is_variable_renaming
        assert not Substitution({X: A}).is_variable_renaming
        assert not Substitution({X: Z, Y: Z}).is_variable_renaming

    def test_agrees_with(self):
        assert Substitution({X: A}).agrees_with(Substitution({Y: B}))
        assert Substitution({X: A}).agrees_with(Substitution({X: A, Y: B}))
        assert not Substitution({X: A}).agrees_with(Substitution({X: B}))


class TestDunder:
    def test_equality_and_hash(self):
        assert Substitution({X: A}) == Substitution({X: A})
        assert Substitution({X: A}) != Substitution({X: B})
        assert hash(Substitution({X: A})) == hash(Substitution({X: A}))

    def test_repr_uses_paper_notation(self):
        assert repr(Substitution({X: A})) == "{x/a}"

    def test_immutable(self):
        with pytest.raises(AttributeError):
            Substitution({X: A})._map = {}


class TestMerge:
    def test_merge_compatible(self):
        merged = merge([Substitution({X: A}), Substitution({Y: B})])
        assert merged is not None
        assert merged.image(X) == A and merged.image(Y) == B

    def test_merge_conflicting_returns_none(self):
        assert merge([Substitution({X: A}), Substitution({X: B})]) is None

    def test_merge_empty(self):
        merged = merge([])
        assert merged is not None and len(merged) == 0
