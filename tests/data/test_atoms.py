"""Unit tests for atoms and atom-set helpers."""

import pytest

from repro.data.atoms import (
    Atom,
    atom,
    atoms_constants,
    atoms_nulls,
    atoms_variables,
    freeze_atoms,
)
from repro.data.terms import Constant, Null, Variable


class TestConstruction:
    def test_relation_and_args(self):
        a = Atom("R", [Constant("a"), Variable("x")])
        assert a.relation == "R"
        assert a.args == (Constant("a"), Variable("x"))
        assert a.arity == 2

    def test_empty_relation_rejected(self):
        with pytest.raises(ValueError):
            Atom("", [Constant("a")])

    def test_nullary_atoms_allowed(self):
        assert Atom("Unit", []).arity == 0

    def test_string_coercion_conventions(self):
        a = atom("R", "a", "?N", "$x", "_M", 3)
        assert a.args == (
            Constant("a"),
            Null("N"),
            Variable("x"),
            Null("M"),
            Constant(3),
        )

    def test_unknown_payload_rejected(self):
        with pytest.raises(TypeError):
            atom("R", object())


class TestClassification:
    def test_variables_nulls_constants(self):
        a = atom("R", "$x", "?N", "a", "$x")
        assert a.variables == {Variable("x")}
        assert a.nulls == {Null("N")}
        assert a.constants == {Constant("a")}

    def test_is_fact(self):
        assert atom("R", "a", "?N").is_fact
        assert not atom("R", "$x").is_fact

    def test_is_ground(self):
        assert atom("R", "a", "b").is_ground
        assert not atom("R", "a", "?N").is_ground


class TestTransformation:
    def test_apply_replaces_mapped_terms(self):
        a = atom("R", "$x", "a")
        image = a.apply({Variable("x"): Constant("c")})
        assert image == atom("R", "c", "a")

    def test_apply_keeps_unmapped_terms(self):
        a = atom("R", "$x", "$y")
        image = a.apply({Variable("x"): Constant("c")})
        assert image == atom("R", "c", "$y")

    def test_map_terms(self):
        a = atom("R", "?N", "a")
        image = a.map_terms(
            lambda t: Constant("z") if isinstance(t, Null) else t
        )
        assert image == atom("R", "z", "a")


class TestDunder:
    def test_equality_and_hash(self):
        assert atom("R", "a") == atom("R", "a")
        assert atom("R", "a") != atom("R", "b")
        assert atom("R", "a") != atom("S", "a")
        assert len({atom("R", "a"), atom("R", "a")}) == 1

    def test_ordering_by_relation_then_args(self):
        atoms = sorted([atom("S", "a"), atom("R", "b"), atom("R", "a")])
        assert atoms == [atom("R", "a"), atom("R", "b"), atom("S", "a")]

    def test_str_rendering(self):
        assert str(atom("R", "a", "?N")) == "R(a, ?N)"

    def test_immutable(self):
        with pytest.raises(AttributeError):
            atom("R", "a").relation = "S"


class TestAtomSetHelpers:
    def test_collective_classifiers(self):
        atoms = [atom("R", "$x", "a"), atom("S", "?N", "$y")]
        assert atoms_variables(atoms) == {Variable("x"), Variable("y")}
        assert atoms_nulls(atoms) == {Null("N")}
        assert atoms_constants(atoms) == {Constant("a")}

    def test_freeze_replaces_variables_consistently(self):
        atoms = [atom("R", "$x", "$y"), atom("S", "$x")]
        frozen, mapping = freeze_atoms(atoms)
        assert mapping.keys() == {Variable("x"), Variable("y")}
        # The shared variable x freezes to the same null in both atoms.
        assert frozen[0].args[0] == frozen[1].args[0]
        assert all(a.is_fact for a in frozen)

    def test_freeze_keeps_constants(self):
        frozen, _ = freeze_atoms([atom("R", "a", "$x")])
        assert frozen[0].args[0] == Constant("a")

    def test_freeze_custom_rename(self):
        frozen, mapping = freeze_atoms(
            [atom("R", "$x")], rename=lambda v: Null(f"Q_{v.name}")
        )
        assert mapping[Variable("x")] == Null("Q_x")
        assert frozen[0] == atom("R", "?Q_x")
